//! Cross-validation: the analytic backend against the DES.
//!
//! The analytic cost model earns its keep only if it *agrees* with the
//! simulator where the paper's figures make claims. These tests run both
//! backends over the same figure-shaped grids (at reduced sizes so the
//! suite stays fast) and assert two things per figure:
//!
//! 1. **Identical orderings** — every qualitative claim a figure makes
//!    (which interconnect wins, skew slower than avg, small records
//!    slower than large, RDMA beating IPoIB) must come out the same way
//!    under both backends.
//! 2. **Pinned relative-error bands** — the analytic job time stays
//!    within a per-figure band of the DES time. The bands were measured
//!    empirically (see the `probe_error_bands` harness below) and pinned
//!    with headroom; they are regression tripwires, not aspirations — if
//!    a model change widens the error, the band fails and the change has
//!    to be recalibrated.
//!
//! A third family asserts the *point* of the analytic backend: it does
//! orders of magnitude less simulated work (`JobResult::sim_work` — a
//! wall-clock-free counter: events dispatched for the DES, closed-form
//! evaluations for the model).

use hadoop_mr_microbench::mrbench::{run, BackendKind, BenchConfig, Interconnect, MicroBenchmark};
use hadoop_mr_microbench::simcore::units::ByteSize;

const NETWORKS: [Interconnect; 3] = [
    Interconnect::GigE1,
    Interconnect::GigE10,
    Interconnect::IpoibQdr,
];

/// Run `config` on the given backend.
fn on(config: &BenchConfig, backend: BackendKind) -> hadoop_mr_microbench::mrbench::BenchReport {
    let mut c = config.clone();
    c.backend = backend;
    run(&c).expect("valid config")
}

/// Job times for both backends: `(des_s, analytic_s)`.
fn both(config: &BenchConfig) -> (f64, f64) {
    let des = on(config, BackendKind::Des);
    let ana = on(config, BackendKind::Analytic);
    assert!(des.result.succeeded() && ana.result.succeeded());
    (des.job_time_secs(), ana.job_time_secs())
}

/// Signed relative error of the analytic time vs the DES time.
fn rel_err(des_s: f64, ana_s: f64) -> f64 {
    (ana_s - des_s) / des_s
}

fn cluster_a(bench: MicroBenchmark, ic: Interconnect, size: ByteSize) -> BenchConfig {
    BenchConfig::cluster_a_default(bench, ic, size)
}

#[test]
fn fig2_fig3_network_ordering_matches_with_bounded_error() {
    // Figs. 2–3: MR-AVG / MR-RAND over the three Cluster A interconnects.
    let size = ByteSize::from_gib(4);
    for bench in [MicroBenchmark::Avg, MicroBenchmark::Rand] {
        let mut des = Vec::new();
        let mut ana = Vec::new();
        for ic in NETWORKS {
            let (d, a) = both(&cluster_a(bench, ic, size));
            // Pinned band: probe measured |err| <= 0.08 on this grid.
            let e = rel_err(d, a);
            assert!(
                e.abs() <= 0.15,
                "{bench} {ic:?}: analytic {a:.1}s vs DES {d:.1}s, err {e:+.2}"
            );
            des.push(d);
            ana.push(a);
        }
        // Identical interconnect ordering: 1GigE slowest, IB fastest.
        assert!(des[0] > des[1] && des[1] >= des[2], "DES {bench}: {des:?}");
        assert!(
            ana[0] > ana[1] && ana[1] >= ana[2],
            "analytic {bench}: {ana:?}"
        );
    }
}

#[test]
fn fig5_skew_ordering_matches_with_bounded_error() {
    // Fig. 5: MR-SKEW vs MR-AVG on IPoIB QDR — the skew factor.
    let size = ByteSize::from_gib(4);
    let (avg_d, avg_a) = both(&cluster_a(
        MicroBenchmark::Avg,
        Interconnect::IpoibQdr,
        size,
    ));
    let (skew_d, skew_a) = both(&cluster_a(
        MicroBenchmark::Skew,
        Interconnect::IpoibQdr,
        size,
    ));
    assert!(skew_d > avg_d, "DES: skew {skew_d} vs avg {avg_d}");
    assert!(skew_a > avg_a, "analytic: skew {skew_a} vs avg {avg_a}");
    // Both backends agree the factor is paper-sized (roughly 2x).
    let factor_d = skew_d / avg_d;
    let factor_a = skew_a / avg_a;
    assert!((1.4..3.5).contains(&factor_d), "DES skew factor {factor_d}");
    assert!(
        (1.4..3.5).contains(&factor_a),
        "analytic skew factor {factor_a}"
    );
    // Pinned band: probe measured |err| <= 0.14 on the skew cells (the
    // straggler's fetch pipeline is the model's roughest corner).
    let e = rel_err(skew_d, skew_a);
    assert!(e.abs() <= 0.22, "skew err {e:+.2}");
}

#[test]
fn fig4_kv_size_ordering_matches_with_bounded_error() {
    // Fig. 4: smaller records cost more CPU per shuffled byte.
    let size = ByteSize::from_gib(2);
    let time_for = |kv: usize, backend| {
        let mut c = cluster_a(MicroBenchmark::Avg, Interconnect::IpoibQdr, size);
        c.key_size = kv;
        c.value_size = kv;
        on(&c, backend).job_time_secs()
    };
    for backend in [BackendKind::Des, BackendKind::Analytic] {
        let t100 = time_for(100, backend);
        let t1k = time_for(1024, backend);
        let t10k = time_for(10240, backend);
        assert!(
            t100 > t1k && t1k > t10k,
            "{backend}: {t100:.1} {t1k:.1} {t10k:.1}"
        );
        assert!(t100 / t1k < 2.0, "{backend}: 100B catastrophically slow");
    }
    for kv in [100usize, 1024, 10240] {
        let (d, a) = {
            let mut c = cluster_a(MicroBenchmark::Avg, Interconnect::IpoibQdr, size);
            c.key_size = kv;
            c.value_size = kv;
            both(&c)
        };
        // Pinned band: probe measured |err| <= 0.06 on the kv cells.
        let e = rel_err(d, a);
        assert!(e.abs() <= 0.12, "kv={kv}: err {e:+.2} ({a:.1}s vs {d:.1}s)");
    }
}

#[test]
fn fig8_rdma_ordering_matches_with_bounded_error() {
    // Fig. 8 (Cluster B case study): RDMA shuffle beats IPoIB FDR and
    // eliminates protocol CPU — under both backends.
    let size = ByteSize::from_gib(4);
    let mk = |ic| BenchConfig::cluster_b_case_study(ic, size, 8);
    for backend in [BackendKind::Des, BackendKind::Analytic] {
        let ipoib = on(&mk(Interconnect::IpoibFdr), backend);
        let rdma = on(&mk(Interconnect::RdmaFdr), backend);
        assert!(
            rdma.job_time_secs() < ipoib.job_time_secs(),
            "{backend}: rdma {:.1}s vs ipoib {:.1}s",
            rdma.job_time_secs(),
            ipoib.job_time_secs()
        );
        assert_eq!(rdma.result.counters.protocol_cpu_seconds, 0.0, "{backend}");
        assert!(
            ipoib.result.counters.protocol_cpu_seconds > 0.0,
            "{backend}"
        );
    }
    for ic in [Interconnect::IpoibFdr, Interconnect::RdmaFdr] {
        let (d, a) = both(&mk(ic));
        // Pinned band: probe measured |err| <= 0.05 on Cluster B.
        let e = rel_err(d, a);
        assert!(e.abs() <= 0.12, "{ic:?}: err {e:+.2} ({a:.1}s vs {d:.1}s)");
    }
}

#[test]
fn analytic_does_at_least_100x_less_simulated_work() {
    // The acceptance bar: a fig-2-style sweep on the analytic backend
    // must cost >= 100x less simulated work than the DES — measured by
    // the backends' own work counters, never wall clock.
    let size = ByteSize::from_gib(1);
    let mut des_work = 0u64;
    let mut ana_work = 0u64;
    for ic in NETWORKS {
        let config = cluster_a(MicroBenchmark::Avg, ic, size);
        let d = on(&config, BackendKind::Des);
        let a = on(&config, BackendKind::Analytic);
        assert!(d.result.sim_work > 0, "DES must report events");
        assert!(a.result.sim_work > 0, "analytic must report evaluations");
        des_work += d.result.sim_work;
        ana_work += a.result.sim_work;
        // The analytic counter is exactly one evaluation per task.
        assert_eq!(
            a.result.sim_work,
            u64::from(config.num_maps + config.num_reduces)
        );
    }
    assert!(
        des_work >= 100 * ana_work,
        "DES {des_work} events vs analytic {ana_work} evaluations: speedup {}x < 100x",
        des_work / ana_work.max(1)
    );
}

#[test]
fn backends_write_distinct_digests_and_des_is_untouched() {
    use hadoop_mr_microbench::mrbench::config_digest;
    // Backend selection must show up in the cache key (the store must
    // never serve an analytic result to a DES request or vice versa)...
    let des_cfg = cluster_a(
        MicroBenchmark::Avg,
        Interconnect::GigE1,
        ByteSize::from_mib(256),
    );
    let mut ana_cfg = des_cfg.clone();
    ana_cfg.backend = BackendKind::Analytic;
    assert_ne!(config_digest(&des_cfg), config_digest(&ana_cfg));
    // ...while the default (DES) config digests exactly as it did before
    // the field existed: `backend` is emitted only when non-default, so
    // pre-existing stores stay valid byte for byte.
    assert!(!des_cfg.to_json().to_compact().contains("backend"));
}

/// Deterministic LCG for the property test (no OS entropy in tests).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes constants; plenty for config scrambling.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next() % options.len() as u64) as usize]
    }
}

#[test]
fn analytic_is_scale_monotone_across_random_configs() {
    // Property: with the workload fixed, the analytic model never gets
    // slower when slaves are added, and never faster when data grows.
    // Seeded exploration over the config space — each case derives from
    // the LCG stream only, so failures reproduce exactly.
    let mut rng = Lcg(0x5EED_2014);
    for case in 0..40 {
        let bench = rng.pick(&[
            MicroBenchmark::Avg,
            MicroBenchmark::Rand,
            MicroBenchmark::Skew,
            MicroBenchmark::Zipf,
        ]);
        let ic = rng.pick(&[
            Interconnect::GigE1,
            Interconnect::GigE10,
            Interconnect::IpoibQdr,
            Interconnect::IpoibFdr,
            Interconnect::RdmaFdr,
        ]);
        let size_mib = rng.pick(&[64u64, 256, 1024, 4096]);
        let mut base = cluster_a(bench, ic, ByteSize::from_mib(size_mib));
        base.backend = BackendKind::Analytic;
        base.slaves = rng.pick(&[2usize, 4, 8]);
        base.num_maps = rng.pick(&[8u32, 16, 32]);
        base.num_reduces = rng.pick(&[4u32, 8, 16]);
        if bench == MicroBenchmark::Skew && base.num_reduces < 3 {
            base.num_reduces = 4;
        }
        let t = run(&base).unwrap().job_time_secs();

        // More slaves, same data: never slower.
        let mut wider = base.clone();
        wider.slaves *= 2;
        let t_wide = run(&wider).unwrap().job_time_secs();
        assert!(
            t_wide <= t * (1.0 + 1e-9),
            "case {case} ({bench} {ic:?} {size_mib}MiB, {} slaves): \
             widening {} -> {} slaves raised time {t:.2}s -> {t_wide:.2}s",
            base.slaves,
            base.slaves,
            wider.slaves
        );

        // More data, same cluster: never faster.
        let mut bigger = base.clone();
        bigger.volume = hadoop_mr_microbench::mrbench::ShuffleVolume::TotalBytes(
            ByteSize::from_mib(size_mib * 2),
        );
        let t_big = run(&bigger).unwrap().job_time_secs();
        assert!(
            t_big >= t * (1.0 - 1e-9),
            "case {case} ({bench} {ic:?}): doubling data lowered time \
             {t:.2}s -> {t_big:.2}s"
        );
    }
}

/// Calibration harness, not a test: prints the DES vs analytic error
/// over every figure grid above. Run after model changes to re-measure
/// before re-pinning the bands:
///
/// ```text
/// cargo test --test cross_validation probe_error_bands -- --ignored --nocapture
/// ```
#[test]
#[ignore = "calibration probe; run manually with --ignored --nocapture"]
fn probe_error_bands() {
    let mut worst: f64 = 0.0;
    let mut table = String::new();
    let mut add = |label: String, config: &BenchConfig| {
        let (d, a) = both(config);
        let e = rel_err(d, a);
        worst = worst.max(e.abs());
        table.push_str(&format!(
            "{label:<40} des {d:8.1}s  ana {a:8.1}s  err {e:+.3}\n"
        ));
    };
    for bench in [
        MicroBenchmark::Avg,
        MicroBenchmark::Rand,
        MicroBenchmark::Skew,
    ] {
        for ic in NETWORKS {
            for gib in [1u64, 4] {
                let c = cluster_a(bench, ic, ByteSize::from_gib(gib));
                add(format!("{bench} {ic:?} {gib}GiB"), &c);
            }
        }
    }
    for kv in [100usize, 1024, 10240] {
        let mut c = cluster_a(
            MicroBenchmark::Avg,
            Interconnect::IpoibQdr,
            ByteSize::from_gib(2),
        );
        c.key_size = kv;
        c.value_size = kv;
        add(format!("kv={kv}"), &c);
    }
    for ic in [Interconnect::IpoibFdr, Interconnect::RdmaFdr] {
        let c = BenchConfig::cluster_b_case_study(ic, ByteSize::from_gib(4), 8);
        add(format!("clusterB {ic:?}"), &c);
    }
    println!("{table}worst |err| = {worst:.3}");
}
