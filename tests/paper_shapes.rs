//! Integration: the paper's qualitative claims must hold at modest scale.
//!
//! These run the real figure configurations at reduced shuffle sizes so
//! the suite stays fast under `cargo test`; the full-size sweeps live in
//! the `fig2`..`fig8` binaries.

use hadoop_mr_microbench::mrbench::{run, BenchConfig, Interconnect, MicroBenchmark, Sweep};
use hadoop_mr_microbench::simcore::units::ByteSize;

const NETWORKS: [Interconnect; 3] = [
    Interconnect::GigE1,
    Interconnect::GigE10,
    Interconnect::IpoibQdr,
];

#[test]
fn network_ordering_holds_for_avg_and_rand() {
    for bench in [MicroBenchmark::Avg, MicroBenchmark::Rand] {
        let sweep = Sweep::cluster_a(bench, &[ByteSize::from_gib(8)], &NETWORKS).unwrap();
        let t1 = sweep
            .time(ByteSize::from_gib(8), Interconnect::GigE1)
            .unwrap();
        let t10 = sweep
            .time(ByteSize::from_gib(8), Interconnect::GigE10)
            .unwrap();
        let tib = sweep
            .time(ByteSize::from_gib(8), Interconnect::IpoibQdr)
            .unwrap();
        assert!(t1 > t10 && t10 >= tib, "{bench}: {t1} {t10} {tib}");
        // Paper: improvements in the mid-teens to mid-twenties percent.
        let gain = (t1 - tib) / t1 * 100.0;
        assert!(
            (10.0..35.0).contains(&gain),
            "{bench}: IPoIB gain {gain}% out of plausible band"
        );
    }
}

#[test]
fn skew_roughly_doubles_job_time() {
    let at = ByteSize::from_gib(8);
    let avg = Sweep::cluster_a(MicroBenchmark::Avg, &[at], &[Interconnect::IpoibQdr]).unwrap();
    let skew = Sweep::cluster_a(MicroBenchmark::Skew, &[at], &[Interconnect::IpoibQdr]).unwrap();
    let factor = skew.time(at, Interconnect::IpoibQdr).unwrap()
        / avg.time(at, Interconnect::IpoibQdr).unwrap();
    assert!(
        (1.6..3.2).contains(&factor),
        "skew factor {factor} vs paper ~2x"
    );
}

#[test]
fn kv_size_effect_matches_fig4() {
    let at = ByteSize::from_gib(4);
    let time_for = |kv: usize| {
        let mut c = BenchConfig::cluster_a_default(MicroBenchmark::Avg, Interconnect::IpoibQdr, at);
        c.key_size = kv;
        c.value_size = kv;
        run(&c).unwrap().job_time_secs()
    };
    let t100 = time_for(100);
    let t1k = time_for(1024);
    let t10k = time_for(10240);
    assert!(t100 > t1k && t1k > t10k, "{t100} {t1k} {t10k}");
    // The effect is meaningful but bounded (paper: 128s vs 107s at 16GB).
    assert!(
        t100 / t1k < 2.0,
        "100B should not be catastrophically slower"
    );
}

#[test]
fn rdma_beats_ipoib_on_cluster_b() {
    let at = ByteSize::from_gib(8);
    let ipoib = run(&BenchConfig::cluster_b_case_study(
        Interconnect::IpoibFdr,
        at,
        8,
    ))
    .unwrap();
    let rdma = run(&BenchConfig::cluster_b_case_study(
        Interconnect::RdmaFdr,
        at,
        8,
    ))
    .unwrap();
    let gain = (ipoib.job_time_secs() - rdma.job_time_secs()) / ipoib.job_time_secs() * 100.0;
    assert!(
        (10.0..40.0).contains(&gain),
        "RDMA gain {gain}% vs paper 28-30%"
    );
    assert_eq!(rdma.result.counters.protocol_cpu_seconds, 0.0);
}

#[test]
fn fig7_peak_throughput_ordering() {
    let at = ByteSize::from_gib(8);
    let mut peaks = Vec::new();
    for ic in NETWORKS {
        let report = run(&BenchConfig::cluster_a_default(MicroBenchmark::Avg, ic, at)).unwrap();
        peaks.push(report.peak_rx_mbps());
    }
    assert!(
        peaks[0] < peaks[1] && peaks[1] < peaks[2],
        "peak rx ordering {peaks:?}"
    );
    // 1GigE saturates near line rate during the shuffle.
    assert!((peaks[0] - 112.0).abs() < 10.0, "1GigE peak {}", peaks[0]);
}

#[test]
fn skew_reducer_zero_is_the_straggler() {
    let at = ByteSize::from_gib(4);
    let report = run(&BenchConfig::cluster_a_default(
        MicroBenchmark::Skew,
        Interconnect::IpoibQdr,
        at,
    ))
    .unwrap();
    let mut reducers: Vec<_> = report.result.tasks.iter().filter(|t| !t.is_map).collect();
    reducers.sort_by_key(|t| t.index);
    let slowest = reducers
        .iter()
        .max_by_key(|t| simcore::TotalF64(t.elapsed().as_secs_f64()))
        .expect("has reducers");
    assert_eq!(
        slowest.index, 0,
        "MR-SKEW sends 50% of the data to reducer 0"
    );
}
