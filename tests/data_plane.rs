//! Integration: the real data plane agrees with the simulated accounting.
//!
//! The suite's credibility rests on the serialized bytes the simulator
//! charges being exactly what the real serializers produce. These tests
//! cross the crate boundary: generate real records through `mrbench`'s
//! generator, frame them with `mapreduce`'s IFile codec, and compare
//! against the engine's counters.

use hadoop_mr_microbench::mapreduce::ifile;
use hadoop_mr_microbench::mrbench::{
    run, BenchConfig, DataType, Interconnect, KvGenerator, MicroBenchmark, ShuffleVolume,
};
use hadoop_mr_microbench::simcore::units::ByteSize;

#[test]
fn simulated_bytes_equal_real_serialized_bytes() {
    for dt in DataType::ALL {
        let mut config = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_mib(64),
        );
        config.slaves = 2;
        config.num_maps = 2;
        config.num_reduces = 4;
        config.data_type = dt;
        config.volume = ShuffleVolume::PairsPerMap(1000);

        let report = run(&config).unwrap();

        // Build the same records for real and measure them.
        let gen = KvGenerator::new(config.key_size, config.value_size, 4, dt);
        let per_map_stream = gen.build_ifile(1000);
        // The engine accounts per-partition segments: each has its own
        // EOF marker + checksum, so per map there are 4 segment overheads
        // instead of the single one in this stream.
        let seg_overhead = (ifile::EOF_MARKER_LEN + ifile::CHECKSUM_LEN) as u64;
        let body = per_map_stream.len() as u64 - seg_overhead;
        let expected_per_map = body + 4 * seg_overhead;

        assert_eq!(
            report.result.counters.map_output_materialized_bytes,
            expected_per_map * 2,
            "{dt}: simulator charge vs real serialization"
        );
    }
}

#[test]
fn generated_streams_parse_back_record_for_record() {
    let gen = KvGenerator::new(100, 900, 8, DataType::BytesWritable);
    let stream = gen.build_ifile(500);
    let mut reader = ifile::IFileReader::new(&stream).expect("valid checksum");
    let mut n = 0u64;
    while let Some((k, v)) = reader.next().expect("well-formed") {
        // Writable framing: BytesWritable adds a 4-byte length prefix.
        assert_eq!(k.len(), 104);
        assert_eq!(v.len(), 904);
        n += 1;
    }
    assert_eq!(n, 500);
}

#[test]
fn record_count_precision_across_volume_derivation() {
    // set_shuffle_size derives pairs_per_map; the realized volume must be
    // within one record per map of the request.
    let config = BenchConfig::cluster_a_default(
        MicroBenchmark::Avg,
        Interconnect::GigE1,
        ByteSize::from_gib(3),
    );
    let spec = config.job_spec();
    let realized = spec.total_shuffle_bytes().as_bytes() as i64;
    let target = ByteSize::from_gib(3).as_bytes() as i64;
    let slack = (spec.record_ifile_len() * u64::from(spec.conf.num_maps)) as i64;
    assert!(
        (realized - target).abs() <= slack,
        "realized {realized} vs target {target} (slack {slack})"
    );
}

#[test]
fn counters_are_internally_consistent() {
    let mut config = BenchConfig::cluster_a_default(
        MicroBenchmark::Rand,
        Interconnect::IpoibQdr,
        ByteSize::from_mib(256),
    );
    config.slaves = 2;
    config.num_maps = 4;
    config.num_reduces = 4;
    let c = run(&config).unwrap().result.counters;

    assert_eq!(
        c.map_input_records, 4,
        "one dummy record per NullInputFormat split"
    );
    assert_eq!(c.map_output_records, c.reduce_input_records);
    assert_eq!(c.map_output_records, c.spilled_records_map);
    assert_eq!(
        c.shuffled_fetches,
        4 * 4,
        "every (map, reduce) pair fetched"
    );
    assert!(c.map_output_materialized_bytes > c.map_output_bytes);
    assert!(c.cpu_core_seconds > 0.0);
    assert!(c.disk_write_bytes >= c.map_output_materialized_bytes);
}
