//! Integration: full micro-benchmark runs across the whole stack.

use hadoop_mr_microbench::mrbench::{
    run, BenchConfig, EngineKind, Interconnect, MicroBenchmark, ShuffleVolume,
};
use hadoop_mr_microbench::simcore::units::ByteSize;

fn small(bench: MicroBenchmark, ic: Interconnect) -> BenchConfig {
    let mut c = BenchConfig::cluster_a_default(bench, ic, ByteSize::from_mib(512));
    c.slaves = 2;
    c.num_maps = 4;
    c.num_reduces = 4;
    c
}

#[test]
fn every_benchmark_on_every_network_completes() {
    for bench in MicroBenchmark::ALL {
        for ic in Interconnect::ALL {
            let report = run(&small(bench, ic)).unwrap_or_else(|e| {
                panic!("{bench} on {ic} failed: {e}");
            });
            assert_eq!(report.result.counters.maps_completed, 4, "{bench} {ic}");
            assert_eq!(report.result.counters.reduces_completed, 4, "{bench} {ic}");
            assert!(report.job_time_secs() > 1.0, "{bench} {ic}");
            assert!(report.job_time_secs() < 1000.0, "{bench} {ic}");
        }
    }
}

#[test]
fn both_engines_complete_with_identical_record_counts() {
    let mut mrv1 = small(MicroBenchmark::Rand, Interconnect::GigE10);
    mrv1.volume = ShuffleVolume::PairsPerMap(5_000);
    let mut yarn = mrv1.clone();
    yarn.engine = EngineKind::Yarn;

    let a = run(&mrv1).unwrap();
    let b = run(&yarn).unwrap();
    assert_eq!(
        a.result.counters.map_output_records,
        b.result.counters.map_output_records
    );
    assert_eq!(
        a.result.counters.reduce_input_records,
        b.result.counters.reduce_input_records
    );
}

#[test]
fn shuffle_bytes_match_materialized_bytes() {
    // Every materialized byte is fetched exactly once (remote or local).
    let report = run(&small(MicroBenchmark::Avg, Interconnect::GigE1)).unwrap();
    let c = &report.result.counters;
    assert_eq!(
        c.total_shuffle_bytes(),
        c.map_output_materialized_bytes,
        "shuffle moved exactly the materialized map output"
    );
}

#[test]
fn determinism_across_identical_runs() {
    for bench in MicroBenchmark::ALL {
        let a = run(&small(bench, Interconnect::IpoibQdr)).unwrap();
        let b = run(&small(bench, Interconnect::IpoibQdr)).unwrap();
        assert_eq!(a.result.job_time, b.result.job_time, "{bench}");
        assert_eq!(a.result.counters, b.result.counters, "{bench}");
    }
}

#[test]
fn seed_changes_rand_distribution_but_not_totals() {
    let mut c1 = small(MicroBenchmark::Rand, Interconnect::GigE1);
    c1.volume = ShuffleVolume::PairsPerMap(50_000);
    let mut c2 = c1.clone();
    c2.seed = 999;
    let a = run(&c1).unwrap();
    let b = run(&c2).unwrap();
    assert_eq!(
        a.result.counters.map_output_records,
        b.result.counters.map_output_records
    );
    // Different seeds shuffle the same volume but land differently in
    // time (different reducer loads).
    assert_ne!(a.result.job_time, b.result.job_time);
}

#[test]
fn resource_monitors_cover_the_whole_job() {
    let report = run(&small(MicroBenchmark::Avg, Interconnect::GigE10)).unwrap();
    // Sampling stops when the last reduce finishes; job_time additionally
    // includes the job cleanup overhead (~2.5s).
    let active_secs = report.job_time_secs() - 6.0;
    for node in 0..2 {
        let samples = report.cpu_series(node).expect("node in range").len() as f64;
        assert!(
            samples >= active_secs,
            "node {node}: {samples} samples for {active_secs:.1}s of task activity"
        );
    }
}

#[test]
fn yarn_and_larger_cluster_scale_down_job_time() {
    let base = BenchConfig::cluster_a_default(
        MicroBenchmark::Avg,
        Interconnect::IpoibQdr,
        ByteSize::from_gib(2),
    );
    let bigger = BenchConfig::yarn_default(
        MicroBenchmark::Avg,
        Interconnect::IpoibQdr,
        ByteSize::from_gib(2),
    );
    let t_small = run(&base).unwrap().job_time_secs();
    let t_big = run(&bigger).unwrap().job_time_secs();
    assert!(
        t_big < t_small,
        "8 slaves ({t_big}) should beat 4 slaves ({t_small})"
    );
}

#[test]
fn text_and_bytes_writable_both_work_end_to_end() {
    use hadoop_mr_microbench::mrbench::DataType;
    for dt in DataType::ALL {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE1);
        c.data_type = dt;
        let report = run(&c).unwrap();
        assert!(report.job_time_secs() > 0.0, "{dt}");
    }
}
