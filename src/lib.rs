//! # hadoop-mr-microbench
//!
//! Facade crate for the whole workspace: re-exports the micro-benchmark
//! suite ([`mrbench`]) together with the simulator substrates it runs on.
//! See `README.md` for a tour and `DESIGN.md` for the architecture.

pub use cluster;
pub use mapreduce;
pub use mrbench;
pub use simcore;
pub use simnet;
