//! IFile: Hadoop's intermediate (map-output) file format.
//!
//! Spill files and shuffle payloads are streams of
//! `[vint keyLen][vint valueLen][key bytes][value bytes]` records,
//! terminated by an EOF marker of two `-1` vints, and wrapped by
//! `IFileOutputStream` which appends a CRC-32 of everything written.
//! The shuffle moves IFile bytes verbatim, so the exact framing overhead
//! — which this module computes — is what the simulator charges to disks
//! and NICs.

use crate::io::vint;

/// The serialized EOF marker: `writeVInt(-1)` twice.
pub const EOF_MARKER_LEN: usize = 2;
/// Trailing CRC-32 added by `IFileOutputStream`.
pub const CHECKSUM_LEN: usize = 4;

/// Errors from reading an IFile stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IFileError {
    /// Stream ended prematurely.
    Truncated,
    /// Negative length that is not the EOF marker.
    BadLength,
    /// CRC mismatch.
    BadChecksum,
    /// Missing or malformed EOF marker.
    BadEof,
}

impl std::fmt::Display for IFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IFileError::Truncated => "truncated IFile",
            IFileError::BadLength => "invalid record length",
            IFileError::BadChecksum => "checksum mismatch",
            IFileError::BadEof => "missing EOF marker",
        };
        f.write_str(s)
    }
}

impl std::error::Error for IFileError {}

/// CRC-32 (IEEE 802.3, the polynomial `java.util.zip.CRC32` uses).
pub fn crc32(data: &[u8]) -> u32 {
    // Nibble-driven table: tiny, fast enough for test-sized payloads.
    const TABLE: [u32; 16] = [
        0x00000000, 0x1DB71064, 0x3B6E20C8, 0x26D930AC, 0x76DC4190, 0x6B6B51F4, 0x4DB26158,
        0x5005713C, 0xEDB88320, 0xF00F9344, 0xD6D6A3E8, 0xCB61B38C, 0x9B64C2B0, 0x86D3D2D4,
        0xA00AE278, 0xBDBDF21C,
    ];
    let mut crc: u32 = !0;
    for &b in data {
        crc = (crc >> 4) ^ TABLE[((crc ^ u32::from(b)) & 0xF) as usize];
        crc = (crc >> 4) ^ TABLE[((crc ^ (u32::from(b) >> 4)) & 0xF) as usize];
    }
    !crc
}

/// Writes records in IFile format into an in-memory buffer.
#[derive(Debug)]
pub struct IFileWriter {
    buf: Vec<u8>,
    records: u64,
    closed: bool,
}

impl Default for IFileWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl IFileWriter {
    /// An empty stream.
    pub fn new() -> Self {
        IFileWriter {
            buf: Vec::new(),
            records: 0,
            closed: false,
        }
    }

    /// Append one serialized key/value pair.
    pub fn append(&mut self, key: &[u8], value: &[u8]) {
        assert!(!self.closed, "append after close");
        vint::write_vint(&mut self.buf, key.len() as i32);
        vint::write_vint(&mut self.buf, value.len() as i32);
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(value);
        self.records += 1;
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes written so far (before EOF marker and checksum).
    pub fn position(&self) -> usize {
        self.buf.len()
    }

    /// Write the EOF marker and checksum, returning the finished stream.
    pub fn close(mut self) -> Vec<u8> {
        vint::write_vint(&mut self.buf, -1);
        vint::write_vint(&mut self.buf, -1);
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_be_bytes());
        self.closed = true;
        self.buf
    }
}

/// A borrowed `(key, value)` record as stored in the stream.
pub type RawRecord<'a> = (&'a [u8], &'a [u8]);

/// Reads records from an IFile stream produced by [`IFileWriter`].
#[derive(Debug)]
pub struct IFileReader<'a> {
    buf: &'a [u8],
    pos: usize,
    body_end: usize,
}

impl<'a> IFileReader<'a> {
    /// Validate the checksum and position at the first record.
    pub fn new(stream: &'a [u8]) -> Result<Self, IFileError> {
        if stream.len() < CHECKSUM_LEN + EOF_MARKER_LEN {
            return Err(IFileError::Truncated);
        }
        let body_end = stream.len() - CHECKSUM_LEN;
        let expect = u32::from_be_bytes(stream[body_end..].try_into().unwrap());
        if crc32(&stream[..body_end]) != expect {
            return Err(IFileError::BadChecksum);
        }
        Ok(IFileReader {
            buf: stream,
            pos: 0,
            body_end,
        })
    }

    /// The next `(key, value)` pair, or `None` at the EOF marker.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<RawRecord<'a>>, IFileError> {
        if self.pos >= self.body_end {
            return Err(IFileError::BadEof);
        }
        let klen = vint::read_vint(&self.buf[..self.body_end], &mut self.pos)
            .map_err(|_| IFileError::Truncated)?;
        if klen == -1 {
            let vlen = vint::read_vint(&self.buf[..self.body_end], &mut self.pos)
                .map_err(|_| IFileError::Truncated)?;
            if vlen != -1 {
                return Err(IFileError::BadEof);
            }
            return Ok(None);
        }
        if klen < 0 {
            return Err(IFileError::BadLength);
        }
        let vlen = vint::read_vint(&self.buf[..self.body_end], &mut self.pos)
            .map_err(|_| IFileError::Truncated)?;
        if vlen < 0 {
            return Err(IFileError::BadLength);
        }
        let kend = self.pos + klen as usize;
        let vend = kend + vlen as usize;
        if vend > self.body_end {
            return Err(IFileError::Truncated);
        }
        let key = &self.buf[self.pos..kend];
        let value = &self.buf[kend..vend];
        self.pos = vend;
        Ok(Some((key, value)))
    }
}

/// Exact IFile size of `records` fixed-size records plus stream overhead.
///
/// This is the formula the simulator uses to charge byte-exact I/O and
/// network volume for the synthetic workloads (whose key/value sizes are
/// constant within a run).
pub fn stream_len(records: u64, key_len: usize, value_len: usize) -> u64 {
    records * record_len(key_len, value_len) + (EOF_MARKER_LEN + CHECKSUM_LEN) as u64
}

/// Exact IFile size of a single record.
pub fn record_len(key_len: usize, value_len: usize) -> u64 {
    (vint::vint_size(key_len as i32) + vint::vint_size(value_len as i32) + key_len + value_len)
        as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
    }

    #[test]
    fn write_read_round_trip() {
        let mut w = IFileWriter::new();
        let records: Vec<(Vec<u8>, Vec<u8>)> = (0..50)
            .map(|i| (vec![i as u8; 10], vec![(i * 2) as u8; 100]))
            .collect();
        for (k, v) in &records {
            w.append(k, v);
        }
        assert_eq!(w.records(), 50);
        let stream = w.close();
        let mut r = IFileReader::new(&stream).unwrap();
        for (k, v) in &records {
            let (rk, rv) = r.next().unwrap().expect("record");
            assert_eq!(rk, &k[..]);
            assert_eq!(rv, &v[..]);
        }
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn empty_stream_is_just_markers() {
        let stream = IFileWriter::new().close();
        assert_eq!(stream.len(), EOF_MARKER_LEN + CHECKSUM_LEN);
        let mut r = IFileReader::new(&stream).unwrap();
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn stream_len_formula_matches_real_stream() {
        for (n, kl, vl) in [(0u64, 10, 100), (7, 1, 1), (20, 200, 1024), (3, 0, 0)] {
            let mut w = IFileWriter::new();
            for _ in 0..n {
                w.append(&vec![0xAB; kl], &vec![0xCD; vl]);
            }
            let stream = w.close();
            assert_eq!(
                stream.len() as u64,
                stream_len(n, kl, vl),
                "n={n} kl={kl} vl={vl}"
            );
        }
    }

    #[test]
    fn record_len_includes_vint_headers() {
        // 1 KiB key + 1 KiB value: two 3-byte vints (1024 > 255).
        assert_eq!(record_len(1024, 1024), 3 + 3 + 2048);
        // Tiny records: 1-byte vints.
        assert_eq!(record_len(10, 100), 1 + 1 + 110);
    }

    #[test]
    fn corruption_detected() {
        let mut w = IFileWriter::new();
        w.append(b"key", b"value");
        let mut stream = w.close();
        stream[2] ^= 0xFF;
        assert!(matches!(
            IFileReader::new(&stream),
            Err(IFileError::BadChecksum)
        ));
    }

    #[test]
    fn truncated_stream_detected() {
        let mut w = IFileWriter::new();
        w.append(b"key", b"value");
        let stream = w.close();
        assert!(IFileReader::new(&stream[..3]).is_err());
    }
}
