//! The discrete-event MapReduce engine driver.
//!
//! [`Engine`] binds the cluster (CPU + disk), the network, the scheduler,
//! and the task state machines into one event loop. Each iteration takes
//! the earliest pending completion across all sub-simulators, advances
//! every clock to it, and routes the completion to the owning task, which
//! responds by submitting its next CPU burst, disk I/O, or network flow.
//! Heartbeats and 1 Hz resource-monitor ticks run as control events on the
//! same timeline.
//!
//! Everything is deterministic: same [`JobSpec`] + seed ⇒ identical result
//! to the nanosecond.

use cluster::{Cluster, NodeSpec};
use simcore::event::EventQueue;
use simcore::rng::SeedFactory;
use simcore::time::{SimDuration, SimTime};
use simnet::{Interconnect, Network, NetworkMonitor, ProtocolModel, Topology};

use crate::conf::EngineKind;
use crate::costs::CostModel;
use crate::counters::Counters;
use crate::job::{JobResult, JobSpec, PartitionerFactory, TaskTiming};
use crate::schedule::Scheduler;
use crate::shuffle::rdma::ShuffleModel;
use crate::shuffle::ShuffleRegistry;
use crate::task::map::MapTask;
use crate::task::reduce::ReduceTask;
use crate::task::{untag, Env, Note};

enum Task {
    Map(MapTask),
    Reduce(ReduceTask),
    /// An attempt doomed by failure injection: it occupies its slot for
    /// the startup time, then dies; the engine re-queues the task.
    Doomed { is_map: bool, index: u32, node: usize },
}

#[derive(Clone, Copy, Debug)]
enum Control {
    Heartbeat,
    MonitorTick,
}

/// Drives one job to completion over a simulated cluster and network.
pub struct Engine<'f> {
    spec: JobSpec,
    factory: &'f dyn PartitionerFactory,
    costs: CostModel,
    protocol: ProtocolModel,
    shuffle_model: ShuffleModel,
    cluster: Cluster,
    net: Network,
    net_monitor: NetworkMonitor,
    registry: ShuffleRegistry,
    scheduler: Scheduler,
    counters: Counters,
    tasks: Vec<Option<Task>>,
    control: EventQueue<Control>,
    seeds: SeedFactory,
    reduces_done: u32,
    last_reduce_finish: SimTime,
    /// Attempt counts per task slot (for failure injection).
    attempts: Vec<u32>,
}

impl<'f> Engine<'f> {
    /// Build an engine for `spec` on `n_slaves` nodes of `node_spec`
    /// connected by `interconnect`.
    pub fn new(
        spec: JobSpec,
        factory: &'f dyn PartitionerFactory,
        node_spec: NodeSpec,
        n_slaves: usize,
        interconnect: Interconnect,
    ) -> Self {
        spec.validate().expect("invalid job spec");
        let mut cluster = Cluster::new(node_spec.clone(), n_slaves);
        // Task JVM heaps are wired memory: the OS page cache only gets
        // what is left. MRv1 reserves a heap per slot; YARN reserves the
        // container pool.
        let slots = match spec.conf.engine {
            EngineKind::MRv1 => {
                u64::from(spec.conf.map_slots_per_node + spec.conf.reduce_slots_per_node)
                    * simcore::units::ByteSize::from_gib(1).as_bytes()
            }
            EngineKind::Yarn => {
                let pool = (node_spec.memory.as_bytes()
                    / spec.conf.container_memory.as_bytes().max(1))
                    .min(u64::from(node_spec.cores));
                pool * spec.conf.container_memory.as_bytes()
            }
        };
        let cache_mem = simcore::units::ByteSize::from_bytes(
            node_spec
                .memory
                .as_bytes()
                .saturating_sub(slots)
                .max(simcore::units::ByteSize::from_gib(2).as_bytes()),
        );
        cluster.disk.enable_page_cache(cache_mem);
        let topology = Topology::single_switch(n_slaves, interconnect);
        let net = Network::new(topology);
        let net_monitor = NetworkMonitor::new(n_slaves, SimDuration::from_secs(1));
        let registry = ShuffleRegistry::new(spec.conf.num_maps, n_slaves, node_spec.memory);
        let scheduler = Scheduler::new(&spec.conf, n_slaves, &node_spec);
        let n_tasks = (spec.conf.num_maps + spec.conf.num_reduces) as usize;
        let shuffle_model = ShuffleModel::for_kind(spec.conf.shuffle_engine);
        let seeds = SeedFactory::new(spec.conf.seed);
        Engine {
            protocol: interconnect.model(),
            costs: CostModel::calibrated(),
            shuffle_model,
            factory,
            cluster,
            net,
            net_monitor,
            registry,
            scheduler,
            counters: Counters::default(),
            tasks: (0..n_tasks).map(|_| None).collect(),
            control: EventQueue::new(),
            seeds,
            reduces_done: 0,
            last_reduce_finish: SimTime::ZERO,
            attempts: vec![0; n_tasks],
            spec,
        }
    }

    /// Override the cost model (ablations, calibration experiments).
    pub fn set_cost_model(&mut self, costs: CostModel) {
        self.costs = costs;
    }

    /// Override the shuffle-engine behaviour model (ablations).
    pub fn set_shuffle_model(&mut self, model: ShuffleModel) {
        self.shuffle_model = model;
    }

    /// Turn off the OS page-cache model so all spill I/O hits the
    /// spindles synchronously (ablations).
    pub fn disable_page_cache(&mut self) {
        self.cluster.disk.disable_page_cache();
    }

    /// Run the job to completion.
    pub fn run(mut self) -> JobResult {
        // Job setup (JobTracker submission, setup task, split computation).
        let setup = SimDuration::from_secs_f64(self.costs.job_overhead_s);
        self.control.schedule(SimTime::ZERO + setup, Control::Heartbeat);
        self.control
            .schedule(SimTime::ZERO + SimDuration::from_secs(1), Control::MonitorTick);

        let num_reduces = self.spec.conf.num_reduces;
        let mut guard: u64 = 0;
        while self.reduces_done < num_reduces {
            guard += 1;
            assert!(
                guard < 500_000_000,
                "engine event-count guard tripped: likely stall"
            );
            let now = self
                .next_time()
                .expect("no pending events but job incomplete");
            // Advance every sub-simulator to the common instant.
            let cpu_done = self.cluster.cpu.advance_to(now);
            let disk_done = self.cluster.disk.advance_to(now);
            let net_done = self.net.advance_to(now);

            // Control events due now.
            while self.control.peek_time() == Some(now) {
                let (_, ev) = self.control.pop().expect("peeked event");
                match ev {
                    Control::Heartbeat => {
                        self.do_schedule(now);
                        let hb = self.scheduler.heartbeat();
                        self.control.schedule(now + hb, Control::Heartbeat);
                    }
                    Control::MonitorTick => {
                        self.cluster.cpu_monitor.maybe_sample(now, &mut self.cluster.cpu);
                        self.net_monitor.maybe_sample(now, &mut self.net);
                        self.control
                            .schedule(now + SimDuration::from_secs(1), Control::MonitorTick);
                    }
                }
            }

            // Route completions to their tasks.
            for c in cpu_done {
                self.dispatch(c.tag, now);
            }
            for c in disk_done {
                self.dispatch(c.tag, now);
            }
            for c in net_done {
                self.dispatch(c.tag, now);
            }
        }

        self.finish()
    }

    fn next_time(&mut self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for t in [
            self.cluster.cpu.next_event_time(),
            self.cluster.disk.next_event_time(),
            self.net.next_event_time(),
            self.control.peek_time(),
        ]
        .into_iter()
        .flatten()
        {
            best = Some(best.map_or(t, |b: SimTime| b.min(t)));
        }
        best
    }

    fn dispatch(&mut self, tag: u64, now: SimTime) {
        let Some((task_id, stage, seq)) = untag(tag) else {
            return; // sink work (sender-side protocol processing)
        };
        // A doomed attempt dies the moment its startup completes: count
        // the failure, free the slot, and put the task back in the queue.
        if matches!(
            self.tasks[task_id as usize],
            Some(Task::Doomed { .. })
        ) {
            let Some(Task::Doomed { is_map, index, node }) =
                self.tasks[task_id as usize].take()
            else {
                unreachable!("matched above");
            };
            self.counters.failed_task_attempts += 1;
            self.scheduler.on_task_done(is_map, node);
            self.scheduler.requeue(is_map, index);
            self.do_schedule(now);
            return;
        }
        let mut notes = Vec::new();
        {
            let Engine {
                tasks,
                cluster,
                net,
                counters,
                registry,
                spec,
                costs,
                protocol,
                shuffle_model,
                ..
            } = &mut *self;
            let mut env = Env {
                now,
                cpu: &mut cluster.cpu,
                disk: &mut cluster.disk,
                net,
                counters,
                conf: &spec.conf,
                spec,
                costs,
                protocol: *protocol,
                shuffle_model: *shuffle_model,
                registry,
                notes: &mut notes,
            };
            match tasks[task_id as usize]
                .as_mut()
                .unwrap_or_else(|| panic!("event for unlaunched task {task_id}"))
            {
                Task::Map(m) => m.on_event(stage, seq, &mut env),
                Task::Reduce(r) => r.on_event(stage, seq, &mut env),
                Task::Doomed { .. } => unreachable!("handled above"),
            }
        }
        self.handle_notes(notes, now);
    }

    fn handle_notes(&mut self, mut notes: Vec<Note>, now: SimTime) {
        while !notes.is_empty() {
            let batch: Vec<Note> = std::mem::take(&mut notes);
            for note in batch {
                match note {
                    Note::MapOutputReady(map) => {
                        self.notify_reducers(map, now, &mut notes);
                    }
                    Note::TaskFinished { is_map, node } => {
                        self.scheduler.on_task_done(is_map, node);
                        if !is_map {
                            self.reduces_done += 1;
                            self.last_reduce_finish = now;
                        }
                        // Out-of-band heartbeat: reuse the slot at once.
                        self.do_schedule(now);
                    }
                }
            }
        }
    }

    fn notify_reducers(&mut self, map: u32, now: SimTime, notes: &mut Vec<Note>) {
        let num_maps = self.spec.conf.num_maps as usize;
        let Engine {
            tasks,
            cluster,
            net,
            counters,
            registry,
            spec,
            costs,
            protocol,
            shuffle_model,
            ..
        } = &mut *self;
        let mut env = Env {
            now,
            cpu: &mut cluster.cpu,
            disk: &mut cluster.disk,
            net,
            counters,
            conf: &spec.conf,
            spec,
            costs,
            protocol: *protocol,
            shuffle_model: *shuffle_model,
            registry,
            notes,
        };
        for slot in tasks.iter_mut().skip(num_maps) {
            if let Some(Task::Reduce(r)) = slot.as_mut() {
                r.on_map_output(map, &mut env);
            }
        }
    }

    fn do_schedule(&mut self, now: SimTime) {
        let launches = self.scheduler.tick();
        if launches.is_empty() {
            return;
        }
        let mut notes = Vec::new();
        for l in launches {
            let num_maps = self.spec.conf.num_maps;
            let task_id = if l.is_map { l.index } else { num_maps + l.index };
            let attempt = self.attempts[task_id as usize];
            self.attempts[task_id as usize] += 1;
            let fail_list = if l.is_map {
                &self.spec.conf.fail_first_attempt_maps
            } else {
                &self.spec.conf.fail_first_attempt_reduces
            };
            if attempt == 0 && fail_list.contains(&l.index) {
                // The attempt burns its slot for the startup time, then
                // dies (e.g. a crashing task JVM).
                self.tasks[task_id as usize] = Some(Task::Doomed {
                    is_map: l.is_map,
                    index: l.index,
                    node: l.node,
                });
                self.cluster.cpu.submit(
                    now,
                    l.node,
                    self.costs.jvm_startup_s,
                    crate::task::tag(task_id, crate::task::Stage::Jvm, 0),
                );
                continue;
            }
            let jitter = self.task_jitter(l.is_map, l.index);
            if l.is_map {
                let counts = self.partition_counts(l.index);
                let Engine {
                    tasks,
                    cluster,
                    net,
                    counters,
                    registry,
                    spec,
                    costs,
                    protocol,
                    shuffle_model,
                    ..
                } = &mut *self;
                let mut env = Env {
                    now,
                    cpu: &mut cluster.cpu,
                    disk: &mut cluster.disk,
                    net,
                    counters,
                    conf: &spec.conf,
                    spec,
                    costs,
                    protocol: *protocol,
                    shuffle_model: *shuffle_model,
                    registry,
                    notes: &mut notes,
                };
                let task = MapTask::launch(l.index, l.node, counts, jitter, &mut env);
                tasks[l.index as usize] = Some(Task::Map(task));
            } else {
                let task_id = num_maps + l.index;
                let output_bytes = (self.spec_output_bytes_per_reduce() as f64) as u64;
                let Engine {
                    tasks,
                    cluster,
                    net,
                    counters,
                    registry,
                    spec,
                    costs,
                    protocol,
                    shuffle_model,
                    ..
                } = &mut *self;
                let mut env = Env {
                    now,
                    cpu: &mut cluster.cpu,
                    disk: &mut cluster.disk,
                    net,
                    counters,
                    conf: &spec.conf,
                    spec,
                    costs,
                    protocol: *protocol,
                    shuffle_model: *shuffle_model,
                    registry,
                    notes: &mut notes,
                };
                let task = ReduceTask::launch(
                    l.index,
                    task_id,
                    l.node,
                    spec.conf.num_maps,
                    output_bytes,
                    jitter,
                    &mut env,
                );
                tasks[task_id as usize] = Some(Task::Reduce(task));
            }
        }
        self.handle_notes(notes, now);
    }

    /// Average reduce-output bytes per reducer for non-null output formats.
    fn spec_output_bytes_per_reduce(&self) -> u64 {
        let total_payload = (self.spec.key_size + self.spec.value_size) as u64
            * self.spec.pairs_per_map
            * u64::from(self.spec.conf.num_maps);
        let per_reduce = total_payload / u64::from(self.spec.conf.num_reduces);
        (per_reduce as f64 * self.spec.output_write_amplification) as u64
    }

    /// Deterministic per-task runtime variability: real task durations
    /// scatter by a few percent (JIT warm-up, GC, OS scheduling). Drawn
    /// uniformly from [0.97, 1.03] off the job seed.
    fn task_jitter(&self, is_map: bool, index: u32) -> f64 {
        let label = if is_map {
            format!("jitter-map-{index}")
        } else {
            format!("jitter-reduce-{index}")
        };
        let mut rng = self.seeds.stream(&label);
        0.97 + 0.06 * rng.next_f64()
    }

    /// Per-reducer record counts for map `index`, via the job's
    /// partitioner — the exact code path the real suite runs.
    fn partition_counts(&self, index: u32) -> Vec<u64> {
        let seed = self.seeds.seed_for(&format!("map-{index}"));
        let mut partitioner = self.factory.create(index, seed);
        let n_reducers = self.spec.conf.num_reduces;
        let key_size = self.spec.key_size;
        let counts = partitioner.assign_counts(
            self.spec.pairs_per_map,
            n_reducers,
            &mut |ordinal, buf| synthetic_key(ordinal, n_reducers, key_size, buf),
        );
        debug_assert_eq!(counts.iter().sum::<u64>(), self.spec.pairs_per_map);
        counts
    }

    fn finish(self) -> JobResult {
        let overhead = SimDuration::from_secs_f64(self.costs.job_overhead_s);
        let end = self.last_reduce_finish + overhead;

        let mut tasks = Vec::new();
        let mut map_phase_end = SimTime::ZERO;
        let mut shuffle_end = SimTime::ZERO;
        for t in self.tasks.iter().flatten() {
            match t {
                Task::Doomed { .. } => unreachable!("doomed attempts never survive to finish"),
                Task::Map(m) => {
                    debug_assert!(m.is_done());
                    let finish = m.finish.expect("map finished");
                    map_phase_end = map_phase_end.max(finish);
                    tasks.push(TaskTiming {
                        is_map: true,
                        index: m.index,
                        node: m.node,
                        start: m.start,
                        finish,
                    });
                }
                Task::Reduce(r) => {
                    debug_assert!(r.is_done());
                    let finish = r.finish.expect("reduce finished");
                    if let Some(se) = r.shuffle_end {
                        shuffle_end = shuffle_end.max(se);
                    }
                    tasks.push(TaskTiming {
                        is_map: false,
                        index: r.index,
                        node: r.node,
                        start: r.start,
                        finish,
                    });
                }
            }
        }

        let n = self.cluster.n_slaves();
        let cpu_series = (0..n)
            .map(|i| self.cluster.cpu_monitor.series(i).clone())
            .collect();
        let net_rx_series = (0..n)
            .map(|i| self.net_monitor.rx_series(simnet::NodeId(i)).clone())
            .collect();

        JobResult {
            job_time: end.since(SimTime::ZERO),
            map_phase_end,
            shuffle_end,
            counters: self.counters,
            tasks,
            cpu_series,
            net_rx_series,
        }
    }
}

/// Serialized key payload of the `ordinal`-th record. The suite restricts
/// the number of unique keys to the number of reducers (Sect. 4.2), so the
/// key content is a function of `ordinal % n_reducers`.
pub fn synthetic_key(ordinal: u64, n_reducers: u32, key_size: usize, buf: &mut Vec<u8>) {
    let uid = ordinal % u64::from(n_reducers.max(1));
    let bytes = uid.to_be_bytes();
    let take = key_size.min(8);
    buf.extend_from_slice(&bytes[8 - take..]);
    buf.resize(key_size, uid as u8);
}

/// Convenience one-call runner.
pub fn run_job(
    spec: JobSpec,
    factory: &dyn PartitionerFactory,
    node_spec: NodeSpec,
    n_slaves: usize,
    interconnect: Interconnect,
) -> JobResult {
    Engine::new(spec, factory, node_spec, n_slaves, interconnect).run()
}

/// The engine kind actually used by a conf (re-exported for reports).
pub fn engine_label(kind: EngineKind) -> &'static str {
    kind.label()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_key_is_stable_and_sized() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        synthetic_key(5, 4, 100, &mut a);
        synthetic_key(5, 4, 100, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        // ordinal 5 of 4 reducers -> uid 1.
        assert_eq!(a[7], 1);

        let mut tiny = Vec::new();
        synthetic_key(3, 4, 2, &mut tiny);
        assert_eq!(tiny.len(), 2);
    }

    #[test]
    fn keys_repeat_every_n_reducers() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        synthetic_key(2, 8, 32, &mut a);
        synthetic_key(10, 8, 32, &mut b);
        assert_eq!(a, b, "unique keys are restricted to the reducer count");
    }
}
