//! The discrete-event MapReduce engine driver.
//!
//! [`Engine`] binds the cluster (CPU + disk), the network, the scheduler,
//! and the task state machines into one event loop. Each iteration takes
//! the earliest pending completion across all sub-simulators, advances
//! every clock to it, and routes the completion to the owning task, which
//! responds by submitting its next CPU burst, disk I/O, or network flow.
//! Heartbeats, 1 Hz resource-monitor ticks, and planned node crashes run
//! as control events on the same timeline.
//!
//! Tasks execute as **attempts**: every launch (first try, retry after a
//! failure, or speculative backup) occupies a fresh attempt slot, and
//! correlation tags key on the slot so a killed attempt's in-flight
//! completions are recognized as stale and dropped. The fault-tolerance
//! rules mirror Hadoop's JobTracker: a task that fails `max_attempts`
//! times kills the job; a crashed node's running attempts die and its
//! committed map outputs are re-executed elsewhere; nodes accumulating
//! failures are blacklisted; and (optionally) straggling tasks get a
//! speculative backup whose first finisher wins.
//!
//! Everything is deterministic: same [`JobSpec`] + seed (and the same
//! [`crate::faults::FaultPlan`]) ⇒ identical result to the nanosecond.

use cluster::{Cluster, NodeSpec};
use simcore::event::{BudgetBreach, EventBudget, EventQueue};
use simcore::rng::SeedFactory;
use simcore::time::{SimDuration, SimTime};
use simcore::trace::{Mark, Trace};
use simnet::{Interconnect, Network, NetworkMonitor, ProtocolModel, Topology};

use crate::conf::EngineKind;
use crate::costs::CostModel;
use crate::counters::Counters;
use crate::faults::{FailureDiag, FaultInjector, JobOutcome};
use crate::job::{BudgetDiag, JobResult, JobSpec, PartitionerFactory, TaskTiming};
use crate::schedule::Scheduler;
use crate::shuffle::rdma::ShuffleModel;
use crate::shuffle::ShuffleRegistry;
use crate::task::map::MapTask;
use crate::task::reduce::ReduceTask;
use crate::task::{tag, untag, Env, Note, Stage};

enum Task {
    Map(MapTask),
    Reduce(ReduceTask),
    /// An attempt doomed by failure injection: it occupies its slot while
    /// burning startup CPU, then dies; the engine re-queues the task.
    Doomed,
}

impl Task {
    fn is_done(&self) -> bool {
        match self {
            Task::Map(m) => m.is_done(),
            Task::Reduce(r) => r.is_done(),
            Task::Doomed => false,
        }
    }

    /// Close the attempt's open phase span with the `aborted` marker.
    /// No-op for completed attempts and doomed stubs (which never open
    /// a span).
    fn abort_span(&mut self, now: SimTime, trace: &mut Trace) {
        match self {
            Task::Map(m) => m.abort_span(now, trace),
            Task::Reduce(r) => r.abort_span(now, trace),
            Task::Doomed => {}
        }
    }
}

/// Static facts about one attempt slot, kept even after the attempt dies
/// so stale completions can still be attributed.
#[derive(Clone, Copy, Debug)]
struct SlotInfo {
    is_map: bool,
    index: u32,
    node: usize,
    backup: bool,
}

#[derive(Clone, Copy, Debug)]
enum Control {
    Heartbeat,
    MonitorTick,
    NodeCrash(usize),
}

/// Splits `self` into `(tasks, env)` so a task state machine can borrow
/// the sub-simulators while the engine still owns the task table.
macro_rules! split_env {
    ($self:ident, $now:expr, $notes:expr) => {{
        let Engine {
            tasks,
            cluster,
            net,
            counters,
            registry,
            spec,
            costs,
            protocol,
            shuffle_model,
            injector,
            timers,
            trace,
            ..
        } = &mut *$self;
        (
            tasks,
            Env {
                now: $now,
                cpu: &mut cluster.cpu,
                disk: &mut cluster.disk,
                net,
                counters,
                conf: &spec.conf,
                spec,
                costs,
                protocol: *protocol,
                shuffle_model: *shuffle_model,
                registry,
                faults: injector,
                timers,
                notes: $notes,
                trace,
            },
        )
    }};
}

/// Drives one job to completion over a simulated cluster and network.
pub struct Engine<'f> {
    // (manual Debug below — `factory` is a dyn reference)
    spec: JobSpec,
    factory: &'f dyn PartitionerFactory,
    costs: CostModel,
    protocol: ProtocolModel,
    shuffle_model: ShuffleModel,
    cluster: Cluster,
    net: Network,
    net_monitor: NetworkMonitor,
    /// Sampling period for both throughput monitors and the MonitorTick
    /// control event (from `JobConf::monitor_interval_s`).
    monitor_interval: SimDuration,
    registry: ShuffleRegistry,
    scheduler: Scheduler,
    counters: Counters,
    /// Attempt slots, in launch order. `None` = the attempt died or was
    /// killed; its in-flight completions are dropped as stale.
    tasks: Vec<Option<Task>>,
    slot_info: Vec<SlotInfo>,
    control: EventQueue<Control>,
    /// Pure timers (fetch-retry backoff); payloads are correlation tags.
    timers: EventQueue<u64>,
    /// Reusable buffer for network completions, taken out of `self` for
    /// each event-loop step so dispatch can borrow `self` mutably.
    net_done: Vec<simnet::FlowCompletion>,
    seeds: SeedFactory,
    injector: FaultInjector,
    reduces_done: u32,
    last_reduce_finish: SimTime,
    /// Attempts launched per task id (map index, or `num_maps + reduce`).
    attempts: Vec<u32>,
    /// Failed attempts per task id, against `max_attempts`.
    failures: Vec<u32>,
    /// Whether each task has committed (and its result is still valid).
    task_done: Vec<bool>,
    /// Whether each task already received a speculative backup.
    speculated: Vec<bool>,
    /// Failed attempts per node, for blacklisting.
    node_failures: Vec<u32>,
    /// Set when the job aborts; the event loop drains out.
    failed: Option<FailureDiag>,
    /// Watchdog over event count and simulated time (see [`EventBudget`]).
    budget: EventBudget,
    /// Set when the watchdog trips; the loop exits on the spot.
    budget_breach: Option<BudgetDiag>,
    /// Last instant the event loop processed (for failure diagnostics).
    clock: SimTime,
    /// Completed-attempt duration sums/counts, `[maps, reduces]`, feeding
    /// the speculation threshold.
    dur_sum: [f64; 2],
    dur_n: [u32; 2],
    /// Phase-span recorder. Disabled by default — recording costs nothing
    /// until [`Engine::enable_tracing`] is called before `run`.
    trace: Trace,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("spec", &self.spec)
            .field("clock", &self.clock)
            .field("reduces_done", &self.reduces_done)
            .field("failed", &self.failed)
            .finish_non_exhaustive()
    }
}

impl<'f> Engine<'f> {
    /// Build an engine for `spec` on `n_slaves` nodes of `node_spec`
    /// connected by `interconnect` as a flat non-blocking crossbar.
    pub fn new(
        spec: JobSpec,
        factory: &'f dyn PartitionerFactory,
        node_spec: NodeSpec,
        n_slaves: usize,
        interconnect: Interconnect,
    ) -> Self {
        Self::with_topology(
            spec,
            factory,
            node_spec,
            Topology::single_switch(n_slaves, interconnect),
        )
    }

    /// Build an engine for `spec` over an explicit network topology
    /// (rack-aware, oversubscribed, fabric-capped, or custom-calibrated);
    /// the cluster size is the topology's node count.
    pub fn with_topology(
        spec: JobSpec,
        factory: &'f dyn PartitionerFactory,
        node_spec: NodeSpec,
        topology: Topology,
    ) -> Self {
        let n_slaves = topology.n_nodes();
        spec.validate().expect("invalid job spec");
        for c in &spec.conf.faults.node_crashes {
            assert!(
                c.node < n_slaves,
                "crash plan names node {} of {n_slaves}",
                c.node
            );
        }
        for s in &spec.conf.faults.node_slowdowns {
            assert!(
                s.node < n_slaves,
                "slowdown plan names node {} of {n_slaves}",
                s.node
            );
        }
        let mut cluster = Cluster::new(node_spec.clone(), n_slaves);
        // Task JVM heaps are wired memory: the OS page cache only gets
        // what is left. MRv1 reserves a heap per slot; YARN reserves the
        // container pool.
        let slots = match spec.conf.engine {
            EngineKind::MRv1 => {
                u64::from(spec.conf.map_slots_per_node + spec.conf.reduce_slots_per_node)
                    * simcore::units::ByteSize::from_gib(1).as_bytes()
            }
            EngineKind::Yarn => {
                let pool = (node_spec.memory.as_bytes()
                    / spec.conf.container_memory.as_bytes().max(1))
                .min(u64::from(node_spec.cores));
                pool * spec.conf.container_memory.as_bytes()
            }
        };
        let cache_mem = simcore::units::ByteSize::from_bytes(
            node_spec
                .memory
                .as_bytes()
                .saturating_sub(slots)
                .max(simcore::units::ByteSize::from_gib(2).as_bytes()),
        );
        cluster.disk.enable_page_cache(cache_mem);
        let monitor_interval = SimDuration::from_secs_f64(spec.conf.monitor_interval_s);
        cluster.set_monitor_interval(monitor_interval);
        let protocol = *topology.protocol();
        let net = Network::new(topology);
        let net_monitor = NetworkMonitor::new(n_slaves, monitor_interval);
        let registry = ShuffleRegistry::new(spec.conf.num_maps, n_slaves, node_spec.memory);
        let scheduler = Scheduler::new(&spec.conf, n_slaves, &node_spec);
        let n_tasks = (spec.conf.num_maps + spec.conf.num_reduces) as usize;
        let shuffle_model = ShuffleModel::for_kind(spec.conf.shuffle_engine);
        let seeds = SeedFactory::new(spec.conf.seed);
        let injector = FaultInjector::new(spec.conf.faults.clone(), spec.conf.seed);
        Engine {
            protocol,
            costs: CostModel::calibrated(),
            shuffle_model,
            factory,
            cluster,
            net,
            net_monitor,
            monitor_interval,
            registry,
            scheduler,
            counters: Counters::default(),
            tasks: Vec::new(),
            slot_info: Vec::new(),
            control: EventQueue::with_capacity(16),
            timers: EventQueue::with_capacity(n_tasks.max(16)),
            net_done: Vec::with_capacity(64),
            seeds,
            injector,
            reduces_done: 0,
            last_reduce_finish: SimTime::ZERO,
            attempts: vec![0; n_tasks],
            failures: vec![0; n_tasks],
            task_done: vec![false; n_tasks],
            speculated: vec![false; n_tasks],
            node_failures: vec![0; n_slaves],
            failed: None,
            budget: EventBudget::new(
                spec.conf.max_events,
                spec.conf.max_sim_time_s.map(SimTime::from_secs_f64),
            ),
            budget_breach: None,
            clock: SimTime::ZERO,
            dur_sum: [0.0; 2],
            dur_n: [0; 2],
            trace: Trace::disabled(),
            spec,
        }
    }

    /// Record per-task phase spans and scheduler marks during the run.
    /// The resulting [`JobResult`] carries the span stream (`trace`) and a
    /// per-phase breakdown (`phases`). Must be called before [`Engine::run`].
    pub fn enable_tracing(&mut self) {
        self.trace = Trace::enabled();
    }

    /// Override the cost model (ablations, calibration experiments).
    pub fn set_cost_model(&mut self, costs: CostModel) {
        self.costs = costs;
    }

    /// Override the shuffle-engine behaviour model (ablations).
    pub fn set_shuffle_model(&mut self, model: ShuffleModel) {
        self.shuffle_model = model;
    }

    /// Turn off the OS page-cache model so all spill I/O hits the
    /// spindles synchronously (ablations).
    pub fn disable_page_cache(&mut self) {
        self.cluster.disk.disable_page_cache();
    }

    /// Run the job to completion (or until it exhausts its fault budget
    /// and aborts with [`JobOutcome::Failed`]).
    pub fn run(mut self) -> JobResult {
        // Job setup (JobTracker submission, setup task, split computation).
        let setup = SimDuration::from_secs_f64(self.costs.job_overhead_s);
        self.control
            .schedule(SimTime::ZERO + setup, Control::Heartbeat);
        self.control
            .schedule(SimTime::ZERO + self.monitor_interval, Control::MonitorTick);
        let crashes = self.spec.conf.faults.node_crashes.clone();
        for c in &crashes {
            self.control.schedule(
                SimTime::from_secs_f64(c.at_secs),
                Control::NodeCrash(c.node),
            );
        }

        let num_reduces = self.spec.conf.num_reduces;
        let mut guard: u64 = 0;
        while self.reduces_done < num_reduces && self.failed.is_none() {
            guard += 1;
            assert!(
                guard < 500_000_000,
                "engine event-count guard tripped: likely stall"
            );
            let Some(now) = self.next_time() else {
                // Nothing pending but work outstanding: defensive abort
                // instead of a panic (should be unreachable — blacklisting
                // always leaves one schedulable node).
                let at = self.clock;
                self.fail(at, "simulation stalled with no pending events".into(), None);
                break;
            };
            self.clock = now;
            // Watchdog: one charge per loop step (each step dispatches at
            // least one event). On breach, capture diagnostics and abort
            // gracefully; the partial result is still well-formed.
            if let Err(breach) = self.budget.charge(now) {
                self.budget_breach = Some(self.budget_diag(breach, now));
                break;
            }
            // Advance every sub-simulator to the common instant.
            let cpu_done = self.cluster.cpu.advance_to(now);
            let disk_done = self.cluster.disk.advance_to(now);
            let mut net_done = std::mem::take(&mut self.net_done);
            net_done.clear();
            self.net.advance_to_into(now, &mut net_done);

            // Control events due now.
            while self.control.peek_time() == Some(now) {
                let (_, ev) = self.control.pop().expect("peeked event");
                match ev {
                    Control::Heartbeat => {
                        self.do_schedule(now);
                        self.maybe_speculate(now);
                        let hb = self.scheduler.heartbeat();
                        self.control.schedule(now + hb, Control::Heartbeat);
                    }
                    Control::MonitorTick => {
                        self.cluster
                            .cpu_monitor
                            .maybe_sample(now, &mut self.cluster.cpu);
                        self.net_monitor.maybe_sample(now, &mut self.net);
                        self.control
                            .schedule(now + self.monitor_interval, Control::MonitorTick);
                    }
                    Control::NodeCrash(node) => {
                        self.handle_node_crash(node, now);
                    }
                }
            }

            // Timers due now (fetch-retry backoffs).
            while self.timers.peek_time() == Some(now) {
                let (_, t) = self.timers.pop().expect("peeked timer");
                self.dispatch(t, now);
            }

            // Route completions to their tasks.
            for c in cpu_done {
                self.dispatch(c.tag, now);
            }
            for c in disk_done {
                self.dispatch(c.tag, now);
            }
            for c in &net_done {
                self.dispatch(c.tag, now);
            }
            self.net_done = net_done;
        }

        self.finish()
    }

    /// Snapshot of where the run stood when the watchdog tripped.
    fn budget_diag(&self, breach: BudgetBreach, now: SimTime) -> BudgetDiag {
        let num_maps = self.spec.conf.num_maps as usize;
        let maps_done = self.task_done[..num_maps].iter().filter(|&&d| d).count() as u32;
        BudgetDiag {
            breach: breach.to_string(),
            at: now,
            events: self.budget.events(),
            queue_depth: self.control.len() + self.timers.len(),
            maps_done,
            maps_total: self.spec.conf.num_maps,
            reduces_done: self.reduces_done,
            reduces_total: self.spec.conf.num_reduces,
        }
    }

    fn next_time(&mut self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for t in [
            self.cluster.cpu.next_event_time(),
            self.cluster.disk.next_event_time(),
            self.net.next_event_time(),
            self.control.peek_time(),
            self.timers.peek_time(),
        ]
        .into_iter()
        .flatten()
        {
            best = Some(best.map_or(t, |b: SimTime| b.min(t)));
        }
        best
    }

    /// Task-id for the per-task bookkeeping vectors.
    fn task_id(&self, is_map: bool, index: u32) -> usize {
        if is_map {
            index as usize
        } else {
            (self.spec.conf.num_maps + index) as usize
        }
    }

    /// Attempts of a task still executing (excludes committed attempts).
    fn live_attempts(&self, is_map: bool, index: u32) -> usize {
        (0..self.tasks.len())
            .filter(|&s| {
                let si = self.slot_info[s];
                si.is_map == is_map
                    && si.index == index
                    && self.tasks[s].as_ref().is_some_and(|t| !t.is_done())
            })
            .count()
    }

    fn dispatch(&mut self, tag_: u64, now: SimTime) {
        if self.failed.is_some() {
            return;
        }
        let Some((slot, stage, seq)) = untag(tag_) else {
            return; // sink work (sender-side protocol processing)
        };
        let s = slot as usize;
        if s >= self.tasks.len() || self.tasks[s].is_none() {
            return; // stale completion for a killed attempt
        }
        // A doomed attempt dies the moment its startup burst completes.
        if matches!(self.tasks[s], Some(Task::Doomed)) {
            self.tasks[s] = None;
            self.on_attempt_failed(slot, now);
            return;
        }
        let mut notes = Vec::new();
        {
            let (tasks, mut env) = split_env!(self, now, &mut notes);
            match tasks[s].as_mut().expect("checked above") {
                Task::Map(m) => m.on_event(stage, seq, &mut env),
                Task::Reduce(r) => r.on_event(stage, seq, &mut env),
                Task::Doomed => unreachable!("handled above"),
            }
        }
        self.handle_notes(notes, now);
    }

    fn handle_notes(&mut self, mut notes: Vec<Note>, now: SimTime) {
        while !notes.is_empty() {
            let batch: Vec<Note> = std::mem::take(&mut notes);
            for note in batch {
                match note {
                    Note::MapOutputReady(map) => {
                        self.notify_reducers(map, now, &mut notes);
                    }
                    Note::TaskFinished { slot } => {
                        self.on_task_finished(slot, now);
                    }
                    Note::AttemptFailed { slot } => {
                        let s = slot as usize;
                        if let Some(t) = self.tasks[s].as_mut() {
                            t.abort_span(now, &mut self.trace);
                            self.tasks[s] = None;
                            self.on_attempt_failed(slot, now);
                        }
                    }
                    Note::AttemptSuperseded { slot } => {
                        self.on_attempt_superseded(slot, now);
                    }
                }
            }
        }
    }

    fn on_task_finished(&mut self, slot: u32, now: SimTime) {
        let si = self.slot_info[slot as usize];
        let task = self.task_id(si.is_map, si.index);
        self.task_done[task] = true;
        self.scheduler.on_task_done(si.is_map, si.node);
        // Completed-attempt durations feed the straggler threshold.
        let kind = usize::from(!si.is_map);
        self.dur_sum[kind] += self.slot_duration(slot);
        self.dur_n[kind] += 1;
        if si.backup {
            self.counters.speculative_wins += 1;
        }
        // First finisher wins: kill any sibling (speculative) attempt.
        for s in 0..self.tasks.len() {
            if s == slot as usize || self.tasks[s].is_none() {
                continue;
            }
            let other = self.slot_info[s];
            if other.is_map == si.is_map && other.index == si.index {
                if let Some(t) = self.tasks[s].as_mut() {
                    t.abort_span(now, &mut self.trace);
                }
                self.tasks[s] = None;
                self.counters.killed_attempts += 1;
                self.scheduler.release_slot(other.is_map, other.node);
                if self.trace.is_enabled() {
                    let kind = if other.is_map { "map" } else { "reduce" };
                    self.trace.mark(
                        format!("killed {kind} {} (sibling won)", other.index),
                        other.node as u32,
                        s as u32,
                        now,
                    );
                }
            }
        }
        if !si.is_map {
            self.reduces_done += 1;
            self.last_reduce_finish = now;
        }
        // Out-of-band heartbeat: reuse the slot at once.
        self.do_schedule(now);
    }

    /// An attempt failed (doomed startup or exhausted fetch retries):
    /// count it, maybe blacklist the node, and either re-queue the task
    /// or — past `max_attempts` — kill the whole job, exactly like the
    /// JobTracker.
    fn on_attempt_failed(&mut self, slot: u32, now: SimTime) {
        let si = self.slot_info[slot as usize];
        let task = self.task_id(si.is_map, si.index);
        self.counters.failed_task_attempts += 1;
        self.failures[task] += 1;
        self.scheduler.release_slot(si.is_map, si.node);
        self.node_failures[si.node] += 1;
        if self.trace.is_enabled() {
            let kind = if si.is_map { "map" } else { "reduce" };
            self.trace.mark(
                format!("attempt failed: {kind} {}", si.index),
                si.node as u32,
                slot,
                now,
            );
        }
        if self.node_failures[si.node] >= self.spec.conf.node_blacklist_threshold
            && self.scheduler.blacklist(si.node)
        {
            self.counters.blacklisted_nodes += 1;
            if self.trace.is_enabled() {
                self.trace.mark(
                    format!("node {} blacklisted", si.node),
                    si.node as u32,
                    Mark::NO_LANE,
                    now,
                );
            }
        }
        if self.failures[task] >= self.spec.conf.max_attempts {
            let kind = if si.is_map { "map" } else { "reduce" };
            self.fail(
                now,
                format!(
                    "{kind} task {} failed {} of {} allowed attempts",
                    si.index, self.failures[task], self.spec.conf.max_attempts
                ),
                Some((si.is_map, si.index)),
            );
            return;
        }
        if !self.task_done[task] && self.live_attempts(si.is_map, si.index) == 0 {
            self.scheduler.requeue(si.is_map, si.index);
        }
        self.do_schedule(now);
    }

    /// An attempt reached commit after a sibling had already committed
    /// (speculative commit race). Its output was dropped by the registry;
    /// the attempt counts as killed — not failed — so it burns no retry
    /// budget and cannot blacklist its node.
    fn on_attempt_superseded(&mut self, slot: u32, now: SimTime) {
        let s = slot as usize;
        let Some(t) = self.tasks[s].as_mut() else {
            return;
        };
        t.abort_span(now, &mut self.trace);
        self.tasks[s] = None;
        let si = self.slot_info[s];
        self.counters.killed_attempts += 1;
        self.scheduler.release_slot(si.is_map, si.node);
        if self.trace.is_enabled() {
            let kind = if si.is_map { "map" } else { "reduce" };
            self.trace.mark(
                format!("{kind} {} commit superseded", si.index),
                si.node as u32,
                slot,
                now,
            );
        }
        self.do_schedule(now);
    }

    /// A planned node crash fires: the node leaves the cluster, its
    /// running attempts die, and its committed map outputs become
    /// unfetchable — those maps re-run elsewhere (Hadoop's map-output-lost
    /// path). Completed reduces are safe (their output already left).
    fn handle_node_crash(&mut self, node: usize, now: SimTime) {
        if self.failed.is_some() || self.scheduler.is_dead(node) {
            return;
        }
        self.scheduler.mark_dead(node);
        if self.trace.is_enabled() {
            self.trace.mark(
                format!("node {node} crashed"),
                node as u32,
                Mark::NO_LANE,
                now,
            );
        }
        let mut orphaned: Vec<(bool, u32)> = Vec::new();
        for s in 0..self.tasks.len() {
            if self.slot_info[s].node != node {
                continue;
            }
            let Some(t) = self.tasks[s].as_mut() else {
                continue;
            };
            let was_running = !t.is_done();
            t.abort_span(now, &mut self.trace);
            self.tasks[s] = None;
            let si = self.slot_info[s];
            if was_running {
                self.counters.killed_attempts += 1;
                orphaned.push((si.is_map, si.index));
            }
        }
        let lost = self.registry.unregister_node(node);
        let raw_record = (self.spec.key_size + self.spec.value_size) as u64;
        for (m, out) in &lost {
            let records: u64 = out.partition_records.iter().sum();
            self.counters.maps_rerun_after_node_loss += 1;
            self.counters.maps_completed -= 1;
            self.counters.map_output_records -= records;
            self.counters.map_output_bytes -= raw_record * records;
            self.counters.map_output_materialized_bytes -= out.total_bytes();
            let task = self.task_id(true, *m);
            self.task_done[task] = false;
            self.scheduler.map_result_lost();
            orphaned.push((true, *m));
        }
        if self.scheduler.healthy_nodes() == 0 {
            self.fail(now, "every slave node has crashed".into(), None);
            return;
        }
        orphaned.sort_unstable_by_key(|&(is_map, idx)| (!is_map, idx));
        orphaned.dedup();
        for (is_map, index) in orphaned {
            let task = self.task_id(is_map, index);
            if !self.task_done[task] && self.live_attempts(is_map, index) == 0 {
                self.scheduler.requeue(is_map, index);
            }
        }
        // Surviving reducers drop queued fetches of the lost segments
        // (in-flight transfers fail their validity check on completion;
        // already-copied segments are kept).
        for (m, _) in &lost {
            for t in self.tasks.iter_mut().flatten() {
                if let Task::Reduce(r) = t {
                    r.on_map_output_lost(*m);
                }
            }
        }
        self.do_schedule(now);
    }

    fn notify_reducers(&mut self, map: u32, now: SimTime, notes: &mut Vec<Note>) {
        let (tasks, mut env) = split_env!(self, now, notes);
        for slot in tasks.iter_mut() {
            if let Some(Task::Reduce(r)) = slot.as_mut() {
                r.on_map_output(map, &mut env);
            }
        }
    }

    fn do_schedule(&mut self, now: SimTime) {
        if self.failed.is_some() {
            return;
        }
        let launches = self.scheduler.tick();
        if launches.is_empty() {
            return;
        }
        let mut notes = Vec::new();
        for l in launches {
            self.launch_attempt(l.is_map, l.index, l.node, false, now, &mut notes);
        }
        self.handle_notes(notes, now);
    }

    /// Start one attempt of a task in a fresh slot.
    fn launch_attempt(
        &mut self,
        is_map: bool,
        index: u32,
        node: usize,
        backup: bool,
        now: SimTime,
        notes: &mut Vec<Note>,
    ) {
        let task = self.task_id(is_map, index);
        let attempt = self.attempts[task];
        self.attempts[task] += 1;
        let slot = self.tasks.len() as u32;
        self.slot_info.push(SlotInfo {
            is_map,
            index,
            node,
            backup,
        });
        if self.trace.is_enabled() {
            let kind = if is_map { "map" } else { "reduce" };
            let suffix = if backup { " (speculative)" } else { "" };
            self.trace.mark(
                format!("launch {kind} {index} attempt {attempt}{suffix}"),
                node as u32,
                slot,
                now,
            );
        }
        if self.injector.fails_at_startup(is_map, index, attempt) {
            // The deterministic fail-first hook: the attempt dies right
            // after its JVM launch.
            self.tasks.push(Some(Task::Doomed));
            self.cluster.cpu.submit(
                now,
                node,
                self.costs.jvm_startup_s,
                tag(slot, Stage::Jvm, 0),
            );
            return;
        }
        // Probabilistically doomed attempts run their full pipeline and
        // die at commit, wasting the entire attempt.
        let doomed = self.injector.fails_at_commit(is_map, index, attempt);
        let jitter = self.task_jitter(is_map, index, attempt) * self.injector.slowdown(node);
        if is_map {
            let counts = self.partition_counts(index);
            let (tasks, mut env) = split_env!(self, now, notes);
            let t = MapTask::launch(slot, index, node, attempt, counts, jitter, doomed, &mut env);
            tasks.push(Some(Task::Map(t)));
        } else {
            let output_bytes = self.spec_output_bytes_per_reduce();
            let num_maps = self.spec.conf.num_maps;
            let (tasks, mut env) = split_env!(self, now, notes);
            let t = ReduceTask::launch(
                index,
                slot,
                node,
                attempt,
                num_maps,
                output_bytes,
                jitter,
                doomed,
                &mut env,
            );
            tasks.push(Some(Task::Reduce(t)));
        }
    }

    /// Hadoop-style speculative execution, evaluated on each heartbeat:
    /// a task whose only attempt has run `speculative_slowdown` times
    /// longer than the mean completed duration of its kind gets a backup
    /// attempt on (preferably) another node. First finisher wins.
    fn maybe_speculate(&mut self, now: SimTime) {
        if !self.spec.conf.speculative || self.failed.is_some() {
            return;
        }
        let mut candidates: Vec<(bool, u32, usize)> = Vec::new();
        for s in 0..self.tasks.len() {
            let Some(t) = &self.tasks[s] else { continue };
            if t.is_done() || matches!(t, Task::Doomed) {
                continue;
            }
            let si = self.slot_info[s];
            let task = self.task_id(si.is_map, si.index);
            if self.task_done[task] || self.speculated[task] {
                continue;
            }
            let kind = usize::from(!si.is_map);
            if self.dur_n[kind] == 0 {
                continue;
            }
            let mean = self.dur_sum[kind] / f64::from(self.dur_n[kind]);
            let start = match t {
                Task::Map(m) => m.start,
                Task::Reduce(r) => r.start,
                Task::Doomed => continue,
            };
            let elapsed = now.since(start).as_secs_f64();
            if elapsed > self.spec.conf.speculative_slowdown * mean
                && self.live_attempts(si.is_map, si.index) == 1
            {
                candidates.push((si.is_map, si.index, si.node));
            }
        }
        let mut notes = Vec::new();
        for (is_map, index, node) in candidates {
            let task = self.task_id(is_map, index);
            if self.speculated[task] {
                continue;
            }
            let Some(backup_node) = self.scheduler.reserve_for_backup(is_map, node) else {
                continue;
            };
            self.speculated[task] = true;
            self.counters.speculative_launches += 1;
            self.launch_attempt(is_map, index, backup_node, true, now, &mut notes);
        }
        if !notes.is_empty() {
            self.handle_notes(notes, now);
        }
    }

    fn fail(&mut self, now: SimTime, reason: String, task: Option<(bool, u32)>) {
        if self.failed.is_none() {
            if self.trace.is_enabled() {
                self.trace
                    .mark(format!("job failed: {reason}"), 0, Mark::NO_LANE, now);
            }
            self.failed = Some(FailureDiag {
                reason,
                task,
                at: now,
            });
        }
    }

    fn slot_duration(&self, slot: u32) -> f64 {
        match &self.tasks[slot as usize] {
            Some(Task::Map(m)) => m.finish.expect("finished").since(m.start).as_secs_f64(),
            Some(Task::Reduce(r)) => r.finish.expect("finished").since(r.start).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Average reduce-output bytes per reducer for non-null output formats.
    fn spec_output_bytes_per_reduce(&self) -> u64 {
        let total_payload = (self.spec.key_size + self.spec.value_size) as u64
            * self.spec.pairs_per_map
            * u64::from(self.spec.conf.num_maps);
        let per_reduce = total_payload / u64::from(self.spec.conf.num_reduces);
        (per_reduce as f64 * self.spec.output_write_amplification) as u64
    }

    /// Deterministic per-task runtime variability: real task durations
    /// scatter by a few percent (JIT warm-up, GC, OS scheduling). Drawn
    /// uniformly from [0.97, 1.03] off the job seed; re-executed attempts
    /// draw fresh values.
    fn task_jitter(&self, is_map: bool, index: u32, attempt: u32) -> f64 {
        let kind = if is_map { "map" } else { "reduce" };
        let label = if attempt == 0 {
            format!("jitter-{kind}-{index}")
        } else {
            format!("jitter-{kind}-{index}-attempt-{attempt}")
        };
        let mut rng = self.seeds.stream(&label);
        0.97 + 0.06 * rng.next_f64()
    }

    /// Per-reducer record counts for map `index`, via the job's
    /// partitioner — the exact code path the real suite runs. Keyed by
    /// the map index alone, so a re-executed map regenerates identical
    /// output (determinism of record content across attempts).
    fn partition_counts(&self, index: u32) -> Vec<u64> {
        let seed = self.seeds.seed_for(&format!("map-{index}"));
        let mut partitioner = self.factory.create(index, seed);
        let n_reducers = self.spec.conf.num_reduces;
        let key_size = self.spec.key_size;
        let counts =
            partitioner.assign_counts(self.spec.pairs_per_map, n_reducers, &mut |ordinal, buf| {
                synthetic_key(ordinal, n_reducers, key_size, buf)
            });
        debug_assert_eq!(counts.iter().sum::<u64>(), self.spec.pairs_per_map);
        counts
    }

    fn finish(mut self) -> JobResult {
        let overhead = SimDuration::from_secs_f64(self.costs.job_overhead_s);
        let end = match (&self.failed, &self.budget_breach) {
            (Some(d), _) => d.at + overhead,
            (None, Some(b)) => b.at + overhead,
            (None, None) => self.last_reduce_finish + overhead,
        };

        // Emit the final partial monitoring window so bytes and busy
        // core-seconds after the last whole-interval tick are not lost.
        // Flushed at the last simulated instant (`self.clock`), not at
        // `end`: the job-overhead pad moves no data.
        self.cluster
            .cpu_monitor
            .flush(self.clock, &mut self.cluster.cpu);
        self.net_monitor.flush(self.clock, &mut self.net);

        // Aborted jobs leave attempts mid-phase: close their open spans at
        // the last simulated instant so the trace and breakdown still
        // account for every span.
        if self.trace.is_enabled() {
            let clock = self.clock;
            for t in self.tasks.iter_mut().flatten() {
                t.abort_span(clock, &mut self.trace);
            }
        }
        let job_time = end.since(SimTime::ZERO);
        let phases = self
            .trace
            .is_enabled()
            .then(|| self.trace.breakdown(job_time));
        let trace = self
            .trace
            .is_enabled()
            .then(|| std::mem::replace(&mut self.trace, Trace::disabled()));

        let mut tasks = Vec::new();
        let mut map_phase_end = SimTime::ZERO;
        let mut shuffle_end = SimTime::ZERO;
        for t in self.tasks.iter().flatten() {
            match t {
                Task::Doomed => continue, // still pending when the job aborted
                Task::Map(m) => {
                    let Some(finish) = m.finish else { continue };
                    map_phase_end = map_phase_end.max(finish);
                    tasks.push(TaskTiming {
                        is_map: true,
                        index: m.index,
                        node: m.node,
                        start: m.start,
                        finish,
                    });
                }
                Task::Reduce(r) => {
                    if let Some(se) = r.shuffle_end {
                        shuffle_end = shuffle_end.max(se);
                    }
                    let Some(finish) = r.finish else { continue };
                    tasks.push(TaskTiming {
                        is_map: false,
                        index: r.index,
                        node: r.node,
                        start: r.start,
                        finish,
                    });
                }
            }
        }
        // Slots are in launch order; reports expect maps (by index) then
        // reduces (by index), as the pre-attempt engine produced.
        tasks.sort_by_key(|t| (!t.is_map, t.index));

        let n = self.cluster.n_slaves();
        let cpu_series = (0..n)
            .map(|i| self.cluster.cpu_monitor.series(i).clone())
            .collect();
        let net_rx_series = (0..n)
            .map(|i| self.net_monitor.rx_series(simnet::NodeId(i)).clone())
            .collect();

        JobResult {
            outcome: if self.budget_breach.is_some() {
                JobOutcome::BudgetExceeded
            } else if self.failed.is_some() {
                JobOutcome::Failed
            } else {
                JobOutcome::Succeeded
            },
            failure: self.failed,
            budget: self.budget_breach,
            job_time,
            map_phase_end,
            shuffle_end,
            counters: self.counters,
            tasks,
            cpu_series,
            net_rx_series,
            phases,
            sim_work: self.budget.events() + self.net.work_units(),
            trace,
        }
    }
}

/// Serialized key payload of the `ordinal`-th record. The suite restricts
/// the number of unique keys to the number of reducers (Sect. 4.2), so the
/// key content is a function of `ordinal % n_reducers`.
pub fn synthetic_key(ordinal: u64, n_reducers: u32, key_size: usize, buf: &mut Vec<u8>) {
    let uid = ordinal % u64::from(n_reducers.max(1));
    let bytes = uid.to_be_bytes();
    let take = key_size.min(8);
    buf.extend_from_slice(&bytes[8 - take..]);
    buf.resize(key_size, uid as u8);
}

/// Convenience one-call runner.
pub fn run_job(
    spec: JobSpec,
    factory: &dyn PartitionerFactory,
    node_spec: NodeSpec,
    n_slaves: usize,
    interconnect: Interconnect,
) -> JobResult {
    Engine::new(spec, factory, node_spec, n_slaves, interconnect).run()
}

/// The engine kind actually used by a conf (re-exported for reports).
pub fn engine_label(kind: EngineKind) -> &'static str {
    kind.label()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_key_is_stable_and_sized() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        synthetic_key(5, 4, 100, &mut a);
        synthetic_key(5, 4, 100, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        // ordinal 5 of 4 reducers -> uid 1.
        assert_eq!(a[7], 1);

        let mut tiny = Vec::new();
        synthetic_key(3, 4, 2, &mut tiny);
        assert_eq!(tiny.len(), 2);
    }

    #[test]
    fn keys_repeat_every_n_reducers() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        synthetic_key(2, 8, 32, &mut a);
        synthetic_key(10, 8, 32, &mut b);
        assert_eq!(a, b, "unique keys are restricted to the reducer count");
    }
}
