//! The RDMA-enhanced shuffle engine (MRoIB).
//!
//! The paper's Sect. 6 case study evaluates "RDMA for Apache Hadoop"
//! (MRoIB), which replaces the HTTP-over-sockets fetchers with native
//! InfiniBand verbs. Three mechanisms distinguish it from the stock path,
//! and each maps onto a model parameter here:
//!
//! 1. **Kernel bypass / zero copy** — shuffle bytes never cross the host
//!    socket stack, so the per-MiB protocol CPU charge vanishes (the
//!    `ProtocolModel` for [`simnet::Interconnect::RdmaFdr`] carries the
//!    near-zero cost).
//! 2. **Pre-registered buffer pools** — fetch setup is a hardware RTT
//!    (microseconds) instead of an HTTP request.
//! 3. **SEDA-style overlap (HOMR)** — merge stages pipeline with the
//!    transfers, so the reduce-side in-memory accumulation threshold is
//!    effectively larger and final-merge disk traffic shrinks.

use crate::conf::ShuffleEngineKind;

/// Behavioural knobs the shuffle data path contributes to the engine.
#[derive(Clone, Copy, Debug)]
pub struct ShuffleModel {
    /// Charge endpoint protocol CPU per byte moved?
    pub charges_protocol_cpu: bool,
    /// Multiplier on the reduce-side in-memory shuffle buffer: the
    /// overlapped pipeline drains buffers into the merge concurrently, so
    /// less data ever spills.
    pub buffer_boost: f64,
    /// Fraction of the final reduce-side merge that is already done when
    /// the last fetch lands (pipelined merge).
    pub merge_overlap: f64,
    /// Fraction of the reduce function itself that runs pipelined with
    /// the shuffle/merge stages. Stock Hadoop invokes `reduce()` only
    /// after the merge completes; the HOMR pipeline streams sorted runs
    /// into the reduce iterator as they materialize — and the suite's
    /// workload (one unique key per reducer, output discarded) is the
    /// ideal case for that overlap.
    pub reduce_overlap: f64,
    /// Multiplier on the fetcher's exponential-backoff delay after a
    /// failed fetch. The RDMA engine detects transport errors through
    /// completion-queue events instead of HTTP timeouts, so it retries
    /// much sooner.
    // simlint: allow(unit-suffix, dimensionless multiplier on a delay that carries its own _s suffix)
    pub retry_backoff_scale: f64,
}

impl ShuffleModel {
    /// The model for a shuffle engine kind.
    pub fn for_kind(kind: ShuffleEngineKind) -> Self {
        match kind {
            ShuffleEngineKind::Tcp => ShuffleModel {
                charges_protocol_cpu: true,
                buffer_boost: 1.0,
                // Stock Hadoop merges in-memory segments while fetching,
                // overlapping roughly a third of the merge work.
                merge_overlap: 0.35,
                reduce_overlap: 0.0,
                retry_backoff_scale: 1.0,
            },
            ShuffleEngineKind::Rdma => ShuffleModel {
                charges_protocol_cpu: false,
                // MRoIB stages shuffle data in pre-registered buffer
                // pools outside the JVM heap, sized to the node (the
                // paper's v0.9.9 defaults), so reduce-side spills vanish
                // at these scales.
                buffer_boost: 6.0,
                merge_overlap: 0.85,
                reduce_overlap: 0.45,
                retry_backoff_scale: 0.25,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_overlaps_more_and_skips_cpu() {
        let tcp = ShuffleModel::for_kind(ShuffleEngineKind::Tcp);
        let rdma = ShuffleModel::for_kind(ShuffleEngineKind::Rdma);
        assert!(tcp.charges_protocol_cpu);
        assert!(!rdma.charges_protocol_cpu);
        assert!(rdma.merge_overlap > tcp.merge_overlap);
        assert!(rdma.buffer_boost > tcp.buffer_boost);
        assert!(rdma.reduce_overlap > tcp.reduce_overlap);
        assert!(rdma.retry_backoff_scale < tcp.retry_backoff_scale);
    }

    #[test]
    fn overlap_fractions_are_sane() {
        for kind in [ShuffleEngineKind::Tcp, ShuffleEngineKind::Rdma] {
            let m = ShuffleModel::for_kind(kind);
            assert!((0.0..=1.0).contains(&m.merge_overlap));
            assert!((0.0..=1.0).contains(&m.reduce_overlap));
            assert!(m.buffer_boost >= 1.0);
            assert!(m.retry_backoff_scale > 0.0);
        }
    }
}
