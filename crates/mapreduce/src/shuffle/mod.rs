//! Shuffle bookkeeping: the map-output registry and the page-cache model
//! for the map-side shuffle server.
//!
//! When a map task commits, it registers its per-partition IFile segment
//! sizes here. Reducers consult the registry to schedule fetches. The
//! registry also models the OS page cache on each slave: map outputs were
//! just written, so shuffle serves hit memory unless a node's total map
//! output exceeds its cache budget — at which point the overflow fraction
//! of every fetch is charged to the local disks, which is exactly the
//! regime the paper's largest (64 GB) runs enter.

pub mod rdma;

use simcore::units::ByteSize;

/// One committed map output.
#[derive(Clone, Debug)]
pub struct MapOutput {
    /// Slave the map ran on (where the segments live).
    pub node: usize,
    /// IFile bytes of each reduce partition segment.
    pub partition_bytes: Vec<u64>,
    /// Records in each partition segment.
    pub partition_records: Vec<u64>,
}

impl MapOutput {
    /// Total materialized bytes of this output.
    pub fn total_bytes(&self) -> u64 {
        self.partition_bytes.iter().sum()
    }
}

/// Registry of committed map outputs plus the per-node page-cache model.
#[derive(Debug)]
pub struct ShuffleRegistry {
    outputs: Vec<Option<MapOutput>>,
    node_output_bytes: Vec<u64>,
    cache_budget: u64,
}

impl ShuffleRegistry {
    /// Registry for `num_maps` maps over `n_nodes` slaves, each with
    /// `node_memory` of RAM. The shuffle-serve cache budget is the
    /// customary ~60 % of RAM left over after the task JVMs.
    pub fn new(num_maps: u32, n_nodes: usize, node_memory: ByteSize) -> Self {
        ShuffleRegistry {
            outputs: vec![None; num_maps as usize],
            node_output_bytes: vec![0; n_nodes],
            cache_budget: (node_memory.as_bytes() as f64 * 0.60) as u64,
        }
    }

    /// Commit a finished map's output. Commit is first-wins: with
    /// speculative execution, the backup attempt can finish close behind
    /// the original, and whichever attempt registers second loses — its
    /// output is dropped (reducers already fetch from the winner) and
    /// `false` is returned so the caller can account for the discarded
    /// attempt.
    pub fn register(&mut self, map_index: u32, output: MapOutput) -> bool {
        if self.outputs[map_index as usize].is_some() {
            return false;
        }
        self.node_output_bytes[output.node] += output.total_bytes();
        self.outputs[map_index as usize] = Some(output);
        true
    }

    /// The committed output of `map_index`, if any.
    pub fn output(&self, map_index: u32) -> Option<&MapOutput> {
        self.outputs[map_index as usize].as_ref()
    }

    /// Drop every output stored on `node` (the node crashed and its local
    /// segments are gone). Returns the evicted outputs in map-index order;
    /// the affected maps may re-register after re-execution.
    pub fn unregister_node(&mut self, node: usize) -> Vec<(u32, MapOutput)> {
        let mut lost = Vec::new();
        for (i, slot) in self.outputs.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(|o| o.node == node) {
                lost.push((i as u32, slot.take().expect("checked above")));
            }
        }
        self.node_output_bytes[node] = 0;
        lost
    }

    /// Number of committed outputs.
    pub fn committed(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_some()).count()
    }

    /// Fraction of a shuffle serve from `node` that misses the page cache
    /// and must be read from disk, in `[0, 1]`.
    pub fn disk_miss_fraction(&self, node: usize) -> f64 {
        let total = self.node_output_bytes[node];
        if total <= self.cache_budget || total == 0 {
            0.0
        } else {
            (total - self.cache_budget) as f64 / total as f64
        }
    }

    /// Total committed map-output bytes on `node`.
    pub fn node_output_bytes(&self, node: usize) -> u64 {
        self.node_output_bytes[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(node: usize, bytes: Vec<u64>) -> MapOutput {
        let records = bytes.iter().map(|b| b / 100).collect();
        MapOutput {
            node,
            partition_bytes: bytes,
            partition_records: records,
        }
    }

    #[test]
    fn register_and_query() {
        let mut r = ShuffleRegistry::new(2, 2, ByteSize::from_gib(24));
        assert!(r.output(0).is_none());
        r.register(0, output(1, vec![100, 200]));
        assert_eq!(r.committed(), 1);
        let o = r.output(0).unwrap();
        assert_eq!(o.total_bytes(), 300);
        assert_eq!(o.node, 1);
        assert_eq!(r.node_output_bytes(1), 300);
    }

    #[test]
    fn double_commit_is_first_wins() {
        // Speculative execution can have both attempts of a map reach
        // commit; the registry must keep the first and drop the second
        // (this used to be an assert, panicking mid-run).
        let mut r = ShuffleRegistry::new(1, 2, ByteSize::from_gib(1));
        assert!(r.register(0, output(0, vec![100])));
        assert!(!r.register(0, output(1, vec![999])));
        // The winner's output is untouched and the loser's bytes are not
        // double-counted into the page-cache model.
        assert_eq!(r.output(0).unwrap().node, 0);
        assert_eq!(r.output(0).unwrap().total_bytes(), 100);
        assert_eq!(r.node_output_bytes(0), 100);
        assert_eq!(r.node_output_bytes(1), 0);
        assert_eq!(r.committed(), 1);
    }

    #[test]
    fn unregister_node_evicts_and_allows_reregistration() {
        let mut r = ShuffleRegistry::new(3, 2, ByteSize::from_gib(24));
        r.register(0, output(0, vec![100]));
        r.register(1, output(1, vec![200]));
        r.register(2, output(0, vec![300]));
        let lost = r.unregister_node(0);
        assert_eq!(lost.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 2]);
        assert!(r.output(0).is_none());
        assert!(r.output(1).is_some());
        assert_eq!(r.node_output_bytes(0), 0);
        assert_eq!(r.committed(), 1);
        // The re-executed map commits again, elsewhere.
        assert!(r.register(0, output(1, vec![100])));
        assert_eq!(r.node_output_bytes(1), 300);
    }

    #[test]
    fn small_outputs_stay_cached() {
        let mut r = ShuffleRegistry::new(4, 1, ByteSize::from_gib(24));
        // 4 GiB of output on a 24 GiB node: well within the 14.4 GiB budget.
        for m in 0..4 {
            r.register(m, output(0, vec![1 << 30]));
        }
        assert_eq!(r.disk_miss_fraction(0), 0.0);
    }

    #[test]
    fn oversized_outputs_spill_to_disk_reads() {
        let mut r = ShuffleRegistry::new(1, 1, ByteSize::from_gib(24));
        // 16 GiB of output against a 14.4 GiB budget: ~10 % disk misses.
        r.register(0, output(0, vec![16 << 30]));
        let f = r.disk_miss_fraction(0);
        assert!(f > 0.05 && f < 0.15, "fraction {f}");
    }
}
