//! # mapreduce — a stand-alone Hadoop MapReduce engine on simulated time
//!
//! A faithful model of the Hadoop MapReduce execution pipeline, decoupled
//! from HDFS, as the paper's micro-benchmark suite requires:
//!
//! * [`io`] — `Writable` serialization (`BytesWritable`, `Text`,
//!   primitives) with exact Hadoop wire formats.
//! * [`ifile`] — the intermediate file format (vint framing, EOF marker,
//!   CRC-32) whose byte counts drive all simulated I/O and network volume.
//! * [`conf`] — `JobConf` with the `mapred-site.xml` knobs that matter.
//! * [`formats`] — `NullInputFormat` / `NullOutputFormat` for stand-alone
//!   operation.
//! * [`partition`] — the `Partitioner` contract and `HashPartitioner`.
//! * [`costs`] — the calibrated CPU cost model.
//! * `task` (internal) — map and reduce task state machines
//!   (sort/spill/merge, fetch pipelines).
//! * [`shuffle`] — map-output registry, page-cache model, and the
//!   RDMA/MRoIB shuffle engine model.
//! * [`schedule`] — MRv1 slot and YARN container scheduling.
//! * [`faults`] — deterministic fault injection ([`faults::FaultPlan`])
//!   and the job-level outcome types for fault tolerance.
//! * [`engine`] — the deterministic event-loop driver; start at
//!   [`engine::run_job`].
//! * [`analytic`] — the closed-form (Herodotou-style) cost-model backend:
//!   the same [`job::JobResult`] in O(maps + reduces) arithmetic instead
//!   of an event-by-event replay; start at [`analytic::evaluate`].

pub mod analytic;
pub mod conf;
pub mod costs;
pub mod counters;
pub mod engine;
pub mod faults;
pub mod formats;
pub mod ifile;
pub mod io;
pub mod job;
pub mod multijob;
pub mod partition;
pub mod schedule;
pub mod shuffle;
pub(crate) mod task;

pub use analytic::AnalyticJob;
pub use conf::{EngineKind, JobConf, ShuffleEngineKind};
pub use costs::CostModel;
pub use counters::Counters;
pub use engine::{run_job, Engine};
pub use faults::{FailureDiag, FaultPlan, JobOutcome, NodeCrash, NodeSlowdown};
pub use io::DataType;
pub use job::{JobResult, JobSpec, PartitionerFactory, TaskTiming};
pub use multijob::{ArrivalProcess, MultiJobResult, MultiJobSpec, TenantReport, TenantSpec};
pub use partition::{HashPartitioner, HashPartitionerFactory, Partitioner};
