//! Task scheduling: MRv1 slots and YARN containers.
//!
//! The paper evaluates the same micro-benchmarks on Hadoop 1.x (fixed map
//! and reduce slots per TaskTracker, assigned by the JobTracker on
//! heartbeats) and on Hadoop 2.x / YARN (a per-node container pool sized
//! by memory and cores, negotiated by the ApplicationMaster). Both
//! policies live here behind one deterministic scheduler type.

use std::collections::VecDeque;

use cluster::NodeSpec;
use simcore::time::SimDuration;

use crate::conf::{EngineKind, JobConf};

/// A task launch decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Launch {
    /// True to launch a map, false a reduce.
    pub is_map: bool,
    /// Task index within its kind.
    pub index: u32,
    /// Slave node to run on.
    pub node: usize,
}

/// Deterministic slot/container scheduler.
#[derive(Debug)]
pub struct Scheduler {
    kind: EngineKind,
    n_nodes: usize,
    /// MRv1: map slots per node. YARN: unused.
    map_cap: u32,
    /// MRv1: reduce slots per node. YARN: unused.
    reduce_cap: u32,
    /// YARN: total containers per node.
    pool_cap: Vec<u32>,
    map_running: Vec<u32>,
    reduce_running: Vec<u32>,
    pending_maps: VecDeque<u32>,
    pending_reduces: VecDeque<u32>,
    maps_total: u32,
    maps_done: u32,
    slowstart: f64,
    rr: usize,
    /// Crashed nodes: never schedule again, slots gone.
    dead: Vec<bool>,
    /// Blacklisted nodes: healthy but excluded from new assignments.
    blacklisted: Vec<bool>,
}

impl Scheduler {
    /// Build a scheduler for `conf` over `n_nodes` slaves of `spec`.
    pub fn new(conf: &JobConf, n_nodes: usize, spec: &NodeSpec) -> Self {
        let mut pool_cap = vec![yarn_pool(conf, spec); n_nodes];
        if conf.engine == EngineKind::Yarn {
            // The MRAppMaster occupies one container on the first node.
            pool_cap[0] = pool_cap[0].saturating_sub(1).max(1);
        }
        Scheduler {
            kind: conf.engine,
            n_nodes,
            map_cap: conf.map_slots_per_node,
            reduce_cap: conf.reduce_slots_per_node,
            pool_cap,
            map_running: vec![0; n_nodes],
            reduce_running: vec![0; n_nodes],
            pending_maps: (0..conf.num_maps).collect(),
            pending_reduces: (0..conf.num_reduces).collect(),
            maps_total: conf.num_maps,
            maps_done: 0,
            slowstart: conf.reduce_slowstart,
            rr: 0,
            dead: vec![false; n_nodes],
            blacklisted: vec![false; n_nodes],
        }
    }

    /// Heartbeat interval for this engine: MRv1 TaskTrackers beat fast on
    /// small clusters; the YARN AM-RM allocate cycle is a full second.
    pub fn heartbeat(&self) -> SimDuration {
        match self.kind {
            EngineKind::MRv1 => SimDuration::from_millis(300),
            EngineKind::Yarn => SimDuration::from_secs(1),
        }
    }

    /// Record a finished task, freeing its slot/container.
    pub fn on_task_done(&mut self, is_map: bool, node: usize) {
        if self.dead[node] {
            return;
        }
        if is_map {
            self.map_running[node] -= 1;
            self.maps_done += 1;
        } else {
            self.reduce_running[node] -= 1;
        }
    }

    /// Free the slot of an attempt that did not complete (failed or was
    /// killed) without counting a task completion.
    pub fn release_slot(&mut self, is_map: bool, node: usize) {
        if self.dead[node] {
            return;
        }
        if is_map {
            self.map_running[node] -= 1;
        } else {
            self.reduce_running[node] -= 1;
        }
    }

    /// A previously completed map's output was lost (node crash); its
    /// completion no longer counts toward reduce slow-start.
    pub fn map_result_lost(&mut self) {
        self.maps_done -= 1;
    }

    /// Take a node out of service permanently. All of its slots vanish;
    /// the engine kills the attempts that were running there.
    pub fn mark_dead(&mut self, node: usize) {
        self.dead[node] = true;
        self.map_running[node] = 0;
        self.reduce_running[node] = 0;
    }

    /// Has `node` crashed?
    pub fn is_dead(&self, node: usize) -> bool {
        self.dead[node]
    }

    /// Exclude `node` from future assignments after repeated task
    /// failures. Refuses (returning `false`) when it is the last node
    /// still accepting work, so the job cannot deadlock.
    pub fn blacklist(&mut self, node: usize) -> bool {
        if self.dead[node] || self.blacklisted[node] {
            return false;
        }
        if self.schedulable_nodes() <= 1 {
            return false;
        }
        self.blacklisted[node] = true;
        true
    }

    /// Is `node` blacklisted?
    pub fn is_blacklisted(&self, node: usize) -> bool {
        self.blacklisted[node]
    }

    /// Nodes that have not crashed.
    pub fn healthy_nodes(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }

    /// Nodes still accepting new work (alive and not blacklisted).
    pub fn schedulable_nodes(&self) -> usize {
        (0..self.n_nodes)
            .filter(|&n| !self.dead[n] && !self.blacklisted[n])
            .count()
    }

    /// Claim a slot for a speculative backup attempt, preferring any node
    /// other than `avoid` (where the original attempt is running).
    /// Returns the chosen node, or `None` when no capacity exists.
    pub fn reserve_for_backup(&mut self, is_map: bool, avoid: usize) -> Option<usize> {
        let mut fallback = None;
        for off in 0..self.n_nodes {
            let node = (self.rr + off) % self.n_nodes;
            let free = if is_map {
                self.free_for_map(node)
            } else {
                self.free_for_reduce(node)
            };
            if !free {
                continue;
            }
            if node == avoid {
                fallback.get_or_insert(node);
                continue;
            }
            self.rr = (node + 1) % self.n_nodes;
            self.bump_running(is_map, node);
            return Some(node);
        }
        let node = fallback?;
        self.rr = (node + 1) % self.n_nodes;
        self.bump_running(is_map, node);
        Some(node)
    }

    fn bump_running(&mut self, is_map: bool, node: usize) {
        if is_map {
            self.map_running[node] += 1;
        } else {
            self.reduce_running[node] += 1;
        }
    }

    /// Reducers may launch once the completed-maps fraction reaches
    /// slow-start.
    fn reduces_allowed(&self) -> bool {
        let need = (self.slowstart * f64::from(self.maps_total)).ceil() as u32;
        self.maps_done >= need
    }

    fn free_for_map(&self, node: usize) -> bool {
        if self.dead[node] || self.blacklisted[node] {
            return false;
        }
        match self.kind {
            EngineKind::MRv1 => self.map_running[node] < self.map_cap,
            EngineKind::Yarn => {
                self.map_running[node] + self.reduce_running[node] < self.pool_cap[node]
            }
        }
    }

    fn free_for_reduce(&self, node: usize) -> bool {
        if self.dead[node] || self.blacklisted[node] {
            return false;
        }
        match self.kind {
            EngineKind::MRv1 => self.reduce_running[node] < self.reduce_cap,
            EngineKind::Yarn => {
                let used = self.map_running[node] + self.reduce_running[node];
                if used >= self.pool_cap[node] {
                    return false;
                }
                // While maps are still waiting, the AM holds back reducers
                // to at most half the pool so maps cannot starve.
                if !self.pending_maps.is_empty() {
                    self.reduce_running[node] < self.pool_cap[node] / 2
                } else {
                    true
                }
            }
        }
    }

    /// Make all launch decisions possible right now.
    pub fn tick(&mut self) -> Vec<Launch> {
        let mut launches = Vec::new();
        // Maps first, spread round-robin.
        self.assign(true, &mut launches);
        if self.reduces_allowed() {
            self.assign(false, &mut launches);
        }
        launches
    }

    fn assign(&mut self, is_map: bool, launches: &mut Vec<Launch>) {
        loop {
            let pending = if is_map {
                &self.pending_maps
            } else {
                &self.pending_reduces
            };
            if pending.is_empty() {
                return;
            }
            // Find a node with a free slot, starting from the round-robin
            // cursor so tasks spread evenly.
            let mut found = None;
            for off in 0..self.n_nodes {
                let node = (self.rr + off) % self.n_nodes;
                let free = if is_map {
                    self.free_for_map(node)
                } else {
                    self.free_for_reduce(node)
                };
                if free {
                    found = Some(node);
                    break;
                }
            }
            let Some(node) = found else { return };
            self.rr = (node + 1) % self.n_nodes;
            let index = if is_map {
                self.map_running[node] += 1;
                self.pending_maps.pop_front().expect("pending map")
            } else {
                self.reduce_running[node] += 1;
                self.pending_reduces.pop_front().expect("pending reduce")
            };
            launches.push(Launch {
                is_map,
                index,
                node,
            });
        }
    }

    /// Put a task back in the launch queue after a failed attempt (the
    /// JobTracker / AM re-schedules failed tasks on the next heartbeat).
    pub fn requeue(&mut self, is_map: bool, index: u32) {
        if is_map {
            self.pending_maps.push_back(index);
        } else {
            self.pending_reduces.push_back(index);
        }
    }

    /// Remaining unlaunched maps.
    pub fn pending_maps(&self) -> usize {
        self.pending_maps.len()
    }

    /// Remaining unlaunched reduces.
    pub fn pending_reduces(&self) -> usize {
        self.pending_reduces.len()
    }
}

/// YARN containers per node: bounded by cores and by memory.
fn yarn_pool(conf: &JobConf, spec: &NodeSpec) -> u32 {
    let by_mem = spec.memory.as_bytes() / conf.container_memory.as_bytes().max(1);
    (by_mem as u32).min(spec.cores).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::NodeSpec;

    fn conf(maps: u32, reduces: u32, engine: EngineKind) -> JobConf {
        JobConf {
            num_maps: maps,
            num_reduces: reduces,
            engine,
            ..JobConf::default()
        }
    }

    #[test]
    fn mrv1_single_wave_fills_slots() {
        // 16 maps, 4 nodes x 4 slots: all launch in one tick.
        let mut c = conf(16, 8, EngineKind::MRv1);
        c.map_slots_per_node = 4;
        let mut s = Scheduler::new(&c, 4, &NodeSpec::westmere());
        let launches = s.tick();
        let maps: Vec<_> = launches.iter().filter(|l| l.is_map).collect();
        assert_eq!(maps.len(), 16);
        // Even spread: 4 per node.
        for node in 0..4 {
            assert_eq!(maps.iter().filter(|l| l.node == node).count(), 4);
        }
        // Slow-start holds all reducers back (no map finished yet).
        assert!(launches.iter().all(|l| l.is_map));
        assert_eq!(s.pending_reduces(), 8);
    }

    #[test]
    fn mrv1_two_waves_when_slots_short() {
        let mut c = conf(16, 1, EngineKind::MRv1);
        c.map_slots_per_node = 2;
        let mut s = Scheduler::new(&c, 4, &NodeSpec::westmere());
        assert_eq!(s.tick().len(), 8);
        assert_eq!(s.pending_maps(), 8);
        // Nothing new until slots free up.
        assert!(s.tick().is_empty());
        s.on_task_done(true, 0);
        let wave2 = s.tick();
        // One freed map slot refills; the lone reducer also clears
        // slow-start (1 of 16 maps done >= ceil(0.05*16) = 1).
        let maps2: Vec<_> = wave2.iter().filter(|l| l.is_map).collect();
        assert_eq!(maps2.len(), 1);
        assert_eq!(maps2[0].node, 0);
    }

    #[test]
    fn reducers_wait_for_slowstart() {
        let c = conf(20, 4, EngineKind::MRv1);
        let mut s = Scheduler::new(&c, 4, &NodeSpec::westmere());
        let first = s.tick();
        assert_eq!(first.iter().filter(|l| !l.is_map).count(), 0);
        // ceil(0.05 * 20) = 1 map must complete.
        s.on_task_done(true, 0);
        let second = s.tick();
        let reduces = second.iter().filter(|l| !l.is_map).count();
        assert_eq!(reduces, 4);
    }

    #[test]
    fn yarn_pool_respects_memory_and_cores() {
        let c = conf(1, 1, EngineKind::Yarn);
        // Westmere: 24 GiB / 1 GiB containers = 24, capped by 8 cores.
        assert_eq!(yarn_pool(&c, &NodeSpec::westmere()), 8);
        let mut c2 = c.clone();
        c2.container_memory = simcore::units::ByteSize::from_gib(16);
        // 24/16 = 1 container by memory.
        assert_eq!(yarn_pool(&c2, &NodeSpec::westmere()), 1);
    }

    #[test]
    fn yarn_reducers_leave_headroom_for_maps() {
        let c = conf(64, 16, EngineKind::Yarn);
        let mut s = Scheduler::new(&c, 8, &NodeSpec::westmere());
        let w1 = s.tick();
        // Pool is 8 per node (7 on node 0 for the AM) -> 63 maps launch.
        assert_eq!(w1.iter().filter(|l| l.is_map).count(), 63);
        s.on_task_done(true, 1);
        s.on_task_done(true, 1);
        s.on_task_done(true, 1);
        s.on_task_done(true, 1);
        let w2 = s.tick();
        // 4 slots freed: with 60 maps done? No: 4 done of 64, slowstart
        // ceil(0.05*64)=4 -> reducers now allowed, but maps still pending
        // get priority and refill all four slots.
        assert_eq!(w2.iter().filter(|l| l.is_map).count(), 1);
        assert!(w2.iter().filter(|l| !l.is_map).count() <= 4);
    }

    #[test]
    fn dead_nodes_never_receive_work() {
        let c = conf(8, 2, EngineKind::MRv1);
        let mut s = Scheduler::new(&c, 2, &NodeSpec::westmere());
        s.mark_dead(0);
        assert_eq!(s.healthy_nodes(), 1);
        let launches = s.tick();
        assert!(!launches.is_empty());
        assert!(launches.iter().all(|l| l.node == 1));
    }

    #[test]
    fn blacklist_spares_the_last_schedulable_node() {
        let c = conf(4, 1, EngineKind::MRv1);
        let mut s = Scheduler::new(&c, 3, &NodeSpec::westmere());
        assert!(s.blacklist(0));
        assert!(s.blacklist(1));
        // Node 2 is the last one accepting work.
        assert!(!s.blacklist(2));
        assert!(!s.is_blacklisted(2));
        assert!(s.tick().iter().all(|l| l.node == 2));
    }

    #[test]
    fn backup_reservation_avoids_the_original_node() {
        let mut c = conf(2, 1, EngineKind::MRv1);
        c.map_slots_per_node = 2;
        let mut s = Scheduler::new(&c, 2, &NodeSpec::westmere());
        let launches = s.tick();
        assert_eq!(launches.len(), 2);
        let node = s.reserve_for_backup(true, 0).expect("capacity exists");
        assert_eq!(node, 1);
        // Node 1 is now full; only the avoided node has room left.
        let fallback = s.reserve_for_backup(true, 0).expect("falls back");
        assert_eq!(fallback, 0);
        assert!(s.reserve_for_backup(true, 0).is_none());
    }

    #[test]
    fn all_tasks_eventually_launch() {
        let c = conf(40, 10, EngineKind::MRv1);
        let mut s = Scheduler::new(&c, 4, &NodeSpec::westmere());
        let mut done_maps = 0;
        let mut done_reduces = 0;
        let mut guard = 0;
        while done_maps < 40 || done_reduces < 10 {
            for l in s.tick() {
                // Complete tasks instantly for this test.
                s.on_task_done(l.is_map, l.node);
                if l.is_map {
                    done_maps += 1;
                } else {
                    done_reduces += 1;
                }
            }
            guard += 1;
            assert!(guard < 100, "scheduler stalled");
        }
    }
}
