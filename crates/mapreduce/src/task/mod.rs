//! Task state machines and the environment they act on.
//!
//! The engine routes subsystem completions (CPU, disk, network) to tasks
//! through correlation tags. A tag encodes `(task id, stage, sequence)`;
//! tag 0 is the *sink* — work that consumes simulated resources but needs
//! no follow-up (e.g. sender-side protocol processing).

pub(crate) mod map;
pub(crate) mod reduce;

use cluster::{CpuSim, DiskSim};
use simcore::event::EventQueue;
use simcore::time::SimTime;
use simcore::trace::{Span, Trace};
use simnet::{Network, ProtocolModel};

use crate::conf::JobConf;
use crate::costs::CostModel;
use crate::counters::Counters;
use crate::faults::FaultInjector;
use crate::job::JobSpec;
use crate::shuffle::rdma::ShuffleModel;
use crate::shuffle::ShuffleRegistry;

/// Pipeline stages a completion can belong to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Stage {
    /// Task JVM launch delay.
    Jvm,
    /// One map collect+sort chunk.
    MapChunkCpu,
    /// Asynchronous spill write of a map chunk.
    MapSpillWrite,
    /// Map-side final merge: reading spill files.
    MapMergeRead,
    /// Map-side final merge: CPU.
    MapMergeCpu,
    /// Map-side final merge: writing the merged output.
    MapMergeWrite,
    /// Shuffle fetch: uncached source-side disk read.
    FetchSrcRead,
    /// Shuffle fetch: the network transfer.
    FetchNet,
    /// Shuffle fetch: receiver-side protocol processing.
    FetchCpu,
    /// Reduce-side spill of accumulated shuffle data.
    ReduceSpillWrite,
    /// Reduce-side final merge: reading spilled segments.
    ReduceMergeRead,
    /// Reduce-side final merge: CPU.
    ReduceMergeCpu,
    /// The reduce function itself.
    ReduceCpu,
    /// Reduce output write (non-null output formats).
    ReduceOutWrite,
    /// Timer: retry a failed shuffle fetch after its backoff delay.
    FetchRetry,
}

impl Stage {
    fn to_u8(self) -> u8 {
        match self {
            Stage::Jvm => 1,
            Stage::MapChunkCpu => 2,
            Stage::MapSpillWrite => 3,
            Stage::MapMergeRead => 4,
            Stage::MapMergeCpu => 5,
            Stage::MapMergeWrite => 6,
            Stage::FetchSrcRead => 7,
            Stage::FetchNet => 8,
            Stage::FetchCpu => 9,
            Stage::ReduceSpillWrite => 10,
            Stage::ReduceMergeRead => 11,
            Stage::ReduceMergeCpu => 12,
            Stage::ReduceCpu => 13,
            Stage::ReduceOutWrite => 14,
            Stage::FetchRetry => 15,
        }
    }

    fn from_u8(v: u8) -> Stage {
        match v {
            1 => Stage::Jvm,
            2 => Stage::MapChunkCpu,
            3 => Stage::MapSpillWrite,
            4 => Stage::MapMergeRead,
            5 => Stage::MapMergeCpu,
            6 => Stage::MapMergeWrite,
            7 => Stage::FetchSrcRead,
            8 => Stage::FetchNet,
            9 => Stage::FetchCpu,
            10 => Stage::ReduceSpillWrite,
            11 => Stage::ReduceMergeRead,
            12 => Stage::ReduceMergeCpu,
            13 => Stage::ReduceCpu,
            14 => Stage::ReduceOutWrite,
            15 => Stage::FetchRetry,
            other => panic!("invalid stage byte {other}"),
        }
    }
}

/// Phase names used in trace spans. One vocabulary for both task kinds so
/// breakdowns and figure labels stay consistent.
pub(crate) mod phase {
    /// JVM start-up delay (both kinds).
    pub const JVM: &str = "jvm";
    /// Map collect + sort, including overlapped spill writes.
    pub const MAP: &str = "map";
    /// Map-side final merge of spill files.
    pub const MAP_MERGE: &str = "map_merge";
    /// Reduce-side shuffle (fetch + in-memory merge backpressure).
    pub const SHUFFLE: &str = "shuffle";
    /// Reduce-side final merge.
    pub const REDUCE_MERGE: &str = "reduce_merge";
    /// The reduce function.
    pub const REDUCE: &str = "reduce";
    /// Reduce output write.
    pub const OUTPUT: &str = "output";
}

/// Per-attempt phase cursor: tracks the currently open phase and emits a
/// [`Span`] each time the attempt moves to the next one (or is cut short).
pub(crate) struct PhaseCursor {
    kind: &'static str,
    index: u32,
    attempt: u32,
    node: u32,
    lane: u32,
    cur: &'static str,
    since: SimTime,
}

impl PhaseCursor {
    pub fn new(
        kind: &'static str,
        index: u32,
        attempt: u32,
        node: usize,
        lane: u32,
        now: SimTime,
    ) -> PhaseCursor {
        PhaseCursor {
            kind,
            index,
            attempt,
            node: node as u32,
            lane,
            cur: phase::JVM,
            since: now,
        }
    }

    /// The currently open phase.
    pub fn current(&self) -> &'static str {
        self.cur
    }

    /// Close the open phase (attributing `bytes` to it) and open `next`.
    pub fn switch(&mut self, trace: &mut Trace, now: SimTime, next: &'static str, bytes: u64) {
        self.emit(trace, now, bytes, false);
        self.cur = next;
        self.since = now;
    }

    /// Close the open phase without opening another (commit or kill).
    pub fn close(&mut self, trace: &mut Trace, now: SimTime, bytes: u64, aborted: bool) {
        self.emit(trace, now, bytes, aborted);
        self.since = now;
    }

    fn emit(&self, trace: &mut Trace, now: SimTime, bytes: u64, aborted: bool) {
        if !trace.is_enabled() {
            return;
        }
        trace.span(Span {
            phase: self.cur,
            kind: self.kind,
            index: self.index,
            attempt: self.attempt,
            node: self.node,
            lane: self.lane,
            start: self.since,
            end: now,
            bytes,
            aborted,
        });
    }
}

/// The sink tag: resource consumption with no follow-up event.
pub(crate) const SINK_TAG: u64 = 0;

/// Encode a correlation tag.
pub(crate) fn tag(task: u32, stage: Stage, seq: u32) -> u64 {
    (u64::from(task) + 1) << 40 | u64::from(stage.to_u8()) << 32 | u64::from(seq)
}

/// Decode a correlation tag; `None` for the sink.
pub(crate) fn untag(t: u64) -> Option<(u32, Stage, u32)> {
    if t == SINK_TAG {
        None
    } else {
        let task = (t >> 40) as u32 - 1;
        let stage = Stage::from_u8((t >> 32) as u8);
        let seq = t as u32;
        Some((task, stage, seq))
    }
}

/// Out-of-band signals a task raises for the engine.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Note {
    /// A map committed its output; reducers can fetch it.
    MapOutputReady(u32),
    /// The attempt in `slot` finished; the scheduler can reuse its slot
    /// and any sibling (speculative) attempts must be killed.
    TaskFinished { slot: u32 },
    /// The attempt in `slot` gave up (shuffle fetch retries exhausted);
    /// the engine treats it like any other failed attempt.
    AttemptFailed { slot: u32 },
    /// The attempt in `slot` reached commit but a sibling attempt had
    /// already committed (speculative commit race, first-wins); its output
    /// was dropped and the engine counts it as killed, not failed.
    AttemptSuperseded { slot: u32 },
}

/// Mutable view of the simulation a task handler acts through.
pub(crate) struct Env<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// CPU simulator.
    pub cpu: &'a mut CpuSim,
    /// Disk simulator.
    pub disk: &'a mut DiskSim,
    /// Network simulator.
    pub net: &'a mut Network,
    /// Job counters.
    pub counters: &'a mut Counters,
    /// Job configuration.
    pub conf: &'a JobConf,
    /// Workload description.
    pub spec: &'a JobSpec,
    /// CPU cost model.
    pub costs: &'a CostModel,
    /// Network protocol model in effect.
    pub protocol: ProtocolModel,
    /// Shuffle engine behaviour (TCP vs RDMA/MRoIB).
    pub shuffle_model: ShuffleModel,
    /// Map output registry + page-cache model.
    pub registry: &'a mut ShuffleRegistry,
    /// Fault decisions for this run.
    pub faults: &'a FaultInjector,
    /// Engine timer queue (tags dispatch back to tasks when due), used
    /// for fetch-retry backoff delays.
    pub timers: &'a mut EventQueue<u64>,
    /// Signals raised during this dispatch.
    pub notes: &'a mut Vec<Note>,
    /// Phase-span recorder (disabled unless the run is traced).
    pub trace: &'a mut Trace,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trips() {
        for task in [0u32, 1, 7, 4095] {
            for stage in [Stage::Jvm, Stage::FetchNet, Stage::ReduceOutWrite] {
                for seq in [0u32, 1, u32::MAX] {
                    let t = tag(task, stage, seq);
                    assert_eq!(untag(t), Some((task, stage, seq)));
                    assert_ne!(t, SINK_TAG);
                }
            }
        }
        assert_eq!(untag(SINK_TAG), None);
    }

    #[test]
    fn stage_bytes_round_trip() {
        for v in 1..=15u8 {
            assert_eq!(Stage::from_u8(v).to_u8(), v);
        }
    }
}
