//! Map task state machine.
//!
//! A map task in the stand-alone benchmark reads one dummy record from its
//! `NullInputFormat` split and generates `pairs_per_map` key/value pairs
//! into the sort buffer, spilling sorted runs to local disk every
//! `io.sort.mb * io.sort.spill.percent` bytes. Spill writes are
//! asynchronous (Hadoop's SpillThread) and overlap record generation.
//! When more than one spill exists, a final multi-pass merge produces the
//! single map output file the shuffle serves.
//!
//! ```text
//! Jvm ─ chunk0 cpu ─ chunk1 cpu ─ … ─┬─ (all spill writes) ─┐
//!          └─ spill0 write ──────────┘                      │
//!                         MergeRead ─ MergeCpu ─ MergeWrite ┴─ commit
//! ```

use cluster::IoKind;
use simcore::time::SimTime;
use simcore::trace::Trace;
use simcore::units::ByteSize;

use crate::ifile;
use crate::shuffle::MapOutput;

use super::{phase, tag, Env, Note, PhaseCursor, Stage};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Jvm,
    Collecting,
    AwaitSpills,
    MergeRead,
    MergeCpu,
    MergeWrite,
    Done,
}

/// A map task attempt in flight.
pub(crate) struct MapTask {
    /// Attempt slot id (correlation-tag key).
    pub slot: u32,
    /// Map index.
    pub index: u32,
    /// Slave node.
    pub node: usize,
    /// Launch time.
    pub start: SimTime,
    /// Completion time.
    pub finish: Option<SimTime>,
    state: State,
    /// Per-chunk serialized bytes (spill-sized).
    chunk_bytes: Vec<u64>,
    /// Per-chunk record counts.
    chunk_records: Vec<u64>,
    next_chunk: usize,
    spills_outstanding: u32,
    collect_done: bool,
    /// IFile bytes of each reduce partition (with per-segment overhead).
    partition_bytes: Vec<u64>,
    partition_records: Vec<u64>,
    /// Total output bytes across partitions.
    out_bytes: u64,
    /// Deterministic per-task runtime variability factor (JIT, GC, OS
    /// noise), applied to all CPU work.
    jitter: f64,
    /// Injected fault: the attempt runs its whole pipeline, then dies at
    /// commit instead of registering its output.
    doomed: bool,
    /// Bytes passing through the final merge (intermediate merge rounds
    /// plus the final pass over everything).
    merge_bytes: u64,
    /// Open phase span, for tracing.
    cursor: PhaseCursor,
}

impl MapTask {
    /// Create the task and submit its JVM start. `partition_records[r]` is
    /// the record count this map sends to reducer `r`, as computed by the
    /// job's partitioner.
    #[allow(clippy::too_many_arguments)]
    pub fn launch(
        slot: u32,
        index: u32,
        node: usize,
        attempt: u32,
        partition_records: Vec<u64>,
        jitter: f64,
        doomed: bool,
        env: &mut Env<'_>,
    ) -> MapTask {
        let rec_len = env.spec.record_ifile_len();
        let seg_overhead = (ifile::EOF_MARKER_LEN + ifile::CHECKSUM_LEN) as u64;
        let partition_bytes: Vec<u64> = partition_records
            .iter()
            .map(|&r| r * rec_len + seg_overhead)
            .collect();
        let out_bytes: u64 = partition_bytes.iter().sum();
        let records: u64 = partition_records.iter().sum();

        // Spill chunking over the sort buffer.
        let spill = env.conf.spill_threshold().as_bytes().max(1);
        let n_chunks = out_bytes.div_ceil(spill).max(1);
        let mut chunk_bytes = Vec::with_capacity(n_chunks as usize);
        let mut chunk_records = Vec::with_capacity(n_chunks as usize);
        let mut rem_b = out_bytes;
        let mut rem_r = records;
        for i in 0..n_chunks {
            let b = if i + 1 == n_chunks {
                rem_b
            } else {
                spill.min(rem_b)
            };
            let r = if i + 1 == n_chunks {
                rem_r
            } else {
                (records as u128 * b as u128 / out_bytes.max(1) as u128) as u64
            };
            rem_b -= b;
            rem_r -= r;
            chunk_bytes.push(b);
            chunk_records.push(r);
        }

        let merge_bytes = if n_chunks > 1 {
            merge_traffic(&chunk_bytes, env.conf.io_sort_factor)
        } else {
            0
        };

        let task = MapTask {
            slot,
            index,
            node,
            start: env.now,
            finish: None,
            state: State::Jvm,
            chunk_bytes,
            chunk_records,
            next_chunk: 0,
            spills_outstanding: 0,
            collect_done: false,
            partition_bytes,
            partition_records,
            out_bytes,
            merge_bytes,
            jitter,
            doomed,
            cursor: PhaseCursor::new("map", index, attempt, node, slot, env.now),
        };
        env.cpu.submit(
            env.now,
            node,
            env.costs.jvm_startup_s * jitter,
            tag(slot, Stage::Jvm, 0),
        );
        task
    }

    /// Total records this map will emit.
    pub fn records(&self) -> u64 {
        self.partition_records.iter().sum()
    }

    /// Handle a completion routed to this task.
    pub fn on_event(&mut self, stage: Stage, seq: u32, env: &mut Env<'_>) {
        match (self.state, stage) {
            (State::Jvm, Stage::Jvm) => {
                env.counters.map_input_records += 1; // the dummy split record
                self.state = State::Collecting;
                self.cursor.switch(env.trace, env.now, phase::MAP, 0);
                self.submit_chunk(env);
            }
            (State::Collecting, Stage::MapChunkCpu) => {
                let idx = seq as usize;
                // Spill the chunk asynchronously.
                let bytes = self.chunk_bytes[idx];
                env.disk.submit_cached(
                    env.now,
                    self.node,
                    ByteSize::from_bytes(bytes),
                    IoKind::Write,
                    tag(self.slot, Stage::MapSpillWrite, seq),
                );
                self.spills_outstanding += 1;
                env.counters.spilled_records_map += self.chunk_records[idx];
                env.counters.disk_write_bytes += bytes;

                self.next_chunk += 1;
                if self.next_chunk < self.chunk_bytes.len() {
                    self.submit_chunk(env);
                } else {
                    self.collect_done = true;
                    self.state = State::AwaitSpills;
                    self.maybe_finish_collect(env);
                }
            }
            (_, Stage::MapSpillWrite) => {
                self.spills_outstanding -= 1;
                self.maybe_finish_collect(env);
            }
            (State::MergeRead, Stage::MapMergeRead) => {
                self.state = State::MergeCpu;
                env.cpu.submit(
                    env.now,
                    self.node,
                    env.costs.merge(self.merge_bytes) * self.jitter,
                    tag(self.slot, Stage::MapMergeCpu, 0),
                );
            }
            (State::MergeCpu, Stage::MapMergeCpu) => {
                self.state = State::MergeWrite;
                env.counters.disk_write_bytes += self.merge_bytes;
                env.disk.submit_cached(
                    env.now,
                    self.node,
                    ByteSize::from_bytes(self.merge_bytes),
                    IoKind::Write,
                    tag(self.slot, Stage::MapMergeWrite, 0),
                );
            }
            (State::MergeWrite, Stage::MapMergeWrite) => {
                // Spill files are deleted after the merge; drop any of
                // their write-back still queued.
                env.disk
                    .discard_writeback(self.node, ByteSize::from_bytes(self.out_bytes));
                self.commit(env);
            }
            (state, stage) => {
                panic!("map {}: unexpected {stage:?} in {state:?}", self.index)
            }
        }
    }

    fn submit_chunk(&mut self, env: &mut Env<'_>) {
        let idx = self.next_chunk;
        let records = self.chunk_records[idx];
        let bytes = self.chunk_bytes[idx];
        let work = (env
            .costs
            .map_collect(records, bytes, env.spec.data_type.cpu_factor())
            + env.costs.sort(records))
            * self.jitter;
        env.counters.cpu_core_seconds += work;
        env.cpu.submit(
            env.now,
            self.node,
            work,
            tag(self.slot, Stage::MapChunkCpu, idx as u32),
        );
    }

    fn maybe_finish_collect(&mut self, env: &mut Env<'_>) {
        if !(self.collect_done && self.spills_outstanding == 0) {
            return;
        }
        if self.state != State::AwaitSpills {
            return;
        }
        if self.chunk_bytes.len() > 1 {
            // Final merge of the spill files.
            self.state = State::MergeRead;
            self.cursor
                .switch(env.trace, env.now, phase::MAP_MERGE, self.out_bytes);
            env.counters.disk_read_bytes += self.merge_bytes;
            env.counters.cpu_core_seconds += env.costs.merge(self.merge_bytes);
            env.disk.submit_cached(
                env.now,
                self.node,
                ByteSize::from_bytes(self.merge_bytes),
                IoKind::Read,
                tag(self.slot, Stage::MapMergeRead, 0),
            );
        } else {
            // A single spill is already the final output file.
            self.commit(env);
        }
    }

    fn commit(&mut self, env: &mut Env<'_>) {
        if self.doomed {
            // The injected fault strikes during commit: all the attempt's
            // work (already charged to the physical counters) is wasted,
            // and nothing is registered for reducers to fetch.
            env.notes.push(Note::AttemptFailed { slot: self.slot });
            return;
        }
        let committed = env.registry.register(
            self.index,
            MapOutput {
                node: self.node,
                partition_bytes: self.partition_bytes.clone(),
                partition_records: self.partition_records.clone(),
            },
        );
        if !committed {
            // A sibling (speculative) attempt committed first. First-wins:
            // this attempt's output is dropped and the engine retires it
            // as killed, charging nothing to the logical counters.
            env.notes.push(Note::AttemptSuperseded { slot: self.slot });
            return;
        }
        let phase_bytes = if self.cursor.current() == phase::MAP {
            self.out_bytes
        } else {
            self.merge_bytes
        };
        self.cursor.close(env.trace, env.now, phase_bytes, false);
        self.state = State::Done;
        self.finish = Some(env.now);
        env.counters.maps_completed += 1;
        // Logical output counters are charged at commit (and reversed if a
        // node crash later invalidates the output), so re-executed and
        // killed attempts never inflate them.
        env.counters.map_output_records += self.records();
        let raw = (env.spec.key_size + env.spec.value_size) as u64 * self.records();
        env.counters.map_output_bytes += raw;
        env.counters.map_output_materialized_bytes += self.out_bytes;
        env.notes.push(Note::MapOutputReady(self.index));
        env.notes.push(Note::TaskFinished { slot: self.slot });
    }

    /// Close the open phase span with an `aborted` marker — called by the
    /// engine when the attempt is killed or fails before committing.
    pub fn abort_span(&mut self, now: SimTime, trace: &mut Trace) {
        if self.state != State::Done {
            self.cursor.close(trace, now, 0, true);
        }
    }

    /// True once the task committed.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }
}

/// Total bytes read (and equally written) by a `factor`-way merge of the
/// given runs: Hadoop's `Merger` first collapses the *smallest* runs in
/// intermediate rounds until at most `factor` remain, then the final pass
/// streams everything into the output file. The returned figure includes
/// the final pass.
fn merge_traffic(runs: &[u64], factor: u32) -> u64 {
    let factor = (factor.max(2)) as usize;
    let total: u64 = runs.iter().sum();
    let mut sizes: Vec<u64> = runs.to_vec();
    sizes.sort_unstable_by(|a, b| b.cmp(a)); // descending; pop() takes smallest
    let mut intermediate = 0u64;
    while sizes.len() > factor {
        // Merge just enough of the smallest runs to approach `factor`.
        let k = factor.min(sizes.len() - factor + 1);
        let mut merged = 0u64;
        for _ in 0..k {
            merged += sizes.pop().expect("len > factor >= k");
        }
        intermediate += merged;
        // Re-insert the merged run, keeping descending order.
        let pos = sizes.partition_point(|&s| s > merged);
        sizes.insert(pos, merged);
    }
    intermediate + total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_traffic_final_pass_only_when_few_runs() {
        // <= factor runs: just the final pass.
        assert_eq!(merge_traffic(&[80, 80, 80], 10), 240);
        assert_eq!(merge_traffic(&[100], 10), 100);
    }

    #[test]
    fn merge_traffic_intermediate_round() {
        // 13 equal runs, factor 10: one intermediate merge of the 4
        // smallest (13 - 10 + 1), then the final pass over everything.
        let runs = vec![80u64; 13];
        assert_eq!(merge_traffic(&runs, 10), 4 * 80 + 13 * 80);
    }

    #[test]
    fn merge_traffic_prefers_small_runs() {
        // The intermediate round must pick the smallest runs.
        let runs = vec![1000, 1000, 10, 10, 10];
        // factor 4: k = min(4, 5-4+1) = 2 smallest (10+10) merged.
        assert_eq!(merge_traffic(&runs, 4), 20 + 2030);
    }

    #[test]
    fn merge_traffic_many_rounds() {
        let runs = vec![1u64; 100];
        let t = merge_traffic(&runs, 10);
        // 100 runs need several intermediate rounds but traffic stays far
        // below quadratic.
        assert!(t > 100 && t < 300, "traffic {t}");
    }
}
