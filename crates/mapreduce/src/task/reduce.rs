//! Reduce task state machine.
//!
//! A reducer's life: JVM start → shuffle (fetch every map's partition
//! segment with up to `mapred.reduce.parallel.copies` concurrent fetches,
//! spilling to disk when the in-memory buffer fills) → final merge →
//! the reduce function → output (discarded by `NullOutputFormat`).
//!
//! Each fetch is a pipeline: an uncached fraction of the segment is read
//! from the source node's disks, the bytes cross the network as one flow,
//! and — on the socket path — both endpoints pay protocol CPU. The
//! RDMA/MRoIB engine skips the CPU charge and overlaps merging (see
//! [`crate::shuffle::rdma`]).
//!
//! Fetches can fail: the fault plan injects fetch failures, and node
//! crashes invalidate in-flight transfers from the lost node. Failed
//! fetches retry with exponential backoff (Hadoop's
//! `ShuffleScheduler`/`Fetcher` penalty box); when a map's segment stays
//! unfetchable past `fetch_max_retries`, the whole reduce attempt reports
//! failure to the engine, exactly like a crashed attempt.

use std::collections::{BTreeMap, VecDeque};

use cluster::IoKind;
use simcore::time::{SimDuration, SimTime};
use simcore::trace::Trace;
use simcore::units::ByteSize;
use simnet::NodeId;

use super::{phase, tag, Env, Note, PhaseCursor, Stage, SINK_TAG};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Jvm,
    Shuffling,
    MergeRead,
    MergeCpu,
    ReduceCpu,
    OutWrite,
    Done,
}

#[derive(Clone, Copy, Debug)]
struct Fetch {
    map: u32,
    src: usize,
    bytes: u64,
    records: u64,
}

/// A reduce task attempt in flight.
pub(crate) struct ReduceTask {
    /// Reduce index.
    pub index: u32,
    /// Attempt slot id (correlation-tag key).
    pub slot: u32,
    /// Slave node.
    pub node: usize,
    /// Launch time.
    pub start: SimTime,
    /// Completion time.
    pub finish: Option<SimTime>,
    /// When the last fetch landed.
    pub shuffle_end: Option<SimTime>,
    state: State,
    num_maps: u32,
    enqueued: Vec<bool>,
    /// Segments fully copied (survive a later loss of the source node).
    fetched: Vec<bool>,
    /// Failed tries per map segment, for retry backoff and the give-up
    /// threshold.
    fetch_tries: Vec<u32>,
    pending: VecDeque<u32>,
    in_flight: u32,
    fetched_maps: u32,
    next_seq: u32,
    // Keyed access only, but BTreeMap keeps any future iteration
    // deterministic by construction.
    fetches: BTreeMap<u32, Fetch>,
    mem_bytes: u64,
    spilled_bytes: u64,
    spills_outstanding: u32,
    input_bytes: u64,
    input_records: u64,
    /// Bytes of reduce output to write (0 for NullOutputFormat).
    output_write_bytes: u64,
    /// Deterministic per-task runtime variability factor.
    jitter: f64,
    /// Injected fault: the attempt runs its whole pipeline, then dies at
    /// commit instead of completing.
    doomed: bool,
    /// Open phase span, for tracing.
    cursor: PhaseCursor,
    /// Bytes landed per map segment, for the shuffle byte-conservation
    /// invariant (map bytes out == reduce bytes in, per partition).
    #[cfg(any(test, feature = "invariants"))]
    fetched_bytes: Vec<u64>,
}

impl ReduceTask {
    /// Create the task and submit its JVM start.
    #[allow(clippy::too_many_arguments)]
    pub fn launch(
        index: u32,
        slot: u32,
        node: usize,
        attempt: u32,
        num_maps: u32,
        output_write_bytes: u64,
        jitter: f64,
        doomed: bool,
        env: &mut Env<'_>,
    ) -> ReduceTask {
        let task = ReduceTask {
            index,
            slot,
            node,
            start: env.now,
            finish: None,
            shuffle_end: None,
            state: State::Jvm,
            num_maps,
            enqueued: vec![false; num_maps as usize],
            fetched: vec![false; num_maps as usize],
            fetch_tries: vec![0; num_maps as usize],
            pending: VecDeque::new(),
            in_flight: 0,
            fetched_maps: 0,
            next_seq: 0,
            fetches: BTreeMap::new(),
            mem_bytes: 0,
            spilled_bytes: 0,
            spills_outstanding: 0,
            input_bytes: 0,
            input_records: 0,
            output_write_bytes,
            jitter,
            doomed,
            cursor: PhaseCursor::new("reduce", index, attempt, node, slot, env.now),
            #[cfg(any(test, feature = "invariants"))]
            fetched_bytes: vec![0; num_maps as usize],
        };
        env.cpu.submit(
            env.now,
            node,
            env.costs.jvm_startup_s * jitter,
            tag(slot, Stage::Jvm, 0),
        );
        task
    }

    /// The engine calls this when a map output commits (and once per
    /// already-committed map right after the reducer's JVM starts).
    pub fn on_map_output(&mut self, map: u32, env: &mut Env<'_>) {
        if self.enqueued[map as usize] {
            return;
        }
        self.enqueued[map as usize] = true;
        self.pending.push_back(map);
        if self.state == State::Shuffling {
            self.start_fetches(env);
        }
    }

    /// The engine calls this when a node crash makes `map`'s output
    /// unfetchable. Segments already copied are kept (the classic
    /// "reducers that finished copying are unaffected" semantics);
    /// queued fetches are withdrawn until the map re-commits; in-flight
    /// transfers are left to fail their validity check on completion.
    pub fn on_map_output_lost(&mut self, map: u32) {
        let m = map as usize;
        if self.fetched[m] || !self.enqueued[m] {
            return;
        }
        if let Some(pos) = self.pending.iter().position(|&x| x == map) {
            self.pending.remove(pos);
            self.enqueued[m] = false;
        }
        // Otherwise the fetch is in flight (or parked on a retry timer);
        // its completion path re-validates against the registry.
    }

    /// Handle a completion routed to this task.
    pub fn on_event(&mut self, stage: Stage, seq: u32, env: &mut Env<'_>) {
        match (self.state, stage) {
            (State::Jvm, Stage::Jvm) => {
                self.state = State::Shuffling;
                self.cursor.switch(env.trace, env.now, phase::SHUFFLE, 0);
                // Pick up everything committed before we started.
                for map in 0..self.num_maps {
                    if env.registry.output(map).is_some() {
                        self.on_map_output(map, env);
                    }
                }
                self.start_fetches(env);
                self.maybe_finish_shuffle(env);
            }
            (State::Shuffling, Stage::FetchSrcRead) => {
                if !self.fetch_still_valid(seq, env) {
                    self.abandon_fetch(seq, env);
                    return;
                }
                let f = self.fetches[&seq];
                self.start_flow(seq, f, env);
            }
            (State::Shuffling, Stage::FetchNet) => {
                if !self.fetch_still_valid(seq, env) {
                    self.abandon_fetch(seq, env);
                    return;
                }
                let f = self.fetches[&seq];
                let remote = f.src != self.node;
                if remote && env.shuffle_model.charges_protocol_cpu {
                    let cost = env.protocol.cpu_seconds_for(f.bytes);
                    // Sender side is cheap: the shuffle server responds
                    // with sendfile(2), so the payload never crosses the
                    // sender's user space.
                    let send_cost = cost * 0.25;
                    env.cpu.submit(env.now, f.src, send_cost, SINK_TAG);
                    env.counters.protocol_cpu_seconds += cost + send_cost;
                    // Receiver side: the fetch isn't done until the socket
                    // stack has copied the payload up.
                    env.cpu.submit(
                        env.now,
                        self.node,
                        cost,
                        tag(self.slot, Stage::FetchCpu, seq),
                    );
                } else {
                    self.finish_fetch(seq, env);
                }
            }
            (State::Shuffling, Stage::FetchCpu) => {
                self.finish_fetch(seq, env);
            }
            (State::Shuffling, Stage::FetchRetry) => {
                self.retry_fetch(seq, env);
            }
            (_, Stage::ReduceSpillWrite) => {
                self.spills_outstanding -= 1;
                if self.state == State::Shuffling {
                    // Backpressure released: resume fetching.
                    self.start_fetches(env);
                }
                self.maybe_finish_shuffle(env);
            }
            (State::MergeRead, Stage::ReduceMergeRead) => {
                // Spilled shuffle segments are deleted after the merge.
                env.disk
                    .discard_writeback(self.node, ByteSize::from_bytes(self.spilled_bytes));
                self.state = State::MergeCpu;
                self.submit_merge_cpu(env);
            }
            (State::MergeCpu, Stage::ReduceMergeCpu) => {
                self.state = State::ReduceCpu;
                self.cursor
                    .switch(env.trace, env.now, phase::REDUCE, self.input_bytes);
                let work = env.costs.reduce(
                    self.input_records,
                    self.input_bytes,
                    env.spec.data_type.cpu_factor(),
                ) * self.jitter
                    * (1.0 - env.shuffle_model.reduce_overlap);
                env.counters.cpu_core_seconds += work;
                env.cpu.submit(
                    env.now,
                    self.node,
                    work,
                    tag(self.slot, Stage::ReduceCpu, 0),
                );
            }
            (State::ReduceCpu, Stage::ReduceCpu) => {
                if self.output_write_bytes > 0 {
                    self.state = State::OutWrite;
                    self.cursor
                        .switch(env.trace, env.now, phase::OUTPUT, self.input_bytes);
                    env.counters.disk_write_bytes += self.output_write_bytes;
                    env.disk.submit_cached(
                        env.now,
                        self.node,
                        ByteSize::from_bytes(self.output_write_bytes),
                        IoKind::Write,
                        tag(self.slot, Stage::ReduceOutWrite, 0),
                    );
                } else {
                    self.complete(env);
                }
            }
            (State::OutWrite, Stage::ReduceOutWrite) => {
                self.complete(env);
            }
            (state, stage) => panic!("reduce {}: unexpected {stage:?} in {state:?}", self.index),
        }
    }

    fn start_fetches(&mut self, env: &mut Env<'_>) {
        // Merge backpressure (mapred.job.shuffle.merge.percent): while an
        // in-memory merge is draining to disk, the fetchers stall.
        if self.spills_outstanding > 0 {
            return;
        }
        while self.in_flight < env.conf.shuffle_parallel_copies {
            let Some(map) = self.pending.pop_front() else {
                break;
            };
            let out = env.registry.output(map).expect("enqueued output exists");
            // Empty partitions still carry their IFile segment overhead
            // (EOF marker + checksum) and are fetched like any other --
            // Hadoop's fetcher always requests every assigned segment.
            let bytes = out.partition_bytes[self.index as usize];
            let records = out.partition_records[self.index as usize];
            let src = out.node;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.fetches.insert(
                seq,
                Fetch {
                    map,
                    src,
                    bytes,
                    records,
                },
            );
            self.in_flight += 1;
            self.try_fetch(seq, env);
        }
        self.maybe_finish_shuffle(env);
    }

    /// Attempt the transfer for fetch `seq`, first consulting the fault
    /// plan: an injected failure goes to the backoff timer (or, past the
    /// retry budget, fails the whole attempt).
    fn try_fetch(&mut self, seq: u32, env: &mut Env<'_>) {
        let f = self.fetches[&seq];
        let m = f.map as usize;
        if env
            .faults
            .fetch_fails(self.index, f.map, self.fetch_tries[m])
        {
            self.fetch_tries[m] += 1;
            env.counters.failed_fetches += 1;
            if self.fetch_tries[m] >= env.conf.fetch_max_retries {
                // Hadoop: a reducer that cannot shuffle reports itself
                // failed so the scheduler can act.
                env.notes.push(Note::AttemptFailed { slot: self.slot });
                return;
            }
            let backoff = env.conf.fetch_retry_base_s
                * f64::powi(2.0, (self.fetch_tries[m] - 1) as i32)
                * env.shuffle_model.retry_backoff_scale;
            env.timers.schedule(
                env.now + SimDuration::from_secs_f64(backoff),
                tag(self.slot, Stage::FetchRetry, seq),
            );
            return;
        }
        let disk_bytes = (f.bytes as f64 * env.registry.disk_miss_fraction(f.src)) as u64;
        if disk_bytes > 0 {
            env.counters.disk_read_bytes += disk_bytes;
            env.disk.submit(
                env.now,
                f.src,
                ByteSize::from_bytes(disk_bytes),
                IoKind::Read,
                tag(self.slot, Stage::FetchSrcRead, seq),
            );
        } else {
            self.start_flow(seq, f, env);
        }
    }

    /// A backoff timer expired: re-resolve the segment (its map may have
    /// re-run elsewhere after a crash) and try again.
    fn retry_fetch(&mut self, seq: u32, env: &mut Env<'_>) {
        let map = self.fetches[&seq].map;
        match env.registry.output(map) {
            Some(out) => {
                let refreshed = Fetch {
                    map,
                    src: out.node,
                    bytes: out.partition_bytes[self.index as usize],
                    records: out.partition_records[self.index as usize],
                };
                self.fetches.insert(seq, refreshed);
                self.try_fetch(seq, env);
            }
            None => {
                // The source crashed while we were backing off; wait for
                // the map's re-execution to announce itself.
                self.fetches.remove(&seq);
                self.in_flight -= 1;
                self.enqueued[map as usize] = false;
                self.start_fetches(env);
            }
        }
    }

    /// Is the segment this fetch was started against still the one the
    /// registry advertises? False after the source node crashed.
    fn fetch_still_valid(&self, seq: u32, env: &Env<'_>) -> bool {
        let f = self.fetches[&seq];
        env.registry.output(f.map).is_some_and(|o| o.node == f.src)
    }

    /// Drop a fetch whose source vanished mid-transfer and reschedule the
    /// segment if (or when) its map re-commits.
    fn abandon_fetch(&mut self, seq: u32, env: &mut Env<'_>) {
        let f = self.fetches.remove(&seq).expect("fetch exists");
        self.in_flight -= 1;
        env.counters.failed_fetches += 1;
        self.enqueued[f.map as usize] = false;
        if env.registry.output(f.map).is_some() {
            // Already re-registered (the map re-ran faster than our
            // transfer failed): re-enqueue immediately.
            self.on_map_output(f.map, env);
        } else {
            self.start_fetches(env);
        }
    }

    fn start_flow(&mut self, seq: u32, f: Fetch, env: &mut Env<'_>) {
        env.net.start_flow(
            env.now,
            NodeId(f.src),
            NodeId(self.node),
            ByteSize::from_bytes(f.bytes),
            tag(self.slot, Stage::FetchNet, seq),
        );
    }

    fn finish_fetch(&mut self, seq: u32, env: &mut Env<'_>) {
        let f = self.fetches.remove(&seq).expect("fetch exists");
        self.in_flight -= 1;
        self.fetched_maps += 1;
        self.fetched[f.map as usize] = true;
        self.shuffle_end = Some(env.now);
        env.counters.shuffled_fetches += 1;
        if f.src == self.node {
            env.counters.local_shuffle_bytes += f.bytes;
        } else {
            env.counters.remote_shuffle_bytes += f.bytes;
        }
        self.input_bytes += f.bytes;
        self.input_records += f.records;
        self.mem_bytes += f.bytes;
        #[cfg(any(test, feature = "invariants"))]
        {
            self.fetched_bytes[f.map as usize] = f.bytes;
        }

        let buffer =
            (env.conf.shuffle_buffer.as_bytes() as f64 * env.shuffle_model.buffer_boost) as u64;
        if self.mem_bytes >= buffer {
            // In-memory segments merge onto disk.
            let bytes = self.mem_bytes;
            self.mem_bytes = 0;
            self.spilled_bytes += bytes;
            self.spills_outstanding += 1;
            env.counters.disk_write_bytes += bytes;
            env.counters.spilled_records_reduce += bytes / env.spec.record_ifile_len().max(1);
            env.disk.submit_cached(
                env.now,
                self.node,
                ByteSize::from_bytes(bytes),
                IoKind::Write,
                tag(self.slot, Stage::ReduceSpillWrite, 0),
            );
        }
        self.start_fetches(env);
    }

    fn maybe_finish_shuffle(&mut self, env: &mut Env<'_>) {
        if self.state != State::Shuffling
            || self.fetched_maps < self.num_maps
            || self.spills_outstanding != 0
        {
            return;
        }
        // Shuffle byte conservation: what the maps advertised for this
        // partition is exactly what landed here, segment by segment. A
        // mismatch means a fetch was double-counted, dropped, or served
        // from a stale registry entry.
        #[cfg(any(test, feature = "invariants"))]
        {
            let landed: u64 = self.fetched_bytes.iter().sum();
            assert!(
                landed == self.input_bytes,
                "invariant violated: reduce {} shuffled {} bytes but accounted {} — \
                 per-segment and total byte accounting diverged",
                self.index,
                landed,
                self.input_bytes,
            );
            for map in 0..self.num_maps {
                if let Some(out) = env.registry.output(map) {
                    let advertised = out.partition_bytes[self.index as usize];
                    assert!(
                        self.fetched_bytes[map as usize] == advertised,
                        "invariant violated: reduce {} landed {} bytes of map {}'s \
                         partition but the registry advertises {advertised}",
                        self.index,
                        self.fetched_bytes[map as usize],
                        map,
                    );
                }
            }
        }
        // Final merge: only the un-overlapped remainder of the spilled
        // data still needs to come back from disk.
        let read_back =
            (self.spilled_bytes as f64 * (1.0 - env.shuffle_model.merge_overlap)) as u64;
        self.cursor
            .switch(env.trace, env.now, phase::REDUCE_MERGE, self.input_bytes);
        if read_back > 0 {
            self.state = State::MergeRead;
            env.counters.disk_read_bytes += read_back;
            env.disk.submit_cached(
                env.now,
                self.node,
                ByteSize::from_bytes(read_back),
                IoKind::Read,
                tag(self.slot, Stage::ReduceMergeRead, 0),
            );
        } else {
            self.state = State::MergeCpu;
            self.submit_merge_cpu(env);
        }
    }

    fn submit_merge_cpu(&mut self, env: &mut Env<'_>) {
        let merged = (self.input_bytes as f64 * (1.0 - env.shuffle_model.merge_overlap)) as u64;
        let work = env.costs.merge(merged) * self.jitter;
        env.counters.cpu_core_seconds += work;
        env.cpu.submit(
            env.now,
            self.node,
            work,
            tag(self.slot, Stage::ReduceMergeCpu, 0),
        );
    }

    fn complete(&mut self, env: &mut Env<'_>) {
        if self.doomed {
            // The injected fault strikes at commit: the whole attempt —
            // fetches, merges, the reduce function — is wasted.
            env.notes.push(Note::AttemptFailed { slot: self.slot });
            return;
        }
        let phase_bytes = if self.cursor.current() == phase::OUTPUT {
            self.output_write_bytes
        } else {
            self.input_bytes
        };
        self.cursor.close(env.trace, env.now, phase_bytes, false);
        self.state = State::Done;
        self.finish = Some(env.now);
        env.counters.reduces_completed += 1;
        // Input records are charged by the winning attempt only, so
        // speculation cannot double-count them.
        env.counters.reduce_input_records += self.input_records;
        env.notes.push(Note::TaskFinished { slot: self.slot });
    }

    /// Close the open phase span with an `aborted` marker — called by the
    /// engine when the attempt is killed or fails before completing.
    pub fn abort_span(&mut self, now: SimTime, trace: &mut Trace) {
        if self.state != State::Done {
            self.cursor.close(trace, now, 0, true);
        }
    }

    /// True once the reduce completed.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }
}
