//! Fault injection and fault-tolerance primitives.
//!
//! Real Hadoop deployments are defined as much by their failure machinery
//! (task re-execution, shuffle fetch retries, speculative execution) as by
//! their happy-path throughput. This module supplies the deterministic
//! fault *plan* — what goes wrong, and when — while the engine implements
//! the *tolerance* that responds: attempt retries with a per-task cap,
//! fetcher retry with exponential backoff, node blacklisting, map re-run
//! after node loss, and speculative backup attempts.
//!
//! Everything here is a pure function of the job seed and the plan: two
//! runs with the same `JobSpec` + `FaultPlan` produce bit-identical
//! results, and an empty plan leaves the simulation untouched.

use simcore::jobj;
use simcore::json::Json;
use simcore::rng::{SeedFactory, SplitMix64};
use simcore::time::SimTime;

/// A whole-node crash at a simulated instant. All attempts running on the
/// node die, its committed map outputs become unfetchable (Hadoop's
/// map-output-lost semantics), and the node never schedules work again.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeCrash {
    /// The slave that crashes.
    pub node: usize,
    /// Simulated time of the crash, in seconds.
    pub at_secs: f64,
}

/// A straggler node: every attempt launched on it runs `factor` times
/// slower than the cost model predicts.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSlowdown {
    /// The slow slave.
    pub node: usize,
    /// Runtime multiplier (`> 1.0` is slower).
    pub factor: f64,
}

/// Seeded, deterministic description of everything that goes wrong during
/// a job. The default (all-zero/empty) plan injects nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability that any given map attempt dies during execution.
    pub map_failure_prob: f64,
    /// Probability that any given reduce attempt dies during execution.
    pub reduce_failure_prob: f64,
    /// Probability that any single shuffle fetch attempt fails and must
    /// back off and retry.
    pub fetch_failure_prob: f64,
    /// Whole-node crashes at fixed simulated times.
    pub node_crashes: Vec<NodeCrash>,
    /// Per-node straggler factors.
    pub node_slowdowns: Vec<NodeSlowdown>,
    /// The **first attempt** of each listed map task dies during startup
    /// (the deterministic hook the engine has always supported).
    pub fail_first_attempt_maps: Vec<u32>,
    /// Same for reduce tasks.
    pub fail_first_attempt_reduces: Vec<u32>,
}

impl FaultPlan {
    /// The empty plan: no faults at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Thin deterministic constructor matching the engine's historical
    /// `fail_first_attempt_{maps,reduces}` hook: the first attempt of
    /// each listed task dies during task startup.
    pub fn fail_first_attempts(maps: Vec<u32>, reduces: Vec<u32>) -> Self {
        FaultPlan {
            fail_first_attempt_maps: maps,
            fail_first_attempt_reduces: reduces,
            ..FaultPlan::default()
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.map_failure_prob == 0.0
            && self.reduce_failure_prob == 0.0
            && self.fetch_failure_prob == 0.0
            && self.node_crashes.is_empty()
            && self.node_slowdowns.is_empty()
            && self.fail_first_attempt_maps.is_empty()
            && self.fail_first_attempt_reduces.is_empty()
    }

    /// Sanity-check the plan, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("map_failure_prob", self.map_failure_prob),
            ("reduce_failure_prob", self.reduce_failure_prob),
            ("fetch_failure_prob", self.fetch_failure_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        for c in &self.node_crashes {
            if !c.at_secs.is_finite() || c.at_secs < 0.0 {
                return Err(format!(
                    "crash time must be non-negative, got {}",
                    c.at_secs
                ));
            }
        }
        for s in &self.node_slowdowns {
            if !s.factor.is_finite() || s.factor <= 0.0 {
                return Err(format!(
                    "slowdown factor must be positive, got {}",
                    s.factor
                ));
            }
        }
        Ok(())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Json {
        jobj! {
            "map_failure_prob": self.map_failure_prob,
            "reduce_failure_prob": self.reduce_failure_prob,
            "fetch_failure_prob": self.fetch_failure_prob,
            "node_crashes": Json::Arr(
                self.node_crashes
                    .iter()
                    .map(|c| jobj! { "node": c.node, "at_secs": c.at_secs })
                    .collect(),
            ),
            "node_slowdowns": Json::Arr(
                self.node_slowdowns
                    .iter()
                    .map(|s| jobj! { "node": s.node, "factor": s.factor })
                    .collect(),
            ),
            "fail_first_attempt_maps": Json::Arr(
                self.fail_first_attempt_maps.iter().map(|&i| Json::from(i)).collect(),
            ),
            "fail_first_attempt_reduces": Json::Arr(
                self.fail_first_attempt_reduces.iter().map(|&i| Json::from(i)).collect(),
            ),
        }
    }

    /// Rebuild from the [`FaultPlan::to_json`] encoding.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let task_list = |key: &str| -> Result<Vec<u32>, String> {
            json.field_arr(key)?
                .iter()
                .map(|i| i.as_u32().ok_or_else(|| format!("bad index in '{key}'")))
                .collect()
        };
        Ok(FaultPlan {
            map_failure_prob: json.field_f64("map_failure_prob")?,
            reduce_failure_prob: json.field_f64("reduce_failure_prob")?,
            fetch_failure_prob: json.field_f64("fetch_failure_prob")?,
            node_crashes: json
                .field_arr("node_crashes")?
                .iter()
                .map(|c| {
                    Ok(NodeCrash {
                        node: c.field_usize("node")?,
                        at_secs: c.field_f64("at_secs")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            node_slowdowns: json
                .field_arr("node_slowdowns")?
                .iter()
                .map(|s| {
                    Ok(NodeSlowdown {
                        node: s.field_usize("node")?,
                        factor: s.field_f64("factor")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            fail_first_attempt_maps: task_list("fail_first_attempt_maps")?,
            fail_first_attempt_reduces: task_list("fail_first_attempt_reduces")?,
        })
    }
}

/// Draws every fault decision for one job run. Decisions are stateless
/// hashes of `(job seed, decision label)`, so they do not depend on the
/// order the engine asks in — a prerequisite for determinism under the
/// event loop's data-dependent control flow.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seeds: SeedFactory,
}

impl FaultInjector {
    /// Injector for `plan` under the job's master `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan,
            seeds: SeedFactory::new(seed),
        }
    }

    /// The plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Uniform draw in `[0,1)` for a labelled decision.
    fn roll(&self, label: &str) -> f64 {
        SplitMix64::new(self.seeds.seed_for(&format!("fault-{label}"))).next_f64()
    }

    /// Does attempt number `attempt` (0-based) of the given task die
    /// during startup? This is the deterministic `fail_first_attempt`
    /// hook: the listed tasks' first attempts die right after their JVM
    /// launch, costing only the startup time (the historical behaviour).
    pub(crate) fn fails_at_startup(&self, is_map: bool, index: u32, attempt: u32) -> bool {
        let list = if is_map {
            &self.plan.fail_first_attempt_maps
        } else {
            &self.plan.fail_first_attempt_reduces
        };
        attempt == 0 && list.contains(&index)
    }

    /// Does attempt number `attempt` (0-based) of the given task die at
    /// commit time? Probabilistically doomed attempts run their entire
    /// pipeline — consuming real CPU, disk, and network — and then die
    /// just before committing (a task OOM-ing or crashing during output
    /// commit), so the *whole attempt* is wasted. That is what makes
    /// failures expensive in proportion to task length: a failed straggler
    /// or hot-reducer attempt costs its full runtime, exactly the
    /// skew-amplification effect the fault benchmarks measure.
    pub(crate) fn fails_at_commit(&self, is_map: bool, index: u32, attempt: u32) -> bool {
        let p = if is_map {
            self.plan.map_failure_prob
        } else {
            self.plan.reduce_failure_prob
        };
        let kind = if is_map { "map" } else { "reduce" };
        p > 0.0 && self.roll(&format!("task-{kind}-{index}-{attempt}")) < p
    }

    /// Does try number `try_no` (0-based) of reducer `reduce`'s fetch of
    /// map `map`'s segment fail?
    pub(crate) fn fetch_fails(&self, reduce: u32, map: u32, try_no: u32) -> bool {
        let p = self.plan.fetch_failure_prob;
        p > 0.0 && self.roll(&format!("fetch-{reduce}-{map}-{try_no}")) < p
    }

    /// Straggler factor for `node` (1.0 when the node is healthy).
    pub(crate) fn slowdown(&self, node: usize) -> f64 {
        self.plan
            .node_slowdowns
            .iter()
            .find(|s| s.node == node)
            .map_or(1.0, |s| s.factor)
    }
}

/// Terminal status of a job run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobOutcome {
    /// Every task committed; the result is complete.
    Succeeded,
    /// A task exhausted its attempts (or the cluster was lost) and the
    /// JobTracker/AM killed the job.
    Failed,
    /// The watchdog tripped: the run crossed its event or simulated-time
    /// budget and was aborted gracefully. Diagnostics live in
    /// [`crate::job::BudgetDiag`].
    BudgetExceeded,
}

impl JobOutcome {
    /// Stable token used in JSON artifacts and CSV rows.
    pub fn as_str(self) -> &'static str {
        match self {
            JobOutcome::Succeeded => "succeeded",
            JobOutcome::Failed => "failed",
            JobOutcome::BudgetExceeded => "budget-exceeded",
        }
    }

    /// Inverse of [`JobOutcome::as_str`].
    pub fn from_str_token(s: &str) -> Result<Self, String> {
        match s {
            "succeeded" => Ok(JobOutcome::Succeeded),
            "failed" => Ok(JobOutcome::Failed),
            "budget-exceeded" => Ok(JobOutcome::BudgetExceeded),
            other => Err(format!("unknown job outcome '{other}'")),
        }
    }
}

/// Why a job failed.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureDiag {
    /// Human-readable description.
    pub reason: String,
    /// The task that triggered the abort, as `(is_map, index)`, when one
    /// specific task was responsible.
    pub task: Option<(bool, u32)>,
    /// Simulated time of the abort.
    pub at: SimTime,
}

impl FailureDiag {
    /// Serialize to JSON. The triggering task is encoded as
    /// `{"map": bool, "index": n}` or `null`.
    pub fn to_json(&self) -> Json {
        jobj! {
            "reason": self.reason.as_str(),
            "task": match self.task {
                Some((is_map, index)) => jobj! { "map": is_map, "index": index },
                None => Json::Null,
            },
            "at_ns": self.at.as_nanos(),
        }
    }

    /// Rebuild from the [`FailureDiag::to_json`] encoding.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let task = match json.req("task")? {
            Json::Null => None,
            t => Some((t.field_bool("map")?, t.field_u32("index")?)),
        };
        Ok(FailureDiag {
            reason: json.field_str("reason")?.to_owned(),
            task,
            at: SimTime::from_nanos(json.field_u64("at_ns")?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        p.validate().unwrap();
        let inj = FaultInjector::new(p, 42);
        for i in 0..32 {
            assert!(!inj.fails_at_startup(true, i, 0));
            assert!(!inj.fails_at_commit(true, i, 0));
            assert!(!inj.fails_at_commit(false, i, 3));
            assert!(!inj.fetch_fails(0, i, 0));
            assert_eq!(inj.slowdown(i as usize), 1.0);
        }
    }

    #[test]
    fn fail_first_constructor_matches_lists() {
        let p = FaultPlan::fail_first_attempts(vec![0, 2], vec![1]);
        assert!(!p.is_empty());
        let inj = FaultInjector::new(p, 42);
        assert!(inj.fails_at_startup(true, 0, 0));
        assert!(inj.fails_at_startup(true, 2, 0));
        assert!(!inj.fails_at_startup(true, 1, 0));
        assert!(
            !inj.fails_at_startup(true, 0, 1),
            "only the first attempt dies"
        );
        assert!(inj.fails_at_startup(false, 1, 0));
        assert!(!inj.fails_at_startup(false, 0, 0));
    }

    #[test]
    fn probabilistic_failures_are_seeded_and_plausible() {
        let plan = FaultPlan {
            map_failure_prob: 0.25,
            ..FaultPlan::default()
        };
        let a = FaultInjector::new(plan.clone(), 7);
        let b = FaultInjector::new(plan, 7);
        let mut fails = 0;
        for i in 0..4000u32 {
            let f = a.fails_at_commit(true, i, 0);
            assert_eq!(f, b.fails_at_commit(true, i, 0), "determinism");
            fails += u32::from(f);
        }
        let rate = f64::from(fails) / 4000.0;
        assert!((0.20..0.30).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = FaultPlan::none();
        p.map_failure_prob = 1.5;
        assert!(p.validate().is_err());
        p.map_failure_prob = 0.0;
        p.node_crashes.push(NodeCrash {
            node: 0,
            at_secs: -1.0,
        });
        assert!(p.validate().is_err());
        p.node_crashes.clear();
        p.node_slowdowns.push(NodeSlowdown {
            node: 0,
            factor: 0.0,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn slowdown_lookup() {
        let plan = FaultPlan {
            node_slowdowns: vec![NodeSlowdown {
                node: 2,
                factor: 3.0,
            }],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.slowdown(2), 3.0);
        assert_eq!(inj.slowdown(0), 1.0);
    }
}
