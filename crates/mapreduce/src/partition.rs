//! Partitioners: how intermediate keys map to reducers.
//!
//! Mirrors `org.apache.hadoop.mapred.Partitioner`. Partitioners see the
//! serialized key bytes and the record's ordinal within its map task (the
//! ordinal is what the suite's round-robin partitioner counts). The bulk
//! entry point [`Partitioner::assign_counts`] produces the per-reducer
//! record counts for a whole map task; the default implementation calls
//! [`Partitioner::partition`] once per record — exactly the per-record
//! code path Hadoop runs — while closed-form partitioners (round-robin)
//! may override it.

/// Assigns each intermediate record to a reduce partition.
pub trait Partitioner {
    /// The partition in `[0, n_reducers)` for the record with serialized
    /// `key`, which is the `ordinal`-th record produced by this map task.
    fn partition(&mut self, key: &[u8], ordinal: u64, n_reducers: u32) -> u32;

    /// Per-reducer record counts for a map task emitting `n_records`
    /// fixed-size records. `key_of(ordinal, buf)` fills `buf` with the
    /// serialized key of the `ordinal`-th record; the buffer is reused
    /// across records so bulk assignment allocates nothing per record.
    ///
    /// The default implementation runs the exact per-record code path
    /// Hadoop runs; closed-form partitioners (round-robin) may override.
    fn assign_counts(
        &mut self,
        n_records: u64,
        n_reducers: u32,
        key_of: &mut dyn FnMut(u64, &mut Vec<u8>),
    ) -> Vec<u64> {
        let mut counts = vec![0u64; n_reducers as usize];
        let mut buf = Vec::new();
        for ordinal in 0..n_records {
            buf.clear();
            key_of(ordinal, &mut buf);
            let p = self.partition(&buf, ordinal, n_reducers);
            assert!(p < n_reducers, "partition {p} out of range");
            counts[p as usize] += 1;
        }
        counts
    }
}

/// Java's `String`/array hash step, as `WritableComparator.hashBytes`.
pub fn hash_bytes(bytes: &[u8]) -> i32 {
    let mut h: i32 = 1;
    for &b in bytes {
        h = h.wrapping_mul(31).wrapping_add(i32::from(b as i8));
    }
    h
}

/// Hadoop's default `HashPartitioner`:
/// `(key.hashCode() & Integer.MAX_VALUE) % numReduceTasks`.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&mut self, key: &[u8], _ordinal: u64, n_reducers: u32) -> u32 {
        ((hash_bytes(key) & i32::MAX) as u32) % n_reducers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_bytes_matches_java_semantics() {
        // h starts at 1 and folds bytes as signed values.
        assert_eq!(hash_bytes(&[]), 1);
        assert_eq!(hash_bytes(&[0]), 31);
        assert_eq!(hash_bytes(&[1]), 32);
        assert_eq!(hash_bytes(&[0xFF]), 30); // 31 + (-1)
        assert_eq!(hash_bytes(&[1, 2]), 31 * 32 + 2);
    }

    #[test]
    fn hash_partitioner_in_range_and_deterministic() {
        let mut p = HashPartitioner;
        for n in [1u32, 2, 7, 8] {
            for i in 0..500u64 {
                let key = i.to_be_bytes().to_vec();
                let a = p.partition(&key, i, n);
                let b = p.partition(&key, i, n);
                assert!(a < n);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn default_assign_counts_sums_to_total() {
        let mut p = HashPartitioner;
        let counts = p.assign_counts(10_000, 8, &mut |i, buf| {
            buf.extend_from_slice(&i.to_be_bytes());
        });
        assert_eq!(counts.len(), 8);
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
        // Hash distribution is roughly balanced.
        for c in &counts {
            assert!(*c > 800 && *c < 1700, "{counts:?}");
        }
    }

    #[test]
    fn single_reducer_gets_everything() {
        let mut p = HashPartitioner;
        let counts = p.assign_counts(123, 1, &mut |i, buf| buf.push(i as u8));
        assert_eq!(counts, vec![123]);
    }
}

/// Factory producing the stock [`HashPartitioner`] for every map task.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitionerFactory;

impl crate::job::PartitionerFactory for HashPartitionerFactory {
    fn create(&self, _map_index: u32, _seed: u64) -> Box<dyn Partitioner> {
        Box::new(HashPartitioner)
    }
    fn name(&self) -> &str {
        "HashPartitioner"
    }
}
