//! Job counters, mirroring Hadoop's `Counters` output.

use std::fmt;

use simcore::json::Json;

/// Aggregated counters for one job run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    /// Records read by mappers (one dummy record per NullInputFormat
    /// split).
    pub map_input_records: u64,
    /// Intermediate records emitted by mappers.
    pub map_output_records: u64,
    /// Raw (payload) bytes of map output.
    pub map_output_bytes: u64,
    /// IFile bytes of map output after framing and checksums — what the
    /// shuffle actually moves.
    pub map_output_materialized_bytes: u64,
    /// Records written to spill files (map side).
    pub spilled_records_map: u64,
    /// Records written to spill files (reduce side).
    pub spilled_records_reduce: u64,
    /// Successful fetch transfers.
    pub shuffled_fetches: u64,
    /// Bytes pulled across the network (remote fetches).
    pub remote_shuffle_bytes: u64,
    /// Bytes fetched from the reducer's own node (loopback).
    pub local_shuffle_bytes: u64,
    /// Records fed to reduce functions.
    pub reduce_input_records: u64,
    /// Bytes written to local disks (spills, merges).
    pub disk_write_bytes: u64,
    /// Bytes read from local disks (merges, uncached shuffle serves).
    pub disk_read_bytes: u64,
    /// Total CPU core-seconds consumed by tasks (baseline-normalized).
    pub cpu_core_seconds: f64,
    /// CPU core-seconds spent on network protocol processing.
    pub protocol_cpu_seconds: f64,
    /// Task attempts that failed and were re-executed.
    pub failed_task_attempts: u64,
    /// Shuffle fetch attempts that failed (injected fetch faults plus
    /// fetches invalidated by node loss).
    pub failed_fetches: u64,
    /// Speculative (backup) attempts launched for straggling tasks.
    pub speculative_launches: u64,
    /// Tasks whose speculative backup committed before the original.
    pub speculative_wins: u64,
    /// Attempts killed by the framework (speculation losers and attempts
    /// lost to node crashes) — not counted as failures.
    pub killed_attempts: u64,
    /// Nodes blacklisted after repeated task failures.
    pub blacklisted_nodes: u64,
    /// Completed maps re-executed because a node crash made their output
    /// unfetchable.
    pub maps_rerun_after_node_loss: u64,
    /// Map tasks completed.
    pub maps_completed: u64,
    /// Reduce tasks completed.
    pub reduces_completed: u64,
}

/// Single-source field list for the JSON codec: every counter appears
/// once here, tagged with its type.
macro_rules! for_each_counter {
    ($m:ident!($self:expr, $j:expr)) => {
        $m!(
            $self, $j;
            u64: map_input_records, map_output_records, map_output_bytes,
                map_output_materialized_bytes, spilled_records_map,
                spilled_records_reduce, shuffled_fetches, remote_shuffle_bytes,
                local_shuffle_bytes, reduce_input_records, disk_write_bytes,
                disk_read_bytes, failed_task_attempts, failed_fetches,
                speculative_launches, speculative_wins, killed_attempts,
                blacklisted_nodes, maps_rerun_after_node_loss, maps_completed,
                reduces_completed;
            f64: cpu_core_seconds, protocol_cpu_seconds
        )
    };
}

macro_rules! counters_to_json {
    ($self:expr, $j:expr; u64: $($u:ident),*; f64: $($f:ident),*) => {{
        $( $j.push((stringify!($u).to_string(), Json::from($self.$u))); )*
        $( $j.push((stringify!($f).to_string(), Json::from($self.$f))); )*
    }};
}

macro_rules! counters_from_json {
    ($self:expr, $j:expr; u64: $($u:ident),*; f64: $($f:ident),*) => {{
        $( $self.$u = $j.field_u64(stringify!($u))?; )*
        // Float counters use the lenient accessor: a non-finite value
        // (e.g. from a failed run) serializes as `null` and must parse
        // back (as NaN) rather than fail the whole artifact.
        $( $self.$f = $j.field_f64_or_nan(stringify!($f))?; )*
    }};
}

impl Counters {
    /// Total shuffle volume (remote + local).
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.remote_shuffle_bytes + self.local_shuffle_bytes
    }

    /// Serialize to a flat JSON object, one member per counter.
    pub fn to_json(&self) -> Json {
        let mut members = Vec::new();
        for_each_counter!(counters_to_json!(self, members));
        Json::Obj(members)
    }

    /// Rebuild from the [`Counters::to_json`] encoding. Every counter
    /// must be present — a missing field is an error, not a default, so
    /// schema drift is caught loudly.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let mut c = Counters::default();
        for_each_counter!(counters_from_json!(c, json));
        Ok(c)
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Counters:")?;
        writeln!(f, "  Map input records      {}", self.map_input_records)?;
        writeln!(f, "  Map output records     {}", self.map_output_records)?;
        writeln!(f, "  Map output bytes       {}", self.map_output_bytes)?;
        writeln!(
            f,
            "  Materialized bytes     {}",
            self.map_output_materialized_bytes
        )?;
        writeln!(
            f,
            "  Spilled records        {} (map) / {} (reduce)",
            self.spilled_records_map, self.spilled_records_reduce
        )?;
        writeln!(f, "  Shuffled fetches       {}", self.shuffled_fetches)?;
        writeln!(
            f,
            "  Shuffle bytes          {} remote / {} local",
            self.remote_shuffle_bytes, self.local_shuffle_bytes
        )?;
        writeln!(f, "  Reduce input records   {}", self.reduce_input_records)?;
        writeln!(
            f,
            "  Local disk I/O         {} written / {} read",
            self.disk_write_bytes, self.disk_read_bytes
        )?;
        writeln!(
            f,
            "  CPU core-seconds       {:.1} (+{:.1} protocol)",
            self.cpu_core_seconds, self.protocol_cpu_seconds
        )?;
        writeln!(f, "  Failed task attempts   {}", self.failed_task_attempts)?;
        if self.failed_fetches > 0 {
            writeln!(f, "  Failed shuffle fetches {}", self.failed_fetches)?;
        }
        if self.speculative_launches > 0 {
            writeln!(
                f,
                "  Speculative attempts   {} launched / {} won",
                self.speculative_launches, self.speculative_wins
            )?;
        }
        if self.killed_attempts > 0 {
            writeln!(f, "  Killed attempts        {}", self.killed_attempts)?;
        }
        if self.blacklisted_nodes > 0 {
            writeln!(f, "  Blacklisted nodes      {}", self.blacklisted_nodes)?;
        }
        if self.maps_rerun_after_node_loss > 0 {
            writeln!(
                f,
                "  Maps re-run (node loss) {}",
                self.maps_rerun_after_node_loss
            )?;
        }
        write!(
            f,
            "  Tasks completed        {} maps / {} reduces",
            self.maps_completed, self.reduces_completed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let c = Counters {
            remote_shuffle_bytes: 100,
            local_shuffle_bytes: 20,
            ..Counters::default()
        };
        assert_eq!(c.total_shuffle_bytes(), 120);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let c = Counters {
            map_input_records: 16,
            map_output_records: 1 << 40,
            remote_shuffle_bytes: u64::MAX,
            cpu_core_seconds: 111.8251,
            protocol_cpu_seconds: 1.0 / 3.0,
            maps_completed: 16,
            reduces_completed: 8,
            ..Counters::default()
        };
        let text = c.to_json().to_compact();
        let back = Counters::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, c);
        // A missing counter is an error, not a silent default.
        let err = Counters::from_json(&Json::parse("{}").unwrap()).unwrap_err();
        assert!(err.contains("map_input_records"), "{err}");
    }

    #[test]
    fn non_finite_counters_survive_round_trip_as_nan() {
        // A failed run can leave a float counter non-finite. The JSON
        // writer emits `null` for it; parsing the artifact back must
        // yield NaN for that counter, not an error that loses the whole
        // sweep.
        let c = Counters {
            cpu_core_seconds: f64::NAN,
            maps_completed: 4,
            ..Counters::default()
        };
        let text = c.to_json().to_compact();
        assert!(text.contains("\"cpu_core_seconds\":null"), "{text}");
        let back = Counters::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(back.cpu_core_seconds.is_nan());
        assert_eq!(back.maps_completed, 4);
    }

    #[test]
    fn display_mentions_key_counters() {
        let c = Counters::default();
        let s = c.to_string();
        assert!(s.contains("Map output records"));
        assert!(s.contains("Shuffle bytes"));
        assert!(s.contains("CPU core-seconds"));
    }
}
