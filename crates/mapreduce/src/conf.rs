//! Job configuration.
//!
//! [`JobConf`] mirrors the `mapred-site.xml` / `JobConf` knobs that matter
//! to the stand-alone benchmark: task counts, sort-buffer geometry, shuffle
//! parallelism, slow-start, and the slot/container shape of the cluster.
//! Defaults follow Apache Hadoop 1.2.1 with the adjustments the paper's
//! experiments imply (e.g. enough map slots for a single wave of 16 maps
//! on 4 slaves).

use simcore::units::ByteSize;

use crate::faults::FaultPlan;

/// Which MapReduce runtime schedules the job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// Hadoop 1.x: JobTracker + TaskTracker slots.
    MRv1,
    /// Hadoop 2.x NextGen (YARN): ResourceManager + ApplicationMaster
    /// containers.
    Yarn,
}

impl EngineKind {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::MRv1 => "MRv1 (Hadoop 1.x)",
            EngineKind::Yarn => "YARN (Hadoop 2.x)",
        }
    }
}

/// How the reduce-side copies map output: the stock socket-based fetcher
/// or the RDMA-enhanced engine of the paper's Sect. 6 case study (MRoIB).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShuffleEngineKind {
    /// Stock Hadoop HTTP-over-TCP fetchers.
    Tcp,
    /// RDMA-based shuffle (MRoIB): zero-copy transfers, pre-registered
    /// buffers, and an overlapped merge pipeline.
    Rdma,
}

/// MapReduce job configuration (the simulator's `mapred-site.xml`).
#[derive(Clone, Debug)]
pub struct JobConf {
    /// Number of map tasks (`mapred.map.tasks`).
    pub num_maps: u32,
    /// Number of reduce tasks (`mapred.reduce.tasks`).
    pub num_reduces: u32,
    /// Map-side sort buffer (`io.sort.mb`).
    pub io_sort_mb: ByteSize,
    /// Spill threshold fraction of the sort buffer
    /// (`io.sort.spill.percent`).
    pub io_sort_spill_percent: f64,
    /// Maximum streams merged at once (`io.sort.factor`).
    pub io_sort_factor: u32,
    /// Concurrent fetches per reducer
    /// (`mapred.reduce.parallel.copies`).
    pub shuffle_parallel_copies: u32,
    /// Fraction of maps that must finish before reducers may be launched
    /// (`mapred.reduce.slowstart.completed.maps`).
    pub reduce_slowstart: f64,
    /// Reduce-side in-memory shuffle buffer: data beyond this spills to
    /// disk (derived from `mapred.job.shuffle.input.buffer.percent` of the
    /// reduce JVM heap).
    pub shuffle_buffer: ByteSize,
    /// Map slots per TaskTracker (MRv1 only).
    pub map_slots_per_node: u32,
    /// Reduce slots per TaskTracker (MRv1 only).
    pub reduce_slots_per_node: u32,
    /// Container memory for YARN tasks
    /// (`mapreduce.map.memory.mb` / `reduce.memory.mb`).
    pub container_memory: ByteSize,
    /// Which runtime schedules tasks.
    pub engine: EngineKind,
    /// Which shuffle data path the reducers use.
    pub shuffle_engine: ShuffleEngineKind,
    /// Master seed for all deterministic randomness in the job.
    pub seed: u64,
    /// What goes wrong during the run (see [`FaultPlan`]). The default
    /// empty plan injects nothing.
    pub faults: FaultPlan,
    /// Attempts per task before the job is killed
    /// (`mapred.{map,reduce}.max.attempts`).
    pub max_attempts: u32,
    /// Launch backup attempts for straggling tasks
    /// (`mapred.{map,reduce}.tasks.speculative.execution`).
    pub speculative: bool,
    /// A running task is a speculation candidate once its elapsed time
    /// exceeds this multiple of the mean completed-task duration.
    pub speculative_slowdown: f64,
    /// Shuffle fetch tries per map segment before the reduce attempt
    /// gives up and fails (`mapreduce.reduce.shuffle.maxfetchfailures`).
    pub fetch_max_retries: u32,
    /// Base delay for the fetcher's exponential backoff, in seconds.
    pub fetch_retry_base_s: f64,
    /// A node is blacklisted after this many failed task attempts
    /// (`mapred.max.tracker.failures`).
    pub node_blacklist_threshold: u32,
    /// Watchdog: abort the run with [`crate::faults::JobOutcome::BudgetExceeded`]
    /// after this many dispatched events. `None` is unlimited.
    pub max_events: Option<u64>,
    /// Watchdog: abort once simulated time passes this horizon, in
    /// seconds. `None` is unlimited.
    pub max_sim_time_s: Option<f64>,
    /// Sampling interval for the per-node network/CPU throughput
    /// monitors, in seconds. The Fig. 7(b)-style 1 Hz default matches
    /// stock `sar`/`dstat` sampling; sub-second `--quick` jobs need a
    /// finer interval to produce a usable time series.
    pub monitor_interval_s: f64,
}

impl Default for JobConf {
    fn default() -> Self {
        JobConf {
            num_maps: 2,
            num_reduces: 1,
            io_sort_mb: ByteSize::from_mib(100),
            io_sort_spill_percent: 0.80,
            io_sort_factor: 10,
            shuffle_parallel_copies: 5,
            reduce_slowstart: 0.05,
            // 0.70 x 1 GB reduce JVM heap.
            shuffle_buffer: ByteSize::from_mib(716),
            // Hadoop 1.x defaults: mapred.tasktracker.{map,reduce}.tasks.maximum = 2.
            map_slots_per_node: 2,
            reduce_slots_per_node: 2,
            container_memory: ByteSize::from_mib(1024),
            engine: EngineKind::MRv1,
            shuffle_engine: ShuffleEngineKind::Tcp,
            // Any constant works; 2014 nods to the paper's venue year.
            seed: 0x5EED_2014,
            faults: FaultPlan::none(),
            // Hadoop 1.x defaults: mapred.map.max.attempts = 4,
            // speculative execution on in stock Hadoop but off here so the
            // clean path stays byte-stable unless explicitly requested.
            max_attempts: 4,
            speculative: false,
            speculative_slowdown: 1.5,
            fetch_max_retries: 10,
            fetch_retry_base_s: 1.0,
            node_blacklist_threshold: 3,
            max_events: None,
            max_sim_time_s: None,
            monitor_interval_s: 1.0,
        }
    }
}

impl JobConf {
    /// Conf with the given task counts and defaults elsewhere.
    pub fn with_tasks(num_maps: u32, num_reduces: u32) -> Self {
        JobConf {
            num_maps,
            num_reduces,
            ..JobConf::default()
        }
    }

    /// The spill threshold in bytes.
    pub fn spill_threshold(&self) -> ByteSize {
        ByteSize::from_bytes(
            (self.io_sort_mb.as_bytes() as f64 * self.io_sort_spill_percent) as u64,
        )
    }

    /// Sanity-check the configuration, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_maps == 0 {
            return Err("num_maps must be at least 1".into());
        }
        if self.num_reduces == 0 {
            return Err("num_reduces must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.io_sort_spill_percent) {
            return Err("io.sort.spill.percent must be in [0,1]".into());
        }
        if self.io_sort_spill_percent < 0.1 {
            return Err("io.sort.spill.percent below 0.1 would thrash".into());
        }
        if self.io_sort_factor < 2 {
            return Err("io.sort.factor must be at least 2".into());
        }
        if self.shuffle_parallel_copies == 0 {
            return Err("mapred.reduce.parallel.copies must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.reduce_slowstart) {
            return Err("reduce slowstart must be in [0,1]".into());
        }
        if self.map_slots_per_node == 0 || self.reduce_slots_per_node == 0 {
            return Err("slot counts must be at least 1".into());
        }
        if self.io_sort_mb.is_zero() {
            return Err("io.sort.mb must be positive".into());
        }
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".into());
        }
        if self.speculative_slowdown <= 1.0 {
            return Err("speculative_slowdown must exceed 1.0".into());
        }
        if self.fetch_max_retries == 0 {
            return Err("fetch_max_retries must be at least 1".into());
        }
        if !(self.fetch_retry_base_s.is_finite() && self.fetch_retry_base_s > 0.0) {
            return Err("fetch_retry_base_s must be positive".into());
        }
        if self.node_blacklist_threshold == 0 {
            return Err("node_blacklist_threshold must be at least 1".into());
        }
        if self.max_events == Some(0) {
            return Err("max_events must be at least 1 when set".into());
        }
        if let Some(horizon) = self.max_sim_time_s {
            if !(horizon.is_finite() && horizon > 0.0) {
                return Err(format!("max_sim_time_s must be positive, got {horizon}"));
            }
        }
        if !(self.monitor_interval_s.is_finite() && self.monitor_interval_s > 0.0) {
            return Err(format!(
                "monitor_interval_s must be positive, got {}",
                self.monitor_interval_s
            ));
        }
        self.faults.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_hadoopish() {
        let c = JobConf::default();
        c.validate().unwrap();
        assert_eq!(c.io_sort_mb, ByteSize::from_mib(100));
        assert_eq!(c.shuffle_parallel_copies, 5);
        assert!((c.reduce_slowstart - 0.05).abs() < 1e-12);
        assert_eq!(c.engine, EngineKind::MRv1);
        assert_eq!(c.shuffle_engine, ShuffleEngineKind::Tcp);
    }

    #[test]
    fn spill_threshold_is_fraction_of_buffer() {
        let c = JobConf::default();
        let expect = (100.0 * 1024.0 * 1024.0 * 0.8) as u64;
        assert_eq!(c.spill_threshold().as_bytes(), expect);
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = JobConf::with_tasks(0, 1);
        assert!(c.validate().is_err());
        c.num_maps = 1;
        c.num_reduces = 0;
        assert!(c.validate().is_err());
        c.num_reduces = 1;
        c.io_sort_factor = 1;
        assert!(c.validate().is_err());
        c.io_sort_factor = 10;
        c.reduce_slowstart = 1.5;
        assert!(c.validate().is_err());
        c.reduce_slowstart = 0.05;
        c.validate().unwrap();
    }

    #[test]
    fn engine_labels() {
        assert!(EngineKind::MRv1.label().contains("1.x"));
        assert!(EngineKind::Yarn.label().contains("YARN"));
    }
}
