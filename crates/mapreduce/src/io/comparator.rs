//! Raw-byte comparators, as `org.apache.hadoop.io.WritableComparator`.
//!
//! Hadoop's sort and merge phases never deserialize keys: they compare
//! the serialized bytes directly. Each key type registers a raw
//! comparator; the semantics here are bit-compatible with the stock
//! implementations, which matters because the suite's intermediate data
//! is sorted by these rules before it is shuffled.

use std::cmp::Ordering;

use super::vint;

/// `WritableComparator.compareBytes`: unsigned lexicographic comparison,
/// shorter prefix first.
pub fn compare_bytes(a: &[u8], b: &[u8]) -> Ordering {
    a.cmp(b)
}

/// Raw comparator for `BytesWritable`: skips the 4-byte length header and
/// compares payloads lexicographically (ties broken by length, which the
/// prefix rule already handles).
pub fn compare_bytes_writable(a: &[u8], b: &[u8]) -> Ordering {
    let ka = &a[4..];
    let kb = &b[4..];
    compare_bytes(ka, kb)
}

/// Raw comparator for `Text`: skips the vint length header and compares
/// the UTF-8 bytes (Hadoop compares Text as raw bytes too, which is
/// code-point order for UTF-8).
pub fn compare_text(a: &[u8], b: &[u8]) -> Ordering {
    let mut pa = 0;
    let mut pb = 0;
    let _ = vint::read_vint(a, &mut pa).expect("valid Text framing");
    let _ = vint::read_vint(b, &mut pb).expect("valid Text framing");
    compare_bytes(&a[pa..], &b[pb..])
}

/// Raw comparator for `IntWritable`: big-endian two's-complement, so the
/// sign bit must be flipped before a byte compare — Hadoop instead reads
/// the ints; we do the same for clarity.
pub fn compare_int_writable(a: &[u8], b: &[u8]) -> Ordering {
    let ia = i32::from_be_bytes(a[..4].try_into().expect("4-byte IntWritable"));
    let ib = i32::from_be_bytes(b[..4].try_into().expect("4-byte IntWritable"));
    ia.cmp(&ib)
}

/// Raw comparator for `LongWritable`.
pub fn compare_long_writable(a: &[u8], b: &[u8]) -> Ordering {
    let ia = i64::from_be_bytes(a[..8].try_into().expect("8-byte LongWritable"));
    let ib = i64::from_be_bytes(b[..8].try_into().expect("8-byte LongWritable"));
    ia.cmp(&ib)
}

/// The raw comparator for a serialized key of the given data type.
pub fn for_data_type(dt: super::DataType) -> fn(&[u8], &[u8]) -> Ordering {
    match dt {
        super::DataType::BytesWritable => compare_bytes_writable,
        super::DataType::Text => compare_text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::writable::{BytesWritable, IntWritable, LongWritable, Text, Writable};

    fn ser<W: Writable>(w: W) -> Vec<u8> {
        let mut out = Vec::new();
        w.write(&mut out);
        out
    }

    #[test]
    fn bytes_writable_orders_by_payload() {
        let a = ser(BytesWritable::new(vec![1, 2, 3]));
        let b = ser(BytesWritable::new(vec![1, 2, 4]));
        let c = ser(BytesWritable::new(vec![1, 2]));
        assert_eq!(compare_bytes_writable(&a, &b), Ordering::Less);
        assert_eq!(compare_bytes_writable(&b, &a), Ordering::Greater);
        assert_eq!(compare_bytes_writable(&a, &a), Ordering::Equal);
        // Prefix sorts first.
        assert_eq!(compare_bytes_writable(&c, &a), Ordering::Less);
    }

    #[test]
    fn text_orders_by_utf8_bytes() {
        let a = ser(Text::new("apple"));
        let b = ser(Text::new("banana"));
        let c = ser(Text::new("app"));
        assert_eq!(compare_text(&a, &b), Ordering::Less);
        assert_eq!(compare_text(&c, &a), Ordering::Less);
        assert_eq!(compare_text(&b, &b), Ordering::Equal);
        // Long strings exercise multi-byte vint headers.
        let long_a = ser(Text::new("a".repeat(500)));
        let long_b = ser(Text::new(format!("{}b", "a".repeat(499))));
        assert_eq!(compare_text(&long_a, &long_b), Ordering::Less);
    }

    #[test]
    fn int_comparator_respects_sign() {
        let neg = ser(IntWritable(-5));
        let pos = ser(IntWritable(5));
        let zero = ser(IntWritable(0));
        assert_eq!(compare_int_writable(&neg, &pos), Ordering::Less);
        assert_eq!(compare_int_writable(&neg, &zero), Ordering::Less);
        assert_eq!(compare_int_writable(&pos, &pos), Ordering::Equal);
        // A naive byte compare would order -5 after 5 (sign bit set);
        // the comparator must not.
        assert_eq!(compare_bytes(&neg, &pos), Ordering::Greater);
    }

    #[test]
    fn long_comparator_extremes() {
        let min = ser(LongWritable(i64::MIN));
        let max = ser(LongWritable(i64::MAX));
        assert_eq!(compare_long_writable(&min, &max), Ordering::Less);
        assert_eq!(compare_long_writable(&max, &min), Ordering::Greater);
    }

    #[test]
    fn sorting_serialized_keys_with_raw_comparators() {
        let mut keys: Vec<Vec<u8>> = [5i32, -3, 42, 0, -100, 7]
            .into_iter()
            .map(|v| ser(IntWritable(v)))
            .collect();
        keys.sort_by(|a, b| compare_int_writable(a, b));
        let values: Vec<i32> = keys
            .iter()
            .map(|k| {
                let mut pos = 0;
                IntWritable::read_fields(k, &mut pos).unwrap().0
            })
            .collect();
        assert_eq!(values, vec![-100, -3, 0, 5, 7, 42]);
    }

    #[test]
    fn for_data_type_dispatches() {
        let a = ser(BytesWritable::new(vec![1]));
        let b = ser(BytesWritable::new(vec![2]));
        let cmp = for_data_type(crate::io::DataType::BytesWritable);
        assert_eq!(cmp(&a, &b), Ordering::Less);
        let ta = ser(Text::new("a"));
        let tb = ser(Text::new("b"));
        let cmp = for_data_type(crate::io::DataType::Text);
        assert_eq!(cmp(&ta, &tb), Ordering::Less);
    }
}
