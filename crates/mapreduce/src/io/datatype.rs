//! The data-type dimension of the micro-benchmark suite.
//!
//! The paper's suite exposes a parameter selecting the Writable type used
//! for generated keys and values (`BytesWritable` or `Text`, with more
//! planned). The type determines the wire overhead per record and the
//! relative serialization CPU cost.

use super::writable::{BytesWritable, Text};

/// Key/value data types supported by the benchmark suite.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataType {
    /// Raw binary payloads framed as `BytesWritable` (4-byte length).
    BytesWritable,
    /// UTF-8 payloads framed as `Text` (vint length).
    Text,
}

impl DataType {
    /// Both supported types, in the order the paper discusses them.
    pub const ALL: [DataType; 2] = [DataType::BytesWritable, DataType::Text];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            DataType::BytesWritable => "BytesWritable",
            DataType::Text => "Text",
        }
    }

    /// The exact serialized size of one datum with `payload` bytes of
    /// content.
    pub fn wire_len(self, payload: usize) -> usize {
        match self {
            DataType::BytesWritable => BytesWritable::wire_len(payload),
            DataType::Text => Text::wire_len(payload),
        }
    }

    /// Relative CPU cost factor of serializing this type, versus raw byte
    /// copies. `Text` pays UTF-8 validation on every read.
    pub fn cpu_factor(self) -> f64 {
        match self {
            DataType::BytesWritable => 1.0,
            DataType::Text => 1.25,
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for DataType {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "byteswritable" | "bytes" => Ok(DataType::BytesWritable),
            "text" => Ok(DataType::Text),
            other => Err(format!("unknown data type: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_lengths_match_writables() {
        assert_eq!(DataType::BytesWritable.wire_len(1024), 1028);
        assert_eq!(DataType::Text.wire_len(1024), 1027);
        assert_eq!(DataType::BytesWritable.wire_len(0), 4);
        assert_eq!(DataType::Text.wire_len(0), 1);
    }

    #[test]
    fn parsing() {
        assert_eq!(
            "bytes".parse::<DataType>().unwrap(),
            DataType::BytesWritable
        );
        assert_eq!("Text".parse::<DataType>().unwrap(), DataType::Text);
        assert!("avro".parse::<DataType>().is_err());
    }

    #[test]
    fn text_costs_more_cpu() {
        assert!(DataType::Text.cpu_factor() > DataType::BytesWritable.cpu_factor());
    }
}
