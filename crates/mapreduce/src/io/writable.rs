//! The `Writable` serialization contract and Hadoop's primitive types.
//!
//! Hadoop serializes keys and values through the `Writable` interface:
//! `write(DataOutput)` / `readFields(DataInput)`. The wire formats matter
//! to this project because the benchmark charges simulated disks and
//! networks with the *exact serialized size* of the intermediate data, and
//! because the paper evaluates how the choice of data type
//! (`BytesWritable` vs `Text`) changes job time.

use super::vint::{self, VIntError};

/// Serialization error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Input ended prematurely.
    Truncated,
    /// A length field was negative or otherwise nonsensical.
    BadLength,
    /// Text payload was not valid UTF-8.
    BadUtf8,
}

impl From<VIntError> for WireError {
    fn from(_: VIntError) -> Self {
        WireError::Truncated
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated input"),
            WireError::BadLength => f.write_str("invalid length field"),
            WireError::BadUtf8 => f.write_str("invalid UTF-8 in Text"),
        }
    }
}

impl std::error::Error for WireError {}

/// Rust rendition of `org.apache.hadoop.io.Writable`.
pub trait Writable: Sized {
    /// Serialize onto `out` in Hadoop wire format.
    fn write(&self, out: &mut Vec<u8>);
    /// Deserialize from `buf` at `*pos`, advancing `*pos`.
    fn read_fields(buf: &[u8], pos: &mut usize) -> Result<Self, WireError>;
    /// Exact serialized size in bytes.
    fn serialized_len(&self) -> usize;
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], WireError> {
    let end = pos.checked_add(n).ok_or(WireError::BadLength)?;
    let s = buf.get(*pos..end).ok_or(WireError::Truncated)?;
    *pos = end;
    Ok(s)
}

/// `org.apache.hadoop.io.IntWritable`: 4 bytes big-endian.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct IntWritable(pub i32);

impl Writable for IntWritable {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_be_bytes());
    }
    fn read_fields(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let b = take(buf, pos, 4)?;
        Ok(IntWritable(i32::from_be_bytes(b.try_into().unwrap())))
    }
    fn serialized_len(&self) -> usize {
        4
    }
}

/// `org.apache.hadoop.io.LongWritable`: 8 bytes big-endian.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LongWritable(pub i64);

impl Writable for LongWritable {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_be_bytes());
    }
    fn read_fields(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let b = take(buf, pos, 8)?;
        Ok(LongWritable(i64::from_be_bytes(b.try_into().unwrap())))
    }
    fn serialized_len(&self) -> usize {
        8
    }
}

/// `org.apache.hadoop.io.VLongWritable`: vlong encoded.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VLongWritable(pub i64);

impl Writable for VLongWritable {
    fn write(&self, out: &mut Vec<u8>) {
        vint::write_vlong(out, self.0);
    }
    fn read_fields(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        Ok(VLongWritable(vint::read_vlong(buf, pos)?))
    }
    fn serialized_len(&self) -> usize {
        vint::vlong_size(self.0)
    }
}

/// `org.apache.hadoop.io.BooleanWritable`: one byte.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct BooleanWritable(pub bool);

impl Writable for BooleanWritable {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.0));
    }
    fn read_fields(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let b = take(buf, pos, 1)?;
        Ok(BooleanWritable(b[0] != 0))
    }
    fn serialized_len(&self) -> usize {
        1
    }
}

/// `org.apache.hadoop.io.FloatWritable`: 4 bytes big-endian IEEE-754.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct FloatWritable(pub f32);

impl Writable for FloatWritable {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_be_bytes());
    }
    fn read_fields(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let b = take(buf, pos, 4)?;
        Ok(FloatWritable(f32::from_be_bytes(b.try_into().unwrap())))
    }
    fn serialized_len(&self) -> usize {
        4
    }
}

/// `org.apache.hadoop.io.DoubleWritable`: 8 bytes big-endian IEEE-754.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct DoubleWritable(pub f64);

impl Writable for DoubleWritable {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_be_bytes());
    }
    fn read_fields(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let b = take(buf, pos, 8)?;
        Ok(DoubleWritable(f64::from_be_bytes(b.try_into().unwrap())))
    }
    fn serialized_len(&self) -> usize {
        8
    }
}

/// `org.apache.hadoop.io.NullWritable`: zero bytes on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct NullWritable;

impl Writable for NullWritable {
    fn write(&self, _out: &mut Vec<u8>) {}
    fn read_fields(_buf: &[u8], _pos: &mut usize) -> Result<Self, WireError> {
        Ok(NullWritable)
    }
    fn serialized_len(&self) -> usize {
        0
    }
}

/// `org.apache.hadoop.io.BytesWritable`: 4-byte big-endian length followed
/// by the raw bytes.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BytesWritable(pub Vec<u8>);

impl BytesWritable {
    /// Wrap a payload.
    pub fn new(bytes: Vec<u8>) -> Self {
        BytesWritable(bytes)
    }

    /// The serialized size of a `BytesWritable` holding `n` payload bytes.
    pub const fn wire_len(n: usize) -> usize {
        4 + n
    }
}

impl Writable for BytesWritable {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.0.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.0);
    }
    fn read_fields(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let b = take(buf, pos, 4)?;
        let len = u32::from_be_bytes(b.try_into().unwrap());
        if len > i32::MAX as u32 {
            return Err(WireError::BadLength);
        }
        Ok(BytesWritable(take(buf, pos, len as usize)?.to_vec()))
    }
    fn serialized_len(&self) -> usize {
        Self::wire_len(self.0.len())
    }
}

/// `org.apache.hadoop.io.Text`: vint byte-length followed by UTF-8 bytes.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Text(pub String);

impl Text {
    /// Wrap a string.
    pub fn new(s: impl Into<String>) -> Self {
        Text(s.into())
    }

    /// The serialized size of a `Text` holding `n` UTF-8 bytes.
    pub fn wire_len(n: usize) -> usize {
        vint::vint_size(n as i32) + n
    }
}

impl Writable for Text {
    fn write(&self, out: &mut Vec<u8>) {
        vint::write_vint(out, self.0.len() as i32);
        out.extend_from_slice(self.0.as_bytes());
    }
    fn read_fields(buf: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let len = vint::read_vint(buf, pos)?;
        if len < 0 {
            return Err(WireError::BadLength);
        }
        let bytes = take(buf, pos, len as usize)?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
        Ok(Text(s.to_owned()))
    }
    fn serialized_len(&self) -> usize {
        Self::wire_len(self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<W: Writable + PartialEq + std::fmt::Debug>(w: W) {
        let mut buf = Vec::new();
        w.write(&mut buf);
        assert_eq!(buf.len(), w.serialized_len());
        let mut pos = 0;
        let back = W::read_fields(&buf, &mut pos).unwrap();
        assert_eq!(back, w);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(IntWritable(0));
        round_trip(IntWritable(i32::MIN));
        round_trip(IntWritable(i32::MAX));
        round_trip(LongWritable(i64::MIN));
        round_trip(LongWritable(42));
        round_trip(VLongWritable(-1));
        round_trip(VLongWritable(1 << 40));
        round_trip(BooleanWritable(true));
        round_trip(FloatWritable(3.25));
        round_trip(DoubleWritable(-0.125));
        round_trip(NullWritable);
    }

    #[test]
    fn int_is_big_endian() {
        let mut buf = Vec::new();
        IntWritable(1).write(&mut buf);
        assert_eq!(buf, vec![0, 0, 0, 1]);
    }

    #[test]
    fn bytes_writable_format() {
        let w = BytesWritable::new(vec![0xAA, 0xBB]);
        let mut buf = Vec::new();
        w.write(&mut buf);
        assert_eq!(buf, vec![0, 0, 0, 2, 0xAA, 0xBB]);
        assert_eq!(w.serialized_len(), 6);
        assert_eq!(BytesWritable::wire_len(1024), 1028);
        round_trip(w);
        round_trip(BytesWritable::new(Vec::new()));
    }

    #[test]
    fn text_format_uses_vint_length() {
        let short = Text::new("hi");
        let mut buf = Vec::new();
        short.write(&mut buf);
        assert_eq!(buf, vec![2, b'h', b'i']);
        // 200-byte strings need a 2-byte vint (tag + one payload byte).
        let long = Text::new("x".repeat(200));
        assert_eq!(long.serialized_len(), 2 + 200);
        round_trip(short);
        round_trip(long);
        round_trip(Text::new(""));
        round_trip(Text::new("ünïcødé ✓"));
    }

    #[test]
    fn text_vs_bytes_overhead_differs() {
        // The paper's data-type dimension: for a 1 KiB payload Text costs a
        // 3-byte vint header while BytesWritable costs a fixed 4 bytes.
        assert_eq!(Text::wire_len(1024), 1027);
        assert_eq!(BytesWritable::wire_len(1024), 1028);
        // For tiny payloads Text's 1-byte header wins even more.
        assert_eq!(Text::wire_len(10), 11);
        assert_eq!(BytesWritable::wire_len(10), 14);
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        BytesWritable::new(vec![1, 2, 3]).write(&mut buf);
        let mut pos = 0;
        assert_eq!(
            BytesWritable::read_fields(&buf[..5], &mut pos),
            Err(WireError::Truncated)
        );
        let mut pos = 0;
        assert_eq!(
            IntWritable::read_fields(&[0, 1], &mut pos),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn text_rejects_bad_utf8() {
        let mut buf = Vec::new();
        vint::write_vint(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut pos = 0;
        assert_eq!(Text::read_fields(&buf, &mut pos), Err(WireError::BadUtf8));
    }
}
