//! Hadoop's variable-length integer encoding.
//!
//! A faithful port of `org.apache.hadoop.io.WritableUtils.writeVLong` /
//! `readVLong`. Values in `[-112, 127]` occupy one byte; larger magnitudes
//! are written as a length-tag byte followed by 1–8 big-endian payload
//! bytes, with negatives stored one's-complemented. Intermediate (IFile)
//! records frame their key/value lengths with this encoding, so the byte
//! counts the simulator charges to disks and networks depend on it being
//! exact.

/// Error from decoding a vint stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VIntError {
    /// Stream ended inside a vint.
    Truncated,
}

impl std::fmt::Display for VIntError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VIntError::Truncated => f.write_str("truncated vint"),
        }
    }
}

impl std::error::Error for VIntError {}

/// Append the Hadoop vlong encoding of `i` to `out`.
pub fn write_vlong(out: &mut Vec<u8>, i: i64) {
    if (-112..=127).contains(&i) {
        out.push(i as u8);
        return;
    }
    let mut len: i32 = -112;
    let mut value = i;
    if value < 0 {
        value ^= -1; // take one's complement
        len = -120;
    }
    let mut tmp = value;
    while tmp != 0 {
        tmp >>= 8;
        len -= 1;
    }
    out.push(len as u8);
    let len = if len < -120 {
        -(len + 120)
    } else {
        -(len + 112)
    };
    for idx in (1..=len).rev() {
        let shift = (idx - 1) * 8;
        out.push(((value >> shift) & 0xFF) as u8);
    }
}

/// Append the vint encoding of `i` (same wire format as vlong).
pub fn write_vint(out: &mut Vec<u8>, i: i32) {
    write_vlong(out, i64::from(i));
}

/// Decode a vlong from `buf` starting at `*pos`, advancing `*pos`.
pub fn read_vlong(buf: &[u8], pos: &mut usize) -> Result<i64, VIntError> {
    let first = *buf.get(*pos).ok_or(VIntError::Truncated)? as i8;
    *pos += 1;
    let len = decoded_len(first);
    if len == 1 {
        return Ok(i64::from(first));
    }
    let n = len - 1;
    let mut value: i64 = 0;
    for _ in 0..n {
        let b = *buf.get(*pos).ok_or(VIntError::Truncated)?;
        *pos += 1;
        value = (value << 8) | i64::from(b);
    }
    Ok(if is_negative(first) {
        value ^ -1
    } else {
        value
    })
}

/// Decode a vint (errors are impossible beyond truncation because Hadoop
/// trusts the writer; mirror that behaviour).
pub fn read_vint(buf: &[u8], pos: &mut usize) -> Result<i32, VIntError> {
    Ok(read_vlong(buf, pos)? as i32)
}

/// Total encoded length (tag byte included) implied by the first byte, as
/// `WritableUtils.decodeVIntSize`.
pub fn decoded_len(first: i8) -> usize {
    let v = i32::from(first);
    if v >= -112 {
        1
    } else if v < -120 {
        (-120 - v) as usize + 1
    } else {
        (-112 - v) as usize + 1
    }
}

fn is_negative(first: i8) -> bool {
    i32::from(first) < -120
}

/// The number of bytes `write_vlong` would emit for `i`, without writing.
pub fn vlong_size(i: i64) -> usize {
    if (-112..=127).contains(&i) {
        return 1;
    }
    let value = if i < 0 { i ^ -1 } else { i };
    let mut tmp = value;
    let mut n = 0;
    while tmp != 0 {
        tmp >>= 8;
        n += 1;
    }
    n + 1
}

/// `vlong_size` for an `i32`.
pub fn vint_size(i: i32) -> usize {
    vlong_size(i64::from(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: i64) {
        let mut buf = Vec::new();
        write_vlong(&mut buf, v);
        assert_eq!(buf.len(), vlong_size(v), "size mismatch for {v}");
        let mut pos = 0;
        assert_eq!(read_vlong(&buf, &mut pos).unwrap(), v);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn single_byte_range() {
        for v in -112..=127i64 {
            let mut buf = Vec::new();
            write_vlong(&mut buf, v);
            assert_eq!(buf.len(), 1, "{v} should be one byte");
            round_trip(v);
        }
    }

    #[test]
    fn known_hadoop_encodings() {
        // Cross-checked against WritableUtils: 128 -> [-113, -128i8 as u8].
        let mut buf = Vec::new();
        write_vlong(&mut buf, 128);
        assert_eq!(buf, vec![0x8F, 0x80]); // -113 = 0x8F
        let mut buf = Vec::new();
        write_vlong(&mut buf, 255);
        assert_eq!(buf, vec![0x8F, 0xFF]);
        let mut buf = Vec::new();
        write_vlong(&mut buf, 256);
        assert_eq!(buf, vec![0x8E, 0x01, 0x00]); // -114 = 0x8E
        let mut buf = Vec::new();
        write_vlong(&mut buf, -113);
        assert_eq!(buf, vec![0x87, 0x70]); // -121 tag, payload 112
    }

    #[test]
    fn boundaries_round_trip() {
        for v in [
            -113i64,
            -112,
            127,
            128,
            255,
            256,
            65535,
            65536,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
            i64::MAX,
            i64::MIN,
            0,
            -1,
        ] {
            round_trip(v);
        }
    }

    #[test]
    fn sizes_grow_with_magnitude() {
        assert_eq!(vlong_size(0), 1);
        assert_eq!(vlong_size(127), 1);
        assert_eq!(vlong_size(128), 2);
        assert_eq!(vlong_size(65536), 4);
        assert_eq!(vlong_size(i64::MAX), 9);
        assert_eq!(vlong_size(i64::MIN), 9);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_vlong(&mut buf, 1_000_000);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                read_vlong(&buf[..cut], &mut pos),
                Err(VIntError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn decoded_len_matches_writes() {
        for v in [-1i64, 0, 1, -113, 128, 1 << 20, -(1 << 40), i64::MAX] {
            let mut buf = Vec::new();
            write_vlong(&mut buf, v);
            assert_eq!(decoded_len(buf[0] as i8), buf.len(), "v={v}");
        }
    }
}
