//! Hadoop I/O layer: `Writable` types, varints, and data-type selection.

pub mod comparator;
pub mod datatype;
pub mod vint;
pub mod writable;

pub use datatype::DataType;
pub use writable::{
    BooleanWritable, BytesWritable, DoubleWritable, FloatWritable, IntWritable, LongWritable,
    NullWritable, Text, VLongWritable, WireError, Writable,
};
