//! Multi-job streams over a shared cluster network.
//!
//! The single-job [`Engine`](crate::engine::Engine) reproduces the paper's
//! micro-benchmarks in isolation; this module drives a *stream* of jobs —
//! a seeded Poisson (or trace-driven) arrival process, multiple tenants
//! competing for task slots under Hadoop Fair-scheduler semantics, and a
//! shared rack-aware [`Network`] carrying every job's shuffle at once —
//! and reports per-tenant job-time percentiles.
//!
//! # Model
//!
//! Each job runs three phases: `maps_per_job` map tasks (fixed CPU
//! service time with a seeded ±10% jitter), an all-to-all shuffle of
//! `maps × reduces` flows over the shared network, and `reduces_per_job`
//! reduce tasks. Tasks occupy one slot each from a global pool of
//! `n_nodes × slots_per_node`; the arbiter always grants the next free
//! slot to the tenant with the smallest `running_slots / weight` ratio
//! (deterministic tie-break on tenant index), which is the Fair
//! scheduler's instantaneous-deficit rule. Task *placement* is a
//! deterministic stride over the nodes, so at rack-aware topologies most
//! shuffle traffic crosses rack uplinks, exactly as an unconstrained
//! Hadoop placement would.
//!
//! Everything is seeded through [`SeedFactory`] streams, so a spec runs
//! bit-identically every time — the determinism contract the rest of the
//! repo enforces.

use std::collections::{BinaryHeap, VecDeque};

use simcore::jobj;
use simcore::json::Json;
use simcore::rng::SeedFactory;
use simcore::time::{SimDuration, SimTime};
use simcore::units::ByteSize;
use simnet::{Network, NodeId, Topology};

/// How jobs enter the system.
#[derive(Clone, Debug)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival times with the given mean, drawn from
    /// the spec's seed (stream `"arrivals"`).
    Poisson {
        /// Mean inter-arrival gap in seconds.
        mean_gap_s: f64,
    },
    /// Explicit arrival offsets in seconds from the start of the run.
    /// Jobs beyond the trace reuse its last gap.
    Trace(Vec<f64>),
}

/// One tenant in the fair-share arbiter.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (artifact key).
    pub name: String,
    /// Fair-scheduler weight; slots are granted to minimize
    /// `running / weight`.
    pub weight: f64,
}

/// A multi-job workload over a shared topology.
#[derive(Clone, Debug)]
pub struct MultiJobSpec {
    /// Cluster fabric shared by every concurrent shuffle.
    pub topology: Topology,
    /// Competing tenants; jobs are assigned round-robin in arrival order.
    pub tenants: Vec<TenantSpec>,
    /// Total jobs across all tenants.
    pub n_jobs: usize,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Task slots per node (shared map/reduce pool).
    pub slots_per_node: usize,
    /// Map tasks per job.
    pub maps_per_job: usize,
    /// Reduce tasks per job.
    pub reduces_per_job: usize,
    /// Total shuffle payload per job, split evenly over `maps × reduces`
    /// flows.
    pub shuffle_bytes_per_job: ByteSize,
    /// Mean map service time in seconds (±10% seeded jitter).
    pub map_service_s: f64,
    /// Mean reduce service time in seconds (±10% seeded jitter).
    pub reduce_service_s: f64,
    /// Master seed for arrivals and service-time jitter.
    pub seed: u64,
}

impl MultiJobSpec {
    /// Reject structurally invalid workloads with a readable message.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Err("multijob: need at least one tenant".into());
        }
        for t in &self.tenants {
            if !(t.weight.is_finite() && t.weight > 0.0) {
                return Err(format!(
                    "multijob: tenant {} weight must be finite and positive, got {}",
                    t.name, t.weight
                ));
            }
        }
        if self.n_jobs == 0 {
            return Err("multijob: need at least one job".into());
        }
        if self.slots_per_node == 0 {
            return Err("multijob: need at least one slot per node".into());
        }
        if self.maps_per_job == 0 || self.reduces_per_job == 0 {
            return Err("multijob: jobs need at least one map and one reduce".into());
        }
        for s in [self.map_service_s, self.reduce_service_s] {
            if !(s.is_finite() && s > 0.0) {
                return Err("multijob: service times must be finite and positive".into());
            }
        }
        match &self.arrivals {
            ArrivalProcess::Poisson { mean_gap_s } => {
                if !(mean_gap_s.is_finite() && *mean_gap_s >= 0.0) {
                    return Err("multijob: Poisson mean gap must be finite and >= 0".into());
                }
            }
            ArrivalProcess::Trace(offsets) => {
                if offsets.is_empty() {
                    return Err("multijob: arrival trace is empty".into());
                }
                let mut prev = 0.0;
                for &o in offsets {
                    if !(o.is_finite() && o >= prev) {
                        return Err(
                            "multijob: arrival trace must be finite and non-decreasing".into()
                        );
                    }
                    prev = o;
                }
            }
        }
        Ok(())
    }
}

/// Per-tenant percentile summary, the payload of the
/// `mrbench-multijob-v1` artifact's `tenants` array.
///
/// **Empty-sample rule:** a tenant that completed zero jobs has no job
/// times, so its percentiles are *undefined* — reported as `NaN` here
/// and `null` in the JSON (the suite's standing NaN convention), never
/// as a numeric placeholder a plot could mistake for a measured time.
/// Consumers must gate on `jobs > 0` before reading the percentiles.
/// With exactly one job, nearest-rank makes p50 = p95 = p99 = that
/// job's time.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Jobs this tenant completed. `0` means the percentiles below are
    /// `NaN` (see the empty-sample rule above).
    pub jobs: usize,
    /// Median job time (arrival to last reduce), seconds.
    pub p50_s: f64,
    /// 95th-percentile job time, seconds.
    pub p95_s: f64,
    /// 99th-percentile job time, seconds.
    pub p99_s: f64,
}

impl TenantReport {
    /// Canonical JSON object for the artifact.
    pub fn to_json(&self) -> Json {
        jobj! {
            "tenant": self.tenant.clone(),
            "jobs": self.jobs as u64,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
        }
    }
}

/// Outcome of a multi-job run.
#[derive(Clone, Debug)]
pub struct MultiJobResult {
    /// Per-tenant percentile reports, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Completion time of the last job, seconds.
    pub makespan_s: f64,
    /// Total jobs completed (always `spec.n_jobs`).
    pub jobs_completed: usize,
    /// Total bytes moved through the shared network.
    pub shuffled_bytes: u64,
}

impl MultiJobResult {
    /// The result portion of the `mrbench-multijob-v1` document.
    pub fn to_json(&self) -> Json {
        jobj! {
            "makespan_s": self.makespan_s,
            "jobs_completed": self.jobs_completed as u64,
            "shuffled_bytes": self.shuffled_bytes,
            "tenants": Json::Arr(self.tenants.iter().map(TenantReport::to_json).collect()),
        }
    }
}

/// Nearest-rank percentile of an unsorted sample (q in [0, 1]).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Map,
    Shuffle,
    Reduce,
    Done,
}

struct JobState {
    tenant: usize,
    arrival: SimTime,
    phase: Phase,
    /// Tasks of the current phase not yet completed.
    outstanding: usize,
    /// In-flight shuffle flows.
    pending_flows: usize,
    /// Pre-drawn service times, consumed in task order so the schedule
    /// order never shifts the rng stream.
    map_times: Vec<f64>,
    reduce_times: Vec<f64>,
    next_map: usize,
    next_reduce: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventKind {
    Arrive { job: usize },
    TaskDone { job: usize, tenant: usize },
}

struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, with the
        // insertion sequence as a deterministic tie-break.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Map task `m` of job `j` runs here. The stride spreads a job's tasks
/// across the whole cluster (and therefore across racks).
fn map_node(job: usize, m: usize, n: usize) -> usize {
    (job.wrapping_mul(97).wrapping_add(m.wrapping_mul(17))) % n
}

/// Reduce task `r` of job `j` runs here.
fn reduce_node(job: usize, r: usize, n: usize) -> usize {
    (job.wrapping_mul(97)
        .wrapping_add(5)
        .wrapping_add(r.wrapping_mul(53)))
        % n
}

/// Run a multi-job workload to completion.
///
/// Panics only on internal invariant violations; call
/// [`MultiJobSpec::validate`] first for user-facing errors.
pub fn run(spec: &MultiJobSpec) -> MultiJobResult {
    spec.validate().expect("invalid MultiJobSpec");
    let n_nodes = spec.topology.n_nodes();
    let n_tenants = spec.tenants.len();
    let seeds = SeedFactory::new(spec.seed);

    // Pre-draw everything random up front: arrivals and per-task service
    // jitter. The event loop itself is then purely deterministic.
    let mut arrivals_rng = seeds.stream("multijob.arrivals");
    let mut service_rng = seeds.stream("multijob.service");
    let jitter = |rng: &mut simcore::rng::Xoshiro256pp, base: f64| -> f64 {
        base * (0.9 + 0.2 * rng.next_f64())
    };

    let mut arrival_times = Vec::with_capacity(spec.n_jobs);
    match &spec.arrivals {
        ArrivalProcess::Poisson { mean_gap_s } => {
            let mut t = 0.0;
            for _ in 0..spec.n_jobs {
                arrival_times.push(t);
                // Inverse-CDF draw; 1 - u keeps ln's argument in (0, 1].
                let u = arrivals_rng.next_f64();
                t += -mean_gap_s * (1.0 - u).ln();
            }
        }
        ArrivalProcess::Trace(offsets) => {
            let last_gap = if offsets.len() >= 2 {
                offsets[offsets.len() - 1] - offsets[offsets.len() - 2]
            } else {
                0.0
            };
            let mut t = 0.0;
            for j in 0..spec.n_jobs {
                t = match offsets.get(j) {
                    Some(&o) => o,
                    None => t + last_gap,
                };
                arrival_times.push(t);
            }
        }
    }

    let mut jobs: Vec<JobState> = (0..spec.n_jobs)
        .map(|j| JobState {
            tenant: j % n_tenants,
            arrival: SimTime::ZERO + SimDuration::from_secs_f64(arrival_times[j]),
            phase: Phase::Map,
            outstanding: 0,
            pending_flows: 0,
            map_times: (0..spec.maps_per_job)
                .map(|_| jitter(&mut service_rng, spec.map_service_s))
                .collect(),
            reduce_times: (0..spec.reduces_per_job)
                .map(|_| jitter(&mut service_rng, spec.reduce_service_s))
                .collect(),
            next_map: 0,
            next_reduce: 0,
        })
        .collect();

    let mut net = Network::new(spec.topology.clone());
    let total_slots = n_nodes * spec.slots_per_node;
    let mut free_slots = total_slots;
    let mut running: Vec<usize> = vec![0; n_tenants];
    // Per-tenant FIFO of runnable job indices; a job appears once per
    // queued task of its current phase.
    let mut runnable: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_tenants];

    let mut events = BinaryHeap::with_capacity(spec.n_jobs * 2);
    let mut seq: u64 = 0;
    for (j, job) in jobs.iter().enumerate() {
        events.push(Event {
            at: job.arrival,
            seq,
            kind: EventKind::Arrive { job: j },
        });
        seq += 1;
    }

    let per_flow = ByteSize::from_bytes(
        (spec.shuffle_bytes_per_job.as_bytes() / (spec.maps_per_job * spec.reduces_per_job) as u64)
            .max(1),
    );
    let mut job_times: Vec<Vec<f64>> = vec![Vec::new(); n_tenants];
    let mut completed = 0usize;
    let mut makespan = SimTime::ZERO;
    let mut flow_buf: Vec<simnet::FlowCompletion> = Vec::new();

    // Grant free slots to queued tasks, Fair-scheduler style: always the
    // tenant with the smallest running/weight deficit, ties to the lower
    // tenant index. Within a tenant, jobs drain FIFO.
    let grant = |now: SimTime,
                 free_slots: &mut usize,
                 running: &mut Vec<usize>,
                 runnable: &mut Vec<VecDeque<usize>>,
                 jobs: &mut Vec<JobState>,
                 events: &mut BinaryHeap<Event>,
                 seq: &mut u64| {
        while *free_slots > 0 {
            let mut best: Option<usize> = None;
            for t in 0..n_tenants {
                if runnable[t].is_empty() {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let share_t = running[t] as f64 / spec.tenants[t].weight;
                        let share_b = running[b] as f64 / spec.tenants[b].weight;
                        share_t < share_b
                    }
                };
                if better {
                    best = Some(t);
                }
            }
            let Some(t) = best else { break };
            let j = runnable[t].pop_front().expect("non-empty queue");
            let job = &mut jobs[j];
            let service = match job.phase {
                Phase::Map => {
                    let s = job.map_times[job.next_map];
                    job.next_map += 1;
                    s
                }
                Phase::Reduce => {
                    let s = job.reduce_times[job.next_reduce];
                    job.next_reduce += 1;
                    s
                }
                phase => unreachable!("runnable task in phase {phase:?}"),
            };
            *free_slots -= 1;
            running[t] += 1;
            events.push(Event {
                at: now + SimDuration::from_secs_f64(service),
                seq: *seq,
                kind: EventKind::TaskDone { job: j, tenant: t },
            });
            *seq += 1;
        }
    };

    while completed < spec.n_jobs {
        let t_ev = events.peek().map(|e| e.at);
        let t_net = net.next_event_time();
        // At equal instants the network settles first, so a shuffle that
        // finishes exactly when a task ends can enqueue its reduces
        // before the freed slot is granted.
        let net_first = match (t_net, t_ev) {
            (Some(n), Some(e)) => n <= e,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if net_first {
            let t = t_net.expect("checked above");
            flow_buf.clear();
            net.advance_to_into(t, &mut flow_buf);
            let mut any_phase_change = false;
            for c in &flow_buf {
                let j = c.tag as usize;
                let job = &mut jobs[j];
                debug_assert_eq!(job.phase, Phase::Shuffle);
                job.pending_flows -= 1;
                if job.pending_flows == 0 {
                    job.phase = Phase::Reduce;
                    job.outstanding = spec.reduces_per_job;
                    for _ in 0..spec.reduces_per_job {
                        runnable[job.tenant].push_back(j);
                    }
                    any_phase_change = true;
                }
            }
            if any_phase_change {
                grant(
                    t,
                    &mut free_slots,
                    &mut running,
                    &mut runnable,
                    &mut jobs,
                    &mut events,
                    &mut seq,
                );
            }
            continue;
        }
        let ev = match events.pop() {
            Some(ev) => ev,
            None => panic!(
                "multijob deadlock: {completed}/{} jobs done, no events, no flows",
                spec.n_jobs
            ),
        };
        let now = ev.at;
        match ev.kind {
            EventKind::Arrive { job: j } => {
                let job = &mut jobs[j];
                job.outstanding = spec.maps_per_job;
                for _ in 0..spec.maps_per_job {
                    runnable[job.tenant].push_back(j);
                }
            }
            EventKind::TaskDone { job: j, tenant } => {
                free_slots += 1;
                running[tenant] -= 1;
                let job = &mut jobs[j];
                job.outstanding -= 1;
                if job.outstanding == 0 {
                    match job.phase {
                        Phase::Map => {
                            // Map phase done: launch the all-to-all
                            // shuffle on the shared fabric.
                            job.phase = Phase::Shuffle;
                            job.pending_flows = spec.maps_per_job * spec.reduces_per_job;
                            for m in 0..spec.maps_per_job {
                                let src = NodeId(map_node(j, m, n_nodes));
                                for r in 0..spec.reduces_per_job {
                                    let dst = NodeId(reduce_node(j, r, n_nodes));
                                    net.start_flow(now, src, dst, per_flow, j as u64);
                                }
                            }
                        }
                        Phase::Reduce => {
                            job.phase = Phase::Done;
                            completed += 1;
                            makespan = makespan.max(now);
                            job_times[job.tenant].push(now.since(job.arrival).as_secs_f64());
                        }
                        phase => unreachable!("task completion in phase {phase:?}"),
                    }
                }
            }
        }
        grant(
            now,
            &mut free_slots,
            &mut running,
            &mut runnable,
            &mut jobs,
            &mut events,
            &mut seq,
        );
    }

    let tenants = spec
        .tenants
        .iter()
        .enumerate()
        .map(|(t, ts)| {
            let mut times = std::mem::take(&mut job_times[t]);
            times.sort_by(f64::total_cmp);
            if times.is_empty() {
                // No sample, no percentiles: NaN renders as JSON null,
                // so a zero-job tenant can never masquerade as one with
                // instantaneous jobs (see the TenantReport docs).
                TenantReport {
                    tenant: ts.name.clone(),
                    jobs: 0,
                    p50_s: f64::NAN,
                    p95_s: f64::NAN,
                    p99_s: f64::NAN,
                }
            } else {
                TenantReport {
                    tenant: ts.name.clone(),
                    jobs: times.len(),
                    p50_s: percentile(&times, 0.50),
                    p95_s: percentile(&times, 0.95),
                    p99_s: percentile(&times, 0.99),
                }
            }
        })
        .collect();

    MultiJobResult {
        tenants,
        makespan_s: makespan.since(SimTime::ZERO).as_secs_f64(),
        jobs_completed: completed,
        shuffled_bytes: net.delivered_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Interconnect;

    fn spec(topology: Topology) -> MultiJobSpec {
        MultiJobSpec {
            topology,
            tenants: vec![
                TenantSpec {
                    name: "alpha".into(),
                    weight: 1.0,
                },
                TenantSpec {
                    name: "beta".into(),
                    weight: 1.0,
                },
            ],
            n_jobs: 12,
            arrivals: ArrivalProcess::Poisson { mean_gap_s: 2.0 },
            slots_per_node: 2,
            maps_per_job: 4,
            reduces_per_job: 2,
            shuffle_bytes_per_job: ByteSize::from_mib(64),
            map_service_s: 1.0,
            reduce_service_s: 0.5,
            seed: 42,
        }
    }

    fn flat8() -> Topology {
        Topology::single_switch(8, Interconnect::GigE1)
    }

    #[test]
    fn completes_every_job_and_reports_all_tenants() {
        let r = run(&spec(flat8()));
        assert_eq!(r.jobs_completed, 12);
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].jobs + r.tenants[1].jobs, 12);
        for t in &r.tenants {
            assert!(
                t.p50_s > 0.0 && t.p50_s <= t.p95_s && t.p95_s <= t.p99_s,
                "{t:?}"
            );
        }
        assert!(r.makespan_s > 0.0);
        assert_eq!(
            r.shuffled_bytes,
            12 * (ByteSize::from_mib(64).as_bytes() / 8) * 8
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let s = spec(flat8());
        let a = run(&s);
        let b = run(&s);
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.p50_s.to_bits(), y.p50_s.to_bits());
            assert_eq!(x.p95_s.to_bits(), y.p95_s.to_bits());
            assert_eq!(x.p99_s.to_bits(), y.p99_s.to_bits());
        }
    }

    #[test]
    fn seed_changes_the_outcome() {
        let s = spec(flat8());
        let mut s2 = s.clone();
        s2.seed = 43;
        let a = run(&s);
        let b = run(&s2);
        assert_ne!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
    }

    #[test]
    fn oversubscription_stretches_the_stream() {
        let mut s = spec(flat8());
        // Saturate: everything arrives at once.
        s.arrivals = ArrivalProcess::Trace(vec![0.0]);
        s.shuffle_bytes_per_job = ByteSize::from_mib(256);
        let flat = run(&s);
        let mut racked = s.clone();
        racked.topology = flat8().with_racks(2, 8.0);
        let r = run(&racked);
        assert!(
            r.makespan_s > flat.makespan_s,
            "racked {} vs flat {}",
            r.makespan_s,
            flat.makespan_s
        );
    }

    #[test]
    fn heavier_tenant_gets_better_percentiles_under_contention() {
        let mut s = spec(flat8());
        s.tenants[1].weight = 8.0;
        // Saturated backlog so the arbiter, not the arrival process,
        // decides who waits.
        s.arrivals = ArrivalProcess::Trace(vec![0.0]);
        s.n_jobs = 24;
        s.slots_per_node = 1;
        let r = run(&s);
        assert!(
            r.tenants[1].p95_s < r.tenants[0].p95_s,
            "beta(w=8) {:?} vs alpha(w=1) {:?}",
            r.tenants[1],
            r.tenants[0]
        );
    }

    #[test]
    fn trace_arrivals_are_respected() {
        let mut s = spec(flat8());
        s.n_jobs = 3;
        s.arrivals = ArrivalProcess::Trace(vec![0.0, 5.0, 10.0]);
        let r = run(&s);
        assert_eq!(r.jobs_completed, 3);
        // The last job cannot finish before it arrives.
        assert!(r.makespan_s > 10.0);
    }

    #[test]
    fn zero_job_tenant_reports_nan_percentiles_not_garbage() {
        // One job, two tenants: round-robin assignment starves beta.
        let mut s = spec(flat8());
        s.n_jobs = 1;
        let r = run(&s);
        assert_eq!(r.jobs_completed, 1);
        let beta = &r.tenants[1];
        assert_eq!(beta.jobs, 0);
        assert!(
            beta.p50_s.is_nan() && beta.p95_s.is_nan() && beta.p99_s.is_nan(),
            "empty sample must have undefined percentiles: {beta:?}"
        );
        // The serialized JSON keeps all five keys — downstream schema
        // checks key the exact set — with the percentiles written as
        // null (the writer's non-finite rule), never 0.0.
        let j = Json::parse(&beta.to_json().to_compact()).unwrap();
        assert_eq!(j.field_u64("jobs").unwrap(), 0);
        for key in ["p50_s", "p95_s", "p99_s"] {
            assert!(
                matches!(j.req(key).unwrap(), Json::Null),
                "{key} must be null for a zero-job tenant"
            );
            assert!(j.field_f64_or_nan(key).unwrap().is_nan());
        }
    }

    #[test]
    fn one_job_tenant_collapses_all_percentiles_onto_its_time() {
        // Two jobs over two tenants: each tenant completes exactly one.
        let mut s = spec(flat8());
        s.n_jobs = 2;
        let r = run(&s);
        for t in &r.tenants {
            assert_eq!(t.jobs, 1, "{t:?}");
            assert!(t.p50_s > 0.0);
            assert_eq!(t.p50_s.to_bits(), t.p95_s.to_bits(), "{t:?}");
            assert_eq!(t.p95_s.to_bits(), t.p99_s.to_bits(), "{t:?}");
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.95), 4.0);
        assert_eq!(percentile(&v, 0.25), 1.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn rejects_bad_specs() {
        let mut s = spec(flat8());
        s.tenants.clear();
        assert!(s.validate().is_err());
        let mut s = spec(flat8());
        s.tenants[0].weight = 0.0;
        assert!(s.validate().is_err());
        let mut s = spec(flat8());
        s.n_jobs = 0;
        assert!(s.validate().is_err());
        let mut s = spec(flat8());
        s.arrivals = ArrivalProcess::Trace(vec![1.0, 0.5]);
        assert!(s.validate().is_err());
        let mut s = spec(flat8());
        s.map_service_s = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn tenant_report_json_shape() {
        let t = TenantReport {
            tenant: "alpha".into(),
            jobs: 5,
            p50_s: 1.5,
            p95_s: 2.5,
            p99_s: 3.5,
        };
        let j = t.to_json();
        assert_eq!(j.field_str("tenant").unwrap(), "alpha");
        assert_eq!(j.field_u64("jobs").unwrap(), 5);
        assert_eq!(j.field_f64("p95_s").unwrap(), 2.5);
    }
}
