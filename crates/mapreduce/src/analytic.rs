//! Closed-form analytic cost model — the suite's second backend.
//!
//! Where [`crate::engine`] replays the MapReduce pipeline event by event,
//! this module evaluates Herodotou-style per-phase cost equations
//! ("Hadoop Performance Models", arXiv:1106.0940) directly: map
//! collect/sort/spill/merge CPU from the calibrated [`CostModel`], shuffle
//! volume per reducer from the benchmark's expected partition fractions
//! (the Ceesay et al. shuffle-volume observation: volume alone is enough
//! to rank interconnects), network time as the max over per-NIC,
//! rack-uplink, and fabric bottleneck terms from the [`Topology`], and a
//! reduce merge/reduce/write tail on the straggler reducer.
//!
//! One job evaluates in O(M + R) arithmetic — microseconds instead of the
//! DES's millions of events — producing a [`JobResult`] that slots into
//! the same mrbench-artifact-v1 reports, stores, and sweeps. The price is
//! per-task fidelity: no fault injection, no speculation, no per-fetch
//! backpressure. Callers needing those must use the DES; the
//! cross-validation suite (`tests/cross_validation.rs` at the workspace
//! root) pins this model to the simulator within per-figure error bands.
//!
//! Every equation is deliberately *monotone*: job time never decreases
//! when data grows and never increases when slaves are added (locality
//! discounts that would break the latter are applied to counters only,
//! never to time terms). The scale-monotonicity property test relies on
//! this.

use cluster::NodeSpec;
use simcore::stats::TimeSeries;
use simcore::time::{SimDuration, SimTime};
use simcore::trace::{Span, Trace};
use simcore::units::ByteSize;
use simnet::Topology;

use crate::conf::EngineKind;
use crate::costs::CostModel;
use crate::counters::Counters;
use crate::faults::JobOutcome;
use crate::ifile;
use crate::job::{JobResult, JobSpec, TaskTiming};
use crate::shuffle::rdma::ShuffleModel;
use crate::task::phase;

/// Everything the closed-form evaluation needs. The reduce fractions are
/// supplied by the caller because the benchmark definitions (MR-AVG /
/// MR-RAND / MR-SKEW / MR-ZIPF) live above this crate; see
/// `mrbench::backend::expected_reduce_fractions`.
#[derive(Debug)]
pub struct AnalyticJob<'a> {
    /// Workload description (task counts, record geometry, conf).
    pub spec: &'a JobSpec,
    /// Slave hardware.
    pub node: &'a NodeSpec,
    /// Cluster fabric (NIC rates, racks, fabric cap).
    pub topology: &'a Topology,
    /// Expected fraction of intermediate records routed to each reducer;
    /// length must equal `num_reduces`. Need not sum to exactly 1 — the
    /// evaluation normalizes — but every entry must be finite and >= 0.
    pub reduce_fractions: Vec<f64>,
    /// Sampling interval for the synthesized utilization series, seconds.
    pub monitor_interval_s: f64,
    /// Record phase spans and emit a [`simcore::trace::PhaseBreakdown`].
    pub trace: bool,
}

/// Evaluate the analytic model. Fails (with a human-readable reason) on
/// invalid specs or malformed fractions; never panics on valid input.
pub fn evaluate(job: &AnalyticJob<'_>) -> Result<JobResult, String> {
    job.spec.validate()?;
    let conf = &job.spec.conf;
    let n_reduces = conf.num_reduces as usize;
    if job.reduce_fractions.len() != n_reduces {
        return Err(format!(
            "expected {} reduce fractions, got {}",
            n_reduces,
            job.reduce_fractions.len()
        ));
    }
    if job
        .reduce_fractions
        .iter()
        .any(|f| !f.is_finite() || *f < 0.0)
    {
        return Err("reduce fractions must be finite and >= 0".into());
    }
    let frac_sum: f64 = job.reduce_fractions.iter().sum();
    if frac_sum <= 0.0 {
        return Err("reduce fractions must not all be zero".into());
    }
    if !(job.monitor_interval_s.is_finite() && job.monitor_interval_s > 0.0) {
        return Err(format!(
            "monitor interval must be positive seconds, got {}",
            job.monitor_interval_s
        ));
    }
    Ok(Model::new(job, frac_sum).solve())
}

/// Aggregate sequential read/write bandwidth of a node's local disks.
fn disk_bw_bps(node: &NodeSpec) -> (f64, f64) {
    let read_bps: f64 = node
        .disks
        .iter()
        .map(|d| d.read_bw.as_bytes_per_sec())
        .sum();
    let write_bps: f64 = node
        .disks
        .iter()
        .map(|d| d.write_bw.as_bytes_per_sec())
        .sum();
    (read_bps.max(1.0), write_bps.max(1.0))
}

/// Concurrent task lanes per node, mirroring [`crate::schedule`]: MRv1
/// slot counts, or the YARN container pool (memory- and core-bounded).
fn lanes_per_node(conf: &crate::conf::JobConf, node: &NodeSpec) -> (u32, u32) {
    match conf.engine {
        EngineKind::MRv1 => (conf.map_slots_per_node, conf.reduce_slots_per_node),
        EngineKind::Yarn => {
            let by_mem = node.memory.as_bytes() / conf.container_memory.as_bytes().max(1);
            let pool = (by_mem as u32).min(node.cores).max(1);
            // Containers are shared; reducers occupy at most half the pool
            // while maps are still running (the scheduler's map priority).
            (pool, (pool / 2).max(1))
        }
    }
}

/// Page-cache budget per node, mirroring `Engine::with_topology`: node
/// memory minus task-JVM reservations, floored at 2 GiB.
fn cache_budget_bytes(conf: &crate::conf::JobConf, node: &NodeSpec) -> u64 {
    let reserved = match conf.engine {
        EngineKind::MRv1 => {
            u64::from(conf.map_slots_per_node + conf.reduce_slots_per_node)
                * ByteSize::from_gib(1).as_bytes()
        }
        EngineKind::Yarn => {
            let (pool, _) = lanes_per_node(conf, node);
            u64::from(pool) * conf.container_memory.as_bytes()
        }
    };
    node.memory
        .as_bytes()
        .saturating_sub(reserved)
        .max(ByteSize::from_gib(2).as_bytes())
}

/// The fraction of the sender-side protocol charge the engine bills (the
/// receiver pays the full per-MiB cost, the sender a quarter of it).
const SENDER_PROTO_SHARE: f64 = 0.25;

/// Derived quantities shared by the phase equations.
struct Model<'a> {
    job: &'a AnalyticJob<'a>,
    costs: CostModel,
    shuffle: ShuffleModel,
    /// Normalized per-reducer byte shares (sum to 1).
    frac: Vec<f64>,
    n_slaves: usize,
    n_maps: u64,
    n_reduces: u64,
    /// IFile record-body bytes emitted by each map task.
    map_out_bytes: u64,
    /// Record-body shuffle volume across all maps.
    total_shuffle_bytes: u64,
    /// One NIC direction, bytes/s.
    nic_bps: f64,
    /// Aggregate local-disk read/write bandwidth per node, bytes/s.
    disk_read_bps: f64,
    disk_write_bps: f64,
    /// CPU speed factor relative to the calibrated Westmere baseline.
    speed: f64,
    /// Serialization cost factor of the data type.
    type_factor: f64,
}

/// Everything `solve` derives, grouped so the artifact assembly reads
/// like the timeline it encodes.
struct Timeline {
    map_task_s: f64,
    map_phase_end_s: f64,
    shuffle_end_s: f64,
    job_end_s: f64,
    /// Per-reducer [shuffle-done, finish] instants, seconds.
    reduce_done_s: Vec<(f64, f64)>,
    /// Per-reducer network transfer seconds (straggler == global).
    reduce_net_s: Vec<f64>,
}

impl<'a> Model<'a> {
    fn new(job: &'a AnalyticJob<'a>, frac_sum: f64) -> Self {
        let spec = job.spec;
        let conf = &spec.conf;
        let map_out_bytes = spec.record_ifile_len() * spec.pairs_per_map;
        let (disk_read_bps, disk_write_bps) = disk_bw_bps(job.node);
        Model {
            job,
            costs: CostModel::calibrated(),
            shuffle: ShuffleModel::for_kind(conf.shuffle_engine),
            frac: job.reduce_fractions.iter().map(|f| f / frac_sum).collect(),
            n_slaves: job.topology.n_nodes(),
            n_maps: u64::from(conf.num_maps),
            n_reduces: u64::from(conf.num_reduces),
            map_out_bytes,
            total_shuffle_bytes: map_out_bytes * u64::from(conf.num_maps),
            nic_bps: job.topology.nic_rate().as_bytes_per_sec().max(1.0),
            disk_read_bps,
            disk_write_bps,
            speed: job.node.speed.max(1e-6),
            type_factor: spec.data_type.cpu_factor(),
        }
    }

    /// Bytes shuffled to reducer `r` (record bodies).
    fn reduce_bytes(&self, r: usize) -> u64 {
        (self.frac[r] * self.total_shuffle_bytes as f64).round() as u64
    }

    /// Records shuffled to reducer `r`.
    fn reduce_records(&self, r: usize) -> u64 {
        (self.frac[r] * (self.n_maps * self.job.spec.pairs_per_map) as f64).round() as u64
    }

    /// The slave hosting reducer `r` (round-robin, as the scheduler's
    /// node rotation converges to).
    fn reduce_node(&self, r: usize) -> usize {
        r % self.n_slaves
    }

    /// Map-side cost: JVM start-up plus collect/sort CPU plus (when the
    /// output exceeds one sort-buffer spill) the multi-spill merge round.
    fn map_task_s(&self) -> f64 {
        let spec = self.job.spec;
        let conf = &spec.conf;
        let pairs = spec.pairs_per_map;
        let collect_s = self
            .costs
            .map_collect(pairs, self.map_out_bytes, self.type_factor)
            + self.costs.sort(pairs);
        let chunk_cap = conf.spill_threshold().as_bytes().max(1);
        let chunks = self.map_out_bytes.div_ceil(chunk_cap).max(1);
        let mut task_s = self.costs.jvm_startup_s + collect_s / self.speed;
        if chunks > 1 {
            // Final merge: read every spill back, merge-CPU it, write the
            // merged output. Spill writes themselves land in the page
            // cache and overlap the next chunk's sort.
            let merge_io_s = self.map_out_bytes as f64 / self.disk_read_bps
                + self.map_out_bytes as f64 / self.disk_write_bps;
            task_s += self.costs.merge(self.map_out_bytes) / self.speed + merge_io_s;
        }
        task_s
    }

    /// Sequential-lane schedule: `n_tasks` identical tasks of `task_s`
    /// seconds over `lanes` lanes starting at `start_s`; returns the
    /// per-task (start, finish) list. Closed form — `ceil` waves — but
    /// expressed per task so timings and traces fall out directly.
    fn lane_schedule(n_tasks: u64, lanes: u64, task_s: f64, start_s: f64) -> Vec<(f64, f64)> {
        (0..n_tasks)
            .map(|t| {
                let wave = (t / lanes) as f64;
                let s = start_s + wave * task_s;
                (s, s + task_s)
            })
            .collect()
    }

    /// Network time of the whole shuffle: the binding bottleneck among
    /// receiver NICs, sender NICs, reduce-side spill disks, rack uplinks,
    /// and the core fabric, plus per-fetch request latency.
    ///
    /// Deliberately conservative about locality: every shuffled byte is
    /// priced as if it crossed the receiver's NIC, so adding slaves can
    /// only relax these terms (scale monotonicity); the remote/local
    /// split shows up in the counters only.
    fn shuffle_net_s(&self) -> f64 {
        let conf = &self.job.spec.conf;
        let total = self.total_shuffle_bytes as f64;
        let s = self.n_slaves as f64;

        // Receiver side: reducers on one node share its NIC; past the
        // in-memory shuffle buffer they also share its disks for spills.
        let buffer_bytes =
            (conf.shuffle_buffer.as_bytes() as f64 * self.shuffle.buffer_boost) as u64;
        let mut ingest_bytes = vec![0u64; self.n_slaves];
        let mut spill_bytes = vec![0u64; self.n_slaves];
        for r in 0..self.n_reduces as usize {
            let b = self.reduce_bytes(r);
            let node = self.reduce_node(r);
            ingest_bytes[node] += b;
            spill_bytes[node] += b.saturating_sub(buffer_bytes);
        }
        let mut bottleneck_s = 0.0f64;
        for node in 0..self.n_slaves {
            let recv_s = ingest_bytes[node] as f64 / self.nic_bps;
            let spill_s = spill_bytes[node] as f64 / self.disk_write_bps;
            bottleneck_s = bottleneck_s.max(recv_s).max(spill_s);
        }

        // Sender side: each node serves ~1/S of the map output; bytes
        // beyond its page cache re-read from disk before they can leave.
        let out_per_node = total / s;
        let send_s = out_per_node * (1.0 - 1.0 / s) / self.nic_bps;
        let cache = cache_budget_bytes(conf, self.job.node) as f64;
        let uncached_s = (out_per_node - cache).max(0.0) / self.disk_read_bps;
        bottleneck_s = bottleneck_s.max(send_s).max(uncached_s);

        // Core fabric, if capped. No locality discount (see above).
        if let Some(cap) = self.job.topology.fabric_cap() {
            bottleneck_s = bottleneck_s.max(total / cap.as_bytes_per_sec().max(1.0));
        }

        // Rack uplinks, when oversubscribed: per rack, the heavier of the
        // inbound (to its reducers) and outbound (from its maps) volume
        // over the per-direction uplink capacity.
        if self.job.topology.rack_constrained() {
            let topo = self.job.topology;
            let mut down_bytes = vec![0u64; topo.n_racks()];
            for r in 0..self.n_reduces as usize {
                down_bytes[topo.rack_of(self.reduce_node(r))] += self.reduce_bytes(r);
            }
            for (rack, &down) in down_bytes.iter().enumerate() {
                let members = topo.rack_members(rack) as f64;
                let up = total * members / s;
                let cross = (down as f64).max(up);
                bottleneck_s = bottleneck_s.max(cross / topo.uplink_cap_bps(rack).max(1.0));
            }
        }

        // Per-fetch request latency, pipelined over the parallel copies.
        let fetch_rounds =
            (self.n_maps as f64 / f64::from(conf.shuffle_parallel_copies.max(1))).ceil();
        let latency_s = fetch_rounds * self.job.topology.protocol().msg_latency.as_secs_f64();

        // Endpoint protocol processing for socket engines: charged per
        // byte at the receiver (and a quarter at the sender). It runs on
        // the node's cores concurrently with the transfer, so it extends
        // the shuffle only by its per-core residual.
        let mut proto_s = 0.0;
        if self.shuffle.charges_protocol_cpu {
            let proto = self.job.topology.protocol();
            let worst_ingest = ingest_bytes.iter().copied().max().unwrap_or(0);
            let cpu_s = proto.cpu_seconds_for(worst_ingest) * (1.0 + SENDER_PROTO_SHARE);
            proto_s = cpu_s / (self.speed * f64::from(self.job.node.cores.max(1)));
        }

        bottleneck_s + latency_s + proto_s
    }

    /// Reduce tail of reducer `r` after its last fetch: final merge
    /// (disk and CPU, minus the pipelined-overlap credit), the reduce
    /// function (minus its overlap credit), and any output write.
    fn reduce_tail_s(&self, r: usize) -> f64 {
        let spec = self.job.spec;
        let conf = &spec.conf;
        let bytes = self.reduce_bytes(r);
        let records = self.reduce_records(r);
        let buffer_bytes =
            (conf.shuffle_buffer.as_bytes() as f64 * self.shuffle.buffer_boost) as u64;
        let spilled = bytes.saturating_sub(buffer_bytes);
        let merge_s = (self.costs.merge(bytes) / self.speed + spilled as f64 / self.disk_read_bps)
            * (1.0 - self.shuffle.merge_overlap);
        let reduce_s = self.costs.reduce(records, bytes, self.type_factor) / self.speed
            * (1.0 - self.shuffle.reduce_overlap);
        let out_s = bytes as f64 * spec.output_write_amplification / self.disk_write_bps;
        merge_s + reduce_s + out_s
    }

    fn timeline(&self) -> Timeline {
        let conf = &self.job.spec.conf;
        let (map_lanes, reduce_lanes) = lanes_per_node(conf, self.job.node);
        let map_task_s = self.map_task_s();
        let maps = Self::lane_schedule(
            self.n_maps,
            u64::from(map_lanes) * self.n_slaves as u64,
            map_task_s,
            self.costs.job_overhead_s,
        );
        let map_phase_end_s = maps.last().map_or(self.costs.job_overhead_s, |m| m.1);
        let map_waves = self
            .n_maps
            .div_ceil(u64::from(map_lanes) * self.n_slaves as u64);

        // Shuffle: outputs of all but the last map wave are fetchable
        // while later waves still run, so that fraction of the transfer
        // overlaps the map phase (bounded by the map time it can hide in).
        let net_s = self.shuffle_net_s();
        let early_frac = (map_waves - 1) as f64 / map_waves as f64;
        let overlap_s = (net_s * early_frac).min((map_waves - 1) as f64 * map_task_s);
        let post_map_net_s = net_s - overlap_s;

        // Straggler-scaled per-reducer transfers: the heaviest reducer
        // experiences the full aggregate bottleneck; lighter ones finish
        // proportionally sooner. Preserves per-figure orderings (the
        // MR-SKEW straggler is reducer 0) without a per-flow solve.
        let max_bytes = (0..self.n_reduces as usize)
            .map(|r| self.reduce_bytes(r))
            .max()
            .unwrap_or(0)
            .max(1);
        let lanes = (u64::from(reduce_lanes) * self.n_slaves as u64).max(1);
        let mut lane_free_s = vec![self.costs.job_overhead_s; lanes as usize];
        let mut reduce_done_s = Vec::with_capacity(self.n_reduces as usize);
        let mut reduce_net_s = Vec::with_capacity(self.n_reduces as usize);
        let mut shuffle_end_s = map_phase_end_s;
        let mut job_core_end_s = map_phase_end_s;
        for r in 0..self.n_reduces as usize {
            let lane = r % lanes as usize;
            let start_s = lane_free_s[lane];
            let net_r_s = post_map_net_s * (self.reduce_bytes(r) as f64 / max_bytes as f64);
            let fetch_done_s = (start_s + self.costs.jvm_startup_s).max(map_phase_end_s) + net_r_s;
            let finish_s = fetch_done_s + self.reduce_tail_s(r);
            lane_free_s[lane] = finish_s;
            shuffle_end_s = shuffle_end_s.max(fetch_done_s);
            job_core_end_s = job_core_end_s.max(finish_s);
            reduce_done_s.push((fetch_done_s, finish_s));
            reduce_net_s.push(net_r_s);
        }

        Timeline {
            map_task_s,
            map_phase_end_s,
            shuffle_end_s,
            job_end_s: job_core_end_s + self.costs.job_overhead_s,
            reduce_done_s,
            reduce_net_s,
        }
    }

    fn counters(&self) -> Counters {
        let spec = self.job.spec;
        let conf = &spec.conf;
        let pairs = spec.pairs_per_map;
        let records = self.n_maps * pairs;
        let payload = (spec.key_wire_len() + spec.value_wire_len()) as u64;
        let seg_overhead = (ifile::EOF_MARKER_LEN + ifile::CHECKSUM_LEN) as u64;
        let materialized = self.n_maps * (self.map_out_bytes + self.n_reduces * seg_overhead);
        let chunk_cap = conf.spill_threshold().as_bytes().max(1);
        let chunks = self.map_out_bytes.div_ceil(chunk_cap).max(1);
        let buffer_bytes =
            (conf.shuffle_buffer.as_bytes() as f64 * self.shuffle.buffer_boost) as u64;

        let mut c = Counters {
            map_input_records: self.n_maps,
            map_output_records: records,
            map_output_bytes: records * payload,
            map_output_materialized_bytes: materialized,
            shuffled_fetches: self.n_maps * self.n_reduces,
            reduce_input_records: records,
            maps_completed: self.n_maps,
            reduces_completed: self.n_reduces,
            ..Counters::default()
        };
        // Locality: with round-robin placement ~1/S of each reducer's
        // input comes from its own node.
        let local = (self.total_shuffle_bytes as f64 / self.n_slaves as f64) as u64;
        c.local_shuffle_bytes = local.min(self.total_shuffle_bytes);
        c.remote_shuffle_bytes = self.total_shuffle_bytes - c.local_shuffle_bytes;

        if chunks > 1 {
            c.spilled_records_map = records;
            // Spills written, then read back and rewritten by the merge.
            c.disk_write_bytes += 2 * self.n_maps * self.map_out_bytes;
            c.disk_read_bytes += self.n_maps * self.map_out_bytes;
        }
        let mut cpu_s = 0.0;
        cpu_s += self.n_maps as f64
            * (self
                .costs
                .map_collect(pairs, self.map_out_bytes, self.type_factor)
                + self.costs.sort(pairs));
        if chunks > 1 {
            cpu_s += self.n_maps as f64 * self.costs.merge(self.map_out_bytes);
        }
        for r in 0..self.n_reduces as usize {
            let bytes = self.reduce_bytes(r);
            let recs = self.reduce_records(r);
            let spilled = bytes.saturating_sub(buffer_bytes);
            if spilled > 0 {
                c.spilled_records_reduce += recs;
                c.disk_write_bytes += spilled;
                c.disk_read_bytes += spilled;
            }
            cpu_s += self.costs.merge(bytes) + self.costs.reduce(recs, bytes, self.type_factor);
            let out = (bytes as f64 * spec.output_write_amplification) as u64;
            c.disk_write_bytes += out;
        }
        c.cpu_core_seconds = cpu_s;
        if self.shuffle.charges_protocol_cpu {
            c.protocol_cpu_seconds = self
                .job
                .topology
                .protocol()
                .cpu_seconds_for(c.remote_shuffle_bytes)
                * (1.0 + SENDER_PROTO_SHARE);
        }
        c
    }

    /// Synthesized per-node utilization series: piecewise-constant CPU%
    /// and network-receive MB/s over the map / shuffle / tail windows,
    /// sampled at the monitor interval (coarsened past a cap so
    /// million-cell sweeps don't drown in samples).
    fn series(&self, tl: &Timeline) -> (Vec<TimeSeries>, Vec<TimeSeries>) {
        let cores = f64::from(self.job.node.cores.max(1));
        let map_window_s = (tl.map_phase_end_s - self.costs.job_overhead_s).max(1e-9);
        let shuffle_window_s = (tl.shuffle_end_s - tl.map_phase_end_s).max(1e-9);
        let tail_window_s = (tl.job_end_s - self.costs.job_overhead_s - tl.shuffle_end_s).max(1e-9);

        // Per-node ingest for the receive series.
        let mut ingest_bytes = vec![0u64; self.n_slaves];
        for r in 0..self.n_reduces as usize {
            ingest_bytes[self.reduce_node(r)] += self.reduce_bytes(r);
        }
        let c = self.counters();
        let map_cpu_s = self.n_maps as f64
            * (self.costs.map_collect(
                self.job.spec.pairs_per_map,
                self.map_out_bytes,
                self.type_factor,
            ) + self.costs.sort(self.job.spec.pairs_per_map));
        let tail_cpu_s = (c.cpu_core_seconds - map_cpu_s).max(0.0);
        let per_node = self.n_slaves as f64;
        let map_cpu_pct =
            (map_cpu_s / per_node / self.speed / map_window_s / cores * 100.0).min(100.0);
        let tail_cpu_pct =
            (tail_cpu_s / per_node / self.speed / tail_window_s / cores * 100.0).min(100.0);

        let mut cpu = Vec::with_capacity(self.n_slaves);
        let mut net = Vec::with_capacity(self.n_slaves);
        for &ingest in ingest_bytes.iter().take(self.n_slaves) {
            let rx_bps = (ingest as f64 / shuffle_window_s).min(self.nic_bps);
            let rx_mb_s = rx_bps / 1e6;
            let windows = [
                (
                    self.costs.job_overhead_s,
                    tl.map_phase_end_s,
                    map_cpu_pct,
                    0.0,
                ),
                (
                    tl.map_phase_end_s,
                    tl.shuffle_end_s,
                    tail_cpu_pct * 0.5,
                    rx_mb_s,
                ),
                (tl.shuffle_end_s, tl.job_end_s, tail_cpu_pct, 0.0),
            ];
            let (c_ts, n_ts) = sample_windows(&windows, self.job.monitor_interval_s);
            cpu.push(c_ts);
            net.push(n_ts);
        }
        (cpu, net)
    }

    fn solve(&self) -> JobResult {
        let tl = self.timeline();
        let counters = self.counters();
        let (cpu_series, net_rx_series) = self.series(&tl);

        let map_lanes =
            u64::from(lanes_per_node(&self.job.spec.conf, self.job.node).0) * self.n_slaves as u64;
        let maps = Self::lane_schedule(
            self.n_maps,
            map_lanes,
            tl.map_task_s,
            self.costs.job_overhead_s,
        );
        let mut tasks = Vec::with_capacity((self.n_maps + self.n_reduces) as usize);
        for (m, (start_s, finish_s)) in maps.iter().enumerate() {
            tasks.push(TaskTiming {
                is_map: true,
                index: m as u32,
                node: m % self.n_slaves,
                start: at(*start_s),
                finish: at(*finish_s),
            });
        }
        for (r, (done_s, finish_s)) in tl.reduce_done_s.iter().enumerate() {
            // Launch when its lane freed up (mirrors timeline()).
            let start_s =
                (finish_s - (finish_s - done_s) - tl.reduce_net_s[r] - self.costs.jvm_startup_s)
                    .min(tl.map_phase_end_s - self.costs.jvm_startup_s)
                    .max(0.0);
            tasks.push(TaskTiming {
                is_map: false,
                index: r as u32,
                node: self.reduce_node(r),
                start: at(start_s),
                finish: at(*finish_s),
            });
        }

        let mut trace = if self.job.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        if self.job.trace {
            self.record_spans(&mut trace, &tl, &maps);
        }
        let phases = self
            .job
            .trace
            .then(|| trace.breakdown(SimDuration::from_secs_f64(tl.job_end_s)));

        JobResult {
            outcome: JobOutcome::Succeeded,
            failure: None,
            budget: None,
            job_time: SimDuration::from_secs_f64(tl.job_end_s),
            map_phase_end: at(tl.map_phase_end_s),
            shuffle_end: at(tl.shuffle_end_s),
            counters,
            tasks,
            cpu_series,
            net_rx_series,
            phases,
            // One closed-form evaluation per task: the cross-backend
            // "simulated work" measure the speedup assertions compare
            // against the DES's event count.
            sim_work: self.n_maps + self.n_reduces,
            trace: self.job.trace.then_some(trace),
        }
    }

    /// Emit one span per task phase so traced analytic runs produce the
    /// same [`simcore::trace::PhaseBreakdown`] shape as the DES. Lanes
    /// are execution slots; per-lane spans are sequential by
    /// construction (the lane schedule is).
    fn record_spans(&self, trace: &mut Trace, tl: &Timeline, maps: &[(f64, f64)]) {
        let conf = &self.job.spec.conf;
        let chunk_cap = conf.spill_threshold().as_bytes().max(1);
        let chunks = self.map_out_bytes.div_ceil(chunk_cap).max(1);
        let map_lanes = u64::from(lanes_per_node(conf, self.job.node).0) * self.n_slaves as u64;
        for (m, (start_s, finish_s)) in maps.iter().enumerate() {
            let lane = (m as u64 % map_lanes) as u32;
            let node = (m % self.n_slaves) as u32;
            let jvm_end_s = start_s + self.costs.jvm_startup_s;
            let (map_end_s, merge_bytes) = if chunks > 1 {
                let merge_io_s = self.map_out_bytes as f64 / self.disk_read_bps
                    + self.map_out_bytes as f64 / self.disk_write_bps;
                let merge_s = self.costs.merge(self.map_out_bytes) / self.speed + merge_io_s;
                (finish_s - merge_s, self.map_out_bytes)
            } else {
                (*finish_s, 0)
            };
            let mut span = |name, a: f64, b: f64, bytes| {
                trace.span(Span {
                    phase: name,
                    kind: "map",
                    index: m as u32,
                    attempt: 0,
                    node,
                    lane,
                    start: at(a),
                    end: at(b.max(a)),
                    bytes,
                    aborted: false,
                });
            };
            span(phase::JVM, *start_s, jvm_end_s, 0);
            span(phase::MAP, jvm_end_s, map_end_s, self.map_out_bytes);
            if chunks > 1 {
                span(phase::MAP_MERGE, map_end_s, *finish_s, merge_bytes);
            }
        }
        let reduce_lanes =
            (u64::from(lanes_per_node(conf, self.job.node).1) * self.n_slaves as u64).max(1);
        for (r, (done_s, finish_s)) in tl.reduce_done_s.iter().enumerate() {
            let lane = (map_lanes + r as u64 % reduce_lanes) as u32;
            let node = self.reduce_node(r) as u32;
            let bytes = self.reduce_bytes(r);
            let tail_s = finish_s - done_s;
            let merge_frac = if tail_s > 0.0 {
                // Split the tail between merge and reduce in cost ratio.
                let m = (self.costs.merge(bytes) / self.speed) * (1.0 - self.shuffle.merge_overlap);
                (m / tail_s).min(1.0)
            } else {
                0.0
            };
            let merge_end_s = done_s + tail_s * merge_frac;
            let start_s = (done_s - tl.reduce_net_s[r] - self.costs.jvm_startup_s).max(0.0);
            let jvm_end_s = (start_s + self.costs.jvm_startup_s).min(*done_s);
            let mut span = |name, a: f64, b: f64, span_bytes| {
                trace.span(Span {
                    phase: name,
                    kind: "reduce",
                    index: r as u32,
                    attempt: 0,
                    node,
                    lane,
                    start: at(a),
                    end: at(b.max(a)),
                    bytes: span_bytes,
                    aborted: false,
                });
            };
            span(phase::JVM, start_s, jvm_end_s, 0);
            span(phase::SHUFFLE, jvm_end_s, *done_s, bytes);
            span(phase::REDUCE_MERGE, *done_s, merge_end_s, bytes);
            span(phase::REDUCE, merge_end_s, *finish_s, bytes);
        }
    }
}

/// `SimTime` at `instant_s` seconds past the epoch.
fn at(instant_s: f64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(instant_s.max(0.0))
}

/// Sample piecewise-constant `(start_s, end_s, cpu_pct, rx_mb_s)` windows
/// at `interval_s`, coarsening so one series never exceeds ~256 samples.
fn sample_windows(windows: &[(f64, f64, f64, f64)], interval_s: f64) -> (TimeSeries, TimeSeries) {
    let total_s = windows.last().map_or(0.0, |w| w.1);
    let step_s = interval_s.max(total_s / 256.0);
    let mut cpu = TimeSeries::new();
    let mut net = TimeSeries::new();
    let mut t_s = windows.first().map_or(0.0, |w| w.0);
    for &(start_s, end_s, cpu_pct, rx_mb_s) in windows {
        if end_s <= start_s {
            continue;
        }
        t_s = t_s.max(start_s);
        while t_s < end_s {
            let next_s = (t_s + step_s).min(end_s);
            cpu.push(at(next_s), cpu_pct);
            net.push(at(next_s), rx_mb_s);
            t_s = next_s;
        }
    }
    (cpu, net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Interconnect;

    fn job_spec(pairs: u64, maps: u32, reduces: u32) -> JobSpec {
        let mut spec = JobSpec::default();
        spec.conf.num_maps = maps;
        spec.conf.num_reduces = reduces;
        spec.conf.io_sort_mb = ByteSize::from_mib(256);
        spec.conf.map_slots_per_node = 4;
        spec.pairs_per_map = pairs;
        spec
    }

    fn uniform(reduces: u32) -> Vec<f64> {
        vec![1.0 / f64::from(reduces); reduces as usize]
    }

    fn run(spec: &JobSpec, slaves: usize, ic: Interconnect, frac: Vec<f64>) -> JobResult {
        let node = NodeSpec::westmere();
        let topo = Topology::single_switch(slaves, ic);
        evaluate(&AnalyticJob {
            spec,
            node: &node,
            topology: &topo,
            reduce_fractions: frac,
            monitor_interval_s: 1.0,
            trace: false,
        })
        .unwrap()
    }

    #[test]
    fn basic_shape_and_counters() {
        let spec = job_spec(10_000, 16, 8);
        let r = run(&spec, 4, Interconnect::GigE1, uniform(8));
        assert!(r.succeeded());
        assert!(r.job_time_secs() > 0.0);
        assert_eq!(r.counters.maps_completed, 16);
        assert_eq!(r.counters.reduces_completed, 8);
        assert_eq!(r.counters.map_output_records, 160_000);
        assert_eq!(r.counters.reduce_input_records, 160_000);
        assert_eq!(r.counters.shuffled_fetches, 16 * 8);
        assert_eq!(r.tasks.len(), 24);
        assert_eq!(r.sim_work, 24);
        assert!(r.map_phase_end <= r.shuffle_end);
        let end = SimTime::ZERO + r.job_time;
        for t in &r.tasks {
            assert!(t.start <= t.finish);
            assert!(t.finish <= end);
        }
        // The JSON artifact round-trips like any DES result.
        let text = r.to_json().to_compact();
        let back = JobResult::from_json(&simcore::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.counters, r.counters);
        assert_eq!(back.job_time, r.job_time);
        assert_eq!(back.sim_work, r.sim_work);
    }

    #[test]
    fn faster_interconnects_are_faster() {
        let mut spec = job_spec(1, 16, 8);
        spec.set_shuffle_size(ByteSize::from_gib(8));
        let t1 = run(&spec, 4, Interconnect::GigE1, uniform(8)).job_time_secs();
        let t10 = run(&spec, 4, Interconnect::GigE10, uniform(8)).job_time_secs();
        let tib = run(&spec, 4, Interconnect::IpoibQdr, uniform(8)).job_time_secs();
        assert!(t1 > t10, "1GigE {t1} vs 10GigE {t10}");
        assert!(t10 >= tib, "10GigE {t10} vs IPoIB {tib}");
    }

    #[test]
    fn skewed_fractions_are_slower_and_straggle_on_reducer_zero() {
        let mut spec = job_spec(1, 16, 8);
        spec.set_shuffle_size(ByteSize::from_gib(8));
        let avg = run(&spec, 4, Interconnect::IpoibQdr, uniform(8));
        let t = 0.125 / 8.0;
        let skew = vec![0.5 + t, 0.25 + t, 0.125 + t, t, t, t, t, t];
        let sk = run(&spec, 4, Interconnect::IpoibQdr, skew);
        assert!(sk.job_time_secs() > avg.job_time_secs());
        let straggler = sk
            .tasks
            .iter()
            .filter(|t| !t.is_map)
            .max_by(|a, b| a.finish.cmp(&b.finish))
            .unwrap();
        assert_eq!(straggler.index, 0);
    }

    #[test]
    fn monotone_in_data_and_slaves() {
        let frac = uniform(8);
        let mut small = job_spec(1, 16, 8);
        small.set_shuffle_size(ByteSize::from_gib(1));
        let mut big = job_spec(1, 16, 8);
        big.set_shuffle_size(ByteSize::from_gib(4));
        let t_small = run(&small, 4, Interconnect::GigE1, frac.clone()).job_time_secs();
        let t_big = run(&big, 4, Interconnect::GigE1, frac.clone()).job_time_secs();
        assert!(t_big >= t_small);
        let t4 = run(&big, 4, Interconnect::GigE1, frac.clone()).job_time_secs();
        let t8 = run(&big, 8, Interconnect::GigE1, frac).job_time_secs();
        assert!(t8 <= t4, "8 slaves {t8} vs 4 slaves {t4}");
    }

    #[test]
    fn traced_run_reconciles_and_plain_run_is_unperturbed() {
        let mut spec = job_spec(1, 16, 8);
        spec.set_shuffle_size(ByteSize::from_mib(512));
        let node = NodeSpec::westmere();
        let topo = Topology::single_switch(4, Interconnect::GigE10);
        let traced = evaluate(&AnalyticJob {
            spec: &spec,
            node: &node,
            topology: &topo,
            reduce_fractions: uniform(8),
            monitor_interval_s: 1.0,
            trace: true,
        })
        .unwrap();
        let b = traced.phases.as_ref().expect("breakdown when traced");
        assert!(b.reconciles(0.01), "{b:?}");
        assert!(traced.trace.is_some());
        let plain = run(&spec, 4, Interconnect::GigE10, uniform(8));
        assert_eq!(plain.job_time, traced.job_time);
        assert_eq!(plain.counters, traced.counters);
        assert!(plain.phases.is_none());
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let spec = job_spec(100, 4, 4);
        let node = NodeSpec::westmere();
        let topo = Topology::single_switch(2, Interconnect::GigE1);
        let mk = |frac: Vec<f64>, interval_s: f64| {
            evaluate(&AnalyticJob {
                spec: &spec,
                node: &node,
                topology: &topo,
                reduce_fractions: frac,
                monitor_interval_s: interval_s,
                trace: false,
            })
        };
        assert!(mk(vec![0.5; 3], 1.0).is_err()); // wrong arity
        assert!(mk(vec![0.25, 0.25, 0.25, f64::NAN], 1.0).is_err());
        assert!(mk(vec![-0.1, 0.5, 0.3, 0.3], 1.0).is_err());
        assert!(mk(vec![0.0; 4], 1.0).is_err());
        assert!(mk(vec![0.25; 4], 0.0).is_err());
        assert!(mk(vec![0.25; 4], 1.0).is_ok());
    }

    #[test]
    fn rack_and_fabric_constraints_slow_the_job() {
        let mut spec = job_spec(1, 16, 8);
        spec.set_shuffle_size(ByteSize::from_gib(4));
        let node = NodeSpec::westmere();
        let flat = Topology::single_switch(8, Interconnect::GigE10);
        let racked = Topology::single_switch(8, Interconnect::GigE10).with_racks(2, 8.0);
        let capped = Topology::single_switch(8, Interconnect::GigE10)
            .with_fabric_cap(simcore::units::Rate::from_mb_per_sec(200.0));
        let t = |topo: &Topology| {
            evaluate(&AnalyticJob {
                spec: &spec,
                node: &node,
                topology: topo,
                reduce_fractions: uniform(8),
                monitor_interval_s: 1.0,
                trace: false,
            })
            .unwrap()
            .job_time_secs()
        };
        assert!(t(&racked) > t(&flat));
        assert!(t(&capped) > t(&flat));
    }
}
