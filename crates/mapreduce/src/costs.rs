//! CPU cost model for MapReduce task phases.
//!
//! Work amounts are core-seconds at the Cluster A (Westmere 2.67 GHz)
//! baseline; faster nodes divide by their `speed` factor inside the CPU
//! simulator. These constants were calibrated once against the paper's
//! MR-AVG anchor point (16 GB shuffle, 1 KB key/value, 16 maps / 8 reduces
//! on 4 slaves, IPoIB QDR ≈ 107 s; Sect. 5.2) and then left alone — every
//! other figure must emerge from the model.

/// Per-phase CPU costs of the MapReduce engine.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Map side: generate one key/value pair, run the partitioner, and
    /// copy it into the sort buffer (µs per record).
    pub map_us_per_record: f64,
    /// Map side: serialization and buffer management (core-seconds per
    /// MiB of map output).
    pub map_cpu_per_mib: f64,
    /// Sort the spill buffer (µs per record; the log-factor over realistic
    /// buffer sizes is folded into the constant).
    pub sort_us_per_record: f64,
    /// Merge streams, map or reduce side (core-seconds per MiB merged).
    pub merge_cpu_per_mib: f64,
    /// Reduce function: iterate and discard one record (µs per record).
    pub reduce_us_per_record: f64,
    /// Reduce side: deserialization and buffer management (core-seconds
    /// per MiB of shuffle input).
    pub reduce_cpu_per_mib: f64,
    /// Launching a task JVM (seconds; MRv1 reuses none by default).
    pub jvm_startup_s: f64,
    /// Job setup/cleanup tasks the JobTracker runs around the job
    /// (seconds each).
    pub job_overhead_s: f64,
}

impl CostModel {
    /// The calibrated Cluster A model.
    pub fn calibrated() -> Self {
        CostModel {
            map_us_per_record: 2.0,
            map_cpu_per_mib: 0.045,
            sort_us_per_record: 1.0,
            merge_cpu_per_mib: 0.005,
            reduce_us_per_record: 2.0,
            reduce_cpu_per_mib: 0.0185,
            jvm_startup_s: 1.1,
            job_overhead_s: 2.5,
        }
    }

    /// CPU seconds for the map generate/collect phase of `records`
    /// records totalling `bytes` of serialized output.
    pub fn map_collect(&self, records: u64, bytes: u64, type_factor: f64) -> f64 {
        records as f64 * self.map_us_per_record * 1e-6
            + bytes as f64 / MIB * self.map_cpu_per_mib * type_factor
    }

    /// CPU seconds to sort `records` records in a spill buffer.
    pub fn sort(&self, records: u64) -> f64 {
        records as f64 * self.sort_us_per_record * 1e-6
    }

    /// CPU seconds to merge `bytes` of IFile data.
    pub fn merge(&self, bytes: u64) -> f64 {
        bytes as f64 / MIB * self.merge_cpu_per_mib
    }

    /// CPU seconds for the reduce function over `records` records and
    /// `bytes` of input.
    pub fn reduce(&self, records: u64, bytes: u64, type_factor: f64) -> f64 {
        records as f64 * self.reduce_us_per_record * 1e-6
            + bytes as f64 / MIB * self.reduce_cpu_per_mib * type_factor
    }
}

const MIB: f64 = 1024.0 * 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_linearly() {
        let m = CostModel::calibrated();
        let one = m.map_collect(1_000, 1 << 20, 1.0);
        let ten = m.map_collect(10_000, 10 << 20, 1.0);
        assert!((ten - 10.0 * one).abs() < 1e-9);
        assert!((m.merge(10 << 20) - 10.0 * m.merge(1 << 20)).abs() < 1e-9);
    }

    #[test]
    fn type_factor_raises_cpu() {
        let m = CostModel::calibrated();
        let plain = m.reduce(1000, 1 << 20, 1.0);
        let text = m.reduce(1000, 1 << 20, 1.25);
        assert!(text > plain);
    }

    #[test]
    fn small_records_cost_more_per_byte() {
        // The Fig. 4 effect: at a fixed data volume, more+smaller records
        // mean more per-record work.
        let m = CostModel::calibrated();
        let bytes = 1u64 << 30;
        let small = m.map_collect(bytes / 100, bytes, 1.0); // 100 B records
        let large = m.map_collect(bytes / 10_240, bytes, 1.0); // 10 KiB records
                                                               // The effect is real but modest (paper: 128 s vs 107 s at 16 GB).
        assert!(small > large * 1.2, "small={small} large={large}");
    }
}
