//! Input and output formats for stand-alone operation.
//!
//! The whole point of the paper's suite is running MapReduce *without*
//! HDFS: `NullInputFormat` fabricates empty splits (one per map task, a
//! single dummy record each) so mappers can synthesize their data in
//! memory, and `NullOutputFormat` discards reduce output. A local-disk
//! format is provided for examples that want observable output.

use simcore::units::ByteSize;

/// A unit of input work handed to one map task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputSplit {
    /// Index of the map task this split feeds.
    pub index: u32,
    /// Bytes a record reader would pull from storage for this split.
    pub length: ByteSize,
    /// Records the split yields to the mapper.
    pub records: u64,
}

/// Produces the splits for a job, as `InputFormat.getSplits`.
pub trait InputFormat {
    /// One split per map task.
    fn splits(&self, num_maps: u32) -> Vec<InputSplit>;
    /// Format name for reports.
    fn name(&self) -> &'static str;
}

/// The suite's `NullInputFormat`: dummy splits with a single record each
/// and zero bytes of storage input. The mapper ignores the record and
/// generates its key/value pairs in memory.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullInputFormat;

impl InputFormat for NullInputFormat {
    fn splits(&self, num_maps: u32) -> Vec<InputSplit> {
        (0..num_maps)
            .map(|index| InputSplit {
                index,
                length: ByteSize::ZERO,
                records: 1,
            })
            .collect()
    }
    fn name(&self) -> &'static str {
        "NullInputFormat"
    }
}

/// A synthetic on-disk input (for examples that model a pre-loaded local
/// dataset): every split reads `bytes_per_split` from local disk.
#[derive(Clone, Copy, Debug)]
pub struct LocalFileInputFormat {
    /// Bytes each map reads from its local disk.
    pub bytes_per_split: ByteSize,
    /// Records per split.
    pub records_per_split: u64,
}

impl InputFormat for LocalFileInputFormat {
    fn splits(&self, num_maps: u32) -> Vec<InputSplit> {
        (0..num_maps)
            .map(|index| InputSplit {
                index,
                length: self.bytes_per_split,
                records: self.records_per_split,
            })
            .collect()
    }
    fn name(&self) -> &'static str {
        "LocalFileInputFormat"
    }
}

/// Where reduce output goes, as `OutputFormat`.
pub trait OutputFormat {
    /// Bytes written to local storage per byte of reduce output
    /// (0 discards, 1 writes everything).
    fn write_amplification(&self) -> f64;
    /// Format name for reports.
    fn name(&self) -> &'static str;
}

/// `org.apache.hadoop.mapred.lib.NullOutputFormat`: reduce output is
/// iterated and discarded (the suite sends it to /dev/null).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullOutputFormat;

impl OutputFormat for NullOutputFormat {
    fn write_amplification(&self) -> f64 {
        0.0
    }
    fn name(&self) -> &'static str {
        "NullOutputFormat"
    }
}

/// Writes reduce output to the reducer's local disk (no DFS involved).
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalFileOutputFormat;

impl OutputFormat for LocalFileOutputFormat {
    fn write_amplification(&self) -> f64 {
        1.0
    }
    fn name(&self) -> &'static str {
        "LocalFileOutputFormat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_input_fabricates_dummy_splits() {
        let splits = NullInputFormat.splits(16);
        assert_eq!(splits.len(), 16);
        for (i, s) in splits.iter().enumerate() {
            assert_eq!(s.index, i as u32);
            assert_eq!(s.length, ByteSize::ZERO);
            assert_eq!(s.records, 1);
        }
    }

    #[test]
    fn local_input_sizes_splits() {
        let f = LocalFileInputFormat {
            bytes_per_split: ByteSize::from_mib(64),
            records_per_split: 1000,
        };
        let splits = f.splits(3);
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[2].length, ByteSize::from_mib(64));
        assert_eq!(splits[2].records, 1000);
    }

    #[test]
    fn output_amplifications() {
        assert_eq!(NullOutputFormat.write_amplification(), 0.0);
        assert_eq!(LocalFileOutputFormat.write_amplification(), 1.0);
        assert_eq!(NullOutputFormat.name(), "NullOutputFormat");
    }
}
