//! Property-style tests: engine invariants over seeded grids of small
//! jobs (the workspace carries no external test dependencies).

use cluster::NodeSpec;
use mapreduce::conf::EngineKind;
use mapreduce::engine::run_job;
use mapreduce::io::DataType;
use mapreduce::job::JobSpec;
use mapreduce::{FaultPlan, HashPartitionerFactory, JobOutcome, NodeSlowdown};
use simcore::rng::SplitMix64;
use simnet::Interconnect;

fn spec(maps: u32, reduces: u32, pairs: u64, kv: usize, yarn: bool, text: bool) -> JobSpec {
    let mut s = JobSpec {
        key_size: kv,
        value_size: kv,
        pairs_per_map: pairs,
        data_type: if text {
            DataType::Text
        } else {
            DataType::BytesWritable
        },
        ..JobSpec::default()
    };
    s.conf.num_maps = maps;
    s.conf.num_reduces = reduces;
    if yarn {
        s.conf.engine = EngineKind::Yarn;
    }
    s
}

#[allow(clippy::too_many_arguments)]
fn check_invariants(
    maps: u32,
    reduces: u32,
    pairs: u64,
    kv: usize,
    slaves: usize,
    yarn: bool,
    text: bool,
    ic: Interconnect,
) {
    let s = spec(maps, reduces, pairs, kv, yarn, text);
    let r = run_job(s, &HashPartitionerFactory, NodeSpec::westmere(), slaves, ic);
    let ctx = format!(
        "maps={maps} reduces={reduces} pairs={pairs} kv={kv} slaves={slaves} yarn={yarn} text={text} ic={ic:?}"
    );
    assert_eq!(r.counters.maps_completed, u64::from(maps), "{ctx}");
    assert_eq!(r.counters.reduces_completed, u64::from(reduces), "{ctx}");
    assert_eq!(
        r.counters.map_output_records,
        u64::from(maps) * pairs,
        "{ctx}"
    );
    assert_eq!(
        r.counters.reduce_input_records,
        u64::from(maps) * pairs,
        "{ctx}"
    );
    assert_eq!(
        r.counters.total_shuffle_bytes(),
        r.counters.map_output_materialized_bytes,
        "{ctx}"
    );
    assert!(r.job_time.as_secs_f64() > 0.0, "{ctx}");
    // Timings are well-formed.
    for t in &r.tasks {
        assert!(t.finish >= t.start, "{ctx}");
    }
}

/// Any small job completes with conserved record counts, regardless
/// of topology, engine, data type, or geometry.
#[test]
fn jobs_complete_and_conserve_records() {
    let mut rng = SplitMix64::new(0x10B5);
    for _ in 0..24 {
        let maps = 1 + rng.next_below(5) as u32;
        let reduces = 1 + rng.next_below(5) as u32;
        let pairs = 1 + rng.next_below(19_999);
        let kv = 8 + rng.next_below(2040) as usize;
        let slaves = 1 + rng.next_below(3) as usize;
        let yarn = rng.next_below(2) == 1;
        let text = rng.next_below(2) == 1;
        let ic = Interconnect::ALL[rng.next_below(5) as usize];
        check_invariants(maps, reduces, pairs, kv, slaves, yarn, text, ic);
    }
}

/// Historical proptest shrink: a single one-record map feeding five
/// reducers on one slave over 1GigE. Most partitions are empty, which
/// once tripped the engine's completion accounting.
#[test]
fn regression_one_record_five_reducers_one_slave() {
    check_invariants(1, 5, 1, 8, 1, false, false, Interconnect::GigE1);
}

/// Adding shuffle volume never makes the job faster (monotonicity),
/// holding everything else fixed.
#[test]
fn job_time_monotone_in_volume() {
    let t = |p: u64| {
        run_job(
            spec(4, 2, p, 512, false, false),
            &HashPartitionerFactory,
            NodeSpec::westmere(),
            2,
            Interconnect::GigE1,
        )
        .job_time
    };
    let mut rng = SplitMix64::new(0x707E);
    for _ in 0..8 {
        let pairs = 1_000 + rng.next_below(29_000);
        let extra = 1_000 + rng.next_below(29_000);
        assert!(t(pairs + extra) >= t(pairs), "pairs={pairs} extra={extra}");
    }
}

/// Random fault plan drawn from the property rng: failure probabilities,
/// a straggler node, and optionally speculation.
fn random_faults(rng: &mut SplitMix64, slaves: usize) -> (FaultPlan, bool) {
    let mut plan = FaultPlan {
        map_failure_prob: rng.next_below(4) as f64 * 0.1,
        reduce_failure_prob: rng.next_below(4) as f64 * 0.1,
        fetch_failure_prob: rng.next_below(3) as f64 * 0.1,
        ..FaultPlan::default()
    };
    if rng.next_below(2) == 1 {
        plan.node_slowdowns.push(NodeSlowdown {
            node: rng.next_below(slaves as u64) as usize,
            factor: 1.0 + rng.next_below(3) as f64,
        });
    }
    let speculative = rng.next_below(2) == 1;
    (plan, speculative)
}

/// Re-executed attempts never corrupt the books: for arbitrary small jobs
/// under arbitrary fault plans, either the job succeeds with exactly
/// conserved logical record counts, or it aborts with a diagnostic.
#[test]
fn faulted_jobs_conserve_records_or_abort_cleanly() {
    let mut rng = SplitMix64::new(0xFA17);
    for _ in 0..16 {
        let maps = 1 + rng.next_below(5) as u32;
        let reduces = 1 + rng.next_below(5) as u32;
        let pairs = 1 + rng.next_below(19_999);
        let slaves = 1 + rng.next_below(3) as usize;
        let (plan, speculative) = random_faults(&mut rng, slaves);
        let mut s = spec(maps, reduces, pairs, 512, false, false);
        s.conf.faults = plan.clone();
        s.conf.speculative = speculative;
        let r = run_job(
            s,
            &HashPartitionerFactory,
            NodeSpec::westmere(),
            slaves,
            Interconnect::GigE10,
        );
        let ctx = format!(
            "maps={maps} reduces={reduces} pairs={pairs} slaves={slaves} speculative={speculative} plan={plan:?}"
        );
        match r.outcome {
            JobOutcome::Succeeded => {
                assert_eq!(r.counters.maps_completed, u64::from(maps), "{ctx}");
                assert_eq!(r.counters.reduces_completed, u64::from(reduces), "{ctx}");
                assert_eq!(
                    r.counters.map_output_records,
                    u64::from(maps) * pairs,
                    "{ctx}"
                );
                assert_eq!(
                    r.counters.reduce_input_records,
                    u64::from(maps) * pairs,
                    "{ctx}"
                );
                for t in &r.tasks {
                    assert!(t.finish >= t.start, "{ctx}");
                }
            }
            JobOutcome::Failed => {
                let diag = r.failure.as_ref().expect("failed jobs carry a diagnostic");
                assert!(!diag.reason.is_empty(), "{ctx}");
            }
            JobOutcome::BudgetExceeded => {
                panic!("no budget configured, so none can be exceeded: {ctx}");
            }
        }
    }
}

/// Same spec, same fault plan, same seed: the whole result is
/// bit-identical, for arbitrary fault plans.
#[test]
fn faulted_jobs_are_deterministic_property() {
    let mut rng = SplitMix64::new(0xDE7);
    for _ in 0..8 {
        let maps = 1 + rng.next_below(5) as u32;
        let reduces = 1 + rng.next_below(5) as u32;
        let pairs = 1 + rng.next_below(9_999);
        let slaves = 1 + rng.next_below(3) as usize;
        let (plan, speculative) = random_faults(&mut rng, slaves);
        let once = || {
            let mut s = spec(maps, reduces, pairs, 512, false, false);
            s.conf.faults = plan.clone();
            s.conf.speculative = speculative;
            run_job(
                s,
                &HashPartitionerFactory,
                NodeSpec::westmere(),
                slaves,
                Interconnect::GigE10,
            )
        };
        let (a, b) = (once(), once());
        let ctx =
            format!("maps={maps} reduces={reduces} pairs={pairs} slaves={slaves} plan={plan:?}");
        assert_eq!(a.outcome, b.outcome, "{ctx}");
        assert_eq!(a.job_time, b.job_time, "{ctx}");
        assert_eq!(a.counters, b.counters, "{ctx}");
    }
}

/// Speculative execution never loses data: the reduce side consumes the
/// same logical input with backups on or off, under a straggler node.
#[test]
fn speculation_never_loses_data() {
    let mut rng = SplitMix64::new(0x5BEC);
    for _ in 0..8 {
        let maps = 1 + rng.next_below(6) as u32;
        let reduces = 1 + rng.next_below(4) as u32;
        let pairs = 1 + rng.next_below(19_999);
        let factor = 2.0 + rng.next_below(5) as f64;
        let with_speculation = |on: bool| {
            let mut s = spec(maps, reduces, pairs, 512, false, false);
            s.conf
                .faults
                .node_slowdowns
                .push(NodeSlowdown { node: 0, factor });
            s.conf.speculative = on;
            s.conf.speculative_slowdown = 1.2;
            run_job(
                s,
                &HashPartitionerFactory,
                NodeSpec::westmere(),
                2,
                Interconnect::GigE10,
            )
        };
        let off = with_speculation(false);
        let on = with_speculation(true);
        let ctx = format!("maps={maps} reduces={reduces} pairs={pairs} factor={factor}");
        assert_eq!(off.outcome, JobOutcome::Succeeded, "{ctx}");
        assert_eq!(on.outcome, JobOutcome::Succeeded, "{ctx}");
        assert_eq!(
            on.counters.reduce_input_records, off.counters.reduce_input_records,
            "{ctx}"
        );
        assert_eq!(
            on.counters.map_output_records, off.counters.map_output_records,
            "{ctx}"
        );
        assert_eq!(
            on.counters.maps_completed, off.counters.maps_completed,
            "{ctx}"
        );
    }
}

/// A strictly better network never hurts, for arbitrary small jobs.
#[test]
fn network_upgrade_never_hurts() {
    let mut rng = SplitMix64::new(0x9E7);
    for _ in 0..8 {
        let maps = 1 + rng.next_below(4) as u32;
        let reduces = 1 + rng.next_below(4) as u32;
        let pairs = 1_000 + rng.next_below(39_000);
        let t = |ic: Interconnect| {
            run_job(
                spec(maps, reduces, pairs, 1024, false, false),
                &HashPartitionerFactory,
                NodeSpec::westmere(),
                2,
                ic,
            )
            .job_time
            .as_secs_f64()
        };
        let slow = t(Interconnect::GigE1);
        let fast = t(Interconnect::IpoibQdr);
        // Allow sub-percent scheduling noise from heartbeat quantization.
        assert!(
            fast <= slow * 1.01,
            "fast {fast} slow {slow} maps={maps} reduces={reduces} pairs={pairs}"
        );
    }
}
