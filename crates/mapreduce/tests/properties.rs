//! Property-based tests: engine invariants over arbitrary small jobs.

use proptest::prelude::*;

use cluster::NodeSpec;
use mapreduce::conf::EngineKind;
use mapreduce::engine::run_job;
use mapreduce::io::DataType;
use mapreduce::job::JobSpec;
use mapreduce::HashPartitionerFactory;
use simnet::Interconnect;

fn spec(
    maps: u32,
    reduces: u32,
    pairs: u64,
    kv: usize,
    yarn: bool,
    text: bool,
) -> JobSpec {
    let mut s = JobSpec {
        key_size: kv,
        value_size: kv,
        pairs_per_map: pairs,
        data_type: if text { DataType::Text } else { DataType::BytesWritable },
        ..JobSpec::default()
    };
    s.conf.num_maps = maps;
    s.conf.num_reduces = reduces;
    if yarn {
        s.conf.engine = EngineKind::Yarn;
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any small job completes with conserved record counts, regardless
    /// of topology, engine, data type, or geometry.
    #[test]
    fn jobs_complete_and_conserve_records(
        maps in 1u32..6,
        reduces in 1u32..6,
        pairs in 1u64..20_000,
        kv in 8usize..2048,
        slaves in 1usize..4,
        yarn in any::<bool>(),
        text in any::<bool>(),
        ic_idx in 0usize..5,
    ) {
        let ic = Interconnect::ALL[ic_idx];
        let s = spec(maps, reduces, pairs, kv, yarn, text);
        let r = run_job(s, &HashPartitionerFactory, NodeSpec::westmere(), slaves, ic);
        prop_assert_eq!(r.counters.maps_completed, u64::from(maps));
        prop_assert_eq!(r.counters.reduces_completed, u64::from(reduces));
        prop_assert_eq!(r.counters.map_output_records, u64::from(maps) * pairs);
        prop_assert_eq!(r.counters.reduce_input_records, u64::from(maps) * pairs);
        prop_assert_eq!(
            r.counters.total_shuffle_bytes(),
            r.counters.map_output_materialized_bytes
        );
        prop_assert!(r.job_time.as_secs_f64() > 0.0);
        // Timings are well-formed.
        for t in &r.tasks {
            prop_assert!(t.finish >= t.start);
        }
    }

    /// Adding shuffle volume never makes the job faster (monotonicity),
    /// holding everything else fixed.
    #[test]
    fn job_time_monotone_in_volume(pairs in 1_000u64..30_000, extra in 1_000u64..30_000) {
        let t = |p: u64| {
            run_job(
                spec(4, 2, p, 512, false, false),
                &HashPartitionerFactory,
                NodeSpec::westmere(),
                2,
                Interconnect::GigE1,
            )
            .job_time
        };
        prop_assert!(t(pairs + extra) >= t(pairs));
    }

    /// A strictly better network never hurts, for arbitrary small jobs.
    #[test]
    fn network_upgrade_never_hurts(
        maps in 1u32..5,
        reduces in 1u32..5,
        pairs in 1_000u64..40_000,
    ) {
        let t = |ic: Interconnect| {
            run_job(
                spec(maps, reduces, pairs, 1024, false, false),
                &HashPartitionerFactory,
                NodeSpec::westmere(),
                2,
                ic,
            )
            .job_time
            .as_secs_f64()
        };
        let slow = t(Interconnect::GigE1);
        let fast = t(Interconnect::IpoibQdr);
        // Allow sub-percent scheduling noise from heartbeat quantization.
        prop_assert!(fast <= slow * 1.01, "fast {} slow {}", fast, slow);
    }
}
