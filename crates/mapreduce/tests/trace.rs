//! End-to-end phase-tracing tests: span streams and breakdowns from full
//! engine runs, including runs with kills (speculation) and node crashes.

use cluster::NodeSpec;
use mapreduce::engine::Engine;
use mapreduce::io::DataType;
use mapreduce::job::{JobResult, JobSpec};
use mapreduce::{HashPartitionerFactory, NodeCrash, NodeSlowdown};
use simnet::Interconnect;

fn base_spec() -> JobSpec {
    let mut spec = JobSpec {
        key_size: 1024,
        value_size: 1024,
        pairs_per_map: 20_000,
        data_type: DataType::BytesWritable,
        ..JobSpec::default()
    };
    spec.conf.num_maps = 8;
    spec.conf.num_reduces = 4;
    spec
}

fn run(spec: JobSpec, traced: bool) -> JobResult {
    let mut engine = Engine::new(
        spec,
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    );
    if traced {
        engine.enable_tracing();
    }
    engine.run()
}

#[test]
fn tracing_changes_nothing_but_adds_spans() {
    let plain = run(base_spec(), false);
    let traced = run(base_spec(), true);
    // The recorder must be a pure observer.
    assert_eq!(plain.job_time, traced.job_time);
    assert_eq!(plain.counters, traced.counters);
    assert!(plain.phases.is_none() && plain.trace.is_none());
    let trace = traced.trace.as_ref().expect("span stream");
    assert!(!trace.spans().is_empty());
    // Every attempt opens with a JVM span; 8 maps + 4 reduces, no retries.
    let jvm = trace.spans().iter().filter(|s| s.phase == "jvm").count();
    assert_eq!(jvm, 12);
    assert!(trace.marks().iter().any(|m| m.label.starts_with("launch ")));
}

#[test]
fn breakdown_reconciles_with_job_time() {
    let r = run(base_spec(), true);
    let b = r.phases.as_ref().expect("breakdown");
    // The boundary sweep partitions wall-clock exactly; 1% is the
    // acceptance bound, but integer-ns accounting should be tighter.
    assert!(b.reconciles(0.01), "{b:?}");
    assert!((b.total_s - r.job_time_secs()).abs() < 1e-9);
    let names: Vec<&str> = b.phases.iter().map(|p| p.phase.as_str()).collect();
    for expected in ["jvm", "map", "shuffle", "reduce"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    // Spans never escape the job window.
    let total_ns = r.job_time.as_nanos();
    for s in r.trace.as_ref().unwrap().spans() {
        assert!(s.end >= s.start);
        assert!(s.end.as_nanos() <= total_ns, "span past job end: {s:?}");
    }
}

#[test]
fn killed_speculative_attempts_leave_aborted_spans() {
    let mut spec = base_spec();
    spec.conf.faults.node_slowdowns.push(NodeSlowdown {
        node: 0,
        factor: 6.0,
    });
    spec.conf.speculative = true;
    spec.conf.speculative_slowdown = 1.2;
    let r = run(spec, true);
    assert!(r.counters.speculative_wins > 0, "{:?}", r.counters);
    let trace = r.trace.as_ref().expect("span stream");
    let aborted = trace.spans().iter().filter(|s| s.aborted).count();
    assert!(
        aborted as u64 >= r.counters.killed_attempts,
        "every killed attempt closes its open span: {aborted} aborted vs {:?}",
        r.counters
    );
    assert!(trace
        .marks()
        .iter()
        .any(|m| m.label.contains("(speculative)")));
    assert!(r.phases.as_ref().unwrap().reconciles(0.01));
}

#[test]
fn node_crash_closes_spans_and_breakdown_still_reconciles() {
    // Crash node 1 midway between map-phase end and job end so committed
    // map outputs are invalidated while reduces are still fetching.
    let clean = run(base_spec(), false);
    let last_finish = clean
        .tasks
        .iter()
        .map(|t| t.finish.as_secs_f64())
        .fold(0.0, f64::max);
    let crash_at = (clean.map_phase_end.as_secs_f64() + last_finish) / 2.0;
    let mut spec = base_spec();
    spec.conf.faults.node_crashes.push(NodeCrash {
        node: 1,
        at_secs: crash_at,
    });
    let r = run(spec, true);
    let trace = r.trace.as_ref().expect("span stream");
    assert!(trace.marks().iter().any(|m| m.label == "node 1 crashed"));
    assert!(trace.spans().iter().any(|s| s.aborted));
    let b = r.phases.as_ref().unwrap();
    assert!(b.reconciles(0.01), "{b:?}");
}
