//! End-to-end engine tests: full jobs over simulated clusters.

use cluster::NodeSpec;
use mapreduce::conf::{EngineKind, ShuffleEngineKind};
use mapreduce::engine::run_job;
use mapreduce::io::DataType;
use mapreduce::job::JobSpec;
use mapreduce::HashPartitionerFactory;
use simcore::units::ByteSize;
use simnet::Interconnect;

fn small_spec(maps: u32, reduces: u32) -> JobSpec {
    let mut spec = JobSpec {
        key_size: 1024,
        value_size: 1024,
        pairs_per_map: 0,
        data_type: DataType::BytesWritable,
        ..JobSpec::default()
    };
    spec.conf.num_maps = maps;
    spec.conf.num_reduces = reduces;
    spec.set_shuffle_size(ByteSize::from_mib(256));
    spec
}

#[test]
fn small_job_completes() {
    let spec = small_spec(4, 2);
    let r = run_job(
        spec.clone(),
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE1,
    );
    assert_eq!(r.counters.maps_completed, 4);
    assert_eq!(r.counters.reduces_completed, 2);
    assert_eq!(
        r.counters.map_output_records,
        spec.pairs_per_map * 4,
        "every record generated"
    );
    assert_eq!(
        r.counters.reduce_input_records, r.counters.map_output_records,
        "every record shuffled and reduced"
    );
    assert_eq!(r.counters.shuffled_fetches as u32, 4 * 2);
    assert!(r.job_time_secs() > 1.0, "job takes real time");
    assert!(r.job_time_secs() < 600.0, "job terminates promptly");
    // All per-task timings are sane.
    assert_eq!(r.tasks.len(), 6);
    for t in &r.tasks {
        assert!(t.finish >= t.start);
    }
    assert!(r.map_phase_end <= r.shuffle_end);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        run_job(
            small_spec(4, 2),
            &HashPartitionerFactory,
            NodeSpec::westmere(),
            2,
            Interconnect::IpoibQdr,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.job_time, b.job_time);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn faster_network_is_never_slower() {
    let time_on = |ic: Interconnect| {
        run_job(
            small_spec(8, 4),
            &HashPartitionerFactory,
            NodeSpec::westmere(),
            4,
            ic,
        )
        .job_time_secs()
    };
    let gige = time_on(Interconnect::GigE1);
    let tengige = time_on(Interconnect::GigE10);
    let ipoib = time_on(Interconnect::IpoibQdr);
    assert!(
        gige >= tengige && tengige >= ipoib,
        "1GigE {gige} >= 10GigE {tengige} >= IPoIB {ipoib}"
    );
}

#[test]
fn rdma_beats_ipoib() {
    let mut spec = small_spec(8, 4);
    spec.conf.engine = EngineKind::Yarn;
    let ipoib = run_job(
        spec.clone(),
        &HashPartitionerFactory,
        NodeSpec::stampede(),
        4,
        Interconnect::IpoibFdr,
    );
    let mut rdma_spec = spec;
    rdma_spec.conf.shuffle_engine = ShuffleEngineKind::Rdma;
    let rdma = run_job(
        rdma_spec,
        &HashPartitionerFactory,
        NodeSpec::stampede(),
        4,
        Interconnect::RdmaFdr,
    );
    assert!(
        rdma.job_time < ipoib.job_time,
        "rdma {} < ipoib {}",
        rdma.job_time_secs(),
        ipoib.job_time_secs()
    );
    // RDMA does not pay socket CPU.
    assert_eq!(rdma.counters.protocol_cpu_seconds, 0.0);
    assert!(ipoib.counters.protocol_cpu_seconds > 0.0);
}

#[test]
fn yarn_engine_completes() {
    let mut spec = small_spec(8, 4);
    spec.conf.engine = EngineKind::Yarn;
    let r = run_job(
        spec,
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        4,
        Interconnect::GigE10,
    );
    assert_eq!(r.counters.maps_completed, 8);
    assert_eq!(r.counters.reduces_completed, 4);
}

#[test]
fn bigger_shuffle_takes_longer() {
    let time_for = |mib: u64| {
        let mut spec = small_spec(4, 2);
        spec.set_shuffle_size(ByteSize::from_mib(mib));
        run_job(
            spec,
            &HashPartitionerFactory,
            NodeSpec::westmere(),
            2,
            Interconnect::GigE1,
        )
        .job_time_secs()
    };
    let t1 = time_for(128);
    let t2 = time_for(512);
    let t3 = time_for(1024);
    assert!(t1 < t2 && t2 < t3, "{t1} {t2} {t3}");
}

#[test]
fn monitors_capture_activity() {
    let r = run_job(
        small_spec(4, 2),
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE1,
    );
    assert_eq!(r.cpu_series.len(), 2);
    assert_eq!(r.net_rx_series.len(), 2);
    // Some CPU was used on some node at some point.
    let peak_cpu = r
        .cpu_series
        .iter()
        .filter_map(|s| s.peak())
        .fold(0.0f64, f64::max);
    assert!(peak_cpu > 5.0, "peak cpu {peak_cpu}%");
    // Some network receive activity was observed.
    let peak_rx = r
        .net_rx_series
        .iter()
        .filter_map(|s| s.peak())
        .fold(0.0f64, f64::max);
    assert!(peak_rx > 1.0, "peak rx {peak_rx} MB/s");
}

#[test]
fn single_node_cluster_uses_loopback_only() {
    let r = run_job(
        small_spec(2, 1),
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        1,
        Interconnect::GigE1,
    );
    assert_eq!(r.counters.remote_shuffle_bytes, 0);
    assert!(r.counters.local_shuffle_bytes > 0);
}

#[test]
fn text_type_shuffles_fewer_bytes() {
    let run_with = |dt: DataType| {
        let mut spec = small_spec(4, 2);
        spec.data_type = dt;
        spec.pairs_per_map = 10_000;
        run_job(
            spec,
            &HashPartitionerFactory,
            NodeSpec::westmere(),
            2,
            Interconnect::GigE1,
        )
    };
    let bytes = run_with(DataType::BytesWritable);
    let text = run_with(DataType::Text);
    assert!(
        text.counters.map_output_materialized_bytes < bytes.counters.map_output_materialized_bytes
    );
}
