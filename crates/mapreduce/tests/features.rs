//! Feature-level engine tests: output formats, ablation knobs, cost
//! overrides, and scheduler behaviour observable from job results.

use cluster::NodeSpec;
use mapreduce::conf::{EngineKind, ShuffleEngineKind};
use mapreduce::costs::CostModel;
use mapreduce::engine::{run_job, Engine};
use mapreduce::io::DataType;
use mapreduce::job::JobSpec;
use mapreduce::shuffle::rdma::ShuffleModel;
use mapreduce::{FaultPlan, HashPartitionerFactory};
use simnet::Interconnect;

fn base_spec() -> JobSpec {
    let mut spec = JobSpec {
        key_size: 1024,
        value_size: 1024,
        pairs_per_map: 20_000,
        data_type: DataType::BytesWritable,
        ..JobSpec::default()
    };
    spec.conf.num_maps = 4;
    spec.conf.num_reduces = 2;
    spec
}

#[test]
fn local_output_format_writes_and_slows() {
    let null_out = run_job(
        base_spec(),
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    );
    let mut spec = base_spec();
    spec.output_write_amplification = 1.0; // LocalFileOutputFormat
    let file_out = run_job(
        spec,
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    );
    assert!(
        file_out.counters.disk_write_bytes > null_out.counters.disk_write_bytes,
        "writing output must add disk traffic"
    );
    assert!(
        file_out.job_time >= null_out.job_time,
        "writing output cannot be faster than discarding it"
    );
}

#[test]
fn cost_model_override_scales_job_time() {
    let spec = base_spec();
    let factory = HashPartitionerFactory;
    let baseline = Engine::new(
        spec.clone(),
        &factory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    )
    .run();

    let mut slow_costs = CostModel::calibrated();
    slow_costs.map_cpu_per_mib *= 3.0;
    slow_costs.reduce_cpu_per_mib *= 3.0;
    let mut engine = Engine::new(
        spec,
        &factory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    );
    engine.set_cost_model(slow_costs);
    let slowed = engine.run();
    assert!(
        slowed.job_time.as_secs_f64() > baseline.job_time.as_secs_f64() * 1.5,
        "3x CPU costs must slow the job substantially: {} vs {}",
        slowed.job_time.as_secs_f64(),
        baseline.job_time.as_secs_f64()
    );
}

#[test]
fn disabling_page_cache_slows_io_heavy_jobs() {
    let mut spec = base_spec();
    spec.pairs_per_map = 200_000; // ~800 MiB per map: real spill pressure
    let factory = HashPartitionerFactory;
    let cached = Engine::new(
        spec.clone(),
        &factory,
        NodeSpec::westmere(),
        2,
        Interconnect::IpoibQdr,
    )
    .run();
    let mut engine = Engine::new(
        spec,
        &factory,
        NodeSpec::westmere(),
        2,
        Interconnect::IpoibQdr,
    );
    engine.disable_page_cache();
    let raw = engine.run();
    assert!(
        raw.job_time > cached.job_time,
        "synchronous disk I/O must cost time: {} vs {}",
        raw.job_time.as_secs_f64(),
        cached.job_time.as_secs_f64()
    );
}

#[test]
fn shuffle_model_override_controls_overlap() {
    let spec = base_spec();
    let factory = HashPartitionerFactory;
    let mut no_overlap = ShuffleModel::for_kind(ShuffleEngineKind::Tcp);
    no_overlap.merge_overlap = 0.0;
    let mut engine = Engine::new(
        spec.clone(),
        &factory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    );
    engine.set_shuffle_model(no_overlap);
    let serial = engine.run();

    let mut full_overlap = ShuffleModel::for_kind(ShuffleEngineKind::Tcp);
    full_overlap.merge_overlap = 1.0;
    let mut engine = Engine::new(
        spec,
        &factory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    );
    engine.set_shuffle_model(full_overlap);
    let overlapped = engine.run();
    assert!(overlapped.job_time <= serial.job_time);
}

#[test]
fn yarn_places_tasks_on_all_nodes() {
    let mut spec = base_spec();
    spec.conf.engine = EngineKind::Yarn;
    spec.conf.num_maps = 8;
    spec.conf.num_reduces = 4;
    let r = run_job(
        spec,
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        4,
        Interconnect::GigE10,
    );
    let mut nodes_used: Vec<usize> = r.tasks.iter().map(|t| t.node).collect();
    nodes_used.sort_unstable();
    nodes_used.dedup();
    assert_eq!(nodes_used, vec![0, 1, 2, 3], "round-robin spread");
}

#[test]
fn stampede_nodes_run_faster_than_westmere() {
    let time_on = |node: NodeSpec| {
        run_job(
            base_spec(),
            &HashPartitionerFactory,
            node,
            2,
            Interconnect::IpoibFdr,
        )
        .job_time
        .as_secs_f64()
    };
    let westmere = time_on(NodeSpec::westmere());
    let stampede = time_on(NodeSpec::stampede());
    assert!(
        stampede < westmere,
        "Sandy Bridge nodes ({stampede}) must beat Westmere ({westmere})"
    );
}

#[test]
fn text_jobs_pay_the_serialization_premium() {
    // Same record count: Text moves slightly fewer bytes but pays more
    // CPU per byte; the job should not be dramatically different, and the
    // engine must track the type factor in the counters.
    let bytes = run_job(
        base_spec(),
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::IpoibQdr,
    );
    let mut spec = base_spec();
    spec.data_type = DataType::Text;
    let text = run_job(
        spec,
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::IpoibQdr,
    );
    assert!(
        text.counters.map_output_materialized_bytes < bytes.counters.map_output_materialized_bytes
    );
    assert!(text.counters.cpu_core_seconds > bytes.counters.cpu_core_seconds);
}

#[test]
fn injected_failures_are_retried_and_the_job_still_completes() {
    let mut spec = base_spec();
    spec.conf.faults = FaultPlan::fail_first_attempts(vec![0, 2], vec![1]);
    let r = run_job(
        spec,
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    );
    assert_eq!(r.counters.failed_task_attempts, 3);
    assert_eq!(r.counters.maps_completed, 4);
    assert_eq!(r.counters.reduces_completed, 2);
    // Re-executed work is not double counted.
    assert_eq!(r.counters.map_output_records, 4 * 20_000);
    assert_eq!(r.counters.reduce_input_records, 4 * 20_000);
}

#[test]
fn failures_cost_time_when_slots_are_saturated() {
    // 8 maps on 2 nodes x 2 slots = 2 full waves; a failed attempt forces
    // a third wave for the victim, delaying the whole job. (With idle
    // slots a failure can even *help* slightly by staggering the shuffle
    // — real straggler physics — so the saturated case is the right one
    // to assert on.)
    let mut clean_spec = base_spec();
    clean_spec.conf.num_maps = 8;
    let clean = run_job(
        clean_spec.clone(),
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    );
    let mut spec = clean_spec;
    spec.conf.faults = FaultPlan::fail_first_attempts(vec![0], vec![]);
    let failed = run_job(
        spec,
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    );
    assert!(
        failed.job_time > clean.job_time,
        "a re-executed map must delay the saturated job: {} vs {}",
        failed.job_time.as_secs_f64(),
        clean.job_time.as_secs_f64()
    );
    assert_eq!(
        failed.counters.reduce_input_records,
        clean.counters.reduce_input_records
    );
}

#[test]
fn failure_injection_is_deterministic() {
    let run_once = || {
        let mut spec = base_spec();
        spec.conf.faults = FaultPlan::fail_first_attempts(vec![1], vec![0]);
        run_job(
            spec,
            &HashPartitionerFactory,
            NodeSpec::westmere(),
            2,
            Interconnect::IpoibQdr,
        )
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.job_time, b.job_time);
    assert_eq!(a.counters, b.counters);
}
