//! End-to-end fault-injection tests: one scenario per fault class, plus
//! the invariants that must survive any of them (determinism, record
//! conservation, graceful job abort).

use cluster::NodeSpec;
use mapreduce::engine::run_job;
use mapreduce::io::DataType;
use mapreduce::job::{JobResult, JobSpec};
use mapreduce::{FaultPlan, HashPartitionerFactory, JobOutcome, NodeCrash, NodeSlowdown};
use simnet::Interconnect;

const MAPS: u32 = 8;
const REDUCES: u32 = 4;
const PAIRS: u64 = 20_000;

fn base_spec() -> JobSpec {
    let mut spec = JobSpec {
        key_size: 1024,
        value_size: 1024,
        pairs_per_map: PAIRS,
        data_type: DataType::BytesWritable,
        ..JobSpec::default()
    };
    spec.conf.num_maps = MAPS;
    spec.conf.num_reduces = REDUCES;
    spec
}

fn run(spec: JobSpec) -> JobResult {
    run_job(
        spec,
        &HashPartitionerFactory,
        NodeSpec::westmere(),
        2,
        Interconnect::GigE10,
    )
}

fn assert_conserved(r: &JobResult) {
    assert_eq!(r.outcome, JobOutcome::Succeeded);
    assert_eq!(r.counters.maps_completed, u64::from(MAPS));
    assert_eq!(r.counters.reduces_completed, u64::from(REDUCES));
    // Logical records are charged by winning attempts only: retries,
    // killed speculative attempts, and invalidated outputs never inflate
    // them.
    assert_eq!(r.counters.map_output_records, u64::from(MAPS) * PAIRS);
    assert_eq!(r.counters.reduce_input_records, u64::from(MAPS) * PAIRS);
}

#[test]
fn probabilistic_task_failures_are_retried_to_success() {
    let mut spec = base_spec();
    spec.conf.faults.map_failure_prob = 0.2;
    spec.conf.faults.reduce_failure_prob = 0.2;
    let r = run(spec);
    assert!(r.counters.failed_task_attempts > 0, "{:?}", r.counters);
    assert_conserved(&r);

    // Failed attempts waste real work: the faulted run is slower than the
    // clean one.
    let clean = run(base_spec());
    assert!(r.job_time > clean.job_time);
    // Physical work (spills) double-counts re-executed attempts.
    assert!(r.counters.spilled_records_map > clean.counters.spilled_records_map);
}

#[test]
fn node_crash_reruns_lost_maps() {
    // Crash between map-phase end and job end, so node 1 holds committed
    // map outputs that reducers still depend on.
    // (`job_time` includes teardown overhead past the last completion, so
    // use the last reduce finish as the end of the live event window.)
    let clean = run(base_spec());
    let last_finish = clean
        .tasks
        .iter()
        .map(|t| t.finish.as_secs_f64())
        .fold(0.0, f64::max);
    let crash_at = (clean.map_phase_end.as_secs_f64() + last_finish) / 2.0;
    let mut spec = base_spec();
    spec.conf.faults.node_crashes.push(NodeCrash {
        node: 1,
        at_secs: crash_at,
    });
    let r = run(spec);
    assert!(
        r.counters.maps_rerun_after_node_loss > 0,
        "crash at {crash_at:.1}s must invalidate committed maps: {:?}",
        r.counters
    );
    assert_conserved(&r);
    assert!(r.job_time > clean.job_time, "recovery is not free");
    // The dead node hosts nothing after the crash.
    for t in &r.tasks {
        assert!(
            t.node != 1 || t.finish.as_secs_f64() <= crash_at,
            "task finished on the dead node after the crash: {t:?}"
        );
    }
}

#[test]
fn crashing_every_node_fails_the_job_gracefully() {
    let mut spec = base_spec();
    spec.conf.faults.node_crashes.push(NodeCrash {
        node: 0,
        at_secs: 5.0,
    });
    spec.conf.faults.node_crashes.push(NodeCrash {
        node: 1,
        at_secs: 6.0,
    });
    let r = run(spec);
    assert_eq!(r.outcome, JobOutcome::Failed);
    let diag = r.failure.expect("failed jobs carry a diagnostic");
    assert!(diag.reason.contains("crashed"), "{}", diag.reason);
}

#[test]
fn fetch_failures_back_off_and_recover() {
    let mut spec = base_spec();
    spec.conf.faults.fetch_failure_prob = 0.2;
    let r = run(spec);
    assert!(r.counters.failed_fetches > 0, "{:?}", r.counters);
    assert_conserved(&r);
    // Retries cost shuffle time.
    let clean = run(base_spec());
    assert!(r.shuffle_end >= clean.shuffle_end);
}

#[test]
fn fetch_retry_exhaustion_fails_the_attempt_and_then_the_job() {
    let mut spec = base_spec();
    spec.conf.faults.fetch_failure_prob = 1.0; // every try fails
    spec.conf.fetch_max_retries = 2;
    spec.conf.max_attempts = 2;
    let r = run(spec);
    assert_eq!(r.outcome, JobOutcome::Failed);
    assert!(r.counters.failed_fetches > 0);
    let diag = r.failure.expect("diagnostic");
    let (is_map, _) = diag.task.expect("a specific task exhausted its attempts");
    assert!(!is_map, "fetch exhaustion fails reduce attempts");
    assert!(diag.reason.contains("allowed attempts"), "{}", diag.reason);
}

#[test]
fn speculation_rescues_stragglers_without_losing_data() {
    let straggler = |speculative: bool| {
        let mut spec = base_spec();
        spec.conf.faults.node_slowdowns.push(NodeSlowdown {
            node: 0,
            factor: 6.0,
        });
        spec.conf.speculative = speculative;
        spec.conf.speculative_slowdown = 1.2;
        run(spec)
    };
    let off = straggler(false);
    let on = straggler(true);
    assert_conserved(&off);
    assert_conserved(&on);
    assert!(on.counters.speculative_launches > 0, "{:?}", on.counters);
    assert!(on.counters.speculative_wins > 0, "{:?}", on.counters);
    // Losers are killed, not completed — and every kill frees a slot.
    assert!(on.counters.killed_attempts >= on.counters.speculative_wins);
    // Backups on healthy nodes beat a 3x straggler.
    assert!(
        on.job_time < off.job_time,
        "{} vs {}",
        on.job_time,
        off.job_time
    );
}

#[test]
fn repeated_failures_blacklist_nodes_but_never_the_last_one() {
    let mut spec = base_spec();
    spec.conf.faults.map_failure_prob = 0.5;
    spec.conf.max_attempts = 30;
    spec.conf.node_blacklist_threshold = 2;
    let r = run(spec);
    assert_conserved(&r);
    // With two nodes at most one can be blacklisted; the scheduler must
    // keep the last one schedulable no matter how many failures land.
    assert!(r.counters.blacklisted_nodes <= 1, "{:?}", r.counters);
    assert!(r.counters.failed_task_attempts >= 2);
}

#[test]
fn exceeding_max_attempts_aborts_instead_of_panicking() {
    let mut spec = base_spec();
    spec.conf.faults.map_failure_prob = 1.0; // every attempt dies
    spec.conf.max_attempts = 2;
    let r = run(spec);
    assert_eq!(r.outcome, JobOutcome::Failed);
    assert!(!r.succeeded());
    let diag = r.failure.expect("diagnostic");
    assert_eq!(diag.task.map(|(m, _)| m), Some(true));
    assert!(diag.reason.contains("allowed attempts"), "{}", diag.reason);
    assert!(r.counters.failed_task_attempts >= 2);
    // A failed job still reports a coherent end time.
    assert!(r.job_time.as_secs_f64() > 0.0);
}

#[test]
fn faulted_runs_are_deterministic() {
    let cocktail = || {
        let mut spec = base_spec();
        spec.conf.faults = FaultPlan {
            map_failure_prob: 0.15,
            reduce_failure_prob: 0.1,
            fetch_failure_prob: 0.05,
            node_crashes: vec![NodeCrash {
                node: 1,
                at_secs: 25.0,
            }],
            node_slowdowns: vec![NodeSlowdown {
                node: 0,
                factor: 1.5,
            }],
            ..FaultPlan::default()
        };
        spec.conf.speculative = true;
        run(spec)
    };
    let a = cocktail();
    let b = cocktail();
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.job_time, b.job_time, "bit-identical timing");
    assert_eq!(a.counters, b.counters, "bit-identical counters");
    assert_eq!(a.tasks.len(), b.tasks.len());
    for (x, y) in a.tasks.iter().zip(&b.tasks) {
        assert_eq!(
            (x.is_map, x.index, x.node, x.start, x.finish),
            (y.is_map, y.index, y.node, y.start, y.finish)
        );
    }
}

#[test]
fn fault_seed_changes_the_failure_pattern() {
    let with_seed = |seed: u64| {
        let mut spec = base_spec();
        spec.conf.seed = seed;
        spec.conf.faults.map_failure_prob = 0.3;
        run(spec)
    };
    let a = with_seed(1);
    let b = with_seed(2);
    assert_conserved(&a);
    assert_conserved(&b);
    // Different seeds draw different doomed attempts.
    assert_ne!(
        (a.counters.failed_task_attempts, a.job_time),
        (b.counters.failed_task_attempts, b.job_time)
    );
}
