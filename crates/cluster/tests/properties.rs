//! Property-style tests for the CPU and disk simulators, run over seeded
//! case grids (the workspace carries no external test dependencies).

use cluster::{CpuSim, DiskSim, DiskSpec, IoKind};
use simcore::rng::SplitMix64;
use simcore::time::SimTime;
use simcore::units::{ByteSize, Rate};

fn drain_cpu(cpu: &mut CpuSim) -> (usize, SimTime) {
    let mut n = 0;
    let mut last = SimTime::ZERO;
    while let Some(t) = cpu.next_event_time() {
        let done = cpu.advance_to(t);
        n += done.len();
        last = t;
    }
    (n, last)
}

fn gen_work(rng: &mut SplitMix64, max_jobs: u64) -> Vec<f64> {
    let n = 1 + rng.next_below(max_jobs) as usize;
    (0..n).map(|_| 0.01 + rng.next_f64() * 4.99).collect()
}

/// Every submitted CPU job eventually completes, and total busy time
/// equals total work (no work lost or invented).
#[test]
fn cpu_conserves_work() {
    let mut rng = SplitMix64::new(0xC9);
    for _ in 0..64 {
        let work = gen_work(&mut rng, 19);
        let cores = 1 + rng.next_below(15) as u32;
        let mut cpu = CpuSim::homogeneous(1, cores, 1.0);
        let total: f64 = work.iter().sum();
        for (i, w) in work.iter().enumerate() {
            cpu.submit(SimTime::ZERO, 0, *w, i as u64);
        }
        let (n, last) = drain_cpu(&mut cpu);
        assert_eq!(n, work.len());
        let busy = cpu.drain_busy_core_seconds(0, last);
        assert!(
            (busy - total).abs() < 1e-3 * total.max(1.0),
            "busy {busy} vs total {total}"
        );
    }
}

/// Makespan is bounded below by max(total/cores, longest job) and
/// above by a small slack over the PS optimum.
#[test]
fn cpu_makespan_bounds() {
    let mut rng = SplitMix64::new(0x3A4E);
    for _ in 0..64 {
        let work = gen_work(&mut rng, 19);
        let cores = 1 + rng.next_below(7) as u32;
        let mut cpu = CpuSim::homogeneous(1, cores, 1.0);
        let total: f64 = work.iter().sum();
        let longest = work.iter().cloned().fold(0.0, f64::max);
        for (i, w) in work.iter().enumerate() {
            cpu.submit(SimTime::ZERO, 0, *w, i as u64);
        }
        let (_, last) = drain_cpu(&mut cpu);
        let makespan = last.as_secs_f64();
        let lower = (total / cores as f64).max(longest);
        assert!(
            makespan >= lower - 1e-6,
            "makespan {makespan} < lower {lower}"
        );
        // PS never does worse than fully serial execution.
        assert!(
            makespan <= total + 1e-6,
            "makespan {makespan} > serial {total}"
        );
    }
}

/// Disk completions preserve FIFO order per node with one disk.
#[test]
fn disk_fifo_order() {
    let mut rng = SplitMix64::new(0xD15C);
    for _ in 0..64 {
        let n = 1 + rng.next_below(19) as usize;
        let mut d = DiskSim::homogeneous(1, 1, DiskSpec::hdd());
        for i in 0..n {
            let s = 1 + rng.next_below(63);
            d.submit(
                SimTime::ZERO,
                0,
                ByteSize::from_mib(s),
                IoKind::Write,
                i as u64,
            );
        }
        let mut seen = Vec::new();
        while let Some(t) = d.next_event_time() {
            for c in d.advance_to(t) {
                seen.push(c.tag);
            }
        }
        let expect: Vec<u64> = (0..n as u64).collect();
        assert_eq!(seen, expect);
    }
}

/// Total disk service time equals the sum of per-request services.
#[test]
fn disk_busy_time_additive() {
    let mut rng = SplitMix64::new(0xADD);
    for _ in 0..64 {
        let n = 1 + rng.next_below(11) as usize;
        let bw = 50.0 + rng.next_f64() * 250.0;
        let spec = DiskSpec {
            read_bw: Rate::from_mb_per_sec(bw),
            write_bw: Rate::from_mb_per_sec(bw),
            seek_ms: 5.0,
        };
        let mut d = DiskSim::homogeneous(1, 1, spec);
        let mut expect = 0.0;
        for i in 0..n {
            let bytes = ByteSize::from_mib(1 + rng.next_below(63));
            expect += 5e-3 + bytes.as_bytes() as f64 / (bw * 1e6);
            d.submit(SimTime::ZERO, 0, bytes, IoKind::Write, i as u64);
        }
        let mut last = SimTime::ZERO;
        while let Some(t) = d.next_event_time() {
            d.advance_to(t);
            last = t;
        }
        assert!(
            (last.as_secs_f64() - expect).abs() < 1e-6 * expect.max(1.0),
            "makespan {} vs expected {expect}",
            last.as_secs_f64()
        );
    }
}
