//! Property-based tests for the CPU and disk simulators.

use proptest::prelude::*;
use cluster::{CpuSim, DiskSim, DiskSpec, IoKind};
use simcore::time::SimTime;
use simcore::units::{ByteSize, Rate};

fn drain_cpu(cpu: &mut CpuSim) -> (usize, SimTime) {
    let mut n = 0;
    let mut last = SimTime::ZERO;
    while let Some(t) = cpu.next_event_time() {
        let done = cpu.advance_to(t);
        n += done.len();
        last = t;
    }
    (n, last)
}

proptest! {
    /// Every submitted CPU job eventually completes, and total busy time
    /// equals total work (no work lost or invented).
    #[test]
    fn cpu_conserves_work(work in proptest::collection::vec(0.01f64..5.0, 1..20), cores in 1u32..16) {
        let mut cpu = CpuSim::homogeneous(1, cores, 1.0);
        let total: f64 = work.iter().sum();
        for (i, w) in work.iter().enumerate() {
            cpu.submit(SimTime::ZERO, 0, *w, i as u64);
        }
        let (n, last) = drain_cpu(&mut cpu);
        prop_assert_eq!(n, work.len());
        let busy = cpu.drain_busy_core_seconds(0, last);
        prop_assert!((busy - total).abs() < 1e-3 * total.max(1.0),
            "busy {} vs total {}", busy, total);
    }

    /// Makespan is bounded below by max(total/cores, longest job) and
    /// above by a small slack over the PS optimum.
    #[test]
    fn cpu_makespan_bounds(work in proptest::collection::vec(0.01f64..5.0, 1..20), cores in 1u32..8) {
        let mut cpu = CpuSim::homogeneous(1, cores, 1.0);
        let total: f64 = work.iter().sum();
        let longest = work.iter().cloned().fold(0.0, f64::max);
        for (i, w) in work.iter().enumerate() {
            cpu.submit(SimTime::ZERO, 0, *w, i as u64);
        }
        let (_, last) = drain_cpu(&mut cpu);
        let makespan = last.as_secs_f64();
        let lower = (total / cores as f64).max(longest);
        prop_assert!(makespan >= lower - 1e-6, "makespan {} < lower {}", makespan, lower);
        // PS never does worse than fully serial execution.
        prop_assert!(makespan <= total + 1e-6, "makespan {} > serial {}", makespan, total);
    }

    /// Disk completions preserve FIFO order per node with one disk.
    #[test]
    fn disk_fifo_order(sizes in proptest::collection::vec(1u64..64, 1..20)) {
        let mut d = DiskSim::homogeneous(1, 1, DiskSpec::hdd());
        for (i, s) in sizes.iter().enumerate() {
            d.submit(SimTime::ZERO, 0, ByteSize::from_mib(*s), IoKind::Write, i as u64);
        }
        let mut seen = Vec::new();
        while let Some(t) = d.next_event_time() {
            for c in d.advance_to(t) {
                seen.push(c.tag);
            }
        }
        let expect: Vec<u64> = (0..sizes.len() as u64).collect();
        prop_assert_eq!(seen, expect);
    }

    /// Total disk service time equals the sum of per-request services.
    #[test]
    fn disk_busy_time_additive(sizes in proptest::collection::vec(1u64..64, 1..12), bw in 50.0f64..300.0) {
        let spec = DiskSpec {
            read_bw: Rate::from_mb_per_sec(bw),
            write_bw: Rate::from_mb_per_sec(bw),
            seek_ms: 5.0,
        };
        let mut d = DiskSim::homogeneous(1, 1, spec);
        let mut expect = 0.0;
        for (i, s) in sizes.iter().enumerate() {
            let bytes = ByteSize::from_mib(*s);
            expect += 5e-3 + bytes.as_bytes() as f64 / (bw * 1e6);
            d.submit(SimTime::ZERO, 0, bytes, IoKind::Write, i as u64);
        }
        let mut last = SimTime::ZERO;
        while let Some(t) = d.next_event_time() {
            d.advance_to(t);
            last = t;
        }
        prop_assert!((last.as_secs_f64() - expect).abs() < 1e-6 * expect.max(1.0),
            "makespan {} vs expected {}", last.as_secs_f64(), expect);
    }
}
