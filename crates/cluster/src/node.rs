//! Hardware description of a cluster node.

use simcore::units::{ByteSize, Rate};

/// A spinning-disk model: sequential bandwidth plus a per-request
/// positioning cost.
#[derive(Clone, Copy, Debug)]
pub struct DiskSpec {
    /// Sequential read bandwidth.
    pub read_bw: Rate,
    /// Sequential write bandwidth.
    pub write_bw: Rate,
    /// Average positioning (seek + rotational) delay charged per request.
    pub seek_ms: f64,
}

impl DiskSpec {
    /// A ~7200 rpm SATA HDD of the 2012-2014 era, as in both testbeds.
    pub fn hdd() -> Self {
        DiskSpec {
            read_bw: Rate::from_mb_per_sec(130.0),
            write_bw: Rate::from_mb_per_sec(115.0),
            seek_ms: 8.0,
        }
    }
}

/// Per-node hardware: CPU, memory, and local disks.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Human-readable model name.
    pub name: &'static str,
    /// Number of physical cores.
    pub cores: u32,
    /// Relative single-core speed factor (1.0 = the Westmere baseline of
    /// Cluster A); scales every CPU cost.
    pub speed: f64,
    /// Installed memory.
    pub memory: ByteSize,
    /// Local disks available for intermediate data (`mapred.local.dir`).
    pub disks: Vec<DiskSpec>,
}

impl NodeSpec {
    /// Cluster A slave: Intel Westmere, dual quad-core Xeon at 2.67 GHz,
    /// 24 GB RAM, two 1 TB HDDs.
    pub fn westmere() -> Self {
        NodeSpec {
            name: "Intel Westmere (2x quad-core Xeon 2.67GHz)",
            cores: 8,
            speed: 1.0,
            memory: ByteSize::from_gib(24),
            disks: vec![DiskSpec::hdd(), DiskSpec::hdd()],
        }
    }

    /// Cluster B (TACC Stampede) node: dual octa-core Sandy Bridge E5-2680
    /// at 2.7 GHz, 32 GB RAM, one 80 GB HDD.
    pub fn stampede() -> Self {
        NodeSpec {
            name: "Intel Sandy Bridge E5-2680 (2x octa-core 2.7GHz)",
            cores: 16,
            // Sandy Bridge is roughly 20% faster per clock than Westmere.
            speed: 1.2,
            memory: ByteSize::from_gib(32),
            disks: vec![DiskSpec::hdd()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_hardware() {
        let a = NodeSpec::westmere();
        assert_eq!(a.cores, 8);
        assert_eq!(a.memory, ByteSize::from_gib(24));
        assert_eq!(a.disks.len(), 2);

        let b = NodeSpec::stampede();
        assert_eq!(b.cores, 16);
        assert_eq!(b.memory, ByteSize::from_gib(32));
        assert_eq!(b.disks.len(), 1);
        assert!(b.speed > a.speed);
    }

    #[test]
    fn hdd_is_plausible() {
        let d = DiskSpec::hdd();
        assert!(d.read_bw.as_mb_per_sec() > d.write_bw.as_mb_per_sec());
        assert!(d.seek_ms > 0.0);
    }
}
