//! # cluster — machine models for the paper's two testbeds
//!
//! Simulates the compute side of a Hadoop slave node: a processor-sharing
//! CPU ([`cpu::CpuSim`]), FIFO local disks ([`disk::DiskSim`]), and a 1 Hz
//! CPU-utilization monitor ([`monitor::CpuMonitor`]). [`cluster::Cluster`]
//! bundles them, with presets for the paper's Cluster A (Intel Westmere)
//! and Cluster B (TACC Stampede).

pub mod cluster;
pub mod cpu;
pub mod disk;
pub mod monitor;
pub mod node;

pub use cluster::{Cluster, ClusterPreset};
pub use cpu::{CpuCompletion, CpuJobId, CpuSim};
pub use disk::{DiskSim, IoCompletion, IoId, IoKind};
pub use monitor::CpuMonitor;
pub use node::{DiskSpec, NodeSpec};
