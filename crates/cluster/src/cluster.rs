//! Cluster assembly: a set of identical nodes plus their simulators.

use simcore::time::SimDuration;

use crate::cpu::CpuSim;
use crate::disk::DiskSim;
use crate::monitor::CpuMonitor;
use crate::node::NodeSpec;

/// Which of the paper's two testbeds a cluster models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClusterPreset {
    /// Cluster A: the 9-node Intel Westmere cluster (Sect. 5.1(1)).
    ClusterA,
    /// Cluster B: TACC Stampede (Sect. 5.1(2)).
    ClusterB,
}

impl ClusterPreset {
    /// The node hardware for this preset.
    pub fn node_spec(self) -> NodeSpec {
        match self {
            ClusterPreset::ClusterA => NodeSpec::westmere(),
            ClusterPreset::ClusterB => NodeSpec::stampede(),
        }
    }
}

/// A homogeneous cluster of slave nodes with CPU and disk simulators and a
/// CPU-utilization monitor.
///
/// Node indices are *slave* indices: the master (JobTracker /
/// ResourceManager) is modelled as control-plane latency, not a simulated
/// machine, because the paper's benchmarks never bottleneck on it.
#[derive(Debug)]
pub struct Cluster {
    spec: NodeSpec,
    n_slaves: usize,
    /// Processor-sharing CPU model for every slave.
    pub cpu: CpuSim,
    /// FIFO disk queues for every slave.
    pub disk: DiskSim,
    /// CPU monitor; 1 Hz by default, see [`Cluster::set_monitor_interval`].
    pub cpu_monitor: CpuMonitor,
}

impl Cluster {
    /// Build `n_slaves` nodes of the given spec.
    pub fn new(spec: NodeSpec, n_slaves: usize) -> Self {
        assert!(n_slaves > 0, "cluster needs at least one slave");
        let cpu = CpuSim::homogeneous(n_slaves, spec.cores, spec.speed);
        let mut disk = DiskSim::new(vec![spec.disks.clone(); n_slaves]);
        disk.enable_page_cache(spec.memory);
        let cpu_monitor = CpuMonitor::new(n_slaves, SimDuration::from_secs(1));
        Cluster {
            spec,
            n_slaves,
            cpu,
            disk,
            cpu_monitor,
        }
    }

    /// Build from a paper preset.
    pub fn preset(preset: ClusterPreset, n_slaves: usize) -> Self {
        Cluster::new(preset.node_spec(), n_slaves)
    }

    /// Replace the CPU monitor's sampling interval. Call before the
    /// simulation starts: any samples already taken are discarded.
    pub fn set_monitor_interval(&mut self, interval: SimDuration) {
        self.cpu_monitor = CpuMonitor::new(self.n_slaves, interval);
    }

    /// Number of slave nodes.
    pub fn n_slaves(&self) -> usize {
        self.n_slaves
    }

    /// The node hardware description.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_cluster_a() {
        let c = Cluster::preset(ClusterPreset::ClusterA, 4);
        assert_eq!(c.n_slaves(), 4);
        assert_eq!(c.cpu.n_nodes(), 4);
        assert_eq!(c.disk.n_nodes(), 4);
        assert_eq!(c.spec().cores, 8);
    }

    #[test]
    fn preset_cluster_b() {
        let c = Cluster::preset(ClusterPreset::ClusterB, 16);
        assert_eq!(c.n_slaves(), 16);
        assert_eq!(c.spec().cores, 16);
    }

    #[test]
    #[should_panic(expected = "at least one slave")]
    fn empty_cluster_rejected() {
        let _ = Cluster::preset(ClusterPreset::ClusterA, 0);
    }
}
