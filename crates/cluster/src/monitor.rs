//! `dstat`-style per-node CPU utilization sampling.
//!
//! Pairs with `simnet::NetworkMonitor` to reproduce the paper's Fig. 7:
//! CPU % and network MB/s on one slave node, one sample per second.

use simcore::stats::TimeSeries;
use simcore::time::{SimDuration, SimTime};

use crate::cpu::CpuSim;

/// Samples per-node CPU utilization at a fixed interval.
pub struct CpuMonitor {
    interval: SimDuration,
    next_sample: SimTime,
    series: Vec<TimeSeries>,
}

impl CpuMonitor {
    /// Monitor `n_nodes`, sampling every `interval`.
    pub fn new(n_nodes: usize, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        CpuMonitor {
            interval,
            next_sample: SimTime::ZERO + interval,
            series: (0..n_nodes).map(|_| TimeSeries::new()).collect(),
        }
    }

    /// When the next sample is due.
    pub fn next_sample_time(&self) -> SimTime {
        self.next_sample
    }

    /// Take any samples due at or before `now`. `cpu` must already be
    /// advanced to `now`.
    pub fn maybe_sample(&mut self, now: SimTime, cpu: &mut CpuSim) {
        while self.next_sample <= now {
            let at = self.next_sample;
            let dt = self.interval.as_secs_f64();
            for node in 0..self.series.len() {
                let core_s = cpu.drain_busy_core_seconds(node, at);
                let pct = core_s / dt / cpu.cores(node) as f64 * 100.0;
                self.series[node].push(at, pct);
            }
            self.next_sample += self.interval;
        }
    }

    /// CPU % series for `node`.
    pub fn series(&self, node: usize) -> &TimeSeries {
        &self.series[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_average_utilization_over_interval() {
        let mut cpu = CpuSim::homogeneous(1, 4, 1.0);
        let mut mon = CpuMonitor::new(1, SimDuration::from_secs(1));
        // Two jobs of 2 core-seconds each: 2 busy cores for 2 s, then idle.
        cpu.submit(SimTime::ZERO, 0, 2.0, 0);
        cpu.submit(SimTime::ZERO, 0, 2.0, 1);
        for _ in 0..4 {
            let next = mon.next_sample_time();
            while let Some(t) = cpu.next_event_time() {
                if t > next {
                    break;
                }
                cpu.advance_to(t);
            }
            cpu.advance_to(next);
            mon.maybe_sample(next, &mut cpu);
        }
        let s = mon.series(0);
        assert_eq!(s.len(), 4);
        assert!((s.samples()[0].value - 50.0).abs() < 1e-6, "{s:?}");
        assert!((s.samples()[1].value - 50.0).abs() < 1e-6);
        assert!(s.samples()[2].value < 1.0);
        assert!(s.samples()[3].value < 1.0);
    }
}
