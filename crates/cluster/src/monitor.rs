//! `dstat`-style per-node CPU utilization sampling.
//!
//! Pairs with `simnet::NetworkMonitor` to reproduce the paper's Fig. 7:
//! CPU % and network MB/s on one slave node, one sample per second.

use simcore::stats::TimeSeries;
use simcore::time::{SimDuration, SimTime};

use crate::cpu::CpuSim;

/// Samples per-node CPU utilization at a fixed interval.
#[derive(Debug)]
pub struct CpuMonitor {
    interval: SimDuration,
    next_sample: SimTime,
    series: Vec<TimeSeries>,
}

impl CpuMonitor {
    /// Monitor `n_nodes`, sampling every `interval`.
    pub fn new(n_nodes: usize, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        CpuMonitor {
            interval,
            next_sample: SimTime::ZERO + interval,
            series: (0..n_nodes).map(|_| TimeSeries::new()).collect(),
        }
    }

    /// When the next sample is due.
    pub fn next_sample_time(&self) -> SimTime {
        self.next_sample
    }

    /// Take any samples due at or before `now`. `cpu` must already be
    /// advanced to `now`.
    pub fn maybe_sample(&mut self, now: SimTime, cpu: &mut CpuSim) {
        while self.next_sample <= now {
            let at = self.next_sample;
            let dt = self.interval.as_secs_f64();
            for node in 0..self.series.len() {
                let core_s = cpu.drain_busy_core_seconds(node, at);
                let pct = core_s / dt / cpu.cores(node) as f64 * 100.0;
                self.series[node].push(at, pct);
            }
            self.next_sample += self.interval;
        }
    }

    /// Emit the final, possibly partial, sampling window ending at `end`.
    ///
    /// Mirrors `simnet::NetworkMonitor::flush`: busy core-seconds accrued
    /// after the last whole-interval tick are reported as one tail sample
    /// with utilization computed over the partial window. Idempotent.
    pub fn flush(&mut self, end: SimTime, cpu: &mut CpuSim) {
        self.maybe_sample(end, cpu);
        let window_start = self.next_sample - self.interval;
        if end <= window_start {
            return;
        }
        let dt = end.since(window_start).as_secs_f64();
        for node in 0..self.series.len() {
            let core_s = cpu.drain_busy_core_seconds(node, end);
            let pct = core_s / dt / cpu.cores(node) as f64 * 100.0;
            self.series[node].push(end, pct);
        }
        self.next_sample = end + self.interval;
    }

    /// CPU % series for `node`.
    pub fn series(&self, node: usize) -> &TimeSeries {
        &self.series[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_average_utilization_over_interval() {
        let mut cpu = CpuSim::homogeneous(1, 4, 1.0);
        let mut mon = CpuMonitor::new(1, SimDuration::from_secs(1));
        // Two jobs of 2 core-seconds each: 2 busy cores for 2 s, then idle.
        cpu.submit(SimTime::ZERO, 0, 2.0, 0);
        cpu.submit(SimTime::ZERO, 0, 2.0, 1);
        for _ in 0..4 {
            let next = mon.next_sample_time();
            while let Some(t) = cpu.next_event_time() {
                if t > next {
                    break;
                }
                cpu.advance_to(t);
            }
            cpu.advance_to(next);
            mon.maybe_sample(next, &mut cpu);
        }
        let s = mon.series(0);
        assert_eq!(s.len(), 4);
        assert!((s.samples()[0].value - 50.0).abs() < 1e-6, "{s:?}");
        assert!((s.samples()[1].value - 50.0).abs() < 1e-6);
        assert!(s.samples()[2].value < 1.0);
        assert!(s.samples()[3].value < 1.0);
    }

    #[test]
    fn flush_captures_final_partial_interval() {
        let mut cpu = CpuSim::homogeneous(1, 4, 1.0);
        let mut mon = CpuMonitor::new(1, SimDuration::from_secs(1));
        // One task burning 2.5 core-seconds on one core: busy to t = 2.5 s.
        cpu.submit(SimTime::ZERO, 0, 2.5, 0);
        for _ in 0..2 {
            let next = mon.next_sample_time();
            while let Some(t) = cpu.next_event_time() {
                if t > next {
                    break;
                }
                cpu.advance_to(t);
            }
            cpu.advance_to(next);
            mon.maybe_sample(next, &mut cpu);
        }
        let end = SimTime::from_nanos(2_500_000_000);
        while let Some(t) = cpu.next_event_time() {
            if t > end {
                break;
            }
            cpu.advance_to(t);
        }
        cpu.advance_to(end);
        mon.flush(end, &mut cpu);
        let s = mon.series(0).clone();
        assert_eq!(s.len(), 3);
        // 1 of 4 cores busy for the full window in every sample, tail
        // window included.
        for sample in s.samples() {
            assert!((sample.value - 25.0).abs() < 1e-6, "{sample:?}");
        }
        assert_eq!(s.samples()[2].time, end);
        // Integrated core-seconds across all samples equal the work
        // submitted: nothing dropped in the tail window.
        let mut prev = SimTime::ZERO;
        let mut core_s = 0.0;
        for sample in s.samples() {
            core_s += sample.value / 100.0 * 4.0 * sample.time.since(prev).as_secs_f64();
            prev = sample.time;
        }
        assert!((core_s - 2.5).abs() < 1e-9, "core_s = {core_s}");
        // A second flush at the same instant adds nothing.
        mon.flush(end, &mut cpu);
        assert_eq!(mon.series(0).len(), 3);
    }
}
