//! Local-disk simulation with an OS page-cache model.
//!
//! Hadoop stripes intermediate data across the directories listed in
//! `mapred.local.dir`, one per physical disk. Each disk serves requests in
//! FIFO order within a priority class; a request costs one positioning
//! delay plus its payload over the sequential bandwidth for its direction.
//!
//! ## Page cache
//!
//! Spill files are written *without* fsync: in the real system they land
//! in the page cache and the task continues at memory speed. The kernel
//! writes back asynchronously and throttles the writer only when dirty
//! pages exceed the dirty threshold (`vm.dirty_ratio`, ~20 % of RAM).
//! Reads of recently written data hit the cache. [`DiskSim::submit_cached`]
//! models this faithfully:
//!
//! * the part of a write that fits under the dirty budget completes at
//!   memory-copy speed, and its write-back is queued to the spindles as
//!   chunked **background** requests that yield to all foreground I/O;
//! * the part that exceeds the budget is throttled to disk speed
//!   (foreground), exactly like a `balance_dirty_pages` stall;
//! * deleting a transient file ([`DiskSim::discard_writeback`]) cancels
//!   its still-queued write-back — dirty pages of deleted files are
//!   dropped, never written;
//! * reads of recently written data are served from memory while the
//!   node's recent-write footprint fits the cache budget (~60 % of RAM).

use std::collections::VecDeque;

use simcore::time::{SimDuration, SimTime};
use simcore::units::ByteSize;

use crate::node::DiskSpec;

/// Handle to a queued disk request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IoId(u64);

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoKind {
    /// Sequential read.
    Read,
    /// Sequential write.
    Write,
}

/// A finished I/O, reported by [`DiskSim::advance_to`].
#[derive(Clone, Copy, Debug)]
pub struct IoCompletion {
    /// The finished request.
    pub id: IoId,
    /// Node whose disk served it.
    pub node: usize,
    /// Caller-supplied correlation tag.
    pub tag: u64,
}

/// Memory-copy service rate for page-cache hits.
const MEMCPY_BYTES_PER_SEC: f64 = 3.0e9;

/// Background write-back is issued in chunks of this size so it cannot
/// block foreground I/O for long (non-preemptive service).
const WRITEBACK_CHUNK: u64 = 64 * 1024 * 1024;

#[derive(Clone, Debug)]
struct Request {
    id: u64,
    service: SimDuration,
    tag: u64,
    node: usize,
    /// Nonzero for background write-back: occupies the spindle but emits
    /// no external completion; frees dirty budget instead.
    writeback_bytes: u64,
}

#[derive(Clone, Debug)]
struct Disk {
    spec: DiskSpec,
    /// Foreground queue: task-blocking reads and throttled writes.
    fg: VecDeque<Request>,
    /// Background queue: page-cache write-back; served only when `fg` is
    /// empty.
    bg: VecDeque<Request>,
    /// The request currently in service and when it finishes.
    in_service: Option<(Request, SimTime)>,
    read_bytes: u64,
    written_bytes: u64,
}

impl Disk {
    fn start_next(&mut self, now: SimTime) {
        if self.in_service.is_none() {
            if let Some(req) = self.fg.pop_front().or_else(|| self.bg.pop_front()) {
                let done = now + req.service;
                self.in_service = Some((req, done));
            }
        }
    }
}

#[derive(Clone, Debug)]
struct NodeCache {
    /// Dirty bytes whose write-back is still pending on the spindles.
    dirty: f64,
    /// Writers are throttled to disk speed beyond this many dirty bytes.
    dirty_budget: f64,
    /// Recently written bytes assumed still resident for reads.
    resident: f64,
    resident_budget: f64,
}

/// FIFO disk queues for a whole cluster, with an optional page-cache
/// model.
#[derive(Debug)]
pub struct DiskSim {
    /// disks[node][k]
    disks: Vec<Vec<Disk>>,
    /// Round-robin spill-target cursor per node.
    rr: Vec<usize>,
    next_id: u64,
    clock: SimTime,
    /// Per-node page-cache state (None until configured).
    caches: Vec<Option<NodeCache>>,
    /// Pending cache-lane completions, ordered by (time, id).
    cache_lane: VecDeque<(SimTime, u64, IoCompletion)>,
}

impl DiskSim {
    /// Build from per-node disk lists.
    pub fn new(node_disks: Vec<Vec<DiskSpec>>) -> Self {
        assert!(
            node_disks.iter().all(|d| !d.is_empty()),
            "every node needs at least one disk"
        );
        let n = node_disks.len();
        DiskSim {
            disks: node_disks
                .into_iter()
                .map(|specs| {
                    specs
                        .into_iter()
                        .map(|spec| Disk {
                            spec,
                            fg: VecDeque::new(),
                            bg: VecDeque::new(),
                            in_service: None,
                            read_bytes: 0,
                            written_bytes: 0,
                        })
                        .collect()
                })
                .collect(),
            rr: vec![0; n],
            next_id: 0,
            clock: SimTime::ZERO,
            caches: vec![None; n],
            cache_lane: VecDeque::new(),
        }
    }

    /// Enable the page-cache model on every node, sized from `memory`.
    pub fn enable_page_cache(&mut self, memory: ByteSize) {
        for node in 0..self.disks.len() {
            self.caches[node] = Some(NodeCache {
                dirty: 0.0,
                dirty_budget: memory.as_bytes() as f64 * 0.20,
                resident: 0.0,
                resident_budget: memory.as_bytes() as f64 * 0.60,
            });
        }
    }

    /// Disable the page-cache model: every cached submission degrades to
    /// raw disk I/O (ablation studies).
    pub fn disable_page_cache(&mut self) {
        for c in &mut self.caches {
            *c = None;
        }
    }

    /// Homogeneous helper.
    pub fn homogeneous(n_nodes: usize, disks_per_node: usize, spec: DiskSpec) -> Self {
        DiskSim::new(vec![vec![spec; disks_per_node]; n_nodes])
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.disks.len()
    }

    /// Submit `bytes` of `kind` I/O on `node` directly to the spindles
    /// (no page-cache involvement), striping round-robin over its disks.
    pub fn submit(
        &mut self,
        now: SimTime,
        node: usize,
        bytes: ByteSize,
        kind: IoKind,
        tag: u64,
    ) -> IoId {
        assert!(node < self.disks.len(), "unknown node {node}");
        self.clock = self.clock.max(now);
        self.enqueue_fg(now, node, bytes, kind, tag)
    }

    fn pick_disk(&mut self, node: usize) -> usize {
        let k = self.rr[node] % self.disks[node].len();
        self.rr[node] += 1;
        k
    }

    fn enqueue_fg(
        &mut self,
        now: SimTime,
        node: usize,
        bytes: ByteSize,
        kind: IoKind,
        tag: u64,
    ) -> IoId {
        let k = self.pick_disk(node);
        let disk = &mut self.disks[node][k];
        let bw = match kind {
            IoKind::Read => {
                disk.read_bytes += bytes.as_bytes();
                disk.spec.read_bw
            }
            IoKind::Write => {
                disk.written_bytes += bytes.as_bytes();
                disk.spec.write_bw
            }
        };
        let service = SimDuration::from_secs_f64(disk.spec.seek_ms * 1e-3) + bw.time_for(bytes);
        let id = self.next_id;
        self.next_id += 1;
        disk.fg.push_back(Request {
            id,
            service,
            tag,
            node,
            writeback_bytes: 0,
        });
        disk.start_next(now);
        IoId(id)
    }

    fn enqueue_writeback(&mut self, now: SimTime, node: usize, bytes: u64) {
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(WRITEBACK_CHUNK);
            remaining -= chunk;
            let k = self.pick_disk(node);
            let disk = &mut self.disks[node][k];
            disk.written_bytes += chunk;
            let service = SimDuration::from_secs_f64(disk.spec.seek_ms * 1e-3)
                + disk.spec.write_bw.time_for(ByteSize::from_bytes(chunk));
            let id = self.next_id;
            self.next_id += 1;
            disk.bg.push_back(Request {
                id,
                service,
                tag: 0,
                node,
                writeback_bytes: chunk,
            });
            disk.start_next(now);
        }
    }

    fn lane_completion(&mut self, now: SimTime, node: usize, bytes: u64, tag: u64) -> IoId {
        let id = self.next_id;
        self.next_id += 1;
        let done = now + SimDuration::from_secs_f64(bytes as f64 / MEMCPY_BYTES_PER_SEC);
        let entry = (
            done,
            id,
            IoCompletion {
                id: IoId(id),
                node,
                tag,
            },
        );
        let pos = self
            .cache_lane
            .iter()
            .position(|(t, i, _)| (*t, *i) > (done, id))
            .unwrap_or(self.cache_lane.len());
        self.cache_lane.insert(pos, entry);
        IoId(id)
    }

    /// Submit I/O that targets recently written local data (spills,
    /// merges): it goes through the page-cache model when enabled, and
    /// falls back to raw disk otherwise.
    pub fn submit_cached(
        &mut self,
        now: SimTime,
        node: usize,
        bytes: ByteSize,
        kind: IoKind,
        tag: u64,
    ) -> IoId {
        assert!(node < self.disks.len(), "unknown node {node}");
        self.clock = self.clock.max(now);
        if self.caches[node].is_none() {
            return self.submit(now, node, bytes, kind, tag);
        }
        let b = bytes.as_bytes();
        match kind {
            IoKind::Write => {
                let cache = self.caches[node].as_mut().expect("checked above");
                cache.resident = (cache.resident + b as f64).min(cache.resident_budget);
                let headroom = (cache.dirty_budget - cache.dirty).max(0.0) as u64;
                let fast = b.min(headroom);
                let throttled = b - fast;
                cache.dirty += fast as f64;
                if fast > 0 {
                    self.enqueue_writeback(now, node, fast);
                }
                if throttled > 0 {
                    // The writer stalls for the over-budget portion, like
                    // balance_dirty_pages().
                    self.enqueue_fg(now, node, ByteSize::from_bytes(throttled), kind, tag)
                } else {
                    self.lane_completion(now, node, b, tag)
                }
            }
            IoKind::Read => {
                let cache = self.caches[node].as_ref().expect("checked above");
                if cache.resident >= b as f64 {
                    self.lane_completion(now, node, b, tag)
                } else {
                    self.enqueue_fg(now, node, bytes, kind, tag)
                }
            }
        }
    }

    /// A transient file (spill) on `node` was deleted: cancel up to
    /// `bytes` of its still-queued background write-back — the kernel
    /// drops dirty pages of deleted files without ever writing them.
    /// Returns the bytes actually cancelled.
    pub fn discard_writeback(&mut self, node: usize, bytes: ByteSize) -> u64 {
        let mut remaining = bytes.as_bytes();
        let mut cancelled = 0u64;
        for disk in &mut self.disks[node] {
            if remaining == 0 {
                break;
            }
            // Cancel from the tail so the youngest write-backs die first;
            // the in-service request is never touched.
            while remaining > 0 {
                let Some(req) = disk.bg.back() else { break };
                if req.writeback_bytes > remaining {
                    break;
                }
                let req = disk.bg.pop_back().expect("checked back");
                disk.written_bytes -= req.writeback_bytes;
                remaining -= req.writeback_bytes;
                cancelled += req.writeback_bytes;
            }
        }
        if let Some(cache) = &mut self.caches[node] {
            cache.dirty = (cache.dirty - cancelled as f64).max(0.0);
        }
        cancelled
    }

    /// The earliest I/O completion across all disks and the cache lane.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let disk = self
            .disks
            .iter()
            .flatten()
            .filter_map(|d| d.in_service.as_ref().map(|(_, t)| *t))
            .min();
        let lane = self.cache_lane.front().map(|(t, _, _)| *t);
        match (disk, lane) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advance to `now`, returning completions (deterministic id order).
    pub fn advance_to(&mut self, now: SimTime) -> Vec<IoCompletion> {
        assert!(now >= self.clock, "disk clock cannot run backwards");
        self.clock = now;
        let mut out = Vec::new();
        while let Some((t, id, c)) = self.cache_lane.front().copied() {
            if t > now {
                break;
            }
            self.cache_lane.pop_front();
            out.push((id, c));
        }
        for (node, node_disks) in self.disks.iter_mut().enumerate() {
            for disk in node_disks {
                while let Some((req, done_at)) = disk.in_service.take() {
                    if done_at > now {
                        disk.in_service = Some((req, done_at));
                        break;
                    }
                    if req.writeback_bytes > 0 {
                        if let Some(cache) = &mut self.caches[node] {
                            cache.dirty = (cache.dirty - req.writeback_bytes as f64).max(0.0);
                        }
                    } else {
                        out.push((
                            req.id,
                            IoCompletion {
                                id: IoId(req.id),
                                node: req.node,
                                tag: req.tag,
                            },
                        ));
                    }
                    // Serve the next request (foreground first) from the
                    // instant this one finished.
                    if let Some(next) = disk.fg.pop_front().or_else(|| disk.bg.pop_front()) {
                        let next_done = done_at + next.service;
                        disk.in_service = Some((next, next_done));
                    }
                }
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out.into_iter().map(|(_, c)| c).collect()
    }

    /// Total bytes read on `node` so far.
    pub fn bytes_read(&self, node: usize) -> u64 {
        self.disks[node].iter().map(|d| d.read_bytes).sum()
    }

    /// Total bytes written on `node` so far (including background
    /// write-back that has been queued and not cancelled).
    pub fn bytes_written(&self, node: usize) -> u64 {
        self.disks[node].iter().map(|d| d.written_bytes).sum()
    }

    /// Outstanding requests on `node` (foreground + background + one in
    /// service per busy disk).
    pub fn queue_depth(&self, node: usize) -> usize {
        self.disks[node]
            .iter()
            .map(|d| d.fg.len() + d.bg.len() + usize::from(d.in_service.is_some()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bw_mb: f64, seek_ms: f64) -> DiskSpec {
        DiskSpec {
            read_bw: simcore::units::Rate::from_mb_per_sec(bw_mb),
            write_bw: simcore::units::Rate::from_mb_per_sec(bw_mb),
            seek_ms,
        }
    }

    fn drain(d: &mut DiskSim) -> Vec<IoCompletion> {
        let mut all = Vec::new();
        while let Some(t) = d.next_event_time() {
            all.extend(d.advance_to(t));
        }
        all
    }

    #[test]
    fn single_write_costs_seek_plus_transfer() {
        let mut d = DiskSim::homogeneous(1, 1, spec(100.0, 10.0));
        d.submit(
            SimTime::ZERO,
            0,
            ByteSize::from_bytes(100_000_000),
            IoKind::Write,
            1,
        );
        let t = d.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 1.01).abs() < 1e-6, "{t:?}");
        let done = d.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        assert!(d.next_event_time().is_none());
    }

    #[test]
    fn fifo_serializes_requests() {
        let mut d = DiskSim::homogeneous(1, 1, spec(100.0, 0.0));
        d.submit(
            SimTime::ZERO,
            0,
            ByteSize::from_bytes(100_000_000),
            IoKind::Write,
            1,
        );
        d.submit(
            SimTime::ZERO,
            0,
            ByteSize::from_bytes(100_000_000),
            IoKind::Write,
            2,
        );
        let t1 = d.next_event_time().unwrap();
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(d.advance_to(t1)[0].tag, 1);
        let t2 = d.next_event_time().unwrap();
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-6);
        assert_eq!(d.advance_to(t2)[0].tag, 2);
    }

    #[test]
    fn round_robin_striping_uses_both_disks() {
        let mut d = DiskSim::homogeneous(1, 2, spec(100.0, 0.0));
        d.submit(
            SimTime::ZERO,
            0,
            ByteSize::from_bytes(100_000_000),
            IoKind::Write,
            1,
        );
        d.submit(
            SimTime::ZERO,
            0,
            ByteSize::from_bytes(100_000_000),
            IoKind::Write,
            2,
        );
        // Parallel service on two spindles: both done at t=1.
        let t = d.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(d.advance_to(t).len(), 2);
    }

    #[test]
    fn read_and_write_bandwidths_differ() {
        let s = DiskSpec {
            read_bw: simcore::units::Rate::from_mb_per_sec(200.0),
            write_bw: simcore::units::Rate::from_mb_per_sec(100.0),
            seek_ms: 0.0,
        };
        let mut d = DiskSim::homogeneous(1, 1, s);
        d.submit(
            SimTime::ZERO,
            0,
            ByteSize::from_bytes(100_000_000),
            IoKind::Read,
            1,
        );
        let t = d.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 0.5).abs() < 1e-6);
        d.advance_to(t);
        assert_eq!(d.bytes_read(0), 100_000_000);
        assert_eq!(d.bytes_written(0), 0);
    }

    #[test]
    fn idle_disk_starts_service_at_submit_time() {
        let mut d = DiskSim::homogeneous(1, 1, spec(100.0, 0.0));
        d.submit(
            SimTime::from_secs(10),
            0,
            ByteSize::from_bytes(100_000_000),
            IoKind::Write,
            1,
        );
        let t = d.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 11.0).abs() < 1e-6);
    }

    #[test]
    fn queue_depth_tracks_outstanding() {
        let mut d = DiskSim::homogeneous(1, 1, spec(100.0, 0.0));
        for i in 0..3 {
            d.submit(SimTime::ZERO, 0, ByteSize::from_mib(10), IoKind::Write, i);
        }
        assert_eq!(d.queue_depth(0), 3);
        let t = d.next_event_time().unwrap();
        d.advance_to(t);
        assert_eq!(d.queue_depth(0), 2);
    }

    #[test]
    fn cached_write_completes_at_memory_speed() {
        let mut d = DiskSim::homogeneous(1, 1, spec(100.0, 5.0));
        d.enable_page_cache(ByteSize::from_gib(24));
        d.submit_cached(SimTime::ZERO, 0, ByteSize::from_mib(100), IoKind::Write, 7);
        // External completion long before the 1 s the spindle would take.
        let t = d.next_event_time().unwrap();
        assert!(t.as_secs_f64() < 0.05, "cache-lane completion at {t:?}");
        let done = d.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        // Write-back still occupies the spindle afterwards.
        assert!(d.next_event_time().is_some());
        let rest = drain(&mut d);
        assert!(rest.is_empty(), "write-back emits no external completions");
        assert_eq!(d.bytes_written(0), 100 << 20);
    }

    #[test]
    fn over_budget_write_is_throttled_to_disk() {
        let mut d = DiskSim::homogeneous(1, 1, spec(100.0, 0.0));
        // 1 GiB memory -> 0.2 GiB dirty budget.
        d.enable_page_cache(ByteSize::from_gib(1));
        d.submit_cached(SimTime::ZERO, 0, ByteSize::from_mib(1024), IoKind::Write, 1);
        // 204.8 MiB fast, ~819 MiB throttled at 100 MB/s ≈ 8.6 s.
        let mut last = SimTime::ZERO;
        let mut got = Vec::new();
        while let Some(t) = d.next_event_time() {
            got.extend(d.advance_to(t));
            last = t;
        }
        assert_eq!(got.len(), 1);
        assert!(
            last.as_secs_f64() > 8.0,
            "throttled portion must hit the spindle: {last:?}"
        );
    }

    #[test]
    fn foreground_reads_preempt_queued_writeback() {
        let mut d = DiskSim::homogeneous(1, 1, spec(100.0, 0.0));
        d.enable_page_cache(ByteSize::from_gib(24));
        // Queue 1 GiB of write-back...
        d.submit_cached(SimTime::ZERO, 0, ByteSize::from_gib(1), IoKind::Write, 1);
        // ...then issue an uncached foreground read.
        d.submit(SimTime::ZERO, 0, ByteSize::from_mib(64), IoKind::Read, 2);
        // The read only waits for the single in-service write-back chunk
        // (64 MiB), not the full gigabyte.
        let mut read_done = None;
        while let Some(t) = d.next_event_time() {
            for c in d.advance_to(t) {
                if c.tag == 2 {
                    read_done = Some(t);
                }
            }
            if read_done.is_some() {
                break;
            }
        }
        let t = read_done.expect("read completed").as_secs_f64();
        assert!(t < 2.0, "read stuck behind write-back: {t}");
    }

    #[test]
    fn cached_read_hits_after_writes() {
        let mut d = DiskSim::homogeneous(1, 1, spec(100.0, 5.0));
        d.enable_page_cache(ByteSize::from_gib(24));
        d.submit_cached(SimTime::ZERO, 0, ByteSize::from_mib(256), IoKind::Write, 1);
        d.submit_cached(SimTime::ZERO, 0, ByteSize::from_mib(128), IoKind::Read, 2);
        let done = d.advance_to(d.next_event_time().unwrap());
        // Both the cached write and the cached read complete at memcpy
        // speed, write first (smaller id at equal-ish times? read is
        // smaller, completes earlier) — just check both are near-instant.
        assert!(!done.is_empty());
        let mut seen = done;
        while let Some(t) = d.next_event_time() {
            if t.as_secs_f64() > 0.5 {
                break;
            }
            seen.extend(d.advance_to(t));
        }
        assert!(seen.iter().any(|c| c.tag == 2), "read served from cache");
    }

    #[test]
    fn discard_cancels_pending_writeback() {
        let mut d = DiskSim::homogeneous(1, 1, spec(100.0, 0.0));
        d.enable_page_cache(ByteSize::from_gib(24));
        d.submit_cached(SimTime::ZERO, 0, ByteSize::from_gib(1), IoKind::Write, 1);
        let before = d.bytes_written(0);
        assert_eq!(before, 1 << 30);
        // Delete the file: all but the in-service chunk is cancelled.
        let cancelled = d.discard_writeback(0, ByteSize::from_gib(1));
        assert!(
            cancelled >= (1 << 30) - 2 * WRITEBACK_CHUNK,
            "cancelled {cancelled}"
        );
        // Spindle drains quickly now.
        let mut last = SimTime::ZERO;
        while let Some(t) = d.next_event_time() {
            d.advance_to(t);
            last = t;
        }
        assert!(last.as_secs_f64() < 2.0, "drained at {last:?}");
    }

    #[test]
    fn uncached_nodes_behave_like_raw_disk() {
        let mut d = DiskSim::homogeneous(1, 1, spec(100.0, 0.0));
        // No enable_page_cache.
        d.submit_cached(
            SimTime::ZERO,
            0,
            ByteSize::from_bytes(100_000_000),
            IoKind::Write,
            1,
        );
        let t = d.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
    }
}
