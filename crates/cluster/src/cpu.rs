//! Processor-sharing CPU simulation.
//!
//! Each node has `cores` cores. Every runnable job (a map task generating
//! records, a reducer merging, protocol processing on behalf of the
//! kernel…) is single-threaded and owns at most one core; when more jobs
//! are runnable than cores exist, the OS scheduler time-slices them
//! fairly. The fluid limit of that policy is processor sharing:
//!
//! ```text
//! rate(job) = speed * min(1, cores / runnable_jobs)   [core-seconds/sec]
//! ```
//!
//! Work amounts are expressed in *core-seconds at the Westmere baseline*;
//! a node's `speed` factor scales execution.

use std::collections::BTreeMap;

use simcore::stats::RateIntegrator;
use simcore::time::{SimDuration, SimTime};

/// Handle to a unit of queued CPU work.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CpuJobId(u64);

/// A finished CPU job, reported by [`CpuSim::advance_to`].
#[derive(Clone, Copy, Debug)]
pub struct CpuCompletion {
    /// The finished job.
    pub id: CpuJobId,
    /// Node it ran on.
    pub node: usize,
    /// Caller-supplied correlation tag.
    pub tag: u64,
}

#[derive(Clone, Debug)]
struct Job {
    node: usize,
    remaining: f64,
    // simlint: allow(unit-suffix, core-seconds per second, a dimensionless PS share, not bytes/s)
    rate: f64,
    tag: u64,
}

/// Per-node processor-sharing CPU simulator.
#[derive(Debug)]
pub struct CpuSim {
    cores: Vec<u32>,
    speed: Vec<f64>,
    jobs: BTreeMap<u64, Job>,
    runnable_per_node: Vec<usize>,
    next_id: u64,
    clock: SimTime,
    busy: Vec<RateIntegrator>,
}

impl CpuSim {
    /// A CPU simulator for nodes with the given core counts and speed
    /// factors.
    pub fn new(cores: Vec<u32>, speed: Vec<f64>) -> Self {
        assert_eq!(cores.len(), speed.len());
        assert!(cores.iter().all(|&c| c > 0), "nodes need at least one core");
        let n = cores.len();
        CpuSim {
            cores,
            speed,
            jobs: BTreeMap::new(),
            runnable_per_node: vec![0; n],
            next_id: 0,
            clock: SimTime::ZERO,
            busy: (0..n).map(|_| RateIntegrator::new(SimTime::ZERO)).collect(),
        }
    }

    /// Homogeneous helper.
    pub fn homogeneous(n_nodes: usize, cores: u32, speed: f64) -> Self {
        CpuSim::new(vec![cores; n_nodes], vec![speed; n_nodes])
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.cores.len()
    }

    /// Current clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Queue `work` core-seconds (baseline-normalized) on `node`.
    pub fn submit(&mut self, now: SimTime, node: usize, work: f64, tag: u64) -> CpuJobId {
        assert!(node < self.cores.len(), "unknown node {node}");
        assert!(work >= 0.0 && work.is_finite(), "work must be non-negative");
        self.integrate_to(now);
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                node,
                remaining: work,
                rate: 0.0,
                tag,
            },
        );
        self.runnable_per_node[node] += 1;
        self.recompute(now);
        CpuJobId(id)
    }

    /// The earliest job completion, if any work is queued.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for j in self.jobs.values() {
            let t = if j.remaining <= completion_eps(j.rate) {
                self.clock
            } else if j.rate <= 0.0 {
                continue;
            } else {
                self.clock
                    + SimDuration::from_secs_f64(j.remaining / j.rate)
                    + SimDuration::from_nanos(1)
            };
            best = Some(best.map_or(t, |b| b.min(t)));
        }
        best
    }

    /// Advance to `now`, returning completions in deterministic id order.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<CpuCompletion> {
        self.integrate_to(now);
        // BTreeMap iteration is job-id ordered, so `done` is sorted by
        // construction.
        let done: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.remaining <= completion_eps(j.rate))
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::with_capacity(done.len());
        for id in done {
            let j = self.jobs.remove(&id).expect("job exists");
            self.runnable_per_node[j.node] -= 1;
            out.push(CpuCompletion {
                id: CpuJobId(id),
                node: j.node,
                tag: j.tag,
            });
        }
        if !out.is_empty() {
            self.recompute(now);
        }
        out
    }

    /// Instantaneous utilization of `node` in percent (0..=100).
    pub fn utilization_pct(&self, node: usize) -> f64 {
        let busy = (self.runnable_per_node[node] as f64).min(self.cores[node] as f64);
        busy / self.cores[node] as f64 * 100.0
    }

    /// Core-seconds consumed on `node` since the last drain.
    pub fn drain_busy_core_seconds(&mut self, node: usize, now: SimTime) -> f64 {
        self.busy[node].drain(now)
    }

    /// Number of runnable jobs on `node`.
    pub fn runnable(&self, node: usize) -> usize {
        self.runnable_per_node[node]
    }

    /// Core count of `node`.
    pub fn cores(&self, node: usize) -> u32 {
        self.cores[node]
    }

    fn integrate_to(&mut self, now: SimTime) {
        assert!(now >= self.clock, "cpu clock cannot run backwards");
        let dt = now.since(self.clock).as_secs_f64();
        if dt > 0.0 {
            for j in self.jobs.values_mut() {
                j.remaining = (j.remaining - j.rate * dt).max(0.0);
            }
        }
        for b in &mut self.busy {
            b.advance(now);
        }
        self.clock = now;
    }

    fn recompute(&mut self, now: SimTime) {
        let n = self.cores.len();
        let mut share = vec![0.0f64; n];
        for (node, slot) in share.iter_mut().enumerate() {
            let runnable = self.runnable_per_node[node];
            if runnable > 0 {
                *slot = self.speed[node] * (self.cores[node] as f64 / runnable as f64).min(1.0);
            }
        }
        for j in self.jobs.values_mut() {
            j.rate = share[j.node];
        }
        for node in 0..n {
            let busy_cores = (self.runnable_per_node[node] as f64).min(self.cores[node] as f64);
            self.busy[node].set_rate(now, busy_cores);
        }
    }
}

// simlint: allow(unit-suffix, rate is in core-seconds per second, matching Job::rate)
fn completion_eps(rate: f64) -> f64 {
    (rate * 2e-9).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_runs_at_full_speed() {
        let mut cpu = CpuSim::homogeneous(1, 8, 1.0);
        cpu.submit(SimTime::ZERO, 0, 3.0, 42);
        let t = cpu.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 3.0).abs() < 1e-6);
        let done = cpu.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 42);
    }

    #[test]
    fn speed_factor_scales_execution() {
        let mut cpu = CpuSim::homogeneous(1, 8, 2.0);
        cpu.submit(SimTime::ZERO, 0, 3.0, 0);
        let t = cpu.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn oversubscription_time_slices() {
        // 4 cores, 8 identical jobs of 1 core-second each: every job runs
        // at rate 0.5, all complete at t=2.
        let mut cpu = CpuSim::homogeneous(1, 4, 1.0);
        for i in 0..8 {
            cpu.submit(SimTime::ZERO, 0, 1.0, i);
        }
        assert_eq!(cpu.utilization_pct(0), 100.0);
        let t = cpu.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-6);
        let done = cpu.advance_to(t);
        assert_eq!(done.len(), 8);
        assert_eq!(cpu.utilization_pct(0), 0.0);
    }

    #[test]
    fn undersubscribed_node_not_fully_utilized() {
        let mut cpu = CpuSim::homogeneous(1, 8, 1.0);
        cpu.submit(SimTime::ZERO, 0, 10.0, 0);
        cpu.submit(SimTime::ZERO, 0, 10.0, 1);
        assert_eq!(cpu.utilization_pct(0), 25.0);
        assert_eq!(cpu.runnable(0), 2);
    }

    #[test]
    fn completion_frees_capacity_and_speeds_up_rest() {
        // 1 core, two jobs: 1 cs and 3 cs. PS: both at 0.5; first done at
        // t=2 (its 1 cs), second has 2 cs left, now at rate 1 -> done t=4.
        let mut cpu = CpuSim::homogeneous(1, 1, 1.0);
        cpu.submit(SimTime::ZERO, 0, 1.0, 0);
        cpu.submit(SimTime::ZERO, 0, 3.0, 1);
        let t1 = cpu.next_event_time().unwrap();
        assert!((t1.as_secs_f64() - 2.0).abs() < 1e-6);
        let d1 = cpu.advance_to(t1);
        assert_eq!(d1[0].tag, 0);
        let t2 = cpu.next_event_time().unwrap();
        assert!((t2.as_secs_f64() - 4.0).abs() < 1e-6, "{t2:?}");
        let d2 = cpu.advance_to(t2);
        assert_eq!(d2[0].tag, 1);
        assert!(cpu.next_event_time().is_none());
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut cpu = CpuSim::homogeneous(1, 1, 1.0);
        cpu.submit(SimTime::from_secs(5), 0, 0.0, 9);
        let t = cpu.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(cpu.advance_to(t).len(), 1);
    }

    #[test]
    fn busy_core_seconds_accounting() {
        let mut cpu = CpuSim::homogeneous(1, 4, 1.0);
        for i in 0..2 {
            cpu.submit(SimTime::ZERO, 0, 5.0, i);
        }
        let t = SimTime::from_secs(3);
        cpu.advance_to(t);
        let cs = cpu.drain_busy_core_seconds(0, t);
        assert!((cs - 6.0).abs() < 1e-9, "2 busy cores x 3s = 6, got {cs}");
    }

    #[test]
    fn nodes_are_independent() {
        let mut cpu = CpuSim::homogeneous(2, 1, 1.0);
        cpu.submit(SimTime::ZERO, 0, 2.0, 0);
        cpu.submit(SimTime::ZERO, 1, 2.0, 1);
        // No sharing across nodes: both complete at t=2.
        let t = cpu.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-6);
        assert_eq!(cpu.advance_to(t).len(), 2);
    }

    #[test]
    fn simultaneous_completions_report_in_job_id_order() {
        // Regression for the jobs-map migration to BTreeMap: identical
        // jobs all finish at the same instant and must come back in
        // submission (job-id) order — a HashMap scan iterated them in
        // RandomState bucket order and relied on a post-hoc sort.
        let run = || {
            let mut cpu = CpuSim::homogeneous(4, 2, 1.0);
            for &(node, tag) in &[(3usize, 9u64), (0, 4), (2, 7), (1, 1), (0, 0)] {
                cpu.submit(SimTime::ZERO, node, 1.0, tag);
            }
            let t = cpu.next_event_time().unwrap();
            cpu.advance_to(t)
                .iter()
                .map(|c| (c.node, c.tag))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        // Submission order, not node order.
        assert_eq!(a, vec![(3, 9), (0, 4), (2, 7), (1, 1), (0, 0)]);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn submit_to_unknown_node_panics() {
        let mut cpu = CpuSim::homogeneous(1, 1, 1.0);
        cpu.submit(SimTime::ZERO, 5, 1.0, 0);
    }
}
