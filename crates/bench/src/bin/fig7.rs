//! Figure 7: resource utilization on one slave node during MR-AVG.
//!
//! Configuration (paper Sect. 5.2): MR-AVG with 16 GB of intermediate
//! data, 1 KiB `BytesWritable` pairs, 16 maps / 8 reduces on 4 slaves.
//! Panel (a) plots CPU utilization (%) per one-second sample; panel (b)
//! plots network throughput (MB received per second) on the same slave.

use mrbench::calib::claims;
use mrbench::{run, BenchConfig, BenchReport, MicroBenchmark};
use mrbench_bench::{check_shape, figure_header, Harness, CLUSTER_A_NETWORKS};
use simcore::stats::TimeSeries;
use simcore::units::ByteSize;
use simnet::NodeId;

fn values(series: Option<&TimeSeries>) -> Vec<f64> {
    series
        .map(|s| s.samples().iter().map(|s| s.value).collect())
        .unwrap_or_default()
}

fn sample_row(report: &BenchReport, node: usize) -> (Vec<f64>, Vec<f64>) {
    (
        values(report.cpu_series(node)),
        values(report.rx_series(node)),
    )
}

fn print_series(label: &str, values: &[f64], stride: usize) {
    print!("{label:>16}");
    for v in values.iter().step_by(stride) {
        print!(" {v:>5.0}");
    }
    println!();
}

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), mrbench::Error> {
    let mut harness = Harness::from_env("fig7");
    figure_header(
        "Figure 7",
        "Resource utilization on one slave node for MR-AVG (16 GB) on Cluster A",
    );

    let shuffle = harness.shuffle(ByteSize::from_gib(16));
    let mut reports = Vec::new();
    for ic in CLUSTER_A_NETWORKS {
        let config = harness.prep(BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            ic,
            shuffle,
        ));
        let report = run(&config)?;
        mrbench_bench::ensure_within_budget(&report)?;
        harness.record_report(
            &format!("Fig 7 MR-AVG utilization — {}", ic.label()),
            &report,
        );
        reports.push((ic, report));
    }

    // Print a decimated view of both series for slave 0 (full resolution
    // is in the JobResult; the paper's plot is also 1 Hz).
    let node = 0;
    let stride = 5;
    println!("Fig 7(a) CPU utilization (%), slave {node}, every {stride}th second:");
    for (ic, report) in &reports {
        let (cpu, _) = sample_row(report, node);
        print_series(ic.label(), &cpu, stride);
    }
    println!();
    println!("Fig 7(b) network throughput (MB/s received), slave {node}, every {stride}th second:");
    for (ic, report) in &reports {
        let (_, rx) = sample_row(report, node);
        print_series(ic.label(), &rx, stride);
    }
    println!();

    if harness.quick {
        harness.note_quick();
        return harness.finish();
    }
    println!("shape checks against the paper's prose:");
    let peaks: Vec<f64> = reports
        .iter()
        .map(|(_, r)| {
            // Peak over all slaves, as a dstat on any slave would show.
            (0..r.config.slaves)
                .map(|n| r.rx_series(n).and_then(TimeSeries::peak).unwrap_or(0.0))
                .fold(0.0f64, f64::max)
        })
        .collect();
    check_shape(
        "peak rx on 1GigE (MB/s)",
        claims::PEAK_RX_MBPS_GIGE1,
        peaks[0],
        0.2,
    );
    check_shape(
        "peak rx on 10GigE (MB/s)",
        claims::PEAK_RX_MBPS_GIGE10,
        peaks[1],
        0.25,
    );
    check_shape(
        "peak rx on IPoIB QDR (MB/s)",
        claims::PEAK_RX_MBPS_IPOIB,
        peaks[2],
        0.25,
    );

    // "CPU utilization trends of 10GigE and IPoIB are similar to that of
    //  1GigE": compare mean CPU% over the job.
    let cpu_means: Vec<f64> = reports
        .iter()
        .map(|(_, r)| r.cpu_series(node).and_then(TimeSeries::mean).unwrap_or(0.0))
        .collect();
    let spread = cpu_means.iter().fold(0.0f64, |a, &b| a.max(b))
        - cpu_means.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    println!(
        "  [{}] CPU trends similar across networks: mean CPU {:.0}% / {:.0}% / {:.0}% (spread {:.0} pts)",
        if spread < 20.0 { "ok      " } else { "DEVIATES" },
        cpu_means[0],
        cpu_means[1],
        cpu_means[2],
        spread
    );

    // Sanity: the byte integral of the rx series matches what the node
    // actually received.
    let (_, report) = &reports[2];
    let rx_total_mb: f64 = values(report.rx_series(node)).iter().sum();
    let expected_mb =
        report.result.counters.remote_shuffle_bytes as f64 / 1e6 / report.config.slaves as f64;
    println!(
        "  [info    ] slave {node} received ~{:.0} MB over the job (cluster-wide remote shuffle / slaves = {:.0} MB)",
        rx_total_mb, expected_mb
    );
    let _ = NodeId(0); // slave ids are NodeId in the underlying API
    harness.finish()
}
