//! Figure 2: job execution time for the three intermediate data
//! distribution patterns on Cluster A (MRv1).
//!
//! Configuration (paper Sect. 5.2): 16 map / 8 reduce tasks on 4 slaves,
//! 1 KiB key/value pairs of `BytesWritable`, shuffle sizes 8–32 GB, over
//! 1 GigE vs 10 GigE vs IPoIB QDR (32 Gbps).

use mrbench::calib::claims;
use mrbench::{BenchConfig, MicroBenchmark, Sweep};
use mrbench_bench::{
    check_shape, figure_header, paper_sizes, print_improvements, run_panel, Harness,
    CLUSTER_A_NETWORKS,
};
use simcore::units::ByteSize;
use simnet::Interconnect;

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), mrbench::Error> {
    let mut harness = Harness::from_env("fig2");
    figure_header(
        "Figure 2",
        "Job execution time for different data distribution patterns on Cluster A",
    );

    let sizes = harness.sizes(paper_sizes());
    let mut sweeps: Vec<(MicroBenchmark, Sweep)> = Vec::new();
    for (panel, bench) in ["(a)", "(b)", "(c)"].iter().zip(MicroBenchmark::ALL) {
        let sweep = run_panel(
            &mut harness,
            &format!("Fig 2{panel} {bench} — 16 maps / 8 reduces on 4 slaves, 1 KiB k/v"),
            &sizes,
            &CLUSTER_A_NETWORKS,
            |shuffle, ic| BenchConfig::cluster_a_default(bench, ic, shuffle),
        )?;
        print_improvements(&sweep);
        sweeps.push((bench, sweep));
    }

    if harness.quick {
        harness.note_quick();
        return harness.finish();
    }
    println!("shape checks against the paper's prose:");
    let at = ByteSize::from_gib(16);
    let avg = &sweeps[0].1;
    let rand = &sweeps[1].1;
    let skew = &sweeps[2].1;

    check_shape(
        "MR-AVG: 10GigE improvement over 1GigE (%)",
        claims::AVG_10GIGE_IMPROVEMENT_PCT,
        avg.improvement_pct(at, Interconnect::GigE1, Interconnect::GigE10)
            .unwrap(),
        0.35,
    );
    check_shape(
        "MR-AVG: IPoIB QDR improvement over 1GigE (%)",
        claims::AVG_IPOIB_IMPROVEMENT_PCT,
        avg.improvement_pct(at, Interconnect::GigE1, Interconnect::IpoibQdr)
            .unwrap(),
        0.35,
    );
    check_shape(
        "MR-RAND: 10GigE improvement over 1GigE (%)",
        claims::RAND_10GIGE_IMPROVEMENT_PCT,
        rand.improvement_pct(at, Interconnect::GigE1, Interconnect::GigE10)
            .unwrap(),
        0.35,
    );
    check_shape(
        "MR-RAND: IPoIB QDR improvement over 1GigE (%)",
        claims::RAND_IPOIB_IMPROVEMENT_PCT,
        rand.improvement_pct(at, Interconnect::GigE1, Interconnect::IpoibQdr)
            .unwrap(),
        0.35,
    );
    check_shape(
        "MR-SKEW: job time vs MR-AVG at 16 GB (factor, IPoIB)",
        claims::SKEW_VS_AVG_FACTOR_MRV1,
        skew.time(at, Interconnect::IpoibQdr).unwrap()
            / avg.time(at, Interconnect::IpoibQdr).unwrap(),
        0.35,
    );
    // The prose also claims IPoIB's edge grows with shuffle size.
    let small_gap = avg
        .improvement_pct(
            ByteSize::from_gib(8),
            Interconnect::GigE1,
            Interconnect::IpoibQdr,
        )
        .unwrap();
    let large_gap = avg
        .improvement_pct(
            ByteSize::from_gib(32),
            Interconnect::GigE1,
            Interconnect::IpoibQdr,
        )
        .unwrap();
    println!(
        "  [{}] IPoIB improvement grows (or holds) with shuffle size: {:.1}% @8GB -> {:.1}% @32GB",
        if large_gap >= small_gap - 3.0 {
            "ok      "
        } else {
            "DEVIATES"
        },
        small_gap,
        large_gap
    );
    harness.finish()
}
