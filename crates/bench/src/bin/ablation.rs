//! Ablation study: how much does each modelling decision matter?
//!
//! DESIGN.md calls out the mechanisms that proved load-bearing for
//! reproducing the paper (OS page cache, protocol CPU asymmetry, the
//! RDMA pipeline factors, `io.sort.mb` tuning, slot counts). This binary
//! re-runs the Fig. 2 anchor cell (MR-AVG, 16 GB, Cluster A) with each
//! mechanism removed or changed, over 1 GigE and IPoIB QDR, and reports
//! the job time and the network sensitivity each variant produces.

use mapreduce::conf::ShuffleEngineKind;
use mapreduce::engine::Engine;
use mapreduce::shuffle::rdma::ShuffleModel;
use mrbench::{BenchConfig, BenchReport, MicroBenchmark};
use mrbench_bench::{figure_header, Harness};
use simcore::units::ByteSize;
use simnet::Interconnect;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Baseline,
    NoPageCache,
    NoProtocolCpu,
    DefaultSortMb,
    TwoMapSlots,
    NoMergeOverlap,
}

impl Variant {
    const ALL: [Variant; 6] = [
        Variant::Baseline,
        Variant::NoPageCache,
        Variant::NoProtocolCpu,
        Variant::DefaultSortMb,
        Variant::TwoMapSlots,
        Variant::NoMergeOverlap,
    ];

    fn label(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline (as calibrated)",
            Variant::NoPageCache => "no OS page cache",
            Variant::NoProtocolCpu => "no protocol CPU charge",
            Variant::DefaultSortMb => "io.sort.mb = 100 (stock)",
            Variant::TwoMapSlots => "2 map slots (stock)",
            Variant::NoMergeOverlap => "no shuffle/merge overlap",
        }
    }
}

fn run_variant(
    harness: &Harness,
    variant: Variant,
    ic: Interconnect,
    shuffle: ByteSize,
) -> BenchReport {
    let mut config = harness.prep(BenchConfig::cluster_a_default(
        MicroBenchmark::Avg,
        ic,
        shuffle,
    ));
    let mut spec = config.job_spec();
    match variant {
        Variant::DefaultSortMb => spec.conf.io_sort_mb = ByteSize::from_mib(100),
        Variant::TwoMapSlots => spec.conf.map_slots_per_node = 2,
        _ => {}
    }
    config.volume = mrbench::ShuffleVolume::PairsPerMap(spec.pairs_per_map);
    let factory = config.benchmark.factory();
    let mut engine = Engine::new(
        spec,
        factory.as_ref(),
        config.node_spec(),
        config.slaves,
        config.interconnect,
    );
    match variant {
        Variant::NoPageCache => engine.disable_page_cache(),
        Variant::NoProtocolCpu => {
            let mut m = ShuffleModel::for_kind(ShuffleEngineKind::Tcp);
            m.charges_protocol_cpu = false;
            engine.set_shuffle_model(m);
        }
        Variant::NoMergeOverlap => {
            let mut m = ShuffleModel::for_kind(ShuffleEngineKind::Tcp);
            m.merge_overlap = 0.0;
            engine.set_shuffle_model(m);
        }
        _ => {}
    }
    if config.trace {
        engine.enable_tracing();
    }
    let result = engine.run();
    BenchReport { config, result }
}

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), mrbench::Error> {
    let mut harness = Harness::from_env("ablation");
    figure_header(
        "Ablation",
        "Fig. 2 anchor cell (MR-AVG, 16 GB, 16M/8R on 4 slaves) under model ablations",
    );
    let shuffle = harness.shuffle(ByteSize::from_gib(16));

    println!(
        "{:>28} {:>12} {:>14} {:>16}",
        "variant", "1GigE (s)", "IPoIB (s)", "IPoIB gain (%)"
    );
    let mut baseline_gain = None;
    for variant in Variant::ALL {
        let slow_report = run_variant(&harness, variant, Interconnect::GigE1, shuffle);
        let fast_report = run_variant(&harness, variant, Interconnect::IpoibQdr, shuffle);
        harness.record_report(&format!("{} — 1GigE", variant.label()), &slow_report);
        harness.record_report(&format!("{} — IPoIB QDR", variant.label()), &fast_report);
        let slow = slow_report.job_time_secs();
        let fast = fast_report.job_time_secs();
        let gain = (slow - fast) / slow * 100.0;
        if variant == Variant::Baseline {
            baseline_gain = Some(gain);
        }
        println!(
            "{:>28} {:>12.1} {:>14.1} {:>15.1}%",
            variant.label(),
            slow,
            fast,
            gain
        );
    }
    println!();
    println!(
        "Reading: the paper's ~24% IPoIB gain (baseline here: {:.1}%) only emerges \
         with the page cache in place — without it the job is disk-bound and the \
         network barely matters. Protocol CPU and the merge-overlap model shift \
         the gain by a few points each; stock io.sort.mb / slot settings change \
         the phase mix but keep the ordering.",
        baseline_gain.unwrap_or(f64::NAN)
    );
    harness.finish()
}
