//! multijob — multi-job streams over a shared (optionally rack-aware)
//! fabric.
//!
//! Drives [`mapreduce::multijob`]: a seeded Poisson job-arrival stream,
//! N tenants competing for slots under Hadoop Fair-scheduler semantics,
//! and every concurrent shuffle sharing one flow-level network. Writes a
//! standalone `mrbench-multijob-v1` JSON artifact with per-tenant
//! p50/p95/p99 job times.
//!
//! ```text
//! cargo run --release -p mrbench-bench --bin multijob -- \
//!     [--quick] [--out PATH] [--slaves N] [--racks N] \
//!     [--oversubscription F] [--jobs N] [--tenants N] [--maps N] \
//!     [--reduces N] [--shuffle-mb MB] [--mean-gap SECS] [--seed N]
//! ```

// Wall-clock timing reports how fast the host ran the (deterministic)
// workload; simulated results never vary with it.
#![allow(clippy::disallowed_methods)]

use std::process::ExitCode;
use std::time::Instant;

use mapreduce::multijob::{self, ArrivalProcess, MultiJobSpec, TenantSpec};
use mrbench::{atomic_write, Error};
use simcore::jobj;
use simcore::json::Json;
use simcore::units::ByteSize;
use simnet::{Interconnect, Topology};

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("multijob: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn real_main() -> Result<(), Error> {
    let mut quick = false;
    let mut out = "BENCH_multijob.json".to_string();
    let mut slaves = 64usize;
    let mut racks = 1usize;
    let mut oversubscription = 1.0f64;
    let mut jobs = 24usize;
    let mut tenants = 3usize;
    let mut maps = 8usize;
    let mut reduces = 4usize;
    let mut shuffle_mb = 128u64;
    let mut mean_gap_s = 2.0f64;
    let mut seed = 42u64;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, name: &str| -> Result<String, Error> {
        args.next()
            .ok_or_else(|| Error::usage(format!("{name} needs a value")))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = value(&mut args, "--out")?,
            "--slaves" => slaves = parse(&value(&mut args, "--slaves")?, "--slaves")?,
            "--racks" => racks = parse(&value(&mut args, "--racks")?, "--racks")?,
            "--oversubscription" => {
                oversubscription = parse(
                    &value(&mut args, "--oversubscription")?,
                    "--oversubscription",
                )?
            }
            "--jobs" => jobs = parse(&value(&mut args, "--jobs")?, "--jobs")?,
            "--tenants" => tenants = parse(&value(&mut args, "--tenants")?, "--tenants")?,
            "--maps" => maps = parse(&value(&mut args, "--maps")?, "--maps")?,
            "--reduces" => reduces = parse(&value(&mut args, "--reduces")?, "--reduces")?,
            "--shuffle-mb" => {
                shuffle_mb = parse(&value(&mut args, "--shuffle-mb")?, "--shuffle-mb")?
            }
            "--mean-gap" => mean_gap_s = parse(&value(&mut args, "--mean-gap")?, "--mean-gap")?,
            "--seed" => seed = parse(&value(&mut args, "--seed")?, "--seed")?,
            "--help" | "-h" => {
                println!(
                    "multijob [--quick] [--out PATH] [--slaves N] [--racks N]\n\
                     \x20        [--oversubscription F] [--jobs N] [--tenants N]\n\
                     \x20        [--maps N] [--reduces N] [--shuffle-mb MB]\n\
                     \x20        [--mean-gap SECS] [--seed N]\n\
                     Runs a seeded multi-tenant job stream over a shared\n\
                     rack-aware network and writes an mrbench-multijob-v1\n\
                     JSON artifact (default BENCH_multijob.json)."
                );
                return Ok(());
            }
            other => return Err(Error::usage(format!("unknown flag {other}"))),
        }
    }
    if quick {
        jobs = jobs.min(12);
        shuffle_mb = shuffle_mb.min(64);
    }

    let mut topology = Topology::single_switch(slaves, Interconnect::IpoibQdr);
    if racks > 1 || oversubscription > 1.0 {
        topology = topology.with_racks(racks, oversubscription);
    }
    let spec = MultiJobSpec {
        topology,
        tenants: (0..tenants)
            .map(|t| TenantSpec {
                name: format!("tenant-{t}"),
                weight: (t + 1) as f64,
            })
            .collect(),
        n_jobs: jobs,
        arrivals: ArrivalProcess::Poisson { mean_gap_s },
        slots_per_node: 2,
        maps_per_job: maps,
        reduces_per_job: reduces,
        shuffle_bytes_per_job: ByteSize::from_mib(shuffle_mb),
        map_service_s: 1.0,
        reduce_service_s: 0.5,
        seed,
    };
    spec.validate().map_err(Error::Config)?;

    let start = Instant::now();
    let result = multijob::run(&spec);
    let wall_s = start.elapsed().as_secs_f64();

    let mut doc = jobj! {
        "schema": "mrbench-multijob-v1",
        "quick": quick,
        "config": jobj! {
            "slaves": slaves as u64,
            "racks": racks as u64,
            "oversubscription": oversubscription,
            "jobs": jobs as u64,
            "tenants": tenants as u64,
            "maps_per_job": maps as u64,
            "reduces_per_job": reduces as u64,
            "shuffle_mb_per_job": shuffle_mb,
            "mean_gap_s": mean_gap_s,
            "seed": seed,
        },
        "wall_s": wall_s,
    };
    if let (Json::Obj(fields), Json::Obj(result_fields)) = (&mut doc, result.to_json()) {
        fields.extend(result_fields);
    }
    atomic_write(std::path::Path::new(&out), &doc.to_pretty())?;
    println!(
        "wrote {out} ({} jobs, makespan {:.1}s simulated, {:.2}s wall)",
        result.jobs_completed, result.makespan_s, wall_s
    );
    Ok(())
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, Error>
where
    T::Err: std::fmt::Display,
{
    s.parse()
        .map_err(|e| Error::usage(format!("bad {flag} value: {e}")))
}
