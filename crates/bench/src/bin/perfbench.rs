//! perfbench — continuous performance tracking for the simulator core.
//!
//! Every PR runs this binary and commits/uploads the resulting
//! `BENCH_<n>.json`, so the repository carries a wall-clock performance
//! trajectory alongside the (simulated-time) figure artifacts. The
//! workloads cover the hot paths the figure reproductions exercise
//! thousands of times:
//!
//! * the discrete-event queue under schedule/cancel/pop churn,
//! * the max-min fairshare solver at 10 / 100 / 1k / 10k flows,
//! * an end-to-end all-to-all shuffle on the flow-level network
//!   (the paper's shuffle phase, at cluster scale), and
//! * one full figure-style MapReduce job through the engine.
//!
//! Reported numbers are wall-clock measurements of *deterministic*
//! workloads: simulated results never vary, only how fast the host
//! executes them. See DESIGN.md §12 for the schema.
//!
//! ```text
//! cargo run --release -p mrbench-bench --bin perfbench -- [--quick] [--out PATH]
//! ```

// Wall-clock time is the entire point of this binary: it measures real
// execution speed of deterministic workloads, not simulated time.
#![allow(clippy::disallowed_methods)]

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use mrbench::{atomic_write, run, BenchConfig, Error, MicroBenchmark};
use simcore::event::EventQueue;
use simcore::jobj;
use simcore::json::Json;
use simcore::time::SimTime;
use simcore::units::ByteSize;
use simnet::fairshare::{max_min_rates, FairshareSolver, FlowSpec};
use simnet::{Interconnect, Network, NodeId, Topology};

/// PR number stamped into the default artifact name (`BENCH_8.json`).
const PR: u32 = 8;

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perfbench: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn real_main() -> Result<(), Error> {
    let mut quick = false;
    let mut out = format!("BENCH_{PR}.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = args
                    .next()
                    .filter(|v| !v.starts_with('-'))
                    .ok_or_else(|| Error::usage("--out needs a path"))?;
            }
            "--help" | "-h" => {
                println!(
                    "perfbench [--quick] [--out PATH]\n\
                     Measures simulator hot-path throughput and writes a\n\
                     mrbench-perf-v1 JSON artifact (default BENCH_{PR}.json)."
                );
                return Ok(());
            }
            other => return Err(Error::usage(format!("unknown flag {other}"))),
        }
    }

    let mut workloads = Vec::new();

    workloads.push(bench_event_queue(quick));
    for &flows in &[10usize, 100, 1_000, 10_000] {
        workloads.push(bench_fairshare(flows, quick));
    }
    // The headline number: a 10k-flow all-to-all shuffle (100 nodes,
    // every node streams to every other), the pattern of Figs. 2-8's
    // shuffle phase at provisioning scale. Quick mode shrinks it so CI
    // still exercises the same code path.
    let a2a_nodes = if quick { 32 } else { 100 };
    workloads.push(bench_all_to_all(a2a_nodes, quick));
    // Provisioning scale with the rack layer engaged: 1k nodes in 40
    // racks at 4:1 oversubscription, so every solve pays the uplink
    // resources too. Runs even in quick mode — CI's perf-smoke is the
    // regression gate for the rack-aware hot path.
    workloads.push(bench_rack_shuffle(1_000, 40, 4.0, quick));
    workloads.push(bench_figure_job(quick));

    let doc = jobj! {
        "schema": "mrbench-perf-v1",
        "pr": u64::from(PR),
        "quick": quick,
        "workloads": Json::Arr(workloads),
        "peak_rss_bytes": peak_rss_bytes().map_or(Json::Null, |b| Json::Int(b as i128)),
    };
    atomic_write(std::path::Path::new(&out), &doc.to_pretty())?;
    println!("wrote {out}");
    Ok(())
}

/// One measured workload row. `sim_events` is the deterministic event
/// count the workload dispatches; `events_per_sec = sim_events / wall_s`.
fn row(name: &str, sim_events: u64, wall_s: f64, extra: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("sim_events".to_string(), Json::Int(i128::from(sim_events))),
        ("wall_s".to_string(), Json::Num(wall_s)),
        (
            "events_per_sec".to_string(),
            Json::Num(sim_events as f64 / wall_s.max(1e-12)),
        ),
    ];
    obj.extend(extra);
    Json::Obj(obj)
}

/// Event-queue churn: schedule bursts, cancel half, pop everything.
/// Exercises the slab, the lazy-deletion pop path, and compaction.
fn bench_event_queue(quick: bool) -> Json {
    let rounds: u64 = if quick { 50 } else { 500 };
    let per_round: u64 = 2_000;
    let mut q = EventQueue::with_capacity(per_round as usize * 2);
    let start = Instant::now();
    let mut ops: u64 = 0;
    for r in 0..rounds {
        let mut ids = Vec::with_capacity(per_round as usize);
        for i in 0..per_round {
            // Deterministic scattered times; no wall clock, no OS entropy.
            let t = (i * 2_654_435_761 + r * 40_503) % 1_000_000;
            ids.push(q.schedule(SimTime::from_nanos(r * 1_000_000 + t), i));
        }
        for id in ids.iter().step_by(2) {
            q.cancel(*id);
        }
        while let Some((t, v)) = q.pop() {
            black_box((t, v));
        }
        ops += per_round * 2 + per_round / 2;
    }
    row(
        "event_queue/churn",
        ops,
        start.elapsed().as_secs_f64(),
        vec![("rounds".into(), Json::Int(i128::from(rounds)))],
    )
}

/// Fairshare at a given flow count: one batch solve plus an
/// arrival/departure cycle on the incremental solver.
fn bench_fairshare(flows: usize, quick: bool) -> Json {
    let nodes = (flows / 4).clamp(4, 128);
    let specs: Vec<FlowSpec> = (0..flows)
        .map(|i| {
            let src = i % nodes;
            let dst = (i * 7 + 1) % nodes;
            FlowSpec {
                src,
                dst: if dst == src { (dst + 1) % nodes } else { dst },
            }
        })
        .collect();
    let caps = vec![950e6; nodes];

    let batch_iters: u64 = match flows {
        f if f <= 100 => 2_000,
        f if f <= 1_000 => 200,
        _ => {
            if quick {
                2
            } else {
                10
            }
        }
    };
    let start = Instant::now();
    for _ in 0..batch_iters {
        black_box(max_min_rates(black_box(&specs), &caps, &caps, None));
    }
    let batch_s = start.elapsed().as_secs_f64() / batch_iters as f64;

    // Incremental: load the flows once, then time churn (remove + re-add
    // one flow, re-solving after each step) — the per-event cost the
    // network engine actually pays.
    let mut solver = FairshareSolver::new(&caps, &caps, None);
    let keys: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| solver.add_flow(*s, i as u64))
        .collect();
    solver.solve();
    let churn_iters: u64 = if quick { 200 } else { 2_000 };
    let start = Instant::now();
    for i in 0..churn_iters {
        let k = keys[(i as usize * 13) % keys.len()];
        let spec = solver.spec(k);
        solver.remove_flow(k);
        solver.solve();
        // The slab reuses the freed slot (LIFO free list), so the
        // re-added flow lands back on the same slot and the original
        // key list stays valid across iterations.
        let k2 = solver.add_flow(spec, u64::MAX);
        solver.solve();
        black_box(solver.rate(k2));
    }
    let incr_s = start.elapsed().as_secs_f64() / (churn_iters * 2) as f64;

    row(
        &format!("fairshare/{flows}_flows"),
        batch_iters + churn_iters * 2,
        batch_s * batch_iters as f64 + incr_s * (churn_iters * 2) as f64,
        vec![
            ("flows".into(), Json::Int(flows as i128)),
            ("nodes".into(), Json::Int(nodes as i128)),
            ("batch_solve_s".into(), Json::Num(batch_s)),
            ("incremental_solve_s".into(), Json::Num(incr_s)),
        ],
    )
}

/// End-to-end all-to-all shuffle on the flow-level network: n nodes,
/// n*(n-1) concurrent flows, run to idle. The dominant workload of every
/// shuffle-heavy figure, at cluster scale.
fn bench_all_to_all(nodes: usize, _quick: bool) -> Json {
    let flows = nodes * (nodes - 1);
    let mut net = Network::new(Topology::single_switch(nodes, Interconnect::IpoibQdr));
    let start = Instant::now();
    let mut tag = 0u64;
    for s in 0..nodes {
        for d in 0..nodes {
            if s != d {
                // Staggered sizes so completions spread over time and
                // every completion pays a rate recompute — a symmetric
                // shuffle would collapse into one simultaneous finish.
                let kib = 1024 + ((s * 131 + d * 17) % 97) as u64 * 64;
                net.start_flow(
                    SimTime::ZERO,
                    NodeId(s),
                    NodeId(d),
                    ByteSize::from_bytes(kib * 1024),
                    tag,
                );
                tag += 1;
            }
        }
    }
    let mut steps: u64 = 0;
    let mut completions: u64 = 0;
    while let Some(t) = net.next_event_time() {
        completions += net.advance_to(t).len() as u64;
        steps += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(completions as usize, flows, "all flows must complete");
    // Every start_flow, activation batch, and completion batch is a
    // simulated event the engine would dispatch.
    let sim_events = flows as u64 + steps + completions;
    row(
        &format!("network/all_to_all_{flows}_flows"),
        sim_events,
        wall,
        vec![
            ("nodes".into(), Json::Int(nodes as i128)),
            ("flows".into(), Json::Int(flows as i128)),
            ("steps".into(), Json::Int(i128::from(steps))),
        ],
    )
}

/// Rack-aware shuffle at provisioning scale: every node streams to a
/// handful of strided peers (mostly cross-rack), through per-rack uplinks
/// at the given oversubscription factor. This is the hot path the
/// rack-aware topologies add on top of the flat crossbar.
fn bench_rack_shuffle(nodes: usize, racks: usize, factor: f64, quick: bool) -> Json {
    let peers = if quick { 8 } else { 16 };
    let mut net = Network::new(
        Topology::single_switch(nodes, Interconnect::IpoibQdr).with_racks(racks, factor),
    );
    let start = Instant::now();
    let mut tag = 0u64;
    for s in 0..nodes {
        for k in 1..=peers {
            // A large prime stride lands most peers in other racks.
            let d = (s + k * 101) % nodes;
            if d == s {
                continue;
            }
            let kib = 256 + ((s * 131 + d * 17) % 97) as u64 * 16;
            net.start_flow(
                SimTime::ZERO,
                NodeId(s),
                NodeId(d),
                ByteSize::from_bytes(kib * 1024),
                tag,
            );
            tag += 1;
        }
    }
    let flows = tag;
    let mut steps: u64 = 0;
    let mut completions: u64 = 0;
    while let Some(t) = net.next_event_time() {
        completions += net.advance_to(t).len() as u64;
        steps += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(completions, flows, "all flows must complete");
    let sim_events = flows + steps + completions;
    row(
        &format!("network/rack_shuffle_{nodes}n_{racks}r"),
        sim_events,
        wall,
        vec![
            ("nodes".into(), Json::Int(nodes as i128)),
            ("racks".into(), Json::Int(racks as i128)),
            ("oversubscription".into(), Json::Num(factor)),
            ("flows".into(), Json::Int(flows as i128)),
            ("steps".into(), Json::Int(i128::from(steps))),
        ],
    )
}

/// One figure-style MapReduce job through the full engine (Fig. 2's
/// anchor shape, shrunk), timed wall-clock.
fn bench_figure_job(quick: bool) -> Json {
    let mut config = BenchConfig::cluster_a_default(
        MicroBenchmark::Avg,
        Interconnect::IpoibQdr,
        ByteSize::from_mib(if quick { 64 } else { 512 }),
    );
    config.slaves = 4;
    config.num_maps = 8;
    config.num_reduces = 8;
    let iters: u64 = if quick { 2 } else { 5 };
    let start = Instant::now();
    let mut job_s = 0.0;
    for _ in 0..iters {
        job_s = run(&config).expect("valid config").job_time_secs();
    }
    let wall = start.elapsed().as_secs_f64();
    row(
        "engine/fig2_style_job",
        iters,
        wall,
        vec![
            ("iters".into(), Json::Int(i128::from(iters))),
            ("sim_job_s".into(), Json::Num(job_s)),
        ],
    )
}

/// Peak resident set size from `/proc/self/status` (`VmHWM`), if the
/// platform exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}
