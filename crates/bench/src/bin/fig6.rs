//! Figure 6: impact of the data type (`BytesWritable` vs `Text`).
//!
//! Configuration (paper Sect. 5.2): MR-RAND ("MR-RANDOM"), 16 maps /
//! 8 reduces on 4 slaves of Cluster A, 1 KiB key/value pairs, scaling the
//! shuffle size up to 64 GB.

use mapreduce::io::DataType;
use mrbench::{BenchConfig, MicroBenchmark, Sweep};
use mrbench_bench::{figure_header, print_improvements, run_panel, Harness, CLUSTER_A_NETWORKS};
use simcore::units::ByteSize;
use simnet::Interconnect;

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), mrbench::Error> {
    let mut harness = Harness::from_env("fig6");
    figure_header(
        "Figure 6",
        "Job execution time with BytesWritable and Text data types on Cluster A",
    );

    // "as we scale up to 64 GB"
    let sizes = harness.sizes([16u64, 32, 48, 64].map(ByteSize::from_gib).to_vec());

    let mut sweeps: Vec<(DataType, Sweep)> = Vec::new();
    for (dt, panel) in DataType::ALL.into_iter().zip(["(a)", "(b)"]) {
        let title = format!("Fig 6{panel} MR-RAND with {dt}");
        let sweep = run_panel(
            &mut harness,
            &title,
            &sizes,
            &CLUSTER_A_NETWORKS,
            |shuffle, ic| {
                let mut c = BenchConfig::cluster_a_default(MicroBenchmark::Rand, ic, shuffle);
                c.data_type = dt;
                c
            },
        )?;
        print_improvements(&sweep);
        sweeps.push((dt, sweep));
    }

    if harness.quick {
        harness.note_quick();
        return harness.finish();
    }
    println!("shape checks against the paper's prose:");
    // "job execution time decreases around 23-25% ... 10GigE ... up to
    //  28% ... IPoIB" — both types see similar gains from fast networks.
    let at = ByteSize::from_gib(64);
    for (dt, sweep) in &sweeps {
        let g10 = sweep
            .improvement_pct(at, Interconnect::GigE1, Interconnect::GigE10)
            .unwrap();
        let gib = sweep
            .improvement_pct(at, Interconnect::GigE1, Interconnect::IpoibQdr)
            .unwrap();
        println!(
            "  [info    ] {dt} at 64 GB: 10GigE {g10:.1}% (paper ~23-25%), IPoIB {gib:.1}% (paper up to ~28%)"
        );
    }
    let (g_b, g_t) = (
        sweeps[0]
            .1
            .improvement_pct(at, Interconnect::GigE1, Interconnect::IpoibQdr)
            .unwrap(),
        sweeps[1]
            .1
            .improvement_pct(at, Interconnect::GigE1, Interconnect::IpoibQdr)
            .unwrap(),
    );
    println!(
        "  [{}] high-speed interconnects help both data types similarly: {:.1}% (BytesWritable) vs {:.1}% (Text)",
        if (g_b - g_t).abs() < 6.0 { "ok      " } else { "DEVIATES" },
        g_b,
        g_t
    );
    // Text's smaller framing means slightly less materialized data, so it
    // should never be meaningfully slower at equal payload.
    let t_b = sweeps[0].1.time(at, Interconnect::IpoibQdr).unwrap();
    let t_t = sweeps[1].1.time(at, Interconnect::IpoibQdr).unwrap();
    println!("  [info    ] 64 GB / IPoIB: BytesWritable {t_b:.1}s vs Text {t_t:.1}s");
    harness.finish()
}
