//! Figure 4: impact of the key/value pair size on MR-AVG job time.
//!
//! Configuration (paper Sect. 5.2): MR-AVG, 16 maps / 8 reduces on 4
//! slaves of Cluster A, `BytesWritable`, key/value pair sizes of 100 B,
//! 1 KiB and 10 KiB, shuffle sizes 8–32 GB.

use mrbench::calib::{ANCHOR_IPOIB_16GB_100B_SECS, ANCHOR_IPOIB_16GB_1KB_SECS};
use mrbench::{BenchConfig, MicroBenchmark};
use mrbench_bench::{
    check_shape, figure_header, paper_sizes, print_improvements, run_panel, Harness,
    CLUSTER_A_NETWORKS,
};
use simcore::units::ByteSize;
use simnet::Interconnect;

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), mrbench::Error> {
    let mut harness = Harness::from_env("fig4");
    figure_header(
        "Figure 4",
        "Job execution time with MR-AVG for different key/value pair sizes on Cluster A",
    );

    let sizes = harness.sizes(paper_sizes());
    let kv_sizes: [(usize, &str); 3] = [(100, "100 bytes"), (1024, "1 KB"), (10240, "10 KB")];
    let mut at_16gb_ipoib = Vec::new();

    for ((kv, label), panel) in kv_sizes.iter().zip(["(a)", "(b)", "(c)"]) {
        let sweep = run_panel(
            &mut harness,
            &format!("Fig 4{panel} MR-AVG with key/value size of {label}"),
            &sizes,
            &CLUSTER_A_NETWORKS,
            |shuffle, ic| {
                let mut c = BenchConfig::cluster_a_default(MicroBenchmark::Avg, ic, shuffle);
                c.key_size = *kv;
                c.value_size = *kv;
                c
            },
        )?;
        print_improvements(&sweep);
        if !harness.quick {
            at_16gb_ipoib.push(
                sweep
                    .time(ByteSize::from_gib(16), Interconnect::IpoibQdr)
                    .unwrap(),
            );
        }
    }

    if harness.quick {
        harness.note_quick();
        return harness.finish();
    }
    println!("shape checks against the paper's prose:");
    check_shape(
        "16 GB / IPoIB / 100 B k/v job time (s)",
        ANCHOR_IPOIB_16GB_100B_SECS,
        at_16gb_ipoib[0],
        0.25,
    );
    check_shape(
        "16 GB / IPoIB / 1 KB k/v job time (s) [calibration anchor]",
        ANCHOR_IPOIB_16GB_1KB_SECS,
        at_16gb_ipoib[1],
        0.15,
    );
    println!(
        "  [{}] larger key/value pairs lower job time at fixed volume: {:.1}s (100B) > {:.1}s (1KB) > {:.1}s (10KB)",
        if at_16gb_ipoib[0] > at_16gb_ipoib[1] && at_16gb_ipoib[1] > at_16gb_ipoib[2] {
            "ok      "
        } else {
            "DEVIATES"
        },
        at_16gb_ipoib[0],
        at_16gb_ipoib[1],
        at_16gb_ipoib[2]
    );
    harness.finish()
}
