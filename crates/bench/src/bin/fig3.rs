//! Figure 3: job execution time with the three distribution patterns on
//! the Hadoop NextGen (YARN) architecture.
//!
//! Configuration (paper Sect. 5.2): 32 map / 16 reduce tasks on 8 slaves
//! of Cluster A, 1 KiB key/value pairs, Apache Hadoop 2.x YARN.

use mrbench::calib::claims;
use mrbench::{BenchConfig, MicroBenchmark, Sweep};
use mrbench_bench::{
    check_shape, figure_header, paper_sizes, print_improvements, run_grid, run_panel, Harness,
    CLUSTER_A_NETWORKS,
};
use simcore::units::ByteSize;
use simnet::Interconnect;

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), mrbench::Error> {
    let mut harness = Harness::from_env("fig3");
    figure_header(
        "Figure 3",
        "Job execution time with different patterns for the YARN architecture on Cluster A",
    );

    let sizes = harness.sizes(paper_sizes());
    let mut sweeps: Vec<(MicroBenchmark, Sweep)> = Vec::new();
    for (panel, bench) in ["(a)", "(b)", "(c)"].iter().zip(MicroBenchmark::ALL) {
        let sweep = run_panel(
            &mut harness,
            &format!("Fig 3{panel} {bench} — YARN, 32 maps / 16 reduces on 8 slaves"),
            &sizes,
            &CLUSTER_A_NETWORKS,
            |shuffle, ic| BenchConfig::yarn_default(bench, ic, shuffle),
        )?;
        print_improvements(&sweep);
        sweeps.push((bench, sweep));
    }

    if harness.quick {
        harness.note_quick();
        return harness.finish();
    }
    println!("shape checks against the paper's prose:");
    let at = ByteSize::from_gib(16);
    let avg = &sweeps[0].1;
    let skew = &sweeps[2].1;

    check_shape(
        "YARN MR-AVG: 10GigE improvement over 1GigE (%)",
        claims::YARN_AVG_10GIGE_PCT,
        avg.improvement_pct(at, Interconnect::GigE1, Interconnect::GigE10)
            .unwrap(),
        0.6,
    );
    check_shape(
        "YARN MR-AVG: IPoIB improvement over 1GigE (%)",
        claims::YARN_AVG_IPOIB_PCT,
        avg.improvement_pct(at, Interconnect::GigE1, Interconnect::IpoibQdr)
            .unwrap(),
        0.6,
    );
    check_shape(
        "YARN MR-SKEW: job time vs MR-AVG (factor, IPoIB)",
        claims::SKEW_VS_AVG_FACTOR_YARN,
        skew.time(at, Interconnect::IpoibQdr).unwrap()
            / avg.time(at, Interconnect::IpoibQdr).unwrap(),
        0.4,
    );

    // Sect. 5.2: "increasing cluster size and concurrency significantly
    // benefits average and random data distribution patterns" — compare
    // against the Fig. 2 configuration at the same shuffle size.
    let fig2_avg = run_grid(&harness, &[at], &[Interconnect::IpoibQdr], |s, ic| {
        BenchConfig::cluster_a_default(MicroBenchmark::Avg, ic, s)
    })?;
    let t_fig2 = fig2_avg.time(at, Interconnect::IpoibQdr).unwrap();
    let t_fig3 = avg.time(at, Interconnect::IpoibQdr).unwrap();
    println!(
        "  [{}] doubling the cluster speeds up MR-AVG: {:.1}s (4 slaves) -> {:.1}s (8 slaves)",
        if t_fig3 < t_fig2 {
            "ok      "
        } else {
            "DEVIATES"
        },
        t_fig2,
        t_fig3
    );
    harness.finish()
}
