//! Figure 8: the RDMA case study — MRoIB vs IPoIB on Cluster B
//! (TACC Stampede, FDR InfiniBand).
//!
//! Configuration (paper Sect. 6): MR-AVG, 32 maps / 16 reduce tasks,
//! 1 KiB `BytesWritable` pairs, on 8 and then 16 slave nodes, comparing
//! default Hadoop over IPoIB (56 Gbps) against the RDMA-enhanced
//! MapReduce (MRoIB) over native InfiniBand FDR.

use mrbench::calib::claims;
use mrbench::BenchConfig;
use mrbench_bench::{check_shape, figure_header, paper_sizes, run_panel, Harness};
use simcore::units::ByteSize;
use simnet::Interconnect;

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), mrbench::Error> {
    let mut harness = Harness::from_env("fig8");
    figure_header(
        "Figure 8",
        "MR-AVG with IPoIB vs RDMA (MRoIB) on Cluster B (56 Gbps FDR)",
    );

    let sizes = harness.sizes(paper_sizes());
    let networks = [Interconnect::IpoibFdr, Interconnect::RdmaFdr];

    let mut sweeps = Vec::new();
    for (slaves, panel) in [(8usize, "(a)"), (16, "(b)")] {
        let title = format!("Fig 8{panel} MR-AVG with {slaves} slave nodes");
        let sweep = run_panel(&mut harness, &title, &sizes, &networks, |shuffle, ic| {
            BenchConfig::cluster_b_case_study(ic, shuffle, slaves)
        })?;
        sweeps.push((slaves, sweep));
    }

    if harness.quick {
        harness.note_quick();
        return harness.finish();
    }
    println!("shape checks against the paper's prose:");
    let at = ByteSize::from_gib(32);
    let gain_8 = sweeps[0]
        .1
        .improvement_pct(at, Interconnect::IpoibFdr, Interconnect::RdmaFdr)
        .unwrap();
    let gain_16 = sweeps[1]
        .1
        .improvement_pct(at, Interconnect::IpoibFdr, Interconnect::RdmaFdr)
        .unwrap();
    check_shape(
        "MRoIB improvement over IPoIB FDR, 8 slaves (%)",
        claims::RDMA_IMPROVEMENT_8SLAVES_PCT,
        gain_8,
        0.45,
    );
    check_shape(
        "MRoIB improvement over IPoIB FDR, 16 slaves (%)",
        claims::RDMA_IMPROVEMENT_16SLAVES_PCT,
        gain_16,
        0.45,
    );
    // "RDMA-enhanced MapReduce outperforms IPoIB ... even on a larger
    //  cluster": the advantage persists at every size and both scales.
    let mut all_positive = true;
    for (_, sweep) in &sweeps {
        for &size in &sweep.sizes {
            let g = sweep
                .improvement_pct(size, Interconnect::IpoibFdr, Interconnect::RdmaFdr)
                .unwrap();
            if g <= 0.0 {
                all_positive = false;
            }
        }
    }
    println!(
        "  [{}] RDMA wins at every shuffle size on both cluster scales",
        if all_positive { "ok      " } else { "DEVIATES" }
    );
    harness.finish()
}
