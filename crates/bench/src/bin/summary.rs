//! Paper-vs-measured summary over every headline claim.
//!
//! Prints a Markdown table suitable for `EXPERIMENTS.md`. Covers the
//! prose claims of Sect. 5.2, Sect. 6 and the conclusion (Sect. 7),
//! referencing each figure.

use mrbench::calib::{claims, ANCHOR_IPOIB_16GB_100B_SECS, ANCHOR_IPOIB_16GB_1KB_SECS};
use mrbench::{run, BenchConfig, MicroBenchmark, Sweep};
use mrbench_bench::{run_grid, Harness};
use simcore::units::ByteSize;
use simnet::Interconnect;

struct Row {
    exp: &'static str,
    what: &'static str,
    paper: f64,
    measured: f64,
    unit: &'static str,
}

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), mrbench::Error> {
    let mut harness = Harness::from_env("summary");
    let gb16 = harness.shuffle(ByteSize::from_gib(16));
    let a_nets = [
        Interconnect::GigE1,
        Interconnect::GigE10,
        Interconnect::IpoibQdr,
    ];

    let mut rows: Vec<Row> = Vec::new();

    // Fig 2 (MRv1, Cluster A) at 16 GB.
    let cluster_a = |bench| {
        run_grid(&harness, &[gb16], &a_nets, |s, ic| {
            BenchConfig::cluster_a_default(bench, ic, s)
        })
    };
    let avg = cluster_a(MicroBenchmark::Avg)?;
    let rand = cluster_a(MicroBenchmark::Rand)?;
    let skew = cluster_a(MicroBenchmark::Skew)?;
    harness.record_sweep("Fig 2 MR-AVG (MRv1, Cluster A)", &avg);
    harness.record_sweep("Fig 2 MR-RAND (MRv1, Cluster A)", &rand);
    harness.record_sweep("Fig 2 MR-SKEW (MRv1, Cluster A)", &skew);
    let imp = |s: &Sweep, fast| s.improvement_pct(gb16, Interconnect::GigE1, fast).unwrap();
    rows.push(Row {
        exp: "Fig 2(a)",
        what: "MR-AVG: 10GigE gain over 1GigE",
        paper: claims::AVG_10GIGE_IMPROVEMENT_PCT,
        measured: imp(&avg, Interconnect::GigE10),
        unit: "%",
    });
    rows.push(Row {
        exp: "Fig 2(a)",
        what: "MR-AVG: IPoIB QDR gain over 1GigE",
        paper: claims::AVG_IPOIB_IMPROVEMENT_PCT,
        measured: imp(&avg, Interconnect::IpoibQdr),
        unit: "%",
    });
    rows.push(Row {
        exp: "Fig 2(b)",
        what: "MR-RAND: 10GigE gain over 1GigE",
        paper: claims::RAND_10GIGE_IMPROVEMENT_PCT,
        measured: imp(&rand, Interconnect::GigE10),
        unit: "%",
    });
    rows.push(Row {
        exp: "Fig 2(b)",
        what: "MR-RAND: IPoIB QDR gain over 1GigE",
        paper: claims::RAND_IPOIB_IMPROVEMENT_PCT,
        measured: imp(&rand, Interconnect::IpoibQdr),
        unit: "%",
    });
    rows.push(Row {
        exp: "Fig 2(c)",
        what: "MR-SKEW: IPoIB QDR gain over 1GigE",
        paper: claims::SKEW_IMPROVEMENT_PCT,
        measured: imp(&skew, Interconnect::IpoibQdr),
        unit: "%",
    });
    rows.push(Row {
        exp: "Fig 2(c)",
        what: "MR-SKEW / MR-AVG job-time factor (IPoIB)",
        paper: claims::SKEW_VS_AVG_FACTOR_MRV1,
        measured: skew.time(gb16, Interconnect::IpoibQdr).unwrap()
            / avg.time(gb16, Interconnect::IpoibQdr).unwrap(),
        unit: "x",
    });

    // Fig 3 (YARN).
    let yavg = run_grid(&harness, &[gb16], &a_nets, |s, ic| {
        BenchConfig::yarn_default(MicroBenchmark::Avg, ic, s)
    })?;
    let yskew = run_grid(&harness, &[gb16], &[Interconnect::IpoibQdr], |s, ic| {
        BenchConfig::yarn_default(MicroBenchmark::Skew, ic, s)
    })?;
    harness.record_sweep("Fig 3 MR-AVG (YARN, Cluster A)", &yavg);
    harness.record_sweep("Fig 3 MR-SKEW (YARN, Cluster A)", &yskew);
    rows.push(Row {
        exp: "Fig 3(a)",
        what: "YARN MR-AVG: 10GigE gain over 1GigE",
        paper: claims::YARN_AVG_10GIGE_PCT,
        measured: yavg
            .improvement_pct(gb16, Interconnect::GigE1, Interconnect::GigE10)
            .unwrap(),
        unit: "%",
    });
    rows.push(Row {
        exp: "Fig 3(a)",
        what: "YARN MR-AVG: IPoIB gain over 1GigE",
        paper: claims::YARN_AVG_IPOIB_PCT,
        measured: yavg
            .improvement_pct(gb16, Interconnect::GigE1, Interconnect::IpoibQdr)
            .unwrap(),
        unit: "%",
    });
    rows.push(Row {
        exp: "Fig 3(c)",
        what: "YARN MR-SKEW / MR-AVG factor (IPoIB)",
        paper: claims::SKEW_VS_AVG_FACTOR_YARN,
        measured: yskew.time(gb16, Interconnect::IpoibQdr).unwrap()
            / yavg.time(gb16, Interconnect::IpoibQdr).unwrap(),
        unit: "x",
    });

    // Fig 4: key/value size anchors.
    let t_1kb = avg.time(gb16, Interconnect::IpoibQdr).unwrap();
    let small = run_grid(&harness, &[gb16], &[Interconnect::IpoibQdr], |s, ic| {
        let mut c = BenchConfig::cluster_a_default(MicroBenchmark::Avg, ic, s);
        c.key_size = 100;
        c.value_size = 100;
        c
    })?;
    harness.record_sweep("Fig 4 MR-AVG with 100 B k/v", &small);
    rows.push(Row {
        exp: "Fig 4(a)",
        what: "16 GB / IPoIB / 100 B k/v job time",
        paper: ANCHOR_IPOIB_16GB_100B_SECS,
        measured: small.time(gb16, Interconnect::IpoibQdr).unwrap(),
        unit: "s",
    });
    rows.push(Row {
        exp: "Fig 4(b)",
        what: "16 GB / IPoIB / 1 KB k/v job time (anchor)",
        paper: ANCHOR_IPOIB_16GB_1KB_SECS,
        measured: t_1kb,
        unit: "s",
    });

    // Fig 7: peak throughputs.
    for (ic, paper, exp) in [
        (Interconnect::GigE1, claims::PEAK_RX_MBPS_GIGE1, "Fig 7(b)"),
        (
            Interconnect::GigE10,
            claims::PEAK_RX_MBPS_GIGE10,
            "Fig 7(b)",
        ),
        (
            Interconnect::IpoibQdr,
            claims::PEAK_RX_MBPS_IPOIB,
            "Fig 7(b)",
        ),
    ] {
        let report = run(&harness.prep(BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            ic,
            gb16,
        )))?;
        mrbench_bench::ensure_within_budget(&report)?;
        harness.record_report(&format!("Fig 7 utilization — {}", ic.label()), &report);
        rows.push(Row {
            exp,
            what: match ic {
                Interconnect::GigE1 => "peak rx throughput, 1GigE",
                Interconnect::GigE10 => "peak rx throughput, 10GigE",
                _ => "peak rx throughput, IPoIB QDR",
            },
            paper,
            measured: report.peak_rx_mbps(),
            unit: "MB/s",
        });
    }

    // Fig 8: RDMA case study at 32 GB.
    let gb32 = harness.shuffle(ByteSize::from_gib(32));
    for (slaves, paper, exp) in [
        (8usize, claims::RDMA_IMPROVEMENT_8SLAVES_PCT, "Fig 8(a)"),
        (16, claims::RDMA_IMPROVEMENT_16SLAVES_PCT, "Fig 8(b)"),
    ] {
        let s = run_grid(
            &harness,
            &[gb32],
            &[Interconnect::IpoibFdr, Interconnect::RdmaFdr],
            |sz, ic| BenchConfig::cluster_b_case_study(ic, sz, slaves),
        )?;
        harness.record_sweep(&format!("Fig 8 MR-AVG, {slaves} slaves (Cluster B)"), &s);
        rows.push(Row {
            exp,
            what: if slaves == 8 {
                "MRoIB gain over IPoIB FDR, 8 slaves"
            } else {
                "MRoIB gain over IPoIB FDR, 16 slaves"
            },
            paper,
            measured: s
                .improvement_pct(gb32, Interconnect::IpoibFdr, Interconnect::RdmaFdr)
                .unwrap(),
            unit: "%",
        });
    }

    // Render.
    println!("| Experiment | Quantity | Paper | Measured | Δ |");
    println!("|---|---|---:|---:|---:|");
    for r in &rows {
        let delta = if r.paper != 0.0 {
            format!("{:+.0}%", (r.measured - r.paper) / r.paper * 100.0)
        } else {
            "-".into()
        };
        println!(
            "| {} | {} | {:.1} {} | {:.1} {} | {} |",
            r.exp, r.what, r.paper, r.unit, r.measured, r.unit, delta
        );
    }
    if harness.quick {
        println!();
        harness.note_quick();
    }
    harness.finish()
}
