//! Validate Chrome trace-event files emitted by `--trace`.
//!
//! Accepts one or more trace files (single-run documents from
//! `mrbench --trace` or combined multi-run documents from the figure
//! binaries) and checks the structural invariants CI relies on:
//!
//! * the file parses as a JSON object with a `"traceEvents"` array;
//! * every event carries a `"ph"`, a `"pid"` and a finite `"ts" >= 0`;
//! * every complete (`"X"`) event has a finite `"dur" >= 0` and a task
//!   label in `"args"`;
//! * combined files list their run labels under `"runs"`, with exactly
//!   one `process_name` metadata record per run and no event pointing
//!   at a pid outside that list;
//! * the file contains at least one span (a trace with zero spans means
//!   the producer never enabled tracing).
//!
//! Exits non-zero on the first file that fails, printing why: 2 for a
//! bad invocation, 4 when a file cannot be read, 5 when one does not
//! parse or validate (the `mrbench::error` taxonomy).

use std::path::Path;

use mrbench::Error;
use simcore::json::Json;

struct Check {
    runs: usize,
    events: usize,
    spans: usize,
    marks: usize,
    last_ts_us: f64,
}

fn check_file(path: &str) -> Result<Check, Error> {
    let text = mrbench::error::read_to_string(Path::new(path))?;
    let doc = Json::parse(&text).map_err(|e| Error::parse(path, format!("invalid JSON: {e}")))?;
    let events = doc
        .field_arr("traceEvents")
        .map_err(|e| Error::parse(path, e))?;

    // Combined documents label their processes; single-run documents
    // implicitly have one run under pid 0.
    let runs = match doc.get("runs") {
        Some(r) => {
            let arr = r
                .as_arr()
                .ok_or_else(|| Error::parse(path, "\"runs\" is not an array"))?;
            for (i, label) in arr.iter().enumerate() {
                if label.as_str().is_none() {
                    return Err(Error::parse(path, format!("runs[{i}] is not a string")));
                }
            }
            arr.len()
        }
        None => 1,
    };

    let mut spans = 0usize;
    let mut marks = 0usize;
    let mut process_names = 0usize;
    let mut last_ts_us = 0.0f64;
    for (i, ev) in events.iter().enumerate() {
        let at = |e: String| Error::parse(format!("{path}: traceEvents[{i}]"), e);
        let ph = ev.field_str("ph").map_err(at)?;
        let pid = ev.field_u64("pid").map_err(at)?;
        if pid as usize >= runs {
            return Err(at(format!("pid {pid} out of range (runs = {runs})")));
        }
        match ph {
            "M" => {
                if ev.field_str("name").map_err(at)? == "process_name" {
                    process_names += 1;
                }
            }
            "X" => {
                let ts = ev.field_f64("ts").map_err(at)?;
                let dur = ev.field_f64("dur").map_err(at)?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(at(format!("bad ts {ts}")));
                }
                if !dur.is_finite() || dur < 0.0 {
                    return Err(at(format!("bad dur {dur}")));
                }
                let args = ev.req("args").map_err(at)?;
                args.field_str("task").map_err(at)?;
                last_ts_us = last_ts_us.max(ts + dur);
                spans += 1;
            }
            "i" => {
                let ts = ev.field_f64("ts").map_err(at)?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(at(format!("bad ts {ts}")));
                }
                last_ts_us = last_ts_us.max(ts);
                marks += 1;
            }
            other => return Err(at(format!("unknown event phase {other:?}"))),
        }
    }
    if process_names != runs {
        return Err(Error::parse(
            path,
            format!("{process_names} process_name records for {runs} runs"),
        ));
    }
    if spans == 0 {
        return Err(Error::parse(
            path,
            "no spans — was tracing actually enabled?",
        ));
    }
    Ok(Check {
        runs,
        events: events.len(),
        spans,
        marks,
        last_ts_us,
    })
}

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), Error> {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        return Err(Error::usage(
            "usage: tracecheck TRACE.json [TRACE.json ...]",
        ));
    }
    for path in &paths {
        let c = check_file(path)?;
        println!(
            "{path}: ok — {} run(s), {} events ({} spans, {} marks), last activity at {:.3} s",
            c.runs,
            c.events,
            c.spans,
            c.marks,
            c.last_ts_us / 1e6
        );
    }
    Ok(())
}
