//! Figure 5: impact of varying the number of map and reduce tasks.
//!
//! Configuration (paper Sect. 5.2): MR-AVG on 4 slaves of Cluster A,
//! 1 KiB key/value pairs, comparing 4 maps + 2 reduces (4M-2R) against
//! 8 maps + 4 reduces (8M-4R) over 10 GigE and IPoIB QDR.

use mrbench::{BenchConfig, MicroBenchmark, ShuffleVolume, Sweep};
use mrbench_bench::{figure_header, paper_sizes, run_panel, Harness};
use simcore::units::ByteSize;
use simnet::Interconnect;

fn config(maps: u32, reduces: u32, shuffle: ByteSize, ic: Interconnect) -> BenchConfig {
    let mut c = BenchConfig::cluster_a_default(MicroBenchmark::Avg, ic, shuffle);
    c.num_maps = maps;
    c.num_reduces = reduces;
    // Re-derive pairs for the new task counts.
    c.volume = ShuffleVolume::TotalBytes(shuffle);
    c
}

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), mrbench::Error> {
    let mut harness = Harness::from_env("fig5");
    figure_header(
        "Figure 5",
        "Job execution time with varying number of maps and reduces on Cluster A",
    );

    let sizes = harness.sizes(paper_sizes());
    let networks = [Interconnect::GigE10, Interconnect::IpoibQdr];

    let mut results: Vec<(String, Sweep)> = Vec::new();
    for (maps, reduces) in [(4u32, 2u32), (8, 4)] {
        let label = format!("{maps}M-{reduces}R");
        let title = format!("Fig 5 MR-AVG with {label}");
        let sweep = run_panel(&mut harness, &title, &sizes, &networks, |shuffle, ic| {
            config(maps, reduces, shuffle, ic)
        })?;
        results.push((label, sweep));
    }

    if harness.quick {
        harness.note_quick();
        return harness.finish();
    }
    println!("shape checks against the paper's prose:");
    let at = ByteSize::from_gib(32);
    let s42 = &results[0].1;
    let s84 = &results[1].1;

    // "IPoIB (32 Gbps) outperforms 10GigE, by about 13%."
    let ipoib_gain_42 = s42
        .improvement_pct(at, Interconnect::GigE10, Interconnect::IpoibQdr)
        .unwrap();
    let ipoib_gain_84 = s84
        .improvement_pct(at, Interconnect::GigE10, Interconnect::IpoibQdr)
        .unwrap();
    println!(
        "  [info    ] IPoIB gain over 10GigE at 32 GB: {ipoib_gain_42:.1}% (4M-2R), {ipoib_gain_84:.1}% (8M-4R) — paper ~13%"
    );

    // "increasing the number of map and reduce tasks improved the
    // performance of the MapReduce job by about 32% for IPoIB, while it
    // improved by only 24% for 10GigE, for a shuffle data size of 32GB."
    for (ic, paper) in [(Interconnect::IpoibQdr, 32.0), (Interconnect::GigE10, 24.0)] {
        let t42 = s42.time(at, ic).unwrap();
        let t84 = s84.time(at, ic).unwrap();
        let gain = (t42 - t84) / t42 * 100.0;
        println!(
            "  [{}] doubling tasks helps {} at 32 GB: paper ~{paper:.0}%, measured {gain:.1}% ({t42:.1}s -> {t84:.1}s)",
            if gain > 0.0 { "ok      " } else { "DEVIATES" },
            ic.label()
        );
    }
    // And the qualitative claim: concurrency helps the faster network more.
    let help_ipoib = {
        let t42 = s42.time(at, Interconnect::IpoibQdr).unwrap();
        let t84 = s84.time(at, Interconnect::IpoibQdr).unwrap();
        (t42 - t84) / t42
    };
    let help_10g = {
        let t42 = s42.time(at, Interconnect::GigE10).unwrap();
        let t84 = s84.time(at, Interconnect::GigE10).unwrap();
        (t42 - t84) / t42
    };
    println!(
        "  [{}] concurrency gains are at least as large on IPoIB as on 10GigE: {:.1}% vs {:.1}%",
        if help_ipoib >= help_10g - 0.03 {
            "ok      "
        } else {
            "DEVIATES"
        },
        help_ipoib * 100.0,
        help_10g * 100.0
    );
    harness.finish()
}
