//! Fault-tolerance experiments (extension beyond the paper's figures).
//!
//! The paper measures fault-free runs; this binary measures what the
//! same workloads cost when things break, using the simulator's fault
//! injection:
//!
//! 1. **Failure-probability sweep** — per-attempt task failure
//!    probability × data distribution. Re-executed maps delay the whole
//!    job, and MR-SKEW amplifies the damage: its overloaded reducer
//!    serializes recovery that MR-AVG absorbs in parallel.
//! 2. **Node crash** — a slave dies mid-job; completed map outputs on it
//!    are lost and those maps re-run (Hadoop's map-output-lost path).
//! 3. **Straggler vs speculative execution** — one slowed node with and
//!    without speculative backups.

use mrbench::{run, BenchConfig, MicroBenchmark};
use mrbench_bench::{figure_header, Harness};
use simcore::units::ByteSize;
use simnet::Interconnect;

fn base(bench: MicroBenchmark, shuffle: ByteSize) -> BenchConfig {
    BenchConfig::cluster_a_default(bench, Interconnect::IpoibQdr, shuffle)
}

fn main() -> std::process::ExitCode {
    mrbench_bench::exit_code(real_main())
}

fn real_main() -> Result<(), mrbench::Error> {
    let mut harness = Harness::from_env("faults");
    figure_header(
        "Fault tolerance",
        "Recovery cost under injected failures (extension; 4 GB shuffle, IPoIB QDR)",
    );
    let shuffle = harness.shuffle(ByteSize::from_gib(4));

    // Panel 1: failure probability x data distribution.
    let probs = [0.0, 0.05, 0.1, 0.2];
    let benches = [MicroBenchmark::Avg, MicroBenchmark::Skew];
    println!("per-attempt task failure probability sweep:");
    print!("{:>8}", "p");
    for b in benches {
        print!("{:>14}{:>16}", format!("{b} (s)"), "failed attempts");
    }
    println!();
    // times[bench][prob]
    let mut times = [[f64::NAN; 4]; 2];
    for (pi, &p) in probs.iter().enumerate() {
        print!("{:>8.2}", p);
        for (bi, b) in benches.into_iter().enumerate() {
            let mut c = base(b, shuffle);
            c.faults.map_failure_prob = p;
            c.faults.reduce_failure_prob = p;
            let r = run(&harness.prep(c))?;
            harness.record_report(&format!("fault sweep p={p} {b}"), &r);
            if r.result.succeeded() {
                times[bi][pi] = r.job_time_secs();
                print!(
                    "{:>14.1}{:>16}",
                    r.job_time_secs(),
                    r.result.counters.failed_task_attempts
                );
            } else {
                print!(
                    "{:>14}{:>16}",
                    "FAILED", r.result.counters.failed_task_attempts
                );
            }
        }
        println!();
    }
    println!();

    // Recovery cost = job time added over the fault-free run. A failed
    // attempt costs the runtime of the task it kills, and MR-SKEW
    // concentrates half the job in one hot reducer — so the same failure
    // pattern (identical seeds => identical doomed attempts) costs more
    // seconds under skew once it hits that task. Low rates, by contrast,
    // can vanish entirely into the skew tail's slack.
    let added = |bi: usize, pi: usize| times[bi][pi] - times[bi][0];
    if times.iter().flatten().all(|t| t.is_finite()) {
        for (pi, &p) in probs.iter().enumerate().skip(1) {
            println!(
                "  recovery cost @ p={p}: MR-AVG +{:.1}s ({:+.1}%)  MR-SKEW +{:.1}s ({:+.1}%)",
                added(0, pi),
                added(0, pi) / times[0][0] * 100.0,
                added(1, pi),
                added(1, pi) / times[1][0] * 100.0,
            );
        }
        let ok = added(1, 3) > added(0, 3);
        println!(
            "  [{}] MR-SKEW amplifies recovery cost vs MR-AVG at p=0.2: +{:.1}s > +{:.1}s",
            if ok { "ok      " } else { "DEVIATES" },
            added(1, 3),
            added(0, 3)
        );
    } else {
        println!("  [DEVIATES] some runs failed outright; no degradation comparison");
    }
    println!();

    // Panel 2: node crash late in the job — ~90% into the clean run, when
    // the node's map outputs are committed and mid-shuffle, so the loss
    // forces map re-execution. The fraction (rather than a fixed t)
    // keeps the crash mid-job under --quick too.
    let clean = run(&harness.prep(base(MicroBenchmark::Avg, shuffle)))?;
    mrbench_bench::ensure_within_budget(&clean)?;
    // Quick runs are shuffle-dominated with little tail; crash mid-shuffle
    // there so the lost node still holds work.
    let crash_frac = if harness.quick { 0.6 } else { 0.9 };
    let crash_at = (clean.job_time_secs() * crash_frac).max(1.0);
    println!("node crash (slave 1 dies at t={crash_at:.0}s, MR-AVG):");
    let mut c = base(MicroBenchmark::Avg, shuffle);
    c.faults.node_crashes.push(mapreduce::NodeCrash {
        node: 1,
        at_secs: crash_at,
    });
    let crashed = run(&harness.prep(c))?;
    harness.record_report("node crash — clean baseline", &clean);
    harness.record_report("node crash — slave 1 lost mid-job", &crashed);
    println!("  clean   {:>8.1} s", clean.job_time_secs());
    println!(
        "  crashed {:>8.1} s   maps re-run after node loss: {}   attempts killed: {}",
        crashed.job_time_secs(),
        crashed.result.counters.maps_rerun_after_node_loss,
        crashed.result.counters.killed_attempts
    );
    let ok = crashed.result.succeeded() && crashed.job_time_secs() > clean.job_time_secs();
    println!(
        "  [{}] the job survives the crash and pays for it",
        if ok { "ok      " } else { "DEVIATES" }
    );
    println!();

    // Panel 3: straggler node, speculation off vs on.
    println!("straggler (slave 0 runs 3x slower, MR-AVG):");
    let straggler = |speculative: bool| {
        let mut c = base(MicroBenchmark::Avg, shuffle);
        c.faults.node_slowdowns.push(mapreduce::NodeSlowdown {
            node: 0,
            factor: 3.0,
        });
        c.speculative = speculative;
        run(&harness.prep(c))
    };
    let off = straggler(false)?;
    let on = straggler(true)?;
    harness.record_report("straggler — speculation off", &off);
    harness.record_report("straggler — speculation on", &on);
    println!("  speculation off {:>8.1} s", off.job_time_secs());
    println!(
        "  speculation on  {:>8.1} s   backups launched: {}   backups won: {}",
        on.job_time_secs(),
        on.result.counters.speculative_launches,
        on.result.counters.speculative_wins
    );
    let ok =
        on.job_time_secs() <= off.job_time_secs() && on.result.counters.speculative_launches > 0;
    println!(
        "  [{}] speculative execution launches backups and does not hurt",
        if ok { "ok      " } else { "DEVIATES" }
    );
    harness.finish()
}
