//! # mrbench-bench — the experiment harness
//!
//! One binary per figure of the paper (`fig2` … `fig8`, plus `summary`),
//! each regenerating the corresponding series: same workloads, same
//! parameter sweeps, same table rows. Shape claims from the paper's prose
//! are self-checked and reported as `ok` / `DEVIATES` lines, never
//! panics — the point is to *measure* the reproduction, not to hide it.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run --release -p mrbench-bench --bin fig2
//! ```
//!
//! Every binary accepts the same flags:
//!
//! * `--json [PATH]` — write the run as a `mrbench-artifact-v1` JSON
//!   document (default `BENCH_<name>.json`).
//! * `--csv [PATH]` — write one CSV row per simulated run (default
//!   `BENCH_<name>.csv`).
//! * `--quick` — CI smoke mode: MiB-scale shuffle sizes so the binary
//!   finishes in seconds; paper-scale shape checks are skipped.

use std::path::PathBuf;

use simcore::units::ByteSize;
use simnet::Interconnect;

use mrbench::{ArtifactPaths, Artifacts, BenchConfig, BenchReport, Sweep};

/// Shared command-line harness for the figure binaries: flag parsing,
/// quick-mode size substitution, and artifact collection.
#[derive(Debug)]
pub struct Harness {
    artifacts: Artifacts,
    paths: ArtifactPaths,
    /// Chrome trace-event output requested via `--trace [PATH]`. When
    /// set, every run executes with phase tracing on and [`Harness::finish`]
    /// writes one combined trace file (one process per recorded run).
    pub trace: Option<PathBuf>,
    /// CI smoke mode: tiny shuffle sizes, paper-claim checks skipped.
    pub quick: bool,
}

impl Harness {
    /// Parse the standard flags from the process arguments, exiting with
    /// a usage message on anything unknown.
    pub fn from_env(name: &str) -> Harness {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Harness::parse(name, &args) {
            Ok(h) => h,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: {name} [--quick] [--json [PATH]] [--csv [PATH]] [--trace [PATH]]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Flag parsing behind [`Harness::from_env`], separated for tests.
    pub fn parse(name: &str, args: &[String]) -> Result<Harness, String> {
        let mut paths = ArtifactPaths::default();
        let mut trace = None;
        let mut quick = false;
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--json" | "--csv" | "--trace" => {
                    let kind = &arg[2..];
                    // A following `-`-prefixed token (single- or
                    // double-dash) is the next flag, never a path.
                    let path = match it.peek() {
                        Some(v) if !v.starts_with('-') => PathBuf::from(it.next().expect("peeked")),
                        _ if kind == "trace" => PathBuf::from(format!("BENCH_{name}_trace.json")),
                        _ => ArtifactPaths::default_for(name, kind),
                    };
                    match kind {
                        "json" => paths.json = Some(path),
                        "csv" => paths.csv = Some(path),
                        _ => trace = Some(path),
                    }
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(Harness {
            artifacts: Artifacts::new(name),
            paths,
            trace,
            quick,
        })
    }

    /// Apply the harness's run-wide switches to a config — currently
    /// just phase tracing. Figure binaries pass every config they run
    /// through this (panels built via [`run_panel`] get it automatically).
    pub fn prep(&self, mut config: BenchConfig) -> BenchConfig {
        config.trace = self.trace.is_some();
        config
    }

    /// The figure's shuffle-size axis: `full` normally, [`quick_sizes`]
    /// under `--quick`.
    pub fn sizes(&self, full: Vec<ByteSize>) -> Vec<ByteSize> {
        if self.quick {
            quick_sizes()
        } else {
            full
        }
    }

    /// A single-run shuffle size: `full` normally, 512 MiB under
    /// `--quick`.
    pub fn shuffle(&self, full: ByteSize) -> ByteSize {
        if self.quick {
            ByteSize::from_mib(512)
        } else {
            full
        }
    }

    /// Print the standard notice when `--quick` suppresses the
    /// paper-scale shape checks.
    pub fn note_quick(&self) {
        println!("(--quick: MiB-scale sizes; paper-scale shape checks skipped)");
    }

    /// Record a sweep panel into the artifact.
    pub fn record_sweep(&mut self, title: &str, sweep: &Sweep) {
        self.artifacts.record_sweep(title, sweep.clone());
    }

    /// Record a single-report panel into the artifact.
    pub fn record_report(&mut self, title: &str, report: &BenchReport) {
        self.artifacts.record_report(title, report.clone());
    }

    /// Write the requested artifact files, if any. Call last in `main`.
    pub fn finish(self) {
        if let Err(e) = self
            .artifacts
            .write(self.paths.json.as_deref(), self.paths.csv.as_deref())
        {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        if let Some(path) = &self.trace {
            if let Err(e) = self.artifacts.write_chrome_trace(path) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The MiB-scale axis `--quick` substitutes for the figure grids.
pub fn quick_sizes() -> Vec<ByteSize> {
    [256u64, 512].map(ByteSize::from_mib).to_vec()
}

/// The shuffle sizes the Cluster A figures sweep.
pub fn paper_sizes() -> Vec<ByteSize> {
    [8u64, 16, 24, 32].map(ByteSize::from_gib).to_vec()
}

/// The three Cluster A interconnects (Figs. 2–7).
pub const CLUSTER_A_NETWORKS: [Interconnect; 3] = [
    Interconnect::GigE1,
    Interconnect::GigE10,
    Interconnect::IpoibQdr,
];

/// Run one panel: a (size × interconnect) grid with a config builder.
/// The sweep is printed as the paper-style table and recorded into the
/// harness's artifact under `title`.
pub fn run_panel(
    harness: &mut Harness,
    title: &str,
    sizes: &[ByteSize],
    networks: &[Interconnect],
    make: impl Fn(ByteSize, Interconnect) -> BenchConfig + Sync,
) -> Sweep {
    let traced = harness.trace.is_some();
    let sweep = Sweep::run_grid(sizes, networks, |s, ic| {
        let mut c = make(s, ic);
        c.trace = traced;
        c
    })
    .expect("valid panel config");
    print!("{}", sweep.table(title));
    println!();
    harness.record_sweep(title, &sweep);
    sweep
}

/// Print the improvement rows the paper's prose quotes: percentage gain
/// of each faster network over the slowest, per shuffle size.
pub fn print_improvements(sweep: &Sweep) {
    let slowest = sweep.interconnects[0];
    print!("{:>12}", "improvement");
    for ic in &sweep.interconnects[1..] {
        print!("{:>18}", format!("vs {}", ic.label()));
    }
    println!();
    for &size in &sweep.sizes {
        print!("{:>12}", size.to_string());
        for &ic in &sweep.interconnects[1..] {
            let imp = sweep.improvement_pct(size, slowest, ic).unwrap_or(f64::NAN);
            print!("{:>17.1}%", imp);
        }
        println!();
    }
    println!();
}

/// Outcome of one shape check.
#[derive(Debug)]
pub struct ShapeCheck {
    /// What was checked.
    pub name: String,
    /// The paper's value.
    pub expected: f64,
    /// Our measurement.
    pub measured: f64,
    /// Whether it is within tolerance.
    pub ok: bool,
}

/// Compare a measured value against a paper claim with a relative
/// tolerance, print the verdict, and return it for aggregation.
pub fn check_shape(name: &str, expected: f64, measured: f64, rel_tol: f64) -> ShapeCheck {
    let ok = if expected == 0.0 {
        measured.abs() < rel_tol
    } else {
        ((measured - expected) / expected).abs() <= rel_tol
    };
    println!(
        "  [{}] {name}: paper {:.1}, measured {:.1}",
        if ok { "ok      " } else { "DEVIATES" },
        expected,
        measured
    );
    ShapeCheck {
        name: name.to_owned(),
        expected,
        measured,
        ok,
    }
}

/// Print the standard header for a figure binary.
pub fn figure_header(fig: &str, caption: &str) {
    println!("=====================================================================");
    println!("{fig} — {caption}");
    println!("=====================================================================");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_are_the_figure_axis() {
        let sizes = paper_sizes();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes[0], ByteSize::from_gib(8));
        assert_eq!(sizes[3], ByteSize::from_gib(32));
    }

    #[test]
    fn harness_flags_parse() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let h = Harness::parse("fig2", &s(&[])).unwrap();
        assert!(!h.quick);
        assert!(h.paths.is_empty());

        let h = Harness::parse("fig2", &s(&["--quick", "--json"])).unwrap();
        assert!(h.quick);
        assert_eq!(h.paths.json, Some(PathBuf::from("BENCH_fig2.json")));
        assert_eq!(h.paths.csv, None);

        let h = Harness::parse("fig2", &s(&["--json", "out.json", "--csv"])).unwrap();
        assert_eq!(h.paths.json, Some(PathBuf::from("out.json")));
        assert_eq!(h.paths.csv, Some(PathBuf::from("BENCH_fig2.csv")));

        assert!(Harness::parse("fig2", &s(&["--bogus"])).is_err());
    }

    #[test]
    fn trace_flag_parses_and_preps_configs() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let h = Harness::parse("fig2", &s(&[])).unwrap();
        assert!(h.trace.is_none());

        // Bare flag: conventional default path; a following flag (even
        // single-dash) is never swallowed as the path.
        let h = Harness::parse("fig2", &s(&["--trace", "--quick"])).unwrap();
        assert_eq!(h.trace, Some(PathBuf::from("BENCH_fig2_trace.json")));
        assert!(h.quick);

        let h = Harness::parse("fig2", &s(&["--trace", "t.json", "--json"])).unwrap();
        assert_eq!(h.trace, Some(PathBuf::from("t.json")));
        assert_eq!(h.paths.json, Some(PathBuf::from("BENCH_fig2.json")));

        // prep() turns tracing on exactly when --trace was given.
        let config = mrbench::BenchConfig::cluster_a_default(
            mrbench::MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_mib(64),
        );
        assert!(h.prep(config.clone()).trace);
        let h = Harness::parse("fig2", &s(&[])).unwrap();
        assert!(!h.prep(config).trace);
    }

    #[test]
    fn quick_sizes_are_mib_scale() {
        for s in quick_sizes() {
            assert!(s <= ByteSize::from_mib(512));
        }
    }

    #[test]
    fn shape_check_tolerances() {
        let ok = check_shape("x", 100.0, 110.0, 0.2);
        assert!(ok.ok);
        let bad = check_shape("y", 100.0, 200.0, 0.2);
        assert!(!bad.ok);
        let zero = check_shape("z", 0.0, 0.05, 0.1);
        assert!(zero.ok);
    }
}
