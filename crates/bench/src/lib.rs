//! # mrbench-bench — the experiment harness
//!
//! One binary per figure of the paper (`fig2` … `fig8`, plus `summary`),
//! each regenerating the corresponding series: same workloads, same
//! parameter sweeps, same table rows. Shape claims from the paper's prose
//! are self-checked and reported as `ok` / `DEVIATES` lines, never
//! panics — the point is to *measure* the reproduction, not to hide it.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run --release -p mrbench-bench --bin fig2
//! ```
//!
//! Every binary accepts the same flags:
//!
//! * `--json [PATH]` — write the run as a `mrbench-artifact-v1` JSON
//!   document (default `BENCH_<name>.json`).
//! * `--csv [PATH]` — write one CSV row per simulated run (default
//!   `BENCH_<name>.csv`).
//! * `--quick` — CI smoke mode: MiB-scale shuffle sizes so the binary
//!   finishes in seconds; paper-scale shape checks are skipped.
//! * `--resume [DIR]` — persist every finished sweep cell in a
//!   content-addressed result store (default `BENCH_<name>.store`) and
//!   skip cells already there, so a killed run restarted with the same
//!   flags picks up where it left off.
//! * `--deadline <SECS>` — wall-clock budget for the whole binary; when
//!   it expires the current sweep stops at a cell boundary, the panels
//!   finished so far are flushed as a valid partial artifact, and the
//!   process exits 7 (pair with `--resume` to continue later).
//! * `--max-events <N>` / `--max-sim-secs <S>` — per-run watchdog
//!   budgets forwarded to every simulated job (exit 6 on breach).
//! * `--backend <des|analytic>` — evaluation backend for every run: the
//!   discrete-event simulator (default) or the closed-form analytic cost
//!   model (orders of magnitude faster; validated against the DES within
//!   per-figure error bands — see EXPERIMENTS.md). Results cache under
//!   backend-tagged digests, so `--resume` stores never mix the two.
//!
//! Exit codes follow `mrbench::error`: 0 success, 2 usage, 3 config,
//! 4 I/O, 5 parse, 6 budget exceeded, 7 deadline.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use simcore::units::ByteSize;
use simnet::Interconnect;

use mrbench::{
    ArtifactPaths, Artifacts, BenchConfig, BenchReport, Error, ResultStore, Sweep, SweepOptions,
};

/// Shared command-line harness for the figure binaries: flag parsing,
/// quick-mode size substitution, and artifact collection.
#[derive(Debug)]
pub struct Harness {
    artifacts: Artifacts,
    paths: ArtifactPaths,
    /// Chrome trace-event output requested via `--trace [PATH]`. When
    /// set, every run executes with phase tracing on and [`Harness::finish`]
    /// writes one combined trace file (one process per recorded run).
    pub trace: Option<PathBuf>,
    /// CI smoke mode: tiny shuffle sizes, paper-claim checks skipped.
    pub quick: bool,
    /// Result-store directory from `--resume [DIR]`, if any.
    pub resume: Option<PathBuf>,
    /// Wall-clock budget from `--deadline <SECS>`, if any.
    pub deadline_secs: Option<f64>,
    /// Per-run event-count watchdog from `--max-events <N>`.
    pub max_events: Option<u64>,
    /// Per-run simulated-time watchdog from `--max-sim-secs <S>`.
    pub max_sim_secs: Option<f64>,
    /// Backend override from `--backend <des|analytic>`; `None` leaves
    /// each config's own selection (the DES default) in place.
    pub backend: Option<mrbench::BackendKind>,
    /// The opened store ([`Harness::arm`]); `parse` leaves it closed so
    /// flag parsing stays side-effect free.
    store: Option<ResultStore>,
    /// The armed deadline instant ([`Harness::arm`]).
    deadline_at: Option<Instant>,
}

impl Harness {
    /// Parse the standard flags from the process arguments and arm the
    /// store/deadline, exiting with a usage message on anything unknown.
    pub fn from_env(name: &str) -> Harness {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let parsed = Harness::parse(name, &args).and_then(Harness::arm);
        match parsed {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: {e}");
                if matches!(e, Error::Usage(_)) {
                    eprintln!(
                        "usage: {name} [--quick] [--json [PATH]] [--csv [PATH]] [--trace [PATH]] \
                         [--resume [DIR]] [--deadline SECS] [--max-events N] [--max-sim-secs S] \
                         [--backend des|analytic]"
                    );
                }
                std::process::exit(e.exit_code().into());
            }
        }
    }

    /// Flag parsing behind [`Harness::from_env`], separated for tests.
    /// Pure: the result store is not opened and the deadline clock not
    /// started until [`Harness::arm`].
    pub fn parse(name: &str, args: &[String]) -> Result<Harness, Error> {
        let mut paths = ArtifactPaths::default();
        let mut trace = None;
        let mut quick = false;
        let mut resume = None;
        let mut deadline_secs = None;
        let mut max_events = None;
        let mut max_sim_secs = None;
        let mut backend = None;
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--json" | "--csv" | "--trace" => {
                    let kind = &arg[2..];
                    // A following `-`-prefixed token (single- or
                    // double-dash) is the next flag, never a path.
                    let path = match it.peek() {
                        Some(v) if !v.starts_with('-') => PathBuf::from(it.next().expect("peeked")),
                        _ if kind == "trace" => PathBuf::from(format!("BENCH_{name}_trace.json")),
                        _ => ArtifactPaths::default_for(name, kind),
                    };
                    match kind {
                        "json" => paths.json = Some(path),
                        "csv" => paths.csv = Some(path),
                        _ => trace = Some(path),
                    }
                }
                "--resume" => {
                    resume = Some(match it.peek() {
                        Some(v) if !v.starts_with('-') => PathBuf::from(it.next().expect("peeked")),
                        _ => PathBuf::from(format!("BENCH_{name}.store")),
                    });
                }
                "--deadline" => {
                    let v = it
                        .next()
                        .ok_or_else(|| Error::usage("--deadline needs a value in seconds"))?;
                    let secs: f64 = v
                        .parse()
                        .map_err(|e| Error::usage(format!("bad --deadline value '{v}': {e}")))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(Error::usage(format!(
                            "--deadline must be a positive number of seconds, got '{v}'"
                        )));
                    }
                    deadline_secs = Some(secs);
                }
                "--max-events" => {
                    let v = it
                        .next()
                        .ok_or_else(|| Error::usage("--max-events needs a value"))?;
                    max_events =
                        Some(v.replace('_', "").parse::<u64>().map_err(|e| {
                            Error::usage(format!("bad --max-events value '{v}': {e}"))
                        })?);
                }
                "--max-sim-secs" => {
                    let v = it
                        .next()
                        .ok_or_else(|| Error::usage("--max-sim-secs needs a value"))?;
                    max_sim_secs = Some(v.parse::<f64>().map_err(|e| {
                        Error::usage(format!("bad --max-sim-secs value '{v}': {e}"))
                    })?);
                }
                "--backend" => {
                    let v = it
                        .next()
                        .ok_or_else(|| Error::usage("--backend needs 'des' or 'analytic'"))?;
                    backend = Some(v.parse::<mrbench::BackendKind>().map_err(Error::usage)?);
                }
                other => return Err(Error::usage(format!("unknown argument '{other}'"))),
            }
        }
        Ok(Harness {
            artifacts: Artifacts::new(name),
            paths,
            trace,
            quick,
            resume,
            deadline_secs,
            max_events,
            max_sim_secs,
            backend,
            store: None,
            deadline_at: None,
        })
    }

    /// Open the result store and start the deadline clock. Separated
    /// from [`Harness::parse`] so parsing stays pure for tests.
    pub fn arm(mut self) -> Result<Harness, Error> {
        if let Some(dir) = &self.resume {
            self.store = Some(ResultStore::open(dir)?);
        }
        if let Some(secs) = self.deadline_secs {
            self.deadline_at = Some(wall_now() + std::time::Duration::from_secs_f64(secs));
        }
        Ok(self)
    }

    /// Apply the harness's run-wide switches to a config: phase tracing
    /// and the watchdog budgets. Figure binaries pass every config they
    /// run through this (panels built via [`run_panel`] get it
    /// automatically).
    pub fn prep(&self, mut config: BenchConfig) -> BenchConfig {
        config.trace = self.trace.is_some();
        config.max_events = self.max_events;
        config.max_sim_secs = self.max_sim_secs;
        if let Some(backend) = self.backend {
            config.backend = backend;
        }
        config
    }

    /// `true` once the `--deadline` budget has expired.
    pub fn deadline_expired(&self) -> bool {
        self.deadline_at.is_some_and(|d| wall_now() >= d)
    }

    /// The opened result store, when `--resume` is active.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Write whatever panels have been recorded so far — called when a
    /// deadline interrupts a sweep, so the artifact on disk is valid
    /// (schema-complete, just fewer panels) rather than absent. Flush
    /// failures are reported but never mask the deadline error.
    pub fn flush_partial(&self) {
        eprintln!("deadline expired: flushing partial artifact before exit");
        if let Err(e) = self
            .artifacts
            .write(self.paths.json.as_deref(), self.paths.csv.as_deref())
        {
            eprintln!("error: {e}");
        }
    }

    /// The figure's shuffle-size axis: `full` normally, [`quick_sizes`]
    /// under `--quick`.
    pub fn sizes(&self, full: Vec<ByteSize>) -> Vec<ByteSize> {
        if self.quick {
            quick_sizes()
        } else {
            full
        }
    }

    /// A single-run shuffle size: `full` normally, 512 MiB under
    /// `--quick`.
    pub fn shuffle(&self, full: ByteSize) -> ByteSize {
        if self.quick {
            ByteSize::from_mib(512)
        } else {
            full
        }
    }

    /// Print the standard notice when `--quick` suppresses the
    /// paper-scale shape checks.
    pub fn note_quick(&self) {
        println!("(--quick: MiB-scale sizes; paper-scale shape checks skipped)");
    }

    /// Record a sweep panel into the artifact.
    pub fn record_sweep(&mut self, title: &str, sweep: &Sweep) {
        self.artifacts.record_sweep(title, sweep.clone());
    }

    /// Record a single-report panel into the artifact.
    pub fn record_report(&mut self, title: &str, report: &BenchReport) {
        self.artifacts.record_report(title, report.clone());
    }

    /// Write the requested artifact files, if any. Call last in `main`.
    pub fn finish(self) -> Result<(), Error> {
        self.artifacts
            .write(self.paths.json.as_deref(), self.paths.csv.as_deref())?;
        if let Some(path) = &self.trace {
            self.artifacts.write_chrome_trace(path)?;
        }
        if let Some(store) = &self.store {
            let (hits, misses, rejected) = store.stats();
            eprintln!(
                "resume: {hits} cell(s) served from {}, {misses} run fresh, \
                 {rejected} rejected fragment(s)",
                store.dir().display()
            );
        }
        Ok(())
    }
}

/// The one sanctioned wall-clock read in the workspace: `--deadline`
/// bounds *real* runtime, which simulated time cannot measure. The
/// simulator crates stay banned from it (simlint + clippy
/// disallowed-methods).
#[allow(clippy::disallowed_methods)]
fn wall_now() -> Instant {
    Instant::now()
}

/// Map a figure binary's result to its process exit code, printing the
/// one-line error first. Keeps every `main` to
/// `ExitCode::from(real_main())`-shaped plumbing.
pub fn exit_code(result: Result<(), Error>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// Surface a watchdog-truncated run as [`Error::Budget`] (exit 6): use
/// after a single [`mrbench::run`] whose report is about to be trusted.
pub fn ensure_within_budget(report: &BenchReport) -> Result<(), Error> {
    match &report.result.budget {
        Some(diag) => Err(Error::Budget(diag.summary())),
        None => Ok(()),
    }
}

/// The MiB-scale axis `--quick` substitutes for the figure grids.
pub fn quick_sizes() -> Vec<ByteSize> {
    [256u64, 512].map(ByteSize::from_mib).to_vec()
}

/// The shuffle sizes the Cluster A figures sweep.
pub fn paper_sizes() -> Vec<ByteSize> {
    [8u64, 16, 24, 32].map(ByteSize::from_gib).to_vec()
}

/// The three Cluster A interconnects (Figs. 2–7).
pub const CLUSTER_A_NETWORKS: [Interconnect; 3] = [
    Interconnect::GigE1,
    Interconnect::GigE10,
    Interconnect::IpoibQdr,
];

/// Run one panel: a (size × interconnect) grid with a config builder.
/// The sweep is printed as the paper-style table and recorded into the
/// harness's artifact under `title`.
///
/// The harness's `--resume` store and `--deadline` flow through to the
/// grid runner: finished cells are checkpointed the moment they
/// complete, and an expired deadline stops the sweep at a cell
/// boundary, flushes the panels recorded so far as a valid partial
/// artifact, and surfaces [`Error::Deadline`] (exit 7).
pub fn run_panel(
    harness: &mut Harness,
    title: &str,
    sizes: &[ByteSize],
    networks: &[Interconnect],
    make: impl Fn(ByteSize, Interconnect) -> BenchConfig + Sync,
) -> Result<Sweep, Error> {
    let sweep = run_grid(harness, sizes, networks, make)?;
    print!("{}", sweep.table(title));
    println!();
    harness.record_sweep(title, &sweep);
    Ok(sweep)
}

/// [`run_panel`] without the table printing or artifact recording, for
/// binaries that render their own output (e.g. `summary`). Configs are
/// still passed through [`Harness::prep`], the `--resume` store is
/// consulted, and an expired `--deadline` flushes the panels recorded
/// so far before surfacing [`Error::Deadline`].
pub fn run_grid(
    harness: &Harness,
    sizes: &[ByteSize],
    networks: &[Interconnect],
    make: impl Fn(ByteSize, Interconnect) -> BenchConfig + Sync,
) -> Result<Sweep, Error> {
    let cancel = || harness.deadline_expired();
    let opts = SweepOptions {
        threads: 0,
        store: harness.store(),
        cancel: harness
            .deadline_secs
            .map(|_| &cancel as &(dyn Fn() -> bool + Sync)),
    };
    match Sweep::run_grid_with(sizes, networks, |s, ic| harness.prep(make(s, ic)), &opts) {
        Ok(sweep) => Ok(sweep),
        Err(e @ Error::Deadline { .. }) => {
            harness.flush_partial();
            Err(e)
        }
        Err(e) => Err(e),
    }
}

/// Print the improvement rows the paper's prose quotes: percentage gain
/// of each faster network over the slowest, per shuffle size.
pub fn print_improvements(sweep: &Sweep) {
    let slowest = sweep.interconnects[0];
    print!("{:>12}", "improvement");
    for ic in &sweep.interconnects[1..] {
        print!("{:>18}", format!("vs {}", ic.label()));
    }
    println!();
    for &size in &sweep.sizes {
        print!("{:>12}", size.to_string());
        for &ic in &sweep.interconnects[1..] {
            let imp = sweep.improvement_pct(size, slowest, ic).unwrap_or(f64::NAN);
            print!("{:>17.1}%", imp);
        }
        println!();
    }
    println!();
}

/// Outcome of one shape check.
#[derive(Debug)]
pub struct ShapeCheck {
    /// What was checked.
    pub name: String,
    /// The paper's value.
    pub expected: f64,
    /// Our measurement.
    pub measured: f64,
    /// Whether it is within tolerance.
    pub ok: bool,
}

/// Compare a measured value against a paper claim with a relative
/// tolerance, print the verdict, and return it for aggregation.
pub fn check_shape(name: &str, expected: f64, measured: f64, rel_tol: f64) -> ShapeCheck {
    let ok = if expected == 0.0 {
        measured.abs() < rel_tol
    } else {
        ((measured - expected) / expected).abs() <= rel_tol
    };
    println!(
        "  [{}] {name}: paper {:.1}, measured {:.1}",
        if ok { "ok      " } else { "DEVIATES" },
        expected,
        measured
    );
    ShapeCheck {
        name: name.to_owned(),
        expected,
        measured,
        ok,
    }
}

/// Print the standard header for a figure binary.
pub fn figure_header(fig: &str, caption: &str) {
    println!("=====================================================================");
    println!("{fig} — {caption}");
    println!("=====================================================================");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_are_the_figure_axis() {
        let sizes = paper_sizes();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes[0], ByteSize::from_gib(8));
        assert_eq!(sizes[3], ByteSize::from_gib(32));
    }

    #[test]
    fn harness_flags_parse() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let h = Harness::parse("fig2", &s(&[])).unwrap();
        assert!(!h.quick);
        assert!(h.paths.is_empty());

        let h = Harness::parse("fig2", &s(&["--quick", "--json"])).unwrap();
        assert!(h.quick);
        assert_eq!(h.paths.json, Some(PathBuf::from("BENCH_fig2.json")));
        assert_eq!(h.paths.csv, None);

        let h = Harness::parse("fig2", &s(&["--json", "out.json", "--csv"])).unwrap();
        assert_eq!(h.paths.json, Some(PathBuf::from("out.json")));
        assert_eq!(h.paths.csv, Some(PathBuf::from("BENCH_fig2.csv")));

        assert!(Harness::parse("fig2", &s(&["--bogus"])).is_err());
    }

    #[test]
    fn trace_flag_parses_and_preps_configs() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let h = Harness::parse("fig2", &s(&[])).unwrap();
        assert!(h.trace.is_none());

        // Bare flag: conventional default path; a following flag (even
        // single-dash) is never swallowed as the path.
        let h = Harness::parse("fig2", &s(&["--trace", "--quick"])).unwrap();
        assert_eq!(h.trace, Some(PathBuf::from("BENCH_fig2_trace.json")));
        assert!(h.quick);

        let h = Harness::parse("fig2", &s(&["--trace", "t.json", "--json"])).unwrap();
        assert_eq!(h.trace, Some(PathBuf::from("t.json")));
        assert_eq!(h.paths.json, Some(PathBuf::from("BENCH_fig2.json")));

        // prep() turns tracing on exactly when --trace was given.
        let config = mrbench::BenchConfig::cluster_a_default(
            mrbench::MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_mib(64),
        );
        assert!(h.prep(config.clone()).trace);
        let h = Harness::parse("fig2", &s(&[])).unwrap();
        assert!(!h.prep(config).trace);
    }

    #[test]
    fn robustness_flags_parse() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // Bare --resume falls back to the conventional store directory
        // without swallowing a following flag.
        let h = Harness::parse("fig2", &s(&["--resume", "--quick"])).unwrap();
        assert_eq!(h.resume, Some(PathBuf::from("BENCH_fig2.store")));
        assert!(h.quick);

        let h = Harness::parse(
            "fig2",
            &s(&[
                "--resume",
                "d",
                "--deadline",
                "30",
                "--max-events",
                "1_000",
                "--max-sim-secs",
                "2.5",
            ]),
        )
        .unwrap();
        assert_eq!(h.resume, Some(PathBuf::from("d")));
        assert_eq!(h.deadline_secs, Some(30.0));
        assert_eq!(h.max_events, Some(1_000));
        assert_eq!(h.max_sim_secs, Some(2.5));
        // Parsing is pure: nothing armed yet.
        assert!(h.store().is_none());
        assert!(!h.deadline_expired());
        // prep() forwards the watchdog budgets onto every config.
        let config = mrbench::BenchConfig::cluster_a_default(
            mrbench::MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_mib(64),
        );
        let p = h.prep(config);
        assert_eq!(p.max_events, Some(1_000));
        assert_eq!(p.max_sim_secs, Some(2.5));

        for bad in [
            &["--deadline"][..],
            &["--deadline", "soon"],
            &["--deadline", "-1"],
            &["--deadline", "0"],
            &["--max-events", "many"],
            &["--max-sim-secs", "soon"],
        ] {
            let err = Harness::parse("fig2", &s(bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
        }
    }

    #[test]
    fn backend_flag_parses_and_preps_configs() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let config = || {
            mrbench::BenchConfig::cluster_a_default(
                mrbench::MicroBenchmark::Avg,
                Interconnect::GigE1,
                ByteSize::from_mib(64),
            )
        };

        // Default: no override, configs keep their own (DES) selection.
        let h = Harness::parse("fig2", &s(&[])).unwrap();
        assert!(h.backend.is_none());
        assert_eq!(h.prep(config()).backend, mrbench::BackendKind::Des);

        let h = Harness::parse("fig2", &s(&["--backend", "analytic", "--quick"])).unwrap();
        assert_eq!(h.backend, Some(mrbench::BackendKind::Analytic));
        assert!(h.quick);
        assert_eq!(h.prep(config()).backend, mrbench::BackendKind::Analytic);

        let h = Harness::parse("fig2", &s(&["--backend", "des"])).unwrap();
        assert_eq!(h.prep(config()).backend, mrbench::BackendKind::Des);

        for bad in [&["--backend"][..], &["--backend", "quantum"]] {
            let err = Harness::parse("fig2", &s(bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
        }
    }

    #[test]
    fn armed_deadline_in_the_past_reads_expired() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // A microscopic deadline expires by the time we poll it; a
        // generous one does not.
        let h = Harness::parse("fig2", &s(&["--deadline", "0.000001"]))
            .unwrap()
            .arm()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(h.deadline_expired());
        let h = Harness::parse("fig2", &s(&["--deadline", "3600"]))
            .unwrap()
            .arm()
            .unwrap();
        assert!(!h.deadline_expired());
    }

    #[test]
    fn quick_sizes_are_mib_scale() {
        for s in quick_sizes() {
            assert!(s <= ByteSize::from_mib(512));
        }
    }

    #[test]
    fn shape_check_tolerances() {
        let ok = check_shape("x", 100.0, 110.0, 0.2);
        assert!(ok.ok);
        let bad = check_shape("y", 100.0, 200.0, 0.2);
        assert!(!bad.ok);
        let zero = check_shape("z", 0.0, 0.05, 0.1);
        assert!(zero.ok);
    }
}
