//! # mrbench-bench — the experiment harness
//!
//! One binary per figure of the paper (`fig2` … `fig8`, plus `summary`),
//! each regenerating the corresponding series: same workloads, same
//! parameter sweeps, same table rows. Shape claims from the paper's prose
//! are self-checked and reported as `ok` / `DEVIATES` lines, never
//! panics — the point is to *measure* the reproduction, not to hide it.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run --release -p mrbench-bench --bin fig2
//! ```

#![warn(missing_docs)]

use simcore::units::ByteSize;
use simnet::Interconnect;

use mrbench::{BenchConfig, Sweep};

/// The shuffle sizes the Cluster A figures sweep.
pub fn paper_sizes() -> Vec<ByteSize> {
    [8u64, 16, 24, 32].map(ByteSize::from_gib).to_vec()
}

/// The three Cluster A interconnects (Figs. 2–7).
pub const CLUSTER_A_NETWORKS: [Interconnect; 3] = [
    Interconnect::GigE1,
    Interconnect::GigE10,
    Interconnect::IpoibQdr,
];

/// Run one panel: a (size × interconnect) grid with a config builder.
pub fn run_panel(
    title: &str,
    sizes: &[ByteSize],
    networks: &[Interconnect],
    make: impl Fn(ByteSize, Interconnect) -> BenchConfig,
) -> Sweep {
    let sweep = Sweep::run_grid(sizes, networks, make).expect("valid panel config");
    print!("{}", sweep.table(title));
    println!();
    sweep
}

/// Print the improvement rows the paper's prose quotes: percentage gain
/// of each faster network over the slowest, per shuffle size.
pub fn print_improvements(sweep: &Sweep) {
    let slowest = sweep.interconnects[0];
    print!("{:>12}", "improvement");
    for ic in &sweep.interconnects[1..] {
        print!("{:>18}", format!("vs {}", ic.label()));
    }
    println!();
    for &size in &sweep.sizes {
        print!("{:>12}", size.to_string());
        for &ic in &sweep.interconnects[1..] {
            let imp = sweep.improvement_pct(size, slowest, ic).unwrap_or(f64::NAN);
            print!("{:>17.1}%", imp);
        }
        println!();
    }
    println!();
}

/// Outcome of one shape check.
pub struct ShapeCheck {
    /// What was checked.
    pub name: String,
    /// The paper's value.
    pub expected: f64,
    /// Our measurement.
    pub measured: f64,
    /// Whether it is within tolerance.
    pub ok: bool,
}

/// Compare a measured value against a paper claim with a relative
/// tolerance, print the verdict, and return it for aggregation.
pub fn check_shape(name: &str, expected: f64, measured: f64, rel_tol: f64) -> ShapeCheck {
    let ok = if expected == 0.0 {
        measured.abs() < rel_tol
    } else {
        ((measured - expected) / expected).abs() <= rel_tol
    };
    println!(
        "  [{}] {name}: paper {:.1}, measured {:.1}",
        if ok { "ok      " } else { "DEVIATES" },
        expected,
        measured
    );
    ShapeCheck {
        name: name.to_owned(),
        expected,
        measured,
        ok,
    }
}

/// Print the standard header for a figure binary.
pub fn figure_header(fig: &str, caption: &str) {
    println!("=====================================================================");
    println!("{fig} — {caption}");
    println!("=====================================================================");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_are_the_figure_axis() {
        let sizes = paper_sizes();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes[0], ByteSize::from_gib(8));
        assert_eq!(sizes[3], ByteSize::from_gib(32));
    }

    #[test]
    fn shape_check_tolerances() {
        let ok = check_shape("x", 100.0, 110.0, 0.2);
        assert!(ok.ok);
        let bad = check_shape("y", 100.0, 200.0, 0.2);
        assert!(!bad.ok);
        let zero = check_shape("z", 0.0, 0.05, 0.1);
        assert!(zero.ok);
    }
}
