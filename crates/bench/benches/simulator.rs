//! Micro-benchmarks of the simulator's hot paths, on a plain
//! `std::time::Instant` harness (the workspace carries no external
//! dependencies, so criterion is out of reach).
//!
//! These benches guard the wall-clock cost of the pieces every figure
//! reproduction exercises thousands of times: the max-min fair-share
//! solver, the deterministic RNGs, the partitioners' bulk assignment,
//! the IFile codec, and a full end-to-end job. Run with
//! `cargo bench -p mrbench-bench`.

// The one place wall-clock time is legitimate: this harness measures
// real execution, not simulated time.
#![allow(clippy::disallowed_methods)]

use std::hint::black_box;
use std::time::Instant;

use mapreduce::ifile::{IFileReader, IFileWriter};
use mapreduce::io::vint;
use mapreduce::partition::Partitioner;
use mrbench::partitioners::{AvgPartitioner, RandPartitioner, SkewPartitioner};
use mrbench::{run, BenchConfig, MicroBenchmark};
use simcore::event::EventQueue;
use simcore::rng::{JavaRandom, Xoshiro256pp};
use simcore::time::SimTime;
use simcore::units::ByteSize;
use simnet::fairshare::{max_min_rates, FairshareSolver, FlowSpec};
use simnet::{Interconnect, Network, NodeId, Topology};

/// Time `iters` runs of `f` after a small warm-up, printing ns/iter.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters.div_ceil(10).min(100) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    let per_iter = total.as_nanos() / u128::from(iters.max(1));
    println!("{name:<40} {per_iter:>12} ns/iter   ({iters} iters)");
}

fn bench_fairshare() {
    // A realistic shuffle incast: 16 nodes, 8 reducers x 5 copies.
    let mut flows = Vec::new();
    for r in 0..8usize {
        for m in 0..5usize {
            let src = (r * 3 + m) % 16;
            let dst = (r * 2 + 1) % 16;
            if src != dst {
                flows.push(FlowSpec { src, dst });
            }
        }
    }
    let caps = vec![950e6; 16];
    bench("fairshare/40_flows_16_nodes", 10_000, || {
        black_box(max_min_rates(black_box(&flows), &caps, &caps, None));
    });
}

fn bench_event_queue() {
    // Schedule a scattered burst, cancel half, drain: the slab, the
    // lazy-deletion pop path, and tombstone compaction in one loop.
    bench("event_queue/2k_schedule_cancel_drain", 2_000, || {
        let mut q = EventQueue::with_capacity(2_048);
        let mut ids = Vec::with_capacity(2_000);
        for i in 0..2_000u64 {
            ids.push(q.schedule(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i));
        }
        for id in ids.iter().step_by(2) {
            q.cancel(*id);
        }
        while let Some(ev) = q.pop() {
            black_box(ev);
        }
    });
}

/// Fair-share scaling ladder: batch solve and incremental churn at each
/// flow-count the figure workloads span.
fn bench_fairshare_scaling() {
    for &flows in &[10usize, 100, 1_000, 10_000] {
        let nodes = (flows / 4).clamp(4, 128);
        let specs: Vec<FlowSpec> = (0..flows)
            .map(|i| {
                let src = i % nodes;
                let dst = (i * 7 + 1) % nodes;
                FlowSpec {
                    src,
                    dst: if dst == src { (dst + 1) % nodes } else { dst },
                }
            })
            .collect();
        let caps = vec![950e6; nodes];
        let iters = (200_000 / flows.max(100)) as u32;
        bench(&format!("fairshare/batch_{flows}_flows"), iters, || {
            black_box(max_min_rates(black_box(&specs), &caps, &caps, None));
        });

        let mut solver = FairshareSolver::new(&caps, &caps, None);
        let keys: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| solver.add_flow(*s, i as u64))
            .collect();
        solver.solve();
        let mut i = 0usize;
        bench(
            &format!("fairshare/incremental_{flows}_flows"),
            iters,
            || {
                // Remove + re-add one flow, re-solving after each step. The
                // LIFO free list puts the re-added flow back on the same
                // slot, so `keys` stays valid across iterations.
                let k = keys[(i * 13) % keys.len()];
                i += 1;
                let spec = solver.spec(k);
                solver.remove_flow(k);
                solver.solve();
                let k2 = solver.add_flow(spec, u64::MAX);
                solver.solve();
                black_box(solver.rate(k2));
            },
        );
    }
}

fn bench_all_to_all() {
    // 32 nodes, 992 concurrent staggered flows run to idle: the shuffle
    // phase's dominant network pattern (perfbench runs the 100-node
    // version; keep `cargo bench` turnaround short).
    let nodes = 32usize;
    bench("network/all_to_all_992_flows", 20, || {
        let mut net = Network::new(Topology::single_switch(nodes, Interconnect::IpoibQdr));
        let mut tag = 0u64;
        for s in 0..nodes {
            for d in 0..nodes {
                if s != d {
                    let kib = 1024 + ((s * 131 + d * 17) % 97) as u64 * 64;
                    net.start_flow(
                        SimTime::ZERO,
                        NodeId(s),
                        NodeId(d),
                        ByteSize::from_bytes(kib * 1024),
                        tag,
                    );
                    tag += 1;
                }
            }
        }
        let mut completions = 0usize;
        while let Some(t) = net.next_event_time() {
            completions += net.advance_to(t).len();
        }
        assert_eq!(completions, nodes * (nodes - 1));
    });
}

fn bench_rng() {
    let mut jr = JavaRandom::new(42);
    bench("rng/java_random_next_int_bound", 1_000_000, || {
        black_box(jr.next_int_bound(8));
    });
    let mut xo = Xoshiro256pp::new(42);
    bench("rng/xoshiro_next_u64", 1_000_000, || {
        black_box(xo.next_u64());
    });
}

fn bench_partitioners() {
    let mut no_keys = |_: u64, _: &mut Vec<u8>| {};
    bench("partition/avg_closed_form_1m", 10_000, || {
        let mut p = AvgPartitioner;
        black_box(p.assign_counts(1_000_000, 8, &mut no_keys));
    });
    bench("partition/rand_per_record_100k", 100, || {
        let mut p = RandPartitioner::new(7);
        black_box(p.assign_counts(100_000, 8, &mut no_keys));
    });
    bench("partition/skew_per_record_100k", 100, || {
        let mut p = SkewPartitioner::new(7);
        black_box(p.assign_counts(100_000, 8, &mut no_keys));
    });
}

fn bench_ifile() {
    let key = vec![0xABu8; 100];
    let value = vec![0xCDu8; 1000];
    bench("ifile/write_1k_records", 1_000, || {
        let mut w = IFileWriter::new();
        for _ in 0..1000 {
            w.append(black_box(&key), black_box(&value));
        }
        black_box(w.close());
    });
    let stream = {
        let mut w = IFileWriter::new();
        for _ in 0..1000 {
            w.append(&key, &value);
        }
        w.close()
    };
    bench("ifile/read_1k_records", 1_000, || {
        let mut r = IFileReader::new(black_box(&stream)).unwrap();
        let mut n = 0u32;
        while r.next().unwrap().is_some() {
            n += 1;
        }
        black_box(n);
    });
    bench("ifile/vint_round_trip", 1_000_000, || {
        let mut buf = Vec::with_capacity(16);
        vint::write_vlong(&mut buf, black_box(123_456_789));
        let mut pos = 0;
        black_box(vint::read_vlong(&buf, &mut pos).unwrap());
    });
}

fn bench_end_to_end() {
    let mut config = BenchConfig::cluster_a_default(
        MicroBenchmark::Avg,
        Interconnect::IpoibQdr,
        ByteSize::from_mib(512),
    );
    config.slaves = 2;
    config.num_maps = 4;
    config.num_reduces = 4;
    bench("engine/512mib_job_4m_4r", 20, || {
        black_box(run(&config).unwrap().job_time_secs());
    });
    // The paper's full anchor cell, as the heavyweight reference point.
    let anchor = BenchConfig::cluster_a_default(
        MicroBenchmark::Avg,
        Interconnect::IpoibQdr,
        ByteSize::from_gib(16),
    );
    bench("engine/fig2_anchor_cell_16gb", 5, || {
        black_box(run(&anchor).unwrap().job_time_secs());
    });
}

fn main() {
    bench_event_queue();
    bench_fairshare();
    bench_fairshare_scaling();
    bench_all_to_all();
    bench_rng();
    bench_partitioners();
    bench_ifile();
    bench_end_to_end();
}
