//! Criterion micro-benchmarks of the simulator's hot paths.
//!
//! These benches guard the wall-clock cost of the pieces every figure
//! reproduction exercises thousands of times: the max-min fair-share
//! solver, the deterministic RNGs, the partitioners' bulk assignment,
//! the IFile codec, and a full end-to-end job.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mapreduce::ifile::{IFileReader, IFileWriter};
use mapreduce::io::vint;
use mapreduce::partition::Partitioner;
use mrbench::partitioners::{AvgPartitioner, RandPartitioner, SkewPartitioner};
use mrbench::{run, BenchConfig, MicroBenchmark};
use simcore::rng::{JavaRandom, Xoshiro256pp};
use simcore::units::ByteSize;
use simnet::fairshare::{max_min_rates, FlowSpec};
use simnet::Interconnect;

fn bench_fairshare(c: &mut Criterion) {
    // A realistic shuffle incast: 16 nodes, 8 reducers x 5 copies.
    let mut flows = Vec::new();
    for r in 0..8usize {
        for m in 0..5usize {
            let src = (r * 3 + m) % 16;
            let dst = (r * 2 + 1) % 16;
            if src != dst {
                flows.push(FlowSpec { src, dst });
            }
        }
    }
    let caps = vec![950e6; 16];
    c.bench_function("fairshare/40_flows_16_nodes", |b| {
        b.iter(|| max_min_rates(black_box(&flows), &caps, &caps, None))
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/java_random_next_int_bound", |b| {
        let mut r = JavaRandom::new(42);
        b.iter(|| black_box(r.next_int_bound(8)))
    });
    c.bench_function("rng/xoshiro_next_u64", |b| {
        let mut r = Xoshiro256pp::new(42);
        b.iter(|| black_box(r.next_u64()))
    });
}

fn bench_partitioners(c: &mut Criterion) {
    let mut no_keys = |_: u64, _: &mut Vec<u8>| {};
    c.bench_function("partition/avg_closed_form_1m", |b| {
        b.iter(|| {
            let mut p = AvgPartitioner;
            black_box(p.assign_counts(1_000_000, 8, &mut no_keys))
        })
    });
    c.bench_function("partition/rand_per_record_100k", |b| {
        b.iter(|| {
            let mut p = RandPartitioner::new(7);
            black_box(p.assign_counts(100_000, 8, &mut no_keys))
        })
    });
    c.bench_function("partition/skew_per_record_100k", |b| {
        b.iter(|| {
            let mut p = SkewPartitioner::new(7);
            black_box(p.assign_counts(100_000, 8, &mut no_keys))
        })
    });
}

fn bench_ifile(c: &mut Criterion) {
    let key = vec![0xABu8; 100];
    let value = vec![0xCDu8; 1000];
    c.bench_function("ifile/write_1k_records", |b| {
        b.iter(|| {
            let mut w = IFileWriter::new();
            for _ in 0..1000 {
                w.append(black_box(&key), black_box(&value));
            }
            black_box(w.close())
        })
    });
    let stream = {
        let mut w = IFileWriter::new();
        for _ in 0..1000 {
            w.append(&key, &value);
        }
        w.close()
    };
    c.bench_function("ifile/read_1k_records", |b| {
        b.iter(|| {
            let mut r = IFileReader::new(black_box(&stream)).unwrap();
            let mut n = 0u32;
            while r.next().unwrap().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    c.bench_function("ifile/vint_round_trip", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(16);
            vint::write_vlong(&mut buf, black_box(123_456_789));
            let mut pos = 0;
            black_box(vint::read_vlong(&buf, &mut pos).unwrap())
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut config = BenchConfig::cluster_a_default(
        MicroBenchmark::Avg,
        Interconnect::IpoibQdr,
        ByteSize::from_mib(512),
    );
    config.slaves = 2;
    config.num_maps = 4;
    config.num_reduces = 4;
    c.bench_function("engine/512mib_job_4m_4r", |b| {
        b.iter_batched(
            || config.clone(),
            |cfg| black_box(run(&cfg).unwrap().job_time_secs()),
            BatchSize::SmallInput,
        )
    });
    // The paper's full anchor cell, as the heavyweight reference point.
    let anchor = BenchConfig::cluster_a_default(
        MicroBenchmark::Avg,
        Interconnect::IpoibQdr,
        ByteSize::from_gib(16),
    );
    c.bench_function("engine/fig2_anchor_cell_16gb", |b| {
        b.iter_batched(
            || anchor.clone(),
            |cfg| black_box(run(&cfg).unwrap().job_time_secs()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_fairshare,
    bench_rng,
    bench_partitioners,
    bench_ifile,
    bench_end_to_end
);
criterion_main!(benches);
