//! Property-style tests for the network simulator, run over seeded case
//! grids (the workspace carries no external test dependencies).

use simcore::rng::SplitMix64;
use simcore::time::SimTime;
use simcore::units::ByteSize;
use simnet::fairshare::{max_min_rates, FlowSpec};
use simnet::{Interconnect, Network, NodeId, Topology};

/// Draw between 1 and 23 random (src, dst) flows over `n_nodes`, src != dst.
fn gen_flows(rng: &mut SplitMix64, n_nodes: usize) -> Vec<FlowSpec> {
    let n = 1 + rng.next_below(23) as usize;
    (0..n)
        .filter_map(|_| {
            let s = rng.next_below(n_nodes as u64) as usize;
            let d = rng.next_below(n_nodes as u64) as usize;
            (s != d).then_some(FlowSpec { src: s, dst: d })
        })
        .collect()
}

/// Fair-share rates never violate any resource capacity.
#[test]
fn fairshare_feasible() {
    let mut rng = SplitMix64::new(0xFA17);
    for _ in 0..128 {
        let flows = gen_flows(&mut rng, 6);
        let caps: Vec<f64> = (0..6).map(|_| 1.0 + rng.next_f64() * 1999.0).collect();
        let rates = max_min_rates(&flows, &caps, &caps, None);
        let mut eg = [0.0; 6];
        let mut ing = [0.0; 6];
        for (f, r) in flows.iter().zip(&rates) {
            assert!(*r >= 0.0);
            eg[f.src] += r;
            ing[f.dst] += r;
        }
        for i in 0..6 {
            assert!(eg[i] <= caps[i] * (1.0 + 1e-9) + 1e-9);
            assert!(ing[i] <= caps[i] * (1.0 + 1e-9) + 1e-9);
        }
    }
}

/// Every flow is bottlenecked at some saturated resource
/// (work conservation / Pareto efficiency of max-min).
#[test]
fn fairshare_work_conserving() {
    let mut rng = SplitMix64::new(0xC025);
    for _ in 0..128 {
        let flows = gen_flows(&mut rng, 5);
        let caps = vec![100.0; 5];
        let rates = max_min_rates(&flows, &caps, &caps, None);
        let mut eg = [0.0; 5];
        let mut ing = [0.0; 5];
        for (f, r) in flows.iter().zip(&rates) {
            eg[f.src] += r;
            ing[f.dst] += r;
        }
        for (f, r) in flows.iter().zip(&rates) {
            let saturated = eg[f.src] >= 100.0 - 1e-6 || ing[f.dst] >= 100.0 - 1e-6;
            assert!(saturated, "flow {f:?} rate {r} unbottlenecked");
        }
    }
}

/// Fabric cap bounds the aggregate allocation.
#[test]
fn fairshare_fabric_cap() {
    let mut rng = SplitMix64::new(0xFAB);
    for _ in 0..128 {
        let flows = gen_flows(&mut rng, 4);
        let cap = 1.0 + rng.next_f64() * 499.0;
        let caps = vec![1000.0; 4];
        let rates = max_min_rates(&flows, &caps, &caps, Some(cap));
        let total: f64 = rates.iter().sum();
        assert!(
            total <= cap * (1.0 + 1e-9) + 1e-9,
            "total {total} cap {cap}"
        );
    }
}

/// The network delivers every byte it accepts, for any flow pattern
/// (including loopback src == dst flows).
#[test]
fn network_delivers_everything() {
    let mut rng = SplitMix64::new(0xDE11);
    for _ in 0..64 {
        let n = 1 + rng.next_below(15) as usize;
        let mut net = Network::new(Topology::single_switch(4, Interconnect::GigE10));
        let mut expected = 0u64;
        for i in 0..n {
            let s = rng.next_below(4) as usize;
            let d = rng.next_below(4) as usize;
            let bytes = ByteSize::from_mib(1 + rng.next_below(63));
            expected += bytes.as_bytes();
            net.start_flow(
                SimTime::from_nanos(i as u64),
                NodeId(s),
                NodeId(d),
                bytes,
                i as u64,
            );
        }
        let done = net.run_to_idle();
        assert_eq!(done.len(), n);
        assert_eq!(net.delivered_bytes(), expected);
        assert_eq!(net.active_flows(), 0);
    }
}

/// Run an all-to-all shuffle (every node sends 8 MiB to every other
/// node) over `topology` and return the idle time.
fn all_to_all_finish(topology: Topology) -> SimTime {
    let n = topology.n_nodes();
    let mut net = Network::new(topology);
    let mut tag = 0u64;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                net.start_flow(
                    SimTime::ZERO,
                    NodeId(s),
                    NodeId(d),
                    ByteSize::from_mib(8),
                    tag,
                );
                tag += 1;
            }
        }
    }
    net.run_to_idle();
    net.now()
}

/// An oversubscribed rack fabric makes a cross-rack all-to-all shuffle
/// strictly slower than the non-blocking crossbar (the regression for
/// the formerly dead oversubscription path).
#[test]
fn oversubscribed_all_to_all_is_strictly_slower() {
    let flat = all_to_all_finish(Topology::single_switch(8, Interconnect::GigE1));
    let racked =
        all_to_all_finish(Topology::single_switch(8, Interconnect::GigE1).with_racks(2, 4.0));
    assert!(
        racked > flat,
        "oversubscribed {racked:?} must be strictly slower than flat {flat:?}"
    );
}

/// Oversubscription factor 1 is non-blocking by definition: the rack
/// layer must add no solver resources and reproduce the flat crossbar
/// bit-for-bit, flow by flow.
#[test]
fn factor_one_racks_bit_identical_to_flat() {
    let run = |topology: Topology| {
        let mut net = Network::new(topology);
        let mut tag = 0u64;
        for s in 0..8usize {
            for d in 0..8usize {
                if s != d {
                    net.start_flow(
                        SimTime::ZERO,
                        NodeId(s),
                        NodeId(d),
                        ByteSize::from_mib(1 + ((s * 7 + d) % 5) as u64),
                        tag,
                    );
                    tag += 1;
                }
            }
        }
        // Step event by event, recording (completion time, tag) pairs —
        // a full bit-level trace of the run.
        let mut events: Vec<(u64, u64)> = Vec::new();
        let mut out = Vec::new();
        while let Some(t) = net.next_event_time() {
            out.clear();
            net.advance_to_into(t, &mut out);
            for c in &out {
                events.push((t.as_nanos(), c.tag));
            }
        }
        events
    };
    let flat = run(Topology::single_switch(8, Interconnect::IpoibQdr));
    let racked = run(Topology::single_switch(8, Interconnect::IpoibQdr).with_racks(4, 1.0));
    assert_eq!(flat, racked);
}

/// Rack-constrained runs still deliver every byte.
#[test]
fn rack_network_delivers_everything() {
    let mut rng = SplitMix64::new(0x0ACC);
    for _ in 0..32 {
        let n = 1 + rng.next_below(15) as usize;
        let mut net =
            Network::new(Topology::single_switch(6, Interconnect::GigE10).with_racks(3, 8.0));
        let mut expected = 0u64;
        for i in 0..n {
            let s = rng.next_below(6) as usize;
            let d = rng.next_below(6) as usize;
            let bytes = ByteSize::from_mib(1 + rng.next_below(31));
            expected += bytes.as_bytes();
            net.start_flow(
                SimTime::from_nanos(i as u64),
                NodeId(s),
                NodeId(d),
                bytes,
                i as u64,
            );
        }
        let done = net.run_to_idle();
        assert_eq!(done.len(), n);
        assert_eq!(net.delivered_bytes(), expected);
        assert_eq!(net.active_flows(), 0);
    }
}

/// More load on the same fabric never finishes sooner (monotonicity).
#[test]
fn network_monotone_in_load() {
    let run = |n_flows: u64| {
        let mut net = Network::new(Topology::single_switch(2, Interconnect::GigE1));
        for i in 0..n_flows {
            net.start_flow(
                SimTime::ZERO,
                NodeId(0),
                NodeId(1),
                ByteSize::from_mib(32),
                i,
            );
        }
        net.run_to_idle();
        net.now()
    };
    let base = run(1);
    for extra in 1..8u64 {
        assert!(run(1 + extra) >= base);
    }
}
