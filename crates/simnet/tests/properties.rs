//! Property-based tests for the network simulator.

use proptest::prelude::*;
use simcore::time::SimTime;
use simcore::units::ByteSize;
use simnet::fairshare::{max_min_rates, FlowSpec};
use simnet::{Interconnect, Network, NodeId, Topology};

fn arb_flows(n_nodes: usize) -> impl Strategy<Value = Vec<FlowSpec>> {
    proptest::collection::vec((0..n_nodes, 0..n_nodes), 1..24).prop_map(move |pairs| {
        pairs
            .into_iter()
            .filter(|(s, d)| s != d)
            .map(|(s, d)| FlowSpec { src: s, dst: d })
            .collect()
    })
}

proptest! {
    /// Fair-share rates never violate any resource capacity.
    #[test]
    fn fairshare_feasible(
        flows in arb_flows(6),
        caps in proptest::collection::vec(1.0f64..2000.0, 6),
    ) {
        let rates = max_min_rates(&flows, &caps, &caps, None);
        let mut eg = [0.0; 6];
        let mut ing = [0.0; 6];
        for (f, r) in flows.iter().zip(&rates) {
            prop_assert!(*r >= 0.0);
            eg[f.src] += r;
            ing[f.dst] += r;
        }
        for i in 0..6 {
            prop_assert!(eg[i] <= caps[i] * (1.0 + 1e-9) + 1e-9);
            prop_assert!(ing[i] <= caps[i] * (1.0 + 1e-9) + 1e-9);
        }
    }

    /// Every flow is bottlenecked at some saturated resource
    /// (work conservation / Pareto efficiency of max-min).
    #[test]
    fn fairshare_work_conserving(flows in arb_flows(5)) {
        let caps = vec![100.0; 5];
        let rates = max_min_rates(&flows, &caps, &caps, None);
        let mut eg = [0.0; 5];
        let mut ing = [0.0; 5];
        for (f, r) in flows.iter().zip(&rates) {
            eg[f.src] += r;
            ing[f.dst] += r;
        }
        for (f, r) in flows.iter().zip(&rates) {
            let saturated = eg[f.src] >= 100.0 - 1e-6 || ing[f.dst] >= 100.0 - 1e-6;
            prop_assert!(saturated, "flow {:?} rate {} unbottlenecked", f, r);
        }
    }

    /// Fabric cap bounds the aggregate allocation.
    #[test]
    fn fairshare_fabric_cap(flows in arb_flows(4), cap in 1.0f64..500.0) {
        let caps = vec![1000.0; 4];
        let rates = max_min_rates(&flows, &caps, &caps, Some(cap));
        let total: f64 = rates.iter().sum();
        prop_assert!(total <= cap * (1.0 + 1e-9) + 1e-9, "total {} cap {}", total, cap);
    }

    /// The network delivers every byte it accepts, for any flow pattern.
    #[test]
    fn network_delivers_everything(
        pattern in proptest::collection::vec((0usize..4, 0usize..4, 1u64..64), 1..16),
    ) {
        let mut net = Network::new(Topology::single_switch(4, Interconnect::GigE10));
        let mut expected = 0u64;
        let mut started = 0;
        for (i, (s, d, mib)) in pattern.iter().enumerate() {
            let bytes = ByteSize::from_mib(*mib);
            expected += bytes.as_bytes();
            net.start_flow(
                SimTime::from_nanos(i as u64),
                NodeId(*s),
                NodeId(*d),
                bytes,
                i as u64,
            );
            started += 1;
        }
        let done = net.run_to_idle();
        prop_assert_eq!(done.len(), started);
        prop_assert_eq!(net.delivered_bytes(), expected);
        prop_assert_eq!(net.active_flows(), 0);
    }

    /// More load on the same fabric never finishes sooner (monotonicity).
    #[test]
    fn network_monotone_in_load(extra in 1u64..8) {
        let run = |n_flows: u64| {
            let mut net = Network::new(Topology::single_switch(2, Interconnect::GigE1));
            for i in 0..n_flows {
                net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), ByteSize::from_mib(32), i);
            }
            net.run_to_idle();
            net.now()
        };
        let base = run(1);
        let more = run(1 + extra);
        prop_assert!(more >= base);
    }
}
