//! The flow-level network simulation engine.
//!
//! [`Network`] tracks a set of point-to-point transfers ("flows") over a
//! [`Topology`]. Each flow passes through a latency phase (the protocol's
//! small-message/setup latency) and then a bandwidth phase whose rate is
//! the max-min fair share given all concurrently active flows. Rates are
//! recomputed whenever the set of active flows changes, which makes the
//! model event-driven and exact for piecewise-constant fair sharing.
//!
//! Transfers where source and destination are the same host are loopback
//! copies: they never touch the fabric and run at a fixed memory-copy
//! rate, mirroring how a Hadoop reducer fetches a map output that lives on
//! its own node.
//!
//! # Hot-path layout
//!
//! Flows live in a slab (`slots` + free list) with two deterministic
//! indexes over it: `order`, the alive slots in ascending flow-id order
//! (flow ids are monotonic, so insertion is a push and removal a binary
//! search), and `latent`, a FIFO of flows still waiting out the protocol
//! latency (latency is a per-topology constant, so arrival order is
//! activation order). Rates come from an incremental [`FairshareSolver`]
//! that holds exactly the active non-loopback flows; its arrival order is
//! flow-id order, so it freezes flows in the same sequence — and produces
//! the same bits — as running the batch solver over the id-ordered flow
//! list on every event, the way the engine originally did. Per-node
//! monitor rates are re-summed only for nodes touched by a rate change,
//! again in id order, keeping the drained byte counts bit-identical too.

use std::collections::VecDeque;

use simcore::stats::RateIntegrator;
use simcore::time::{SimDuration, SimTime};
use simcore::units::{ByteSize, Rate};

use crate::fairshare::{FairshareSolver, FlowKey, FlowSpec, RackCaps};
use crate::topology::{NodeId, Topology};

/// Handle to an in-flight transfer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowId(u64);

/// Default loopback (same-host) copy rate: a conservative memory-to-memory
/// figure that is protocol independent.
pub const LOOPBACK_RATE_MB_S: f64 = 3000.0;

/// Cold per-flow fields; the advance/next-event hot loops only touch the
/// `remaining` / `rate_bps` / `active` parallel arrays so each O(flows)
/// pass streams a few dense `f64` lanes instead of 100-byte structs.
#[derive(Clone, Debug)]
struct FlowSlot {
    /// Public monotonic flow id (`order` is sorted by it).
    id: u64,
    src: NodeId,
    dst: NodeId,
    total: ByteSize,
    /// Activation instant while latent; irrelevant once active.
    latent_until: SimTime,
    tag: u64,
    /// Solver membership, present exactly while active and non-loopback.
    key: Option<FlowKey>,
}

/// A finished transfer, as reported by [`Network::advance_to`].
#[derive(Clone, Copy, Debug)]
pub struct FlowCompletion {
    /// The flow that finished.
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Payload size of the whole transfer.
    pub bytes: ByteSize,
    /// Caller-supplied correlation tag.
    pub tag: u64,
}

/// Flow-level network simulator over a single-switch topology.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    slots: Vec<FlowSlot>,
    /// Hot lane: bytes left, parallel to `slots`.
    remaining: Vec<f64>,
    /// Hot lane: current rate in bytes/s, parallel to `slots`.
    rate_bps: Vec<f64>,
    /// Hot lane: true once past the latency phase, parallel to `slots`.
    active: Vec<bool>,
    free: Vec<u32>,
    /// Alive slots in ascending flow-id order.
    order: Vec<u32>,
    /// Latent slots in activation order (constant latency ⇒ FIFO).
    latent: VecDeque<u32>,
    solver: FairshareSolver,
    next_id: u64,
    clock: SimTime,
    node_tx: Vec<RateIntegrator>,
    node_rx: Vec<RateIntegrator>,
    loopback: Rate,
    /// Total payload bytes fully delivered, in exact integer bytes.
    /// (A previous revision accumulated this in an `f64`, which silently
    /// loses whole bytes once the total passes 2^53.)
    delivered: u64,
    /// Cumulative per-flow touches: byte-integration steps plus solver
    /// rate changes — the network's actual inner-loop cost, for
    /// simulated-work accounting (never wall clock).
    work_units: u64,
    // Reusable event-processing scratch, so the advance path allocates
    // nothing in steady state.
    completed_scratch: Vec<u32>,
    dirty_nodes: Vec<u32>,
    node_mark: Vec<u64>,
    mark_epoch: u64,
}

impl Network {
    /// A quiet network over `topology`, starting at t = 0.
    pub fn new(topology: Topology) -> Self {
        let n = topology.n_nodes();
        let nic = topology.nic_rate().as_bytes_per_sec();
        let caps = vec![nic; n];
        let fabric = topology.fabric_cap().map(|r| r.as_bytes_per_sec());
        let rack = topology.rack_assignment();
        let solver = FairshareSolver::with_racks(
            &caps,
            &caps,
            rack.as_ref()
                .map(|(rack_of, uplink)| RackCaps { rack_of, uplink }),
            fabric,
        );
        Network {
            topology,
            slots: Vec::new(),
            remaining: Vec::new(),
            rate_bps: Vec::new(),
            active: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            latent: VecDeque::new(),
            solver,
            next_id: 0,
            clock: SimTime::ZERO,
            node_tx: (0..n).map(|_| RateIntegrator::new(SimTime::ZERO)).collect(),
            node_rx: (0..n).map(|_| RateIntegrator::new(SimTime::ZERO)).collect(),
            loopback: Rate::from_mb_per_sec(LOOPBACK_RATE_MB_S),
            delivered: 0,
            work_units: 0,
            completed_scratch: Vec::new(),
            dirty_nodes: Vec::new(),
            node_mark: vec![0; n],
            mark_epoch: 0,
        }
    }

    /// Override the loopback copy rate (tests, calibration). Affects
    /// flows started after the call.
    pub fn set_loopback_rate(&mut self, rate: Rate) {
        self.loopback = rate;
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current simulated time of the network clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of flows currently latent or active.
    pub fn active_flows(&self) -> usize {
        self.order.len()
    }

    /// Total payload bytes fully delivered so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered
    }

    /// Cumulative simulated-work units: one per flow touched by a
    /// byte-integration step or a solver rate change. The measure of how
    /// much computation the network model performed — deterministic,
    /// comparable across runs, and independent of wall clock.
    pub fn work_units(&self) -> u64 {
        self.work_units
    }

    /// Begin a transfer of `bytes` from `src` to `dst` at time `now`.
    ///
    /// `tag` is an opaque correlation value handed back on completion.
    /// `now` must not be earlier than the last event processed.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: ByteSize,
        tag: u64,
    ) -> FlowId {
        assert!(self.topology.contains(src), "unknown src {src}");
        assert!(self.topology.contains(dst), "unknown dst {dst}");
        self.integrate_to(now);

        let latency = if src == dst {
            SimDuration::ZERO
        } else {
            self.topology.protocol().msg_latency
        };
        let id = self.next_id;
        self.next_id += 1;
        let slot = FlowSlot {
            id,
            src,
            dst,
            total: bytes,
            latent_until: now,
            tag,
            key: None,
        };
        let si = match self.free.pop() {
            Some(s) => {
                let i = s as usize;
                self.slots[i] = slot;
                self.remaining[i] = bytes.as_bytes() as f64;
                self.rate_bps[i] = 0.0;
                self.active[i] = true;
                s
            }
            None => {
                self.slots.push(slot);
                self.remaining.push(bytes.as_bytes() as f64);
                self.rate_bps.push(0.0);
                self.active.push(true);
                (self.slots.len() - 1) as u32
            }
        };
        // Ids are monotonic, so a push keeps `order` sorted.
        self.order.push(si);

        if src == dst {
            // Loopback: active immediately at the fixed copy rate; never
            // enters the fair-share solver or the NIC monitors.
            self.rate_bps[si as usize] = self.loopback.as_bytes_per_sec();
        } else if latency.is_zero() {
            // Defensive: no interconnect has zero latency today, but if
            // one did the flow would contend immediately.
            let key = self.solver.add_flow(
                FlowSpec {
                    src: src.0,
                    dst: dst.0,
                },
                u64::from(si),
            );
            self.slots[si as usize].key = Some(key);
            self.begin_rate_update();
            self.resolve_rates();
        } else {
            let at = now + latency;
            debug_assert!(
                self.latent
                    .back()
                    .is_none_or(|&b| self.slots[b as usize].latent_until <= at),
                "constant latency must keep the latent queue sorted"
            );
            self.slots[si as usize].latent_until = at;
            self.active[si as usize] = false;
            self.latent.push_back(si);
        }
        FlowId(id)
    }

    /// The earliest instant at which something happens (an activation or a
    /// completion), or `None` when the network is idle.
    pub fn next_event_time(&self) -> Option<SimTime> {
        // The latent queue is in activation order, so its head is the
        // earliest activation; it is always >= the clock (earlier
        // activations were consumed by `advance_to`).
        let latent_at = self
            .latent
            .front()
            .map(|&s| self.slots[s as usize].latent_until);
        // Track the minimum time-to-completion as a raw quotient and
        // convert once at the end: nanosecond conversion is monotone, so
        // min-then-round equals the round-then-min a per-flow
        // construction would compute.
        let mut best_q = f64::INFINITY;
        for &s in &self.order {
            let s = s as usize;
            if !self.active[s] {
                continue;
            }
            let rate = self.rate_bps[s];
            let rem = self.remaining[s];
            if rem <= completion_eps(rate) {
                // A completion is already due; nothing can beat `clock`
                // (latent activations are never in the past).
                return Some(self.clock);
            }
            if rate <= 0.0 {
                continue;
            }
            let q = rem / rate;
            if q < best_q {
                best_q = q;
            }
        }
        let completion = (best_q < f64::INFINITY).then(|| {
            // +1 ns guards against float rounding leaving a sub-byte
            // residue at the computed instant.
            self.clock + SimDuration::from_secs_f64(best_q) + SimDuration::from_nanos(1)
        });
        match (latent_at, completion) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advance the network clock to `now`, returning every transfer that
    /// completed at or before `now` (in deterministic flow-id order).
    ///
    /// The caller must not skip past events: `now` should be at most
    /// [`Network::next_event_time`]. Skipping only loses precision, never
    /// panics.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<FlowCompletion> {
        let mut out = Vec::new();
        self.advance_to_into(now, &mut out);
        out
    }

    /// [`Network::advance_to`], but appending completions to a
    /// caller-owned buffer — the allocation-free form the engine's event
    /// loop uses.
    pub fn advance_to_into(&mut self, now: SimTime, out: &mut Vec<FlowCompletion>) {
        assert!(now >= self.clock, "network clock cannot run backwards");
        let dt = now.since(self.clock).as_secs_f64();

        // One fused pass: settle every active flow's remaining bytes and
        // collect the ones at (or below) the completion threshold.
        // `order` is id-sorted, so completions come out in flow-id order
        // by construction.
        self.completed_scratch.clear();
        if dt > 0.0 {
            for &s in &self.order {
                let s = s as usize;
                if self.active[s] {
                    let rate = self.rate_bps[s];
                    let rem = (self.remaining[s] - rate * dt).max(0.0);
                    self.remaining[s] = rem;
                    if rem <= completion_eps(rate) {
                        self.completed_scratch.push(s as u32);
                    }
                }
            }
        } else {
            for &s in &self.order {
                let s = s as usize;
                if self.active[s] && self.remaining[s] <= completion_eps(self.rate_bps[s]) {
                    self.completed_scratch.push(s as u32);
                }
            }
        }
        for ri in &mut self.node_tx {
            ri.advance(now);
        }
        for ri in &mut self.node_rx {
            ri.advance(now);
        }
        self.clock = now;

        // Activations: pop the FIFO while due.
        let mut activated = 0usize;
        while let Some(&s) = self.latent.front() {
            let f = &mut self.slots[s as usize];
            if f.latent_until > now {
                break;
            }
            debug_assert!(!self.active[s as usize], "active flow in latent queue");
            self.active[s as usize] = true;
            let key = self.solver.add_flow(
                FlowSpec {
                    src: f.src.0,
                    dst: f.dst.0,
                },
                u64::from(s),
            );
            f.key = Some(key);
            self.latent.pop_front();
            activated += 1;
        }

        self.begin_rate_update();
        let mut removed = 0usize;
        for i in 0..self.completed_scratch.len() {
            let s = self.completed_scratch[i];
            let f = &mut self.slots[s as usize];
            self.delivered += f.total.as_bytes();
            out.push(FlowCompletion {
                id: FlowId(f.id),
                src: f.src,
                dst: f.dst,
                bytes: f.total,
                tag: f.tag,
            });
            let id = f.id;
            let (src, dst) = (f.src, f.dst);
            if let Some(key) = f.key.take() {
                self.solver.remove_flow(key);
                removed += 1;
                self.mark_dirty(src);
                self.mark_dirty(dst);
            }
            let slots = &self.slots;
            let pos = self.order.partition_point(|&o| slots[o as usize].id < id);
            debug_assert_eq!(self.order.get(pos), Some(&s), "order index corrupt");
            self.order.remove(pos);
            self.free.push(s);
        }

        // Re-solve only when the contending set changed — loopback-only
        // traffic never perturbs fair shares.
        if activated > 0 || removed > 0 {
            self.resolve_rates();
        }
    }

    /// Instantaneous receive rate at `node`.
    pub fn rx_rate(&self, node: NodeId) -> Rate {
        Rate::from_bytes_per_sec(self.node_rx[node.0].rate().max(0.0))
    }

    /// Instantaneous transmit rate at `node`.
    pub fn tx_rate(&self, node: NodeId) -> Rate {
        Rate::from_bytes_per_sec(self.node_tx[node.0].rate().max(0.0))
    }

    /// Bytes received by `node` since the last drain (advances the
    /// integrator to `now`). Used by 1 Hz resource monitors.
    pub fn drain_rx_bytes(&mut self, node: NodeId, now: SimTime) -> f64 {
        self.node_rx[node.0].drain(now)
    }

    /// Bytes transmitted by `node` since the last drain.
    pub fn drain_tx_bytes(&mut self, node: NodeId, now: SimTime) -> f64 {
        self.node_tx[node.0].drain(now)
    }

    fn integrate_to(&mut self, now: SimTime) {
        assert!(now >= self.clock, "network clock cannot run backwards");
        let dt = now.since(self.clock).as_secs_f64();
        if dt > 0.0 {
            self.work_units += self.order.len() as u64;
            for &s in &self.order {
                let s = s as usize;
                if self.active[s] {
                    self.remaining[s] = (self.remaining[s] - self.rate_bps[s] * dt).max(0.0);
                }
            }
        }
        for ri in &mut self.node_tx {
            ri.advance(now);
        }
        for ri in &mut self.node_rx {
            ri.advance(now);
        }
        self.clock = now;
    }

    /// Start collecting dirty nodes for the next [`Network::resolve_rates`].
    fn begin_rate_update(&mut self) {
        self.mark_epoch += 1;
        self.dirty_nodes.clear();
    }

    fn mark_dirty(&mut self, node: NodeId) {
        if self.node_mark[node.0] != self.mark_epoch {
            self.node_mark[node.0] = self.mark_epoch;
            self.dirty_nodes.push(node.0 as u32);
        }
    }

    /// Re-solve fair shares and refresh the monitors of affected nodes.
    ///
    /// Only flows whose rate actually changed are touched, and only their
    /// endpoints' monitor sums are recomputed — each sum in flow-id order,
    /// so the arithmetic matches a full id-ordered recompute bit for bit.
    fn resolve_rates(&mut self) {
        self.solver.solve();
        // Every registered flow is frozen exactly once per solve, and each
        // changed rate is propagated back into the flow table.
        self.work_units += (self.solver.len() + self.solver.changed().len()) as u64;
        for i in 0..self.solver.changed().len() {
            let (user, rate) = self.solver.changed()[i];
            let s = user as usize;
            self.rate_bps[s] = rate;
            let (src, dst) = (self.slots[s].src, self.slots[s].dst);
            self.mark_dirty(src);
            self.mark_dirty(dst);
        }
        let now = self.clock;
        for i in 0..self.dirty_nodes.len() {
            let node = self.dirty_nodes[i] as usize;
            self.node_tx[node].set_rate(now, self.solver.egress_rate_sum(node));
            self.node_rx[node].set_rate(now, self.solver.ingress_rate_sum(node));
        }
    }

    /// Run the network by itself until all flows finish; returns the
    /// completions in order. Mostly useful in tests — the MapReduce engine
    /// interleaves its own events.
    pub fn run_to_idle(&mut self) -> Vec<FlowCompletion> {
        let mut all = Vec::new();
        while let Some(t) = self.next_event_time() {
            self.advance_to_into(t, &mut all);
        }
        all
    }
}

/// Bytes of slack below which a flow counts as finished; covers nanosecond
/// quantization of the completion instant.
fn completion_eps(rate_bps: f64) -> f64 {
    (rate_bps * 2e-9).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Interconnect;

    fn net(nodes: usize, ic: Interconnect) -> Network {
        Network::new(Topology::single_switch(nodes, ic))
    }

    #[test]
    fn single_transfer_takes_latency_plus_bandwidth_time() {
        let mut n = net(2, Interconnect::GigE1);
        let bytes = ByteSize::from_mib(100);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), bytes, 7);
        let done = n.run_to_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        assert_eq!(done[0].bytes, bytes);
        let expect = 55e-6 + bytes.as_bytes() as f64 / (112.0 * 1e6);
        let got = n.now().as_secs_f64();
        assert!(
            (got - expect).abs() < 1e-3,
            "got {got}, expected about {expect}"
        );
    }

    #[test]
    fn two_flows_into_one_receiver_halve() {
        let mut n = net(3, Interconnect::IpoibQdr);
        let bytes = ByteSize::from_mib(950); // ~1 s alone
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), bytes, 0);
        n.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), bytes, 1);
        n.run_to_idle();
        // Each flow gets ~475 MB/s, so both finish in ~2.1 s (binary MiB
        // vs decimal MB accounts for the 1.048 factor).
        let got = n.now().as_secs_f64();
        let expect = 2.0 * 950.0 * 1024.0 * 1024.0 / (950.0 * 1e6);
        assert!((got - expect).abs() < 0.01, "got {got}, expected {expect}");
    }

    #[test]
    fn flow_rates_rebalance_after_completion() {
        let mut n = net(3, Interconnect::GigE10);
        // Big flow and small flow share the receiver; when the small one
        // completes, the big one speeds up.
        n.start_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(2),
            ByteSize::from_mib(400),
            0,
        );
        n.start_flow(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            ByteSize::from_mib(40),
            1,
        );
        // Step through the latency activations until the first completion.
        let done = loop {
            let t = n.next_event_time().unwrap();
            let done = n.advance_to(t);
            if !done.is_empty() {
                break done;
            }
        };
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        // Rebalanced: remaining flow now runs at the full ceiling.
        let r = n.tx_rate(NodeId(0)).as_mb_per_sec();
        assert!((r - 545.0).abs() < 1.0, "rate after rebalance: {r}");
        n.run_to_idle();
        assert_eq!(n.active_flows(), 0);
    }

    #[test]
    fn loopback_does_not_touch_nic() {
        let mut n = net(2, Interconnect::GigE1);
        n.start_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(0),
            ByteSize::from_mib(300),
            0,
        );
        // NIC monitors see nothing.
        assert_eq!(n.tx_rate(NodeId(0)).as_mb_per_sec(), 0.0);
        let done = n.run_to_idle();
        assert_eq!(done.len(), 1);
        let t = n.now().as_secs_f64();
        let expect = 300.0 * 1024.0 * 1024.0 / (3000.0 * 1e6);
        assert!((t - expect).abs() < 1e-3, "loopback time {t} vs {expect}");
    }

    #[test]
    fn latency_dominates_small_messages() {
        let mut n = net(2, Interconnect::GigE1);
        n.start_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            ByteSize::from_bytes(1),
            0,
        );
        n.run_to_idle();
        assert!(n.now().as_secs_f64() >= 55e-6);
        assert!(n.now().as_secs_f64() < 70e-6);
    }

    #[test]
    fn rdma_much_faster_than_ipoib_for_bulk() {
        let run = |ic: Interconnect| {
            let mut n = net(2, ic);
            n.start_flow(
                SimTime::ZERO,
                NodeId(0),
                NodeId(1),
                ByteSize::from_gib(1),
                0,
            );
            n.run_to_idle();
            n.now().as_secs_f64()
        };
        let ipoib = run(Interconnect::IpoibFdr);
        let rdma = run(Interconnect::RdmaFdr);
        assert!(
            rdma < ipoib / 3.0,
            "rdma {rdma} should be >3x faster than ipoib {ipoib}"
        );
    }

    #[test]
    fn rx_byte_accounting_matches_payload() {
        let mut n = net(2, Interconnect::GigE10);
        let payload = ByteSize::from_mib(64);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), payload, 0);
        n.run_to_idle();
        let now = n.now();
        let rx = n.drain_rx_bytes(NodeId(1), now);
        assert!(
            (rx - payload.as_bytes() as f64).abs() < 1024.0,
            "rx {rx} vs payload {}",
            payload.as_bytes()
        );
        assert_eq!(n.delivered_bytes(), payload.as_bytes());
    }

    #[test]
    fn delivered_bytes_is_integer_exact_beyond_f64_precision() {
        // Regression: `delivered` used to accumulate in an f64, which
        // cannot represent odd byte counts past 2^53 — each of these
        // payloads would round to 2^53 and the sum would drop 2 bytes.
        let payload = ByteSize::from_bytes((1u64 << 53) + 1);
        let mut n = net(2, Interconnect::GigE1);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(0), payload, 0);
        n.start_flow(SimTime::ZERO, NodeId(1), NodeId(1), payload, 1);
        let done = n.run_to_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(n.delivered_bytes(), ((1u64 << 53) + 1) * 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut n = net(4, Interconnect::IpoibQdr);
            for i in 0..8u64 {
                n.start_flow(
                    SimTime::from_nanos(i * 1000),
                    NodeId((i % 4) as usize),
                    NodeId(((i + 1) % 4) as usize),
                    ByteSize::from_mib(10 + i * 3),
                    i,
                );
            }
            let done = n.run_to_idle();
            (n.now(), done.iter().map(|c| c.tag).collect::<Vec<_>>())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn simultaneous_completions_report_in_flow_id_order() {
        // Regression for the flows-map migration to the slab: identical
        // flows all complete at the same instant, and `advance_to` must
        // report them in flow-id order — slot indexes get recycled, so
        // scanning in slot order would report recycled slots too early.
        // Start flows in scrambled src order so insertion order != node
        // order.
        let run = || {
            let mut n = net(8, Interconnect::GigE10);
            for &s in &[5usize, 2, 7, 0, 6, 1, 4] {
                n.start_flow(
                    SimTime::ZERO,
                    NodeId(s),
                    NodeId(3),
                    ByteSize::from_mib(10),
                    s as u64,
                );
            }
            let done = n.run_to_idle();
            done.iter().map(|c| (c.id, c.tag)).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        // Flow ids were assigned in start order, so completions come
        // back in that order.
        assert_eq!(
            a.iter().map(|(_, tag)| *tag).collect::<Vec<_>>(),
            vec![5, 2, 7, 0, 6, 1, 4]
        );
    }

    #[test]
    fn completions_stay_id_ordered_across_slot_reuse() {
        // Force slot recycling: run a first wave to completion, then a
        // second wave that reuses the freed slots in a different id
        // pattern, plus one fresh slot.
        let mut n = net(6, Interconnect::GigE10);
        for s in 0..3 {
            n.start_flow(
                SimTime::ZERO,
                NodeId(s),
                NodeId(5),
                ByteSize::from_mib(5),
                s as u64,
            );
        }
        let first = n.run_to_idle();
        assert_eq!(first.len(), 3);
        let t = n.now();
        for s in 0..4 {
            n.start_flow(
                t,
                NodeId(s),
                NodeId(5),
                ByteSize::from_mib(5),
                100 + s as u64,
            );
        }
        let second = n.run_to_idle();
        let tags: Vec<u64> = second.iter().map(|c| c.tag).collect();
        assert_eq!(tags, vec![100, 101, 102, 103]);
    }

    #[test]
    fn all_to_all_shuffle_pattern_finishes() {
        // 4 nodes, every node sends to every other: 12 flows.
        let mut n = net(4, Interconnect::GigE1);
        for s in 0..4 {
            for d in 0..4 {
                if s != d {
                    n.start_flow(
                        SimTime::ZERO,
                        NodeId(s),
                        NodeId(d),
                        ByteSize::from_mib(112),
                        0,
                    );
                }
            }
        }
        let done = n.run_to_idle();
        assert_eq!(done.len(), 12);
        // Symmetric all-to-all: each NIC carries 3 x 112 MiB in each
        // direction at 112 MB/s -> about 3.15 s.
        let t = n.now().as_secs_f64();
        let expect = 3.0 * 112.0 * 1024.0 * 1024.0 / 112e6;
        assert!((t - expect).abs() < 0.05, "t={t} expect={expect}");
    }
}
