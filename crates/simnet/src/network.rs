//! The flow-level network simulation engine.
//!
//! [`Network`] tracks a set of point-to-point transfers ("flows") over a
//! [`Topology`]. Each flow passes through a latency phase (the protocol's
//! small-message/setup latency) and then a bandwidth phase whose rate is
//! the max-min fair share given all concurrently active flows. Rates are
//! recomputed whenever the set of active flows changes, which makes the
//! model event-driven and exact for piecewise-constant fair sharing.
//!
//! Transfers where source and destination are the same host are loopback
//! copies: they never touch the fabric and run at a fixed memory-copy
//! rate, mirroring how a Hadoop reducer fetches a map output that lives on
//! its own node.

use std::collections::BTreeMap;

use simcore::stats::RateIntegrator;
use simcore::time::{SimDuration, SimTime};
use simcore::units::{ByteSize, Rate};

use crate::fairshare::{max_min_rates, FlowSpec};
use crate::topology::{NodeId, Topology};

/// Handle to an in-flight transfer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowId(u64);

/// Default loopback (same-host) copy rate: a conservative memory-to-memory
/// figure that is protocol independent.
pub const LOOPBACK_RATE_MB_S: f64 = 3000.0;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    /// Waiting out the protocol latency; activates at the given instant.
    Latent(SimTime),
    /// Moving bytes at `rate`.
    Active,
}

#[derive(Clone, Debug)]
struct FlowState {
    src: NodeId,
    dst: NodeId,
    total: ByteSize,
    remaining: f64,
    rate_bps: f64,
    phase: Phase,
    tag: u64,
}

/// A finished transfer, as reported by [`Network::advance_to`].
#[derive(Clone, Copy, Debug)]
pub struct FlowCompletion {
    /// The flow that finished.
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Payload size of the whole transfer.
    pub bytes: ByteSize,
    /// Caller-supplied correlation tag.
    pub tag: u64,
}

/// Flow-level network simulator over a single-switch topology.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    flows: BTreeMap<u64, FlowState>,
    next_id: u64,
    clock: SimTime,
    node_tx: Vec<RateIntegrator>,
    node_rx: Vec<RateIntegrator>,
    loopback: Rate,
    /// Total bytes that have finished transfer, for accounting.
    delivered: f64,
}

impl Network {
    /// A quiet network over `topology`, starting at t = 0.
    pub fn new(topology: Topology) -> Self {
        let n = topology.n_nodes();
        Network {
            topology,
            flows: BTreeMap::new(),
            next_id: 0,
            clock: SimTime::ZERO,
            node_tx: (0..n).map(|_| RateIntegrator::new(SimTime::ZERO)).collect(),
            node_rx: (0..n).map(|_| RateIntegrator::new(SimTime::ZERO)).collect(),
            loopback: Rate::from_mb_per_sec(LOOPBACK_RATE_MB_S),
            delivered: 0.0,
        }
    }

    /// Override the loopback copy rate (tests, calibration).
    pub fn set_loopback_rate(&mut self, rate: Rate) {
        self.loopback = rate;
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current simulated time of the network clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of flows currently latent or active.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total payload bytes fully delivered so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered as u64
    }

    /// Begin a transfer of `bytes` from `src` to `dst` at time `now`.
    ///
    /// `tag` is an opaque correlation value handed back on completion.
    /// `now` must not be earlier than the last event processed.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: ByteSize,
        tag: u64,
    ) -> FlowId {
        assert!(self.topology.contains(src), "unknown src {src}");
        assert!(self.topology.contains(dst), "unknown dst {dst}");
        self.integrate_to(now);

        let latency = if src == dst {
            SimDuration::ZERO
        } else {
            self.topology.protocol().msg_latency
        };
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            FlowState {
                src,
                dst,
                total: bytes,
                remaining: bytes.as_bytes() as f64,
                rate_bps: 0.0,
                phase: if latency.is_zero() {
                    Phase::Active
                } else {
                    Phase::Latent(now + latency)
                },
                tag,
            },
        );
        self.recompute_rates();
        FlowId(id)
    }

    /// The earliest instant at which something happens (an activation or a
    /// completion), or `None` when the network is idle.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for f in self.flows.values() {
            let t = match f.phase {
                Phase::Latent(at) => at,
                Phase::Active => {
                    if f.remaining <= completion_eps(f.rate_bps) {
                        self.clock
                    } else if f.rate_bps <= 0.0 {
                        continue;
                    } else {
                        // +1 ns guards against float rounding leaving a
                        // sub-byte residue at the computed instant.
                        self.clock
                            + SimDuration::from_secs_f64(f.remaining / f.rate_bps)
                            + SimDuration::from_nanos(1)
                    }
                }
            };
            best = Some(best.map_or(t, |b| b.min(t)));
        }
        best
    }

    /// Advance the network clock to `now`, returning every transfer that
    /// completed at or before `now` (in deterministic flow-id order).
    ///
    /// The caller must not skip past events: `now` should be at most
    /// [`Network::next_event_time`]. Skipping only loses precision, never
    /// panics.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<FlowCompletion> {
        self.integrate_to(now);

        let mut completed: Vec<u64> = Vec::new();
        let mut activated = false;
        for (&id, f) in &mut self.flows {
            match f.phase {
                Phase::Latent(at) => {
                    if at <= now {
                        f.phase = Phase::Active;
                        activated = true;
                    }
                }
                Phase::Active => {
                    if f.remaining <= completion_eps(f.rate_bps) {
                        completed.push(id);
                    }
                }
            }
        }
        // BTreeMap iteration is already flow-id ordered, so `completed`
        // is sorted by construction.
        debug_assert!(completed.windows(2).all(|w| w[0] < w[1]));

        let mut out = Vec::with_capacity(completed.len());
        for id in completed {
            let f = self.flows.remove(&id).expect("completed flow exists");
            self.delivered += f.total.as_bytes() as f64;
            out.push(FlowCompletion {
                id: FlowId(id),
                src: f.src,
                dst: f.dst,
                bytes: f.total,
                tag: f.tag,
            });
        }
        if activated || !out.is_empty() {
            self.recompute_rates();
        }
        out
    }

    /// Instantaneous receive rate at `node`.
    pub fn rx_rate(&self, node: NodeId) -> Rate {
        Rate::from_bytes_per_sec(self.node_rx[node.0].rate().max(0.0))
    }

    /// Instantaneous transmit rate at `node`.
    pub fn tx_rate(&self, node: NodeId) -> Rate {
        Rate::from_bytes_per_sec(self.node_tx[node.0].rate().max(0.0))
    }

    /// Bytes received by `node` since the last drain (advances the
    /// integrator to `now`). Used by 1 Hz resource monitors.
    pub fn drain_rx_bytes(&mut self, node: NodeId, now: SimTime) -> f64 {
        self.node_rx[node.0].drain(now)
    }

    /// Bytes transmitted by `node` since the last drain.
    pub fn drain_tx_bytes(&mut self, node: NodeId, now: SimTime) -> f64 {
        self.node_tx[node.0].drain(now)
    }

    fn integrate_to(&mut self, now: SimTime) {
        assert!(now >= self.clock, "network clock cannot run backwards");
        let dt = now.since(self.clock).as_secs_f64();
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                if f.phase == Phase::Active {
                    f.remaining = (f.remaining - f.rate_bps * dt).max(0.0);
                }
            }
        }
        for ri in &mut self.node_tx {
            ri.advance(now);
        }
        for ri in &mut self.node_rx {
            ri.advance(now);
        }
        self.clock = now;
    }

    fn recompute_rates(&mut self) {
        let n = self.topology.n_nodes();
        let nic = self.topology.nic_rate().as_bytes_per_sec();
        let egress = vec![nic; n];
        let ingress = vec![nic; n];

        // Stable order: BTreeMap iterates in flow-id order, so rate
        // assignment is deterministic without an explicit sort.
        let ids: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.phase == Phase::Active)
            .map(|(&id, _)| id)
            .collect();

        let mut net_ids = Vec::new();
        let mut specs = Vec::new();
        for &id in &ids {
            let f = &self.flows[&id];
            if f.src == f.dst {
                // Loopback: fixed memory-copy rate.
                let rate_bps = self.loopback.as_bytes_per_sec();
                self.flows.get_mut(&id).unwrap().rate_bps = rate_bps;
            } else {
                net_ids.push(id);
                specs.push(FlowSpec {
                    src: f.src.0,
                    dst: f.dst.0,
                });
            }
        }
        let rates = max_min_rates(
            &specs,
            &egress,
            &ingress,
            self.topology.fabric_cap().map(|r| r.as_bytes_per_sec()),
        );
        for (&id, &rate_bps) in net_ids.iter().zip(&rates) {
            self.flows.get_mut(&id).unwrap().rate_bps = rate_bps;
        }
        // Latent flows consume nothing.
        for f in self.flows.values_mut() {
            if matches!(f.phase, Phase::Latent(_)) {
                f.rate_bps = 0.0;
            }
        }

        // Refresh per-node monitors.
        let mut tx = vec![0.0; n];
        let mut rx = vec![0.0; n];
        for f in self.flows.values() {
            if f.phase == Phase::Active && f.src != f.dst {
                tx[f.src.0] += f.rate_bps;
                rx[f.dst.0] += f.rate_bps;
            }
        }
        let now = self.clock;
        for (i, r) in tx.into_iter().enumerate() {
            self.node_tx[i].set_rate(now, r);
        }
        for (i, r) in rx.into_iter().enumerate() {
            self.node_rx[i].set_rate(now, r);
        }
    }

    /// Run the network by itself until all flows finish; returns the
    /// completions in order. Mostly useful in tests — the MapReduce engine
    /// interleaves its own events.
    pub fn run_to_idle(&mut self) -> Vec<FlowCompletion> {
        let mut all = Vec::new();
        while let Some(t) = self.next_event_time() {
            all.extend(self.advance_to(t));
        }
        all
    }
}

/// Bytes of slack below which a flow counts as finished; covers nanosecond
/// quantization of the completion instant.
fn completion_eps(rate_bps: f64) -> f64 {
    (rate_bps * 2e-9).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Interconnect;

    fn net(nodes: usize, ic: Interconnect) -> Network {
        Network::new(Topology::single_switch(nodes, ic))
    }

    #[test]
    fn single_transfer_takes_latency_plus_bandwidth_time() {
        let mut n = net(2, Interconnect::GigE1);
        let bytes = ByteSize::from_mib(100);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), bytes, 7);
        let done = n.run_to_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        assert_eq!(done[0].bytes, bytes);
        let expect = 55e-6 + bytes.as_bytes() as f64 / (112.0 * 1e6);
        let got = n.now().as_secs_f64();
        assert!(
            (got - expect).abs() < 1e-3,
            "got {got}, expected about {expect}"
        );
    }

    #[test]
    fn two_flows_into_one_receiver_halve() {
        let mut n = net(3, Interconnect::IpoibQdr);
        let bytes = ByteSize::from_mib(950); // ~1 s alone
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), bytes, 0);
        n.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), bytes, 1);
        n.run_to_idle();
        // Each flow gets ~475 MB/s, so both finish in ~2.1 s (binary MiB
        // vs decimal MB accounts for the 1.048 factor).
        let got = n.now().as_secs_f64();
        let expect = 2.0 * 950.0 * 1024.0 * 1024.0 / (950.0 * 1e6);
        assert!((got - expect).abs() < 0.01, "got {got}, expected {expect}");
    }

    #[test]
    fn flow_rates_rebalance_after_completion() {
        let mut n = net(3, Interconnect::GigE10);
        // Big flow and small flow share the receiver; when the small one
        // completes, the big one speeds up.
        n.start_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(2),
            ByteSize::from_mib(400),
            0,
        );
        n.start_flow(
            SimTime::ZERO,
            NodeId(1),
            NodeId(2),
            ByteSize::from_mib(40),
            1,
        );
        // Step through the latency activations until the first completion.
        let done = loop {
            let t = n.next_event_time().unwrap();
            let done = n.advance_to(t);
            if !done.is_empty() {
                break done;
            }
        };
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        // Rebalanced: remaining flow now runs at the full ceiling.
        let r = n.tx_rate(NodeId(0)).as_mb_per_sec();
        assert!((r - 545.0).abs() < 1.0, "rate after rebalance: {r}");
        n.run_to_idle();
        assert_eq!(n.active_flows(), 0);
    }

    #[test]
    fn loopback_does_not_touch_nic() {
        let mut n = net(2, Interconnect::GigE1);
        n.start_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(0),
            ByteSize::from_mib(300),
            0,
        );
        // NIC monitors see nothing.
        assert_eq!(n.tx_rate(NodeId(0)).as_mb_per_sec(), 0.0);
        let done = n.run_to_idle();
        assert_eq!(done.len(), 1);
        let t = n.now().as_secs_f64();
        let expect = 300.0 * 1024.0 * 1024.0 / (3000.0 * 1e6);
        assert!((t - expect).abs() < 1e-3, "loopback time {t} vs {expect}");
    }

    #[test]
    fn latency_dominates_small_messages() {
        let mut n = net(2, Interconnect::GigE1);
        n.start_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            ByteSize::from_bytes(1),
            0,
        );
        n.run_to_idle();
        assert!(n.now().as_secs_f64() >= 55e-6);
        assert!(n.now().as_secs_f64() < 70e-6);
    }

    #[test]
    fn rdma_much_faster_than_ipoib_for_bulk() {
        let run = |ic: Interconnect| {
            let mut n = net(2, ic);
            n.start_flow(
                SimTime::ZERO,
                NodeId(0),
                NodeId(1),
                ByteSize::from_gib(1),
                0,
            );
            n.run_to_idle();
            n.now().as_secs_f64()
        };
        let ipoib = run(Interconnect::IpoibFdr);
        let rdma = run(Interconnect::RdmaFdr);
        assert!(
            rdma < ipoib / 3.0,
            "rdma {rdma} should be >3x faster than ipoib {ipoib}"
        );
    }

    #[test]
    fn rx_byte_accounting_matches_payload() {
        let mut n = net(2, Interconnect::GigE10);
        let payload = ByteSize::from_mib(64);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), payload, 0);
        n.run_to_idle();
        let now = n.now();
        let rx = n.drain_rx_bytes(NodeId(1), now);
        assert!(
            (rx - payload.as_bytes() as f64).abs() < 1024.0,
            "rx {rx} vs payload {}",
            payload.as_bytes()
        );
        assert_eq!(n.delivered_bytes(), payload.as_bytes());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut n = net(4, Interconnect::IpoibQdr);
            for i in 0..8u64 {
                n.start_flow(
                    SimTime::from_nanos(i * 1000),
                    NodeId((i % 4) as usize),
                    NodeId(((i + 1) % 4) as usize),
                    ByteSize::from_mib(10 + i * 3),
                    i,
                );
            }
            let done = n.run_to_idle();
            (n.now(), done.iter().map(|c| c.tag).collect::<Vec<_>>())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn simultaneous_completions_report_in_flow_id_order() {
        // Regression for the flows-map migration to BTreeMap: identical
        // flows all complete at the same instant, and `advance_to` must
        // report them in flow-id order — with a HashMap the completion
        // scan iterated in RandomState bucket order, and only a
        // post-hoc sort hid it. Start flows in scrambled src order so
        // insertion order != node order.
        let run = || {
            let mut n = net(8, Interconnect::GigE10);
            for &s in &[5usize, 2, 7, 0, 6, 1, 4] {
                n.start_flow(
                    SimTime::ZERO,
                    NodeId(s),
                    NodeId(3),
                    ByteSize::from_mib(10),
                    s as u64,
                );
            }
            let done = n.run_to_idle();
            done.iter().map(|c| (c.id, c.tag)).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        // Flow ids were assigned in start order, so completions come
        // back in that order.
        assert_eq!(
            a.iter().map(|(_, tag)| *tag).collect::<Vec<_>>(),
            vec![5, 2, 7, 0, 6, 1, 4]
        );
    }

    #[test]
    fn all_to_all_shuffle_pattern_finishes() {
        // 4 nodes, every node sends to every other: 12 flows.
        let mut n = net(4, Interconnect::GigE1);
        for s in 0..4 {
            for d in 0..4 {
                if s != d {
                    n.start_flow(
                        SimTime::ZERO,
                        NodeId(s),
                        NodeId(d),
                        ByteSize::from_mib(112),
                        0,
                    );
                }
            }
        }
        let done = n.run_to_idle();
        assert_eq!(done.len(), 12);
        // Symmetric all-to-all: each NIC carries 3 x 112 MiB in each
        // direction at 112 MB/s -> about 3.15 s.
        let t = n.now().as_secs_f64();
        let expect = 3.0 * 112.0 * 1024.0 * 1024.0 / 112e6;
        assert!((t - expect).abs() < 0.05, "t={t} expect={expect}");
    }
}
