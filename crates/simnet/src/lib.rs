//! # simnet — flow-level network simulator for single-switch clusters
//!
//! Models the five interconnect/protocol combinations the paper evaluates
//! (1 GigE, 10 GigE, IPoIB QDR, IPoIB FDR, RDMA FDR) as flow-level
//! bandwidth sharing with protocol-specific NIC ceilings, latencies, and
//! host-CPU costs.
//!
//! * [`protocol`] — per-interconnect models, calibrated against the
//!   paper's own Fig. 7(b) throughput observations.
//! * [`topology`] — cluster fabric: single-switch crossbar or rack-aware
//!   with oversubscribed top-of-rack uplinks.
//! * [`fairshare`] — max-min fair allocation (progressive filling).
//! * [`network`] — the event-driven flow engine.
//! * [`monitor`] — 1 Hz per-node throughput sampling (Fig. 7(b)).

pub mod fairshare;
pub mod monitor;
pub mod network;
pub mod protocol;
pub mod topology;

pub use fairshare::{
    max_min_rates, max_min_rates_racked, FairshareSolver, FlowKey, FlowSpec, RackCaps,
};
pub use monitor::NetworkMonitor;
pub use network::{FlowCompletion, FlowId, Network};
pub use protocol::{Interconnect, ProtocolModel};
pub use topology::{NodeId, Topology};
