//! Interconnect and protocol models.
//!
//! The paper evaluates Hadoop MapReduce over five network/protocol
//! combinations: 1 GigE, 10 GigE, IPoIB QDR (32 Gbps), IPoIB FDR (56 Gbps),
//! and RDMA over native InfiniBand FDR (56 Gbps). A protocol is modelled by
//! four observable quantities:
//!
//! 1. **line rate** — the physical signalling rate of the link;
//! 2. **NIC ceiling** — the effective per-direction throughput the host
//!    protocol stack can sustain (socket copies, interrupt handling, IPoIB
//!    encapsulation). This is what Fig. 7(b) of the paper actually
//!    measures: 1 GigE peaks at ~110 MB/s, 10 GigE at ~520 MB/s, and IPoIB
//!    QDR at ~950 MB/s even though its line rate is 4 GB/s;
//! 3. **message latency** — one-way small-message latency, paid once per
//!    transfer (connection setup / request round-trip);
//! 4. **host CPU cost** — core-milliseconds of protocol processing per MiB
//!    moved, paid by *each* endpoint. Socket-based protocols pay it in
//!    full; RDMA bypasses the host CPU almost entirely.

use simcore::time::SimDuration;
use simcore::units::Rate;

/// The five interconnect/protocol combinations evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Interconnect {
    /// 1 Gigabit Ethernet with TCP/IP sockets.
    GigE1,
    /// 10 Gigabit Ethernet with TCP/IP sockets (NetEffect NE020 class).
    GigE10,
    /// IP-over-InfiniBand on a QDR (32 Gbps) HCA.
    IpoibQdr,
    /// IP-over-InfiniBand on an FDR (56 Gbps) HCA.
    IpoibFdr,
    /// RDMA verbs over native InfiniBand FDR (56 Gbps), as used by the
    /// MRoIB design in the paper's Sect. 6 case study.
    RdmaFdr,
}

impl Interconnect {
    /// All interconnects, in the order the paper presents them.
    pub const ALL: [Interconnect; 5] = [
        Interconnect::GigE1,
        Interconnect::GigE10,
        Interconnect::IpoibQdr,
        Interconnect::IpoibFdr,
        Interconnect::RdmaFdr,
    ];

    /// The label the paper uses in its figures.
    pub fn label(self) -> &'static str {
        match self {
            Interconnect::GigE1 => "1GigE",
            Interconnect::GigE10 => "10GigE",
            Interconnect::IpoibQdr => "IPoIB (32Gbps)",
            Interconnect::IpoibFdr => "IPoIB (56Gbps)",
            Interconnect::RdmaFdr => "RDMA (56Gbps)",
        }
    }

    /// The calibrated protocol model for this interconnect.
    pub fn model(self) -> ProtocolModel {
        match self {
            Interconnect::GigE1 => ProtocolModel {
                name: "1GigE",
                line_rate: Rate::from_gbit_per_sec(1.0),
                // Fig. 7(b): 1 GigE peaks at ~110 MB/s.
                nic_ceiling: Rate::from_mb_per_sec(112.0),
                msg_latency: SimDuration::from_micros(55),
                cpu_ms_per_mib: 4.0,
                rdma: false,
            },
            Interconnect::GigE10 => ProtocolModel {
                name: "10GigE",
                line_rate: Rate::from_gbit_per_sec(10.0),
                // Fig. 7(b): 10 GigE peaks at ~520 MB/s — the NetEffect
                // adapter's host stack, not the wire, is the bottleneck.
                nic_ceiling: Rate::from_mb_per_sec(545.0),
                msg_latency: SimDuration::from_micros(22),
                // Plain TCP on the NetEffect adapter: no segmentation
                // offload the kernel could use effectively in 2012-era
                // stacks — every byte crosses the host.
                cpu_ms_per_mib: 4.0,
                rdma: false,
            },
            Interconnect::IpoibQdr => ProtocolModel {
                name: "IPoIB (32Gbps)",
                line_rate: Rate::from_gbit_per_sec(32.0),
                // Fig. 7(b): IPoIB QDR peaks at ~950 MB/s.
                nic_ceiling: Rate::from_mb_per_sec(950.0),
                msg_latency: SimDuration::from_micros(16),
                // The ConnectX HCA offloads segmentation and checksums
                // for IPoIB (connected mode), so the per-byte host cost
                // is far below plain Ethernet TCP.
                cpu_ms_per_mib: 1.5,
                rdma: false,
            },
            Interconnect::IpoibFdr => ProtocolModel {
                name: "IPoIB (56Gbps)",
                line_rate: Rate::from_gbit_per_sec(56.0),
                // FDR IPoIB in datagram mode sustains ~1.5-1.7 GB/s.
                nic_ceiling: Rate::from_mb_per_sec(1580.0),
                msg_latency: SimDuration::from_micros(13),
                cpu_ms_per_mib: 1.4,
                rdma: false,
            },
            Interconnect::RdmaFdr => ProtocolModel {
                name: "RDMA (56Gbps)",
                line_rate: Rate::from_gbit_per_sec(56.0),
                // Native verbs reach ~5.2 GB/s of the 6.8 GB/s FDR data
                // rate for large messages.
                nic_ceiling: Rate::from_mb_per_sec(5200.0),
                msg_latency: SimDuration::from_micros(3),
                cpu_ms_per_mib: 0.06,
                rdma: true,
            },
        }
    }
}

impl std::fmt::Display for Interconnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The tunable parameters of a network protocol as seen by the simulator.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolModel {
    /// Human-readable protocol name.
    pub name: &'static str,
    /// Physical link signalling rate.
    pub line_rate: Rate,
    /// Effective per-direction per-NIC throughput ceiling imposed by the
    /// host protocol stack.
    pub nic_ceiling: Rate,
    /// One-way latency charged at the start of every transfer.
    pub msg_latency: SimDuration,
    /// Host CPU cost of protocol processing, in core-milliseconds per MiB
    /// moved, charged at each endpoint.
    pub cpu_ms_per_mib: f64,
    /// True for kernel-bypass (RDMA) transports.
    pub rdma: bool,
}

impl ProtocolModel {
    /// The throughput a single NIC direction can sustain: the lower of the
    /// wire and the host stack.
    pub fn effective_rate(&self) -> Rate {
        self.line_rate.min(self.nic_ceiling)
    }

    /// CPU seconds of protocol work for moving `bytes` bytes at one
    /// endpoint.
    pub fn cpu_seconds_for(&self, bytes: u64) -> f64 {
        self.cpu_ms_per_mib * 1e-3 * (bytes as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_throughput_ordering_holds() {
        // The paper's Fig. 7(b) ordering: 1GigE < 10GigE < IPoIB QDR, and
        // the Sect. 6 case study adds IPoIB FDR < RDMA FDR.
        let caps: Vec<f64> = Interconnect::ALL
            .iter()
            .map(|i| i.model().effective_rate().as_mb_per_sec())
            .collect();
        for w in caps.windows(2) {
            assert!(
                w[0] < w[1],
                "ceilings must be strictly increasing: {caps:?}"
            );
        }
    }

    #[test]
    fn effective_rate_respects_line_rate() {
        // 1GigE's ceiling (112 MB/s) is near line rate (125 MB/s): the
        // effective rate must never exceed the wire.
        for i in Interconnect::ALL {
            let m = i.model();
            assert!(m.effective_rate().as_bytes_per_sec() <= m.line_rate.as_bytes_per_sec() + 1.0);
        }
    }

    #[test]
    fn fig7_peaks_match_paper() {
        assert!((Interconnect::GigE1.model().nic_ceiling.as_mb_per_sec() - 112.0).abs() < 15.0);
        assert!((Interconnect::GigE10.model().nic_ceiling.as_mb_per_sec() - 520.0).abs() < 40.0);
        assert!((Interconnect::IpoibQdr.model().nic_ceiling.as_mb_per_sec() - 950.0).abs() < 40.0);
    }

    #[test]
    fn rdma_is_cheap_for_the_host() {
        let rdma = Interconnect::RdmaFdr.model();
        let ipoib = Interconnect::IpoibFdr.model();
        assert!(rdma.rdma);
        assert!(!ipoib.rdma);
        assert!(rdma.cpu_ms_per_mib < ipoib.cpu_ms_per_mib / 10.0);
        assert!(rdma.msg_latency < ipoib.msg_latency);
    }

    #[test]
    fn cpu_seconds_scale_linearly() {
        let m = Interconnect::GigE1.model();
        let one = m.cpu_seconds_for(1024 * 1024);
        let ten = m.cpu_seconds_for(10 * 1024 * 1024);
        assert!((ten - 10.0 * one).abs() < 1e-12);
        assert!((one - 0.0040).abs() < 1e-9);
    }

    #[test]
    fn labels_are_paper_labels() {
        assert_eq!(Interconnect::GigE1.to_string(), "1GigE");
        assert_eq!(Interconnect::IpoibQdr.to_string(), "IPoIB (32Gbps)");
        assert_eq!(Interconnect::RdmaFdr.to_string(), "RDMA (56Gbps)");
    }
}
