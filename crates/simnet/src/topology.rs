//! Cluster network topology.
//!
//! Both of the paper's testbeds are single-switch clusters (a 24-port
//! Fulcrum Focalpoint for Ethernet, a Mellanox switch for InfiniBand), so
//! the default topology model is a non-blocking crossbar with per-node
//! NICs and an optional aggregate fabric capacity for modelling
//! oversubscribed switches.
//!
//! Production Hadoop fabrics are rack-structured: nodes hang off a
//! top-of-rack switch whose uplink into the core is *oversubscribed* —
//! the sum of the member NIC rates exceeds the uplink rate by the
//! oversubscription factor. [`Topology::with_racks`] models exactly that:
//! nodes are grouped into `n_racks` contiguous blocks, and each rack
//! contributes one uplink resource per direction with capacity
//! `members × nic_rate / oversubscription`. A factor of 1 is by
//! definition non-blocking — the uplink equals the sum of its member
//! NICs, so it can never be the strict bottleneck (the mediant
//! inequality: `Σcap / Σflows ≥ min(cap_i / flows_i)`) — and the solver
//! therefore materializes uplink resources only when the factor exceeds
//! 1, keeping the flat case bit-identical to the crossbar model.

use simcore::units::Rate;

use crate::protocol::{Interconnect, ProtocolModel};

/// Identifies a host on the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A cluster fabric: flat crossbar by default, rack-structured with
/// oversubscribed uplinks via [`Topology::with_racks`].
#[derive(Clone, Debug)]
pub struct Topology {
    n_nodes: usize,
    protocol: ProtocolModel,
    /// Total bisection capacity of the core, if it is oversubscribed;
    /// `None` models a non-blocking core.
    fabric_cap: Option<Rate>,
    /// Number of racks; 1 models the paper's single-switch crossbar.
    n_racks: usize,
    /// Rack uplink oversubscription factor: sum of member NIC rates over
    /// uplink rate. 1.0 is non-blocking.
    oversubscription: f64,
}

impl Topology {
    /// A non-blocking single-switch fabric of `n_nodes` hosts running
    /// `interconnect`.
    pub fn single_switch(n_nodes: usize, interconnect: Interconnect) -> Self {
        Topology::with_model(n_nodes, interconnect.model())
    }

    /// Same, from an explicit protocol model (for custom calibrations).
    pub fn with_model(n_nodes: usize, protocol: ProtocolModel) -> Self {
        assert!(n_nodes > 0, "topology needs at least one node");
        Topology {
            n_nodes,
            protocol,
            fabric_cap: None,
            n_racks: 1,
            oversubscription: 1.0,
        }
    }

    /// Limit the aggregate fabric throughput (oversubscribed core).
    pub fn with_fabric_cap(mut self, cap: Rate) -> Self {
        self.fabric_cap = Some(cap);
        self
    }

    /// Group the nodes into `n_racks` contiguous blocks with per-rack
    /// uplinks oversubscribed by `oversubscription` (≥ 1.0; 1.0 is
    /// non-blocking and adds no solver resources).
    pub fn with_racks(mut self, n_racks: usize, oversubscription: f64) -> Self {
        assert!(n_racks >= 1, "need at least one rack");
        assert!(
            n_racks <= self.n_nodes,
            "more racks ({n_racks}) than nodes ({})",
            self.n_nodes
        );
        assert!(
            oversubscription.is_finite() && oversubscription >= 1.0,
            "oversubscription factor must be finite and >= 1.0, got {oversubscription}"
        );
        self.n_racks = n_racks;
        self.oversubscription = oversubscription;
        self
    }

    /// Number of hosts.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_nodes).map(NodeId)
    }

    /// The protocol model every NIC runs.
    pub fn protocol(&self) -> &ProtocolModel {
        &self.protocol
    }

    /// Per-direction capacity of one NIC.
    pub fn nic_rate(&self) -> Rate {
        self.protocol.effective_rate()
    }

    /// Aggregate fabric capacity, if constrained.
    pub fn fabric_cap(&self) -> Option<Rate> {
        self.fabric_cap
    }

    /// Number of racks (1 = flat crossbar).
    pub fn n_racks(&self) -> usize {
        self.n_racks
    }

    /// Rack uplink oversubscription factor.
    pub fn oversubscription(&self) -> f64 {
        self.oversubscription
    }

    /// The rack holding `node`. Nodes are assigned to racks in
    /// contiguous blocks of `ceil(n_nodes / n_racks)`.
    pub fn rack_of(&self, node: usize) -> usize {
        debug_assert!(node < self.n_nodes);
        node / self.n_nodes.div_ceil(self.n_racks)
    }

    /// Number of nodes in `rack`.
    pub fn rack_members(&self, rack: usize) -> usize {
        let block = self.n_nodes.div_ceil(self.n_racks);
        self.n_nodes.saturating_sub(rack * block).min(block)
    }

    /// Per-direction uplink capacity of `rack`, in bytes/s.
    pub fn uplink_cap_bps(&self, rack: usize) -> f64 {
        self.rack_members(rack) as f64 * self.nic_rate().as_bytes_per_sec() / self.oversubscription
    }

    /// True when the rack uplinks can actually bind — more than one rack
    /// AND a factor strictly above 1. At exactly 1 the uplink equals the
    /// sum of its member NIC capacities and can only tie (ties resolve to
    /// the lower-indexed NIC resources), so omitting the resources keeps
    /// the solve bit-identical to the flat crossbar.
    pub fn rack_constrained(&self) -> bool {
        self.n_racks > 1 && self.oversubscription > 1.0
    }

    /// Solver inputs for the rack layer: per-node rack index plus
    /// per-rack uplink capacity (bytes/s, per direction). `None` when the
    /// rack layer adds no constraint (see [`Topology::rack_constrained`]).
    pub fn rack_assignment(&self) -> Option<(Vec<usize>, Vec<f64>)> {
        if !self.rack_constrained() {
            return None;
        }
        let rack_of: Vec<usize> = (0..self.n_nodes).map(|n| self.rack_of(n)).collect();
        let uplink: Vec<f64> = (0..self.n_racks).map(|r| self.uplink_cap_bps(r)).collect();
        Some((rack_of, uplink))
    }

    /// Validate a node id.
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 < self.n_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let t = Topology::single_switch(4, Interconnect::GigE10);
        assert_eq!(t.n_nodes(), 4);
        assert!(t.contains(NodeId(3)));
        assert!(!t.contains(NodeId(4)));
        assert_eq!(t.nodes().count(), 4);
        assert!(t.fabric_cap().is_none());
        assert_eq!(t.n_racks(), 1);
        assert!(!t.rack_constrained());
        assert!(t.rack_assignment().is_none());
        assert!((t.nic_rate().as_mb_per_sec() - 545.0).abs() < 1.0);
    }

    #[test]
    fn fabric_cap_builder() {
        let t = Topology::single_switch(8, Interconnect::GigE1)
            .with_fabric_cap(Rate::from_mb_per_sec(400.0));
        assert!((t.fabric_cap().unwrap().as_mb_per_sec() - 400.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty() {
        let _ = Topology::single_switch(0, Interconnect::GigE1);
    }

    #[test]
    fn rack_blocks_are_contiguous_and_cover_all_nodes() {
        // 10 nodes over 4 racks: blocks of 3 -> sizes 3,3,3,1.
        let t = Topology::single_switch(10, Interconnect::GigE1).with_racks(4, 4.0);
        let assignment: Vec<usize> = (0..10).map(|n| t.rack_of(n)).collect();
        assert_eq!(assignment, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        assert_eq!(
            (0..4).map(|r| t.rack_members(r)).collect::<Vec<_>>(),
            [3, 3, 3, 1]
        );
        assert_eq!((0..4).map(|r| t.rack_members(r)).sum::<usize>(), 10);
    }

    #[test]
    fn uplink_capacity_scales_with_members_and_factor() {
        let t = Topology::single_switch(8, Interconnect::GigE1).with_racks(2, 4.0);
        let nic = t.nic_rate().as_bytes_per_sec();
        assert!((t.uplink_cap_bps(0) - 4.0 * nic / 4.0).abs() < 1e-6);
        let (rack_of, uplink) = t.rack_assignment().expect("constrained");
        assert_eq!(rack_of, [0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(uplink.len(), 2);
    }

    #[test]
    fn factor_one_is_non_blocking() {
        let t = Topology::single_switch(8, Interconnect::GigE1).with_racks(2, 1.0);
        assert_eq!(t.n_racks(), 2);
        assert!(!t.rack_constrained());
        assert!(t.rack_assignment().is_none());
    }

    #[test]
    #[should_panic(expected = "more racks")]
    fn rejects_more_racks_than_nodes() {
        let _ = Topology::single_switch(2, Interconnect::GigE1).with_racks(3, 2.0);
    }

    #[test]
    #[should_panic(expected = "oversubscription factor")]
    fn rejects_sub_one_factor() {
        let _ = Topology::single_switch(4, Interconnect::GigE1).with_racks(2, 0.5);
    }
}
