//! Cluster network topology.
//!
//! Both of the paper's testbeds are single-switch clusters (a 24-port
//! Fulcrum Focalpoint for Ethernet, a Mellanox switch for InfiniBand), so
//! the topology model is a non-blocking crossbar with per-node NICs and an
//! optional aggregate fabric capacity for modelling oversubscribed
//! switches.

use simcore::units::Rate;

use crate::protocol::{Interconnect, ProtocolModel};

/// Identifies a host on the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A single-switch cluster fabric.
#[derive(Clone, Debug)]
pub struct Topology {
    n_nodes: usize,
    protocol: ProtocolModel,
    /// Total bisection capacity of the switch, if it is oversubscribed;
    /// `None` models a non-blocking switch.
    fabric_cap: Option<Rate>,
}

impl Topology {
    /// A non-blocking single-switch fabric of `n_nodes` hosts running
    /// `interconnect`.
    pub fn single_switch(n_nodes: usize, interconnect: Interconnect) -> Self {
        Topology::with_model(n_nodes, interconnect.model())
    }

    /// Same, from an explicit protocol model (for custom calibrations).
    pub fn with_model(n_nodes: usize, protocol: ProtocolModel) -> Self {
        assert!(n_nodes > 0, "topology needs at least one node");
        Topology {
            n_nodes,
            protocol,
            fabric_cap: None,
        }
    }

    /// Limit the aggregate fabric throughput (oversubscribed switch).
    pub fn with_fabric_cap(mut self, cap: Rate) -> Self {
        self.fabric_cap = Some(cap);
        self
    }

    /// Number of hosts.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_nodes).map(NodeId)
    }

    /// The protocol model every NIC runs.
    pub fn protocol(&self) -> &ProtocolModel {
        &self.protocol
    }

    /// Per-direction capacity of one NIC.
    pub fn nic_rate(&self) -> Rate {
        self.protocol.effective_rate()
    }

    /// Aggregate fabric capacity, if constrained.
    pub fn fabric_cap(&self) -> Option<Rate> {
        self.fabric_cap
    }

    /// Validate a node id.
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 < self.n_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let t = Topology::single_switch(4, Interconnect::GigE10);
        assert_eq!(t.n_nodes(), 4);
        assert!(t.contains(NodeId(3)));
        assert!(!t.contains(NodeId(4)));
        assert_eq!(t.nodes().count(), 4);
        assert!(t.fabric_cap().is_none());
        assert!((t.nic_rate().as_mb_per_sec() - 545.0).abs() < 1.0);
    }

    #[test]
    fn fabric_cap_builder() {
        let t = Topology::single_switch(8, Interconnect::GigE1)
            .with_fabric_cap(Rate::from_mb_per_sec(400.0));
        assert!((t.fabric_cap().unwrap().as_mb_per_sec() - 400.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty() {
        let _ = Topology::single_switch(0, Interconnect::GigE1);
    }
}
