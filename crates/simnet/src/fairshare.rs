//! Max-min fair bandwidth allocation.
//!
//! The flow-level network model assigns each active flow the rate TCP (or
//! the IB hardware arbiter) would converge to: the *max-min fair*
//! allocation subject to per-NIC egress/ingress capacities, optional
//! per-rack uplink capacities (oversubscribed top-of-rack switches), and
//! an optional aggregate fabric capacity. The classic progressive-filling
//! algorithm is used: repeatedly find the most-contended resource, freeze
//! all flows crossing it at its fair share, subtract, and continue.
//!
//! Two implementations share the same arithmetic:
//!
//! * [`max_min_rates`] / [`max_min_rates_racked`] — the batch reference.
//!   Allocates fresh buffers and recounts resource membership on every
//!   call; kept as the test oracle.
//! * [`FairshareSolver`] — the incremental hot-path solver the network
//!   engine uses. It maintains per-resource membership lists and reusable
//!   scratch buffers across calls, so a flow arrival or departure is O(1)
//!   bookkeeping and each re-solve touches only the bottleneck sets
//!   (resources and the flows frozen at them) instead of rescanning every
//!   flow per round. The freeze order — and therefore every floating-point
//!   operation — is identical to the batch solver's, so both produce
//!   bit-identical rates.
//!
//! Resource layout: `[0, n)` egress, `[n, 2n)` ingress, then (when a rack
//! layer is present) `[2n, 2n+R)` rack uplinks (egress direction) and
//! `[2n+R, 2n+2R)` rack downlinks (ingress direction), and finally the
//! optional fabric resource. A flow whose endpoints sit in different
//! racks consumes src-egress, src-rack-uplink, dst-rack-downlink and
//! dst-ingress; an intra-rack flow only its NIC resources. Callers model
//! a non-blocking rack layer (oversubscription factor 1) by passing no
//! rack layer at all: a factor-1 uplink equals the sum of its member NIC
//! capacities, so it can tie with but never strictly undercut a NIC
//! share, and ties resolve to the lower-indexed NIC resource anyway.

/// A flow as the solver sees it: which resources it crosses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source node index (egress resource).
    pub src: usize,
    /// Destination node index (ingress resource).
    pub dst: usize,
}

/// The rack layer of a topology, as capacities the solver can bind on.
#[derive(Clone, Copy, Debug)]
pub struct RackCaps<'a> {
    /// Rack index per node (`rack_of[node]`, length = node count).
    pub rack_of: &'a [usize],
    /// Per-rack uplink capacity in bytes/s, applied per direction
    /// (full-duplex: the same cap limits traffic leaving and entering
    /// the rack independently). Length = rack count.
    pub uplink: &'a [f64],
}

/// Strictly positive floor for frozen rates. Progressive filling
/// subtracts fair shares from the remaining capacity, and that
/// subtraction can drift a capacity a few ulps below zero; the `.max(0.0)`
/// clamp then freezes every remaining flow at exactly 0 B/s, which the
/// network layer turns into an infinite completion time (the flow is
/// skipped and never finishes). Relative to the largest capacity, 1e-12
/// is far below any real share but keeps every completion time finite.
fn rate_floor_for(max_cap: f64) -> f64 {
    (max_cap * 1e-12).max(f64::MIN_POSITIVE)
}

/// Compute max-min fair rates (bytes/s) for `flows` on a flat crossbar.
///
/// * `egress[n]` / `ingress[n]` — per-direction NIC capacities.
/// * `fabric` — optional aggregate capacity shared by all flows.
///
/// Flows with `src == dst` must be filtered out by the caller (loopback
/// does not cross the fabric).
///
/// This is the batch reference implementation (and test oracle for
/// [`FairshareSolver`]); the network hot path uses the incremental solver.
pub fn max_min_rates(
    flows: &[FlowSpec],
    egress: &[f64],
    ingress: &[f64],
    fabric: Option<f64>,
) -> Vec<f64> {
    max_min_rates_racked(flows, egress, ingress, None, fabric)
}

/// [`max_min_rates`] with an optional rack layer (see the module docs for
/// the resource layout). With `racks: None` this performs the exact same
/// floating-point operations as the flat solver.
pub fn max_min_rates_racked(
    flows: &[FlowSpec],
    egress: &[f64],
    ingress: &[f64],
    racks: Option<RackCaps<'_>>,
    fabric: Option<f64>,
) -> Vec<f64> {
    let nf = flows.len();
    if nf == 0 {
        return Vec::new();
    }
    let n = egress.len();
    assert_eq!(n, ingress.len(), "egress/ingress length mismatch");
    let n_racks = racks.map_or(0, |r| {
        assert_eq!(r.rack_of.len(), n, "rack_of length mismatch");
        r.uplink.len()
    });

    let n_res = 2 * n + 2 * n_racks + usize::from(fabric.is_some());
    let mut remaining = vec![0.0f64; n_res];
    remaining[..n].copy_from_slice(egress);
    remaining[n..2 * n].copy_from_slice(ingress);
    if let Some(r) = racks {
        remaining[2 * n..2 * n + n_racks].copy_from_slice(r.uplink);
        remaining[2 * n + n_racks..2 * n + 2 * n_racks].copy_from_slice(r.uplink);
    }
    if let Some(f) = fabric {
        remaining[2 * n + 2 * n_racks] = f;
    }

    let mut unfrozen_count = vec![0usize; n_res];
    let resources_of = |f: &FlowSpec| -> [usize; 5] {
        let fab = if fabric.is_some() {
            2 * n + 2 * n_racks
        } else {
            usize::MAX
        };
        let (up, down) = match racks {
            Some(r) => {
                let (rs, rd) = (r.rack_of[f.src], r.rack_of[f.dst]);
                if rs != rd {
                    (2 * n + rs, 2 * n + n_racks + rd)
                } else {
                    (usize::MAX, usize::MAX)
                }
            }
            None => (usize::MAX, usize::MAX),
        };
        [f.src, n + f.dst, up, down, fab]
    };
    for f in flows {
        assert!(f.src != f.dst, "loopback flows must not enter the solver");
        assert!(f.src < n && f.dst < n, "flow references unknown node");
        for r in resources_of(f) {
            if r != usize::MAX {
                unfrozen_count[r] += 1;
            }
        }
    }

    let mut rates = vec![f64::NAN; nf];
    let mut frozen = vec![false; nf];
    let mut n_frozen = 0;

    let max_cap = remaining.iter().cloned().fold(0.0f64, f64::max);
    let rate_floor = rate_floor_for(max_cap);

    while n_frozen < nf {
        // Find the bottleneck: the resource with the smallest fair share.
        let mut best_share = f64::INFINITY;
        let mut best_res = usize::MAX;
        for (r, &cnt) in unfrozen_count.iter().enumerate() {
            if cnt > 0 {
                let share = (remaining[r] / cnt as f64).max(0.0);
                if share < best_share {
                    best_share = share;
                    best_res = r;
                }
            }
        }
        if best_res == usize::MAX {
            // No contended resources remain (unreachable while flows are
            // unfrozen, since every flow crosses ≥2 resources), freeze
            // the rest at the floor defensively — with full bookkeeping,
            // so the post-solve invariants below still hold.
            for (i, fz) in frozen.iter_mut().enumerate() {
                if !*fz {
                    *fz = true;
                    rates[i] = rate_floor;
                    for r in resources_of(&flows[i]) {
                        if r != usize::MAX {
                            remaining[r] = (remaining[r] - rate_floor).max(0.0);
                            unfrozen_count[r] -= 1;
                        }
                    }
                }
            }
            break;
        }

        // Freeze every unfrozen flow crossing the bottleneck. The frozen
        // rate (floored) is exactly what is subtracted from the crossed
        // resources, so `remaining` always reflects the allocation and
        // the incremental solver can rely on it.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let crosses = resources_of(f).contains(&best_res);
            if crosses {
                frozen[i] = true;
                n_frozen += 1;
                let rate = best_share.max(rate_floor);
                rates[i] = rate;
                for r in resources_of(f) {
                    if r != usize::MAX {
                        remaining[r] = (remaining[r] - rate).max(0.0);
                        unfrozen_count[r] -= 1;
                    }
                }
            }
        }
    }

    // Post-solve invariants: every flow frozen exactly once (all
    // per-resource unfrozen counts came back to zero) and the allocation
    // is feasible (no resource over capacity beyond the float tolerance).
    debug_assert!(
        unfrozen_count.iter().all(|&c| c == 0),
        "unfrozen counts must return to zero after the solve"
    );
    #[cfg(debug_assertions)]
    assert_feasible(flows, egress, ingress, racks, fabric, &rates, rate_floor);

    rates
}

/// Debug-only feasibility check: per-resource allocated bandwidth must
/// not exceed capacity beyond float tolerance plus the floor overshoot
/// (flows frozen at the floor can collectively exceed a capacity that
/// itself drifted to ~0).
#[cfg(debug_assertions)]
fn assert_feasible(
    flows: &[FlowSpec],
    egress: &[f64],
    ingress: &[f64],
    racks: Option<RackCaps<'_>>,
    fabric: Option<f64>,
    rates_bps: &[f64],
    rate_floor_bps: f64,
) {
    let n = egress.len();
    let n_racks = racks.map_or(0, |r| r.uplink.len());
    let mut eg = vec![0.0f64; n];
    let mut ing = vec![0.0f64; n];
    let mut up = vec![0.0f64; n_racks];
    let mut down = vec![0.0f64; n_racks];
    let mut fab = 0.0f64;
    for (f, r) in flows.iter().zip(rates_bps) {
        assert!(r.is_finite() && *r > 0.0, "rate must be positive: {r}");
        eg[f.src] += r;
        ing[f.dst] += r;
        if let Some(rc) = racks {
            let (rs, rd) = (rc.rack_of[f.src], rc.rack_of[f.dst]);
            if rs != rd {
                up[rs] += r;
                down[rd] += r;
            }
        }
        fab += r;
    }
    let tol = |cap: f64| cap * 1e-9 + rate_floor_bps * flows.len() as f64 + 1e-9;
    for i in 0..n {
        assert!(eg[i] <= egress[i] + tol(egress[i]), "egress {i} over cap");
        assert!(
            ing[i] <= ingress[i] + tol(ingress[i]),
            "ingress {i} over cap"
        );
    }
    if let Some(rc) = racks {
        for r in 0..n_racks {
            assert!(
                up[r] <= rc.uplink[r] + tol(rc.uplink[r]),
                "uplink {r} over cap"
            );
            assert!(
                down[r] <= rc.uplink[r] + tol(rc.uplink[r]),
                "downlink {r} over cap"
            );
        }
    }
    if let Some(cap) = fabric {
        assert!(fab <= cap + tol(cap), "fabric over cap");
    }
}

/// Handle to a flow registered with a [`FairshareSolver`]. Invalidated by
/// [`FairshareSolver::remove_flow`]; using a stale key is a logic error
/// (caught by debug assertions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowKey(u32);

/// Sentinel for "this flow does not cross that resource" in the per-slot
/// resource quad.
const NO_RES: u32 = u32::MAX;

/// Incremental max-min solver: owns per-resource membership lists and all
/// scratch buffers, so repeated solves over a slowly-changing flow set
/// are allocation-free and skip the full per-round flow rescan of the
/// batch algorithm.
///
/// Usage: [`FairshareSolver::add_flow`] / [`FairshareSolver::remove_flow`]
/// between events, then [`FairshareSolver::solve`]; afterwards
/// [`FairshareSolver::changed`] lists exactly the flows whose rate moved,
/// so callers can leave untouched flows alone.
#[derive(Debug)]
pub struct FairshareSolver {
    n_nodes: usize,
    n_racks: usize,
    /// Rack index per node; empty when the topology has no binding rack
    /// layer.
    rack_of: Vec<usize>,
    /// Fabric resource index, or `usize::MAX` when absent.
    fabric_res: usize,
    /// Static per-resource capacities, layout as in [`max_min_rates_racked`].
    capacity: Vec<f64>,
    rate_floor_bps: f64,

    // Flow slab (slot-indexed, slots reused LIFO).
    specs: Vec<FlowSpec>,
    users: Vec<u64>,
    seqs: Vec<u64>,
    rates_bps: Vec<f64>,
    frozen_at: Vec<u64>,
    alive: Vec<bool>,
    free: Vec<u32>,
    next_seq: u64,

    /// Precomputed `[egress, ingress, uplink, downlink]` resource indexes
    /// per slot ([`NO_RES`] marks an uncrossed rack resource); the
    /// optional fabric resource is implied by `fabric_res`.
    res_quad: Vec<[u32; 4]>,

    /// Alive slots in arrival (seq) order — the batch solver's flow-list
    /// order, which pins the freeze order and float-op sequence.
    active: Vec<u32>,
    /// Per-resource alive slots, each in arrival order.
    res_flows: Vec<Vec<u32>>,

    // Reusable solve scratch.
    remaining: Vec<f64>,
    unfrozen: Vec<usize>,
    /// Cached fair share per resource, recomputed only when the
    /// resource's remaining capacity or unfrozen count changed — the
    /// formula (and therefore the value) is exactly what a per-round
    /// recompute would produce, the cache just skips redundant divisions.
    share: Vec<f64>,
    res_dirty: Vec<u32>,
    in_dirty: Vec<bool>,
    solve_epoch: u64,
    changed: Vec<(u64, f64)>,
}

impl FairshareSolver {
    /// A solver over flat-crossbar capacities (same layout as
    /// [`max_min_rates`]).
    pub fn new(egress: &[f64], ingress: &[f64], fabric: Option<f64>) -> Self {
        Self::with_racks(egress, ingress, None, fabric)
    }

    /// A solver with an optional rack layer (same layout as
    /// [`max_min_rates_racked`]).
    pub fn with_racks(
        egress: &[f64],
        ingress: &[f64],
        racks: Option<RackCaps<'_>>,
        fabric: Option<f64>,
    ) -> Self {
        let n = egress.len();
        assert_eq!(n, ingress.len(), "egress/ingress length mismatch");
        let n_racks = racks.map_or(0, |r| {
            assert_eq!(r.rack_of.len(), n, "rack_of length mismatch");
            r.uplink.len()
        });
        let n_res = 2 * n + 2 * n_racks + usize::from(fabric.is_some());
        let mut capacity = vec![0.0f64; n_res];
        capacity[..n].copy_from_slice(egress);
        capacity[n..2 * n].copy_from_slice(ingress);
        if let Some(r) = racks {
            capacity[2 * n..2 * n + n_racks].copy_from_slice(r.uplink);
            capacity[2 * n + n_racks..2 * n + 2 * n_racks].copy_from_slice(r.uplink);
        }
        let fabric_res = if fabric.is_some() {
            2 * n + 2 * n_racks
        } else {
            usize::MAX
        };
        if let Some(f) = fabric {
            capacity[fabric_res] = f;
        }
        let max_cap = capacity.iter().cloned().fold(0.0f64, f64::max);
        FairshareSolver {
            n_nodes: n,
            n_racks,
            rack_of: racks.map_or_else(Vec::new, |r| r.rack_of.to_vec()),
            fabric_res,
            rate_floor_bps: rate_floor_for(max_cap),
            remaining: vec![0.0; n_res],
            unfrozen: vec![0; n_res],
            share: vec![0.0; n_res],
            res_dirty: Vec::new(),
            in_dirty: vec![false; n_res],
            res_flows: (0..n_res).map(|_| Vec::new()).collect(),
            capacity,
            specs: Vec::new(),
            users: Vec::new(),
            seqs: Vec::new(),
            rates_bps: Vec::new(),
            frozen_at: Vec::new(),
            alive: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            res_quad: Vec::new(),
            active: Vec::new(),
            solve_epoch: 0,
            changed: Vec::new(),
        }
    }

    /// Number of registered flows.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True when no flows are registered.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// The `[egress, ingress, uplink, downlink]` resource quad of a spec
    /// ([`NO_RES`] marks an uncrossed rack resource).
    fn quad_of(&self, spec: FlowSpec) -> [u32; 4] {
        let (up, down) = if self.n_racks > 0 {
            let (rs, rd) = (self.rack_of[spec.src], self.rack_of[spec.dst]);
            if rs != rd {
                (
                    (2 * self.n_nodes + rs) as u32,
                    (2 * self.n_nodes + self.n_racks + rd) as u32,
                )
            } else {
                (NO_RES, NO_RES)
            }
        } else {
            (NO_RES, NO_RES)
        };
        [spec.src as u32, (self.n_nodes + spec.dst) as u32, up, down]
    }

    fn resources_of(&self, spec: FlowSpec) -> [usize; 5] {
        let quad = self.quad_of(spec);
        [
            quad[0] as usize,
            quad[1] as usize,
            if quad[2] == NO_RES {
                usize::MAX
            } else {
                quad[2] as usize
            },
            if quad[3] == NO_RES {
                usize::MAX
            } else {
                quad[3] as usize
            },
            self.fabric_res,
        ]
    }

    /// Register a flow. `user` is an opaque correlation value handed back
    /// by [`FairshareSolver::changed`]. O(1) amortized.
    pub fn add_flow(&mut self, spec: FlowSpec, user: u64) -> FlowKey {
        assert!(
            spec.src != spec.dst,
            "loopback flows must not enter the solver"
        );
        assert!(
            spec.src < self.n_nodes && spec.dst < self.n_nodes,
            "flow references unknown node"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let quad = self.quad_of(spec);
        let slot = match self.free.pop() {
            Some(s) => {
                let i = s as usize;
                self.specs[i] = spec;
                self.users[i] = user;
                self.seqs[i] = seq;
                self.rates_bps[i] = f64::NAN;
                self.frozen_at[i] = 0;
                self.alive[i] = true;
                self.res_quad[i] = quad;
                s
            }
            None => {
                self.specs.push(spec);
                self.users.push(user);
                self.seqs.push(seq);
                self.rates_bps.push(f64::NAN);
                self.frozen_at.push(0);
                self.alive.push(true);
                self.res_quad.push(quad);
                (self.specs.len() - 1) as u32
            }
        };
        // A fresh seq is the largest yet, so push keeps every list in
        // arrival order.
        self.active.push(slot);
        for r in self.resources_of(spec) {
            if r != usize::MAX {
                self.res_flows[r].push(slot);
            }
        }
        FlowKey(slot)
    }

    /// Drop a flow. The key becomes stale. O(flows at its resources).
    pub fn remove_flow(&mut self, key: FlowKey) -> FlowSpec {
        let slot = key.0;
        let i = slot as usize;
        assert!(self.alive[i], "remove_flow on a stale key");
        let spec = self.specs[i];
        let seq = self.seqs[i];
        Self::remove_sorted(&self.seqs, &mut self.active, slot, seq);
        for r in self.resources_of(spec) {
            if r != usize::MAX {
                Self::remove_sorted(&self.seqs, &mut self.res_flows[r], slot, seq);
            }
        }
        self.alive[i] = false;
        self.free.push(slot);
        spec
    }

    /// Remove `slot` from a seq-sorted list via binary search.
    fn remove_sorted(seqs: &[u64], list: &mut Vec<u32>, slot: u32, seq: u64) {
        let pos = list.partition_point(|&s| seqs[s as usize] < seq);
        debug_assert!(list.get(pos) == Some(&slot), "membership list corrupt");
        list.remove(pos);
    }

    /// The spec a key was registered with.
    pub fn spec(&self, key: FlowKey) -> FlowSpec {
        debug_assert!(self.alive[key.0 as usize], "spec() on a stale key");
        self.specs[key.0 as usize]
    }

    /// The rate assigned by the last [`FairshareSolver::solve`].
    pub fn rate(&self, key: FlowKey) -> f64 {
        debug_assert!(self.alive[key.0 as usize], "rate() on a stale key");
        self.rates_bps[key.0 as usize]
    }

    /// Flows whose rate changed in the last solve, as `(user, new_rate)`.
    pub fn changed(&self) -> &[(u64, f64)] {
        &self.changed
    }

    /// Sum of solved rates leaving `node`, added in arrival order — the
    /// same order (and therefore the same bits) as summing over an
    /// id-ordered flow list.
    pub fn egress_rate_sum(&self, node: usize) -> f64 {
        self.resource_rate_sum(node)
    }

    /// Sum of solved rates entering `node`, in arrival order.
    pub fn ingress_rate_sum(&self, node: usize) -> f64 {
        self.resource_rate_sum(self.n_nodes + node)
    }

    fn resource_rate_sum(&self, r: usize) -> f64 {
        let mut sum = 0.0f64;
        for &s in &self.res_flows[r] {
            sum += self.rates_bps[s as usize];
        }
        sum
    }

    /// Recompute the max-min fixed point for the current flow set.
    ///
    /// Bit-identical to [`max_min_rates_racked`] over the same flows in
    /// arrival order: the per-resource membership lists are kept in
    /// arrival order, so bottleneck freezing performs the identical
    /// sequence of floating-point operations — it just skips the
    /// per-round scan of every unrelated flow.
    pub fn solve(&mut self) {
        self.solve_epoch += 1;
        self.changed.clear();
        if self.active.is_empty() {
            return;
        }
        let epoch = self.solve_epoch;
        self.remaining.copy_from_slice(&self.capacity);
        for r in 0..self.unfrozen.len() {
            let cnt = self.res_flows[r].len();
            self.unfrozen[r] = cnt;
            if cnt > 0 {
                self.share[r] = (self.remaining[r] / cnt as f64).max(0.0);
            }
        }
        // The previous solve's final round left its freeze-touched
        // resources queued; drop the stale queue AND reset their flags,
        // or they could never be queued for refresh again.
        for i in 0..self.res_dirty.len() {
            self.in_dirty[self.res_dirty[i] as usize] = false;
        }
        self.res_dirty.clear();

        let mut n_frozen = 0usize;
        let total = self.active.len();
        while n_frozen < total {
            // Refresh the shares of resources touched by the previous
            // round's freezes (deduplicated), then pick the bottleneck
            // from the cache — same values, far fewer divisions than
            // recomputing every share every round.
            for i in 0..self.res_dirty.len() {
                let r = self.res_dirty[i] as usize;
                self.in_dirty[r] = false;
                let cnt = self.unfrozen[r];
                if cnt > 0 {
                    self.share[r] = (self.remaining[r] / cnt as f64).max(0.0);
                }
            }
            self.res_dirty.clear();
            let mut best_share = f64::INFINITY;
            let mut best_res = usize::MAX;
            for (r, &cnt) in self.unfrozen.iter().enumerate() {
                if cnt > 0 {
                    let share = self.share[r];
                    if share < best_share {
                        best_share = share;
                        best_res = r;
                    }
                }
            }
            if best_res == usize::MAX {
                // Defensive: freeze the rest at the floor (same
                // bookkeeping as the batch solver).
                for idx in 0..self.active.len() {
                    let fi = self.active[idx] as usize;
                    if self.frozen_at[fi] != epoch {
                        self.freeze(fi, self.rate_floor_bps, epoch);
                    }
                }
                break;
            }
            let rate = best_share.max(self.rate_floor_bps);
            // Freeze the bottleneck's members in arrival order. The list
            // is walked by index because `freeze` needs `&mut self`; it
            // only mutates slab columns and scratch, never the lists.
            for idx in 0..self.res_flows[best_res].len() {
                let fi = self.res_flows[best_res][idx] as usize;
                if self.frozen_at[fi] != epoch {
                    self.freeze(fi, rate, epoch);
                    n_frozen += 1;
                }
            }
        }

        debug_assert!(
            self.unfrozen.iter().all(|&c| c == 0),
            "unfrozen counts must return to zero after the solve"
        );
    }

    fn freeze(&mut self, fi: usize, rate_bps: f64, epoch: u64) {
        self.frozen_at[fi] = epoch;
        if self.rates_bps[fi].to_bits() != rate_bps.to_bits() {
            self.changed.push((self.users[fi], rate_bps));
            self.rates_bps[fi] = rate_bps;
        }
        for r in self.res_quad[fi] {
            if r != NO_RES {
                self.touch(r as usize, rate_bps);
            }
        }
        if self.fabric_res != usize::MAX {
            self.touch(self.fabric_res, rate_bps);
        }
    }

    /// Subtract a frozen rate from resource `r` and queue its share for
    /// recomputation at the next round boundary.
    #[inline]
    fn touch(&mut self, r: usize, rate_bps: f64) {
        self.remaining[r] = (self.remaining[r] - rate_bps).max(0.0);
        self.unfrozen[r] -= 1;
        if !self.in_dirty[r] {
            self.in_dirty[r] = true;
            self.res_dirty.push(r as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_bottleneck() {
        let rates = max_min_rates(
            &[FlowSpec { src: 0, dst: 1 }],
            &[100.0, 100.0],
            &[80.0, 80.0],
            None,
        );
        assert!(close(rates[0], 80.0), "{rates:?}");
    }

    #[test]
    fn equal_flows_share_equally() {
        let flows = vec![FlowSpec { src: 0, dst: 2 }, FlowSpec { src: 1, dst: 2 }];
        let rates = max_min_rates(&flows, &[100.0; 3], &[100.0; 3], None);
        assert!(close(rates[0], 50.0) && close(rates[1], 50.0), "{rates:?}");
    }

    #[test]
    fn max_min_gives_leftover_to_uncontended() {
        // Flows: A: 0->2, B: 1->2, C: 1->3.
        // Ingress 2 is shared by A and B; egress 1 is shared by B and C.
        // Max-min: bottleneck ingress2 share 50 freezes A,B; then C gets
        // egress1's leftover 50... with all caps 100: first bottleneck is
        // ingress2 (2 flows -> 50) and egress1 (2 flows -> 50) tie; after
        // freezing, C gets min(remaining egress1=50, ingress3=100) = 50.
        let flows = vec![
            FlowSpec { src: 0, dst: 2 },
            FlowSpec { src: 1, dst: 2 },
            FlowSpec { src: 1, dst: 3 },
        ];
        let rates = max_min_rates(&flows, &[100.0; 4], &[100.0; 4], None);
        assert!(close(rates[0], 50.0), "{rates:?}");
        assert!(close(rates[1], 50.0), "{rates:?}");
        assert!(close(rates[2], 50.0), "{rates:?}");
    }

    #[test]
    fn asymmetric_capacities() {
        // Fast sender into slow receiver plus a second fast pair.
        let flows = vec![FlowSpec { src: 0, dst: 1 }, FlowSpec { src: 2, dst: 3 }];
        let egress = [1000.0, 1000.0, 1000.0, 1000.0];
        let ingress = [1000.0, 10.0, 1000.0, 1000.0];
        let rates = max_min_rates(&flows, &egress, &ingress, None);
        assert!(close(rates[0], 10.0), "{rates:?}");
        assert!(close(rates[1], 1000.0), "{rates:?}");
    }

    #[test]
    fn fabric_cap_limits_aggregate() {
        let flows = vec![FlowSpec { src: 0, dst: 2 }, FlowSpec { src: 1, dst: 3 }];
        let rates = max_min_rates(&flows, &[100.0; 4], &[100.0; 4], Some(120.0));
        let total: f64 = rates.iter().sum();
        assert!(total <= 120.0 + 1e-6, "{rates:?}");
        assert!(close(rates[0], 60.0) && close(rates[1], 60.0), "{rates:?}");
    }

    #[test]
    fn incast_shares_receiver() {
        // 7 senders to one receiver: classic shuffle incast.
        let flows: Vec<FlowSpec> = (1..8).map(|s| FlowSpec { src: s, dst: 0 }).collect();
        let rates = max_min_rates(&flows, &[950.0; 8], &[950.0; 8], None);
        for r in &rates {
            assert!(close(*r, 950.0 / 7.0), "{rates:?}");
        }
    }

    #[test]
    fn rack_uplink_limits_cross_rack_flows() {
        // 4 nodes, 2 racks of 2, uplink 100 per direction, NICs 100.
        // Two cross-rack flows (0->2, 1->3) share the rack-0 uplink and
        // the rack-1 downlink: 50 each. An intra-rack flow is untouched.
        let racks = RackCaps {
            rack_of: &[0, 0, 1, 1],
            uplink: &[100.0, 100.0],
        };
        let flows = vec![
            FlowSpec { src: 0, dst: 2 },
            FlowSpec { src: 1, dst: 3 },
            FlowSpec { src: 3, dst: 2 },
        ];
        let rates = max_min_rates_racked(&flows, &[100.0; 4], &[100.0; 4], Some(racks), None);
        assert!(close(rates[0], 50.0), "{rates:?}");
        assert!(close(rates[1], 50.0), "{rates:?}");
        // Flow 2 is intra-rack: only contends on ingress 2 with flow 0.
        assert!(close(rates[2], 50.0), "{rates:?}");
    }

    #[test]
    fn intra_rack_flows_ignore_the_uplink() {
        // A starved uplink (1 B/s) must not slow an intra-rack flow.
        let racks = RackCaps {
            rack_of: &[0, 0, 1, 1],
            uplink: &[1.0, 1.0],
        };
        let flows = vec![FlowSpec { src: 0, dst: 1 }, FlowSpec { src: 2, dst: 0 }];
        let rates = max_min_rates_racked(&flows, &[100.0; 4], &[100.0; 4], Some(racks), None);
        assert!(close(rates[0], 100.0), "{rates:?}");
        assert!(rates[1] <= 1.0 + 1e-6, "{rates:?}");
    }

    #[test]
    fn racked_call_without_racks_is_bit_identical_to_flat() {
        // The flat entry point delegates; pin that a None rack layer
        // performs the identical float sequence.
        let flows: Vec<FlowSpec> = (1..8).map(|s| FlowSpec { src: s, dst: 0 }).collect();
        let caps = vec![950e6; 8];
        let flat = max_min_rates(&flows, &caps, &caps, Some(4.0e9));
        let racked = max_min_rates_racked(&flows, &caps, &caps, None, Some(4.0e9));
        for (a, b) in flat.iter().zip(&racked) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn work_conservation_and_feasibility() {
        // Random-ish topology, checked for the two fairness invariants:
        // feasibility (no resource over capacity) and work conservation
        // (every flow is bottlenecked somewhere).
        let flows = vec![
            FlowSpec { src: 0, dst: 1 },
            FlowSpec { src: 0, dst: 2 },
            FlowSpec { src: 1, dst: 2 },
            FlowSpec { src: 3, dst: 0 },
            FlowSpec { src: 2, dst: 0 },
            FlowSpec { src: 3, dst: 1 },
        ];
        let egress = [120.0, 90.0, 200.0, 60.0];
        let ingress = [80.0, 150.0, 100.0, 70.0];
        let rates = max_min_rates(&flows, &egress, &ingress, None);

        let mut eg_used = [0.0; 4];
        let mut in_used = [0.0; 4];
        for (f, r) in flows.iter().zip(&rates) {
            eg_used[f.src] += r;
            in_used[f.dst] += r;
            assert!(*r > 0.0);
        }
        for i in 0..4 {
            assert!(eg_used[i] <= egress[i] + 1e-6);
            assert!(in_used[i] <= ingress[i] + 1e-6);
        }
        // Work conservation: each flow saturates at least one resource.
        for (f, r) in flows.iter().zip(&rates) {
            let eg_full = eg_used[f.src] >= egress[f.src] - 1e-6;
            let in_full = in_used[f.dst] >= ingress[f.dst] - 1e-6;
            assert!(eg_full || in_full, "flow {f:?} rate {r} not bottlenecked");
        }
    }

    #[test]
    fn drifted_negative_capacity_never_freezes_a_flow_at_zero() {
        // Capacities reaching the solver are themselves differences of
        // floats (link rate minus reserved bandwidth, remaining after a
        // partial recompute), so they can drift a few ulps below zero.
        // 0.3 - 0.1 - 0.1 - 0.1 is the classic example: ~-2.8e-17.
        let drifted = 0.3_f64 - 0.1 - 0.1 - 0.1;
        assert!(drifted < 0.0, "test premise: the subtraction must drift");
        let rates = max_min_rates(
            &[FlowSpec { src: 0, dst: 1 }, FlowSpec { src: 1, dst: 0 }],
            &[drifted, 100.0],
            &[100.0, 100.0],
            None,
        );
        // Before the floor, flow 0 froze at exactly 0 B/s — an infinite
        // completion time. Every rate must be strictly positive.
        for r in &rates {
            assert!(*r > 0.0, "{rates:?}");
        }
        // The unaffected flow still gets its real share.
        assert!(close(rates[1], 100.0), "{rates:?}");
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[1.0], &[1.0], None).is_empty());
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn rejects_loopback() {
        let _ = max_min_rates(
            &[FlowSpec { src: 1, dst: 1 }],
            &[1.0, 1.0],
            &[1.0, 1.0],
            None,
        );
    }

    /// Every batch scenario above, replayed through the incremental
    /// solver, must produce bit-identical rates.
    fn check_incremental(flows: &[FlowSpec], egress: &[f64], ingress: &[f64], fabric: Option<f64>) {
        let oracle = max_min_rates(flows, egress, ingress, fabric);
        let mut solver = FairshareSolver::new(egress, ingress, fabric);
        let keys: Vec<FlowKey> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| solver.add_flow(*f, i as u64))
            .collect();
        solver.solve();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(
                solver.rate(*k).to_bits(),
                oracle[i].to_bits(),
                "flow {i}: incremental {} vs batch {}",
                solver.rate(*k),
                oracle[i]
            );
        }
        // First solve must report every flow as changed (from NaN).
        assert_eq!(solver.changed().len(), flows.len());
    }

    #[test]
    fn incremental_matches_batch_on_fixed_scenarios() {
        check_incremental(
            &[FlowSpec { src: 0, dst: 1 }],
            &[100.0, 100.0],
            &[80.0, 80.0],
            None,
        );
        check_incremental(
            &[FlowSpec { src: 0, dst: 2 }, FlowSpec { src: 1, dst: 2 }],
            &[100.0; 3],
            &[100.0; 3],
            None,
        );
        check_incremental(
            &[FlowSpec { src: 0, dst: 2 }, FlowSpec { src: 1, dst: 3 }],
            &[100.0; 4],
            &[100.0; 4],
            Some(120.0),
        );
        let incast: Vec<FlowSpec> = (1..8).map(|s| FlowSpec { src: s, dst: 0 }).collect();
        check_incremental(&incast, &[950.0; 8], &[950.0; 8], None);
    }

    #[test]
    fn incremental_tracks_arrivals_and_departures() {
        let caps = [100.0f64; 4];
        let mut solver = FairshareSolver::new(&caps, &caps, None);
        let a = solver.add_flow(FlowSpec { src: 0, dst: 2 }, 0);
        let b = solver.add_flow(FlowSpec { src: 1, dst: 2 }, 1);
        solver.solve();
        assert!(close(solver.rate(a), 50.0));
        assert!(close(solver.rate(b), 50.0));

        // B leaves: A takes the whole receiver; only A changes.
        solver.remove_flow(b);
        solver.solve();
        assert!(close(solver.rate(a), 100.0));
        assert_eq!(solver.changed(), &[(0, solver.rate(a))]);

        // A third flow on disjoint resources: A's rate must not change.
        let c = solver.add_flow(FlowSpec { src: 1, dst: 3 }, 2);
        solver.solve();
        assert!(close(solver.rate(a), 100.0));
        assert!(close(solver.rate(c), 100.0));
        assert_eq!(solver.changed().len(), 1, "only the new flow changed");
        assert_eq!(solver.changed()[0].0, 2);
    }

    #[test]
    fn changed_list_is_empty_when_nothing_moves() {
        let caps = [100.0f64; 3];
        let mut solver = FairshareSolver::new(&caps, &caps, None);
        solver.add_flow(FlowSpec { src: 0, dst: 2 }, 0);
        solver.add_flow(FlowSpec { src: 1, dst: 2 }, 1);
        solver.solve();
        assert_eq!(solver.changed().len(), 2);
        solver.solve();
        assert!(solver.changed().is_empty(), "{:?}", solver.changed());
    }

    /// Regression: the final freeze round of a solve leaves its touched
    /// resources queued as dirty; a later solve must reset those flags
    /// when it discards the stale queue, or the resources can never be
    /// re-queued and their cached shares go stale mid-solve. Equal
    /// capacities make every share a tie, so a single stale ulp changes
    /// the freeze cascade — this exact shape caught the bug.
    #[test]
    fn share_cache_survives_tie_heavy_resolves() {
        let nodes = 8usize;
        let caps = vec![950e6; nodes];
        let mut solver = FairshareSolver::new(&caps, &caps, None);
        let mut live: Vec<(FlowKey, FlowSpec)> = Vec::new();
        for s in 0..nodes {
            for d in 0..nodes {
                if s != d {
                    let spec = FlowSpec { src: s, dst: d };
                    live.push((solver.add_flow(spec, live.len() as u64), spec));
                }
            }
        }
        // Several rounds of batched removals, bit-comparing after each.
        for round in 0..6 {
            solver.solve();
            let specs: Vec<FlowSpec> = live.iter().map(|(_, s)| *s).collect();
            let oracle = max_min_rates(&specs, &caps, &caps, None);
            for ((k, _), want) in live.iter().zip(&oracle) {
                assert_eq!(
                    solver.rate(*k).to_bits(),
                    want.to_bits(),
                    "round {round}: incremental {} vs batch {want}",
                    solver.rate(*k)
                );
            }
            // Remove every 5th surviving flow.
            let mut i = 0;
            live.retain(|(k, _)| {
                let drop = i % 5 == 0;
                i += 1;
                if drop {
                    solver.remove_flow(*k);
                }
                !drop
            });
        }
    }

    /// Seeded random arrival/departure churn, bit-compared against the
    /// batch oracle after every solve. Equal capacities keep the shares
    /// tie-heavy (the hardest case for cached-share bookkeeping).
    #[test]
    fn incremental_matches_batch_over_random_churn() {
        let mut rng = simcore::rng::SplitMix64::new(0x5eed_7fa1);
        let nodes = 10usize;
        for fabric in [None, Some(4.0e9)] {
            let caps = vec![950e6; nodes];
            let mut solver = FairshareSolver::new(&caps, &caps, fabric);
            let mut live: Vec<(FlowKey, FlowSpec)> = Vec::new();
            for step in 0..1_200 {
                let add = live.is_empty() || rng.next_below(10) < 6;
                if add {
                    let src = rng.next_below(nodes as u64) as usize;
                    let mut dst = rng.next_below(nodes as u64) as usize;
                    if dst == src {
                        dst = (dst + 1) % nodes;
                    }
                    let spec = FlowSpec { src, dst };
                    live.push((solver.add_flow(spec, step), spec));
                } else {
                    let at = rng.next_below(live.len() as u64) as usize;
                    let (k, _) = live.remove(at);
                    solver.remove_flow(k);
                }
                solver.solve();
                let specs: Vec<FlowSpec> = live.iter().map(|(_, s)| *s).collect();
                let oracle = max_min_rates(&specs, &caps, &caps, fabric);
                for ((k, _), want) in live.iter().zip(&oracle) {
                    assert_eq!(
                        solver.rate(*k).to_bits(),
                        want.to_bits(),
                        "step {step}: incremental {} vs batch {want}",
                        solver.rate(*k)
                    );
                }
            }
        }
    }

    /// The same churn discipline over randomized *rack* topologies: a
    /// seeded random rack assignment and tight uplinks (a 2-level
    /// resource set), bit-compared against the racked batch oracle after
    /// every solve — with and without a fabric cap on top.
    #[test]
    fn incremental_matches_batch_over_random_rack_churn() {
        let mut rng = simcore::rng::SplitMix64::new(0x5eed_7fa2);
        let nodes = 12usize;
        for fabric in [None, Some(3.0e9)] {
            for n_racks in [2usize, 4] {
                // Random (not necessarily contiguous or balanced) rack
                // assignment; every rack is guaranteed a member by
                // seeding the first n_racks nodes round-robin.
                let rack_of: Vec<usize> = (0..nodes)
                    .map(|i| {
                        if i < n_racks {
                            i
                        } else {
                            rng.next_below(n_racks as u64) as usize
                        }
                    })
                    .collect();
                // Tight uplinks so they genuinely bind: ~1.5 NICs worth
                // per rack regardless of member count.
                let uplink: Vec<f64> = (0..n_racks)
                    .map(|r| 950e6 * (1.0 + 0.5 * ((r % 2) as f64)))
                    .collect();
                let caps = vec![950e6; nodes];
                let racks = RackCaps {
                    rack_of: &rack_of,
                    uplink: &uplink,
                };
                let mut solver = FairshareSolver::with_racks(&caps, &caps, Some(racks), fabric);
                let mut live: Vec<(FlowKey, FlowSpec)> = Vec::new();
                for step in 0..600 {
                    let add = live.is_empty() || rng.next_below(10) < 6;
                    if add {
                        let src = rng.next_below(nodes as u64) as usize;
                        let mut dst = rng.next_below(nodes as u64) as usize;
                        if dst == src {
                            dst = (dst + 1) % nodes;
                        }
                        let spec = FlowSpec { src, dst };
                        live.push((solver.add_flow(spec, step), spec));
                    } else {
                        let at = rng.next_below(live.len() as u64) as usize;
                        let (k, _) = live.remove(at);
                        solver.remove_flow(k);
                    }
                    solver.solve();
                    let specs: Vec<FlowSpec> = live.iter().map(|(_, s)| *s).collect();
                    let oracle = max_min_rates_racked(&specs, &caps, &caps, Some(racks), fabric);
                    for ((k, _), want) in live.iter().zip(&oracle) {
                        assert_eq!(
                            solver.rate(*k).to_bits(),
                            want.to_bits(),
                            "racks {n_racks} step {step}: incremental {} vs batch {want}",
                            solver.rate(*k)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn slot_reuse_keeps_arrival_order() {
        // Remove a middle flow, add a new one: the new flow reuses the
        // slab slot but must sort *after* the survivors (fresh seq), so
        // the freeze order still matches a batch call in arrival order.
        let caps = [100.0f64; 4];
        let mut solver = FairshareSolver::new(&caps, &caps, None);
        let a = solver.add_flow(FlowSpec { src: 0, dst: 2 }, 0);
        let b = solver.add_flow(FlowSpec { src: 1, dst: 2 }, 1);
        let _c = solver.add_flow(FlowSpec { src: 3, dst: 2 }, 2);
        solver.remove_flow(b);
        let _d = solver.add_flow(FlowSpec { src: 1, dst: 2 }, 3);
        solver.solve();
        let oracle = max_min_rates(
            &[
                solver.spec(a),
                FlowSpec { src: 3, dst: 2 },
                FlowSpec { src: 1, dst: 2 },
            ],
            &caps,
            &caps,
            None,
        );
        assert_eq!(solver.rate(a).to_bits(), oracle[0].to_bits());
    }
}
