//! Max-min fair bandwidth allocation.
//!
//! The flow-level network model assigns each active flow the rate TCP (or
//! the IB hardware arbiter) would converge to: the *max-min fair*
//! allocation subject to per-NIC egress/ingress capacities and an optional
//! aggregate fabric capacity. The classic progressive-filling algorithm is
//! used: repeatedly find the most-contended resource, freeze all flows
//! crossing it at its fair share, subtract, and continue.

/// A flow as the solver sees it: which resources it crosses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source node index (egress resource).
    pub src: usize,
    /// Destination node index (ingress resource).
    pub dst: usize,
}

/// Compute max-min fair rates (bytes/s) for `flows`.
///
/// * `egress[n]` / `ingress[n]` — per-direction NIC capacities.
/// * `fabric` — optional aggregate capacity shared by all flows.
///
/// Flows with `src == dst` must be filtered out by the caller (loopback
/// does not cross the fabric).
pub fn max_min_rates(
    flows: &[FlowSpec],
    egress: &[f64],
    ingress: &[f64],
    fabric: Option<f64>,
) -> Vec<f64> {
    let nf = flows.len();
    if nf == 0 {
        return Vec::new();
    }
    let n = egress.len();
    assert_eq!(n, ingress.len(), "egress/ingress length mismatch");

    // Resource layout: [0,n) egress, [n,2n) ingress, optional 2n fabric.
    let n_res = 2 * n + usize::from(fabric.is_some());
    let mut remaining = vec![0.0f64; n_res];
    remaining[..n].copy_from_slice(egress);
    remaining[n..2 * n].copy_from_slice(ingress);
    if let Some(f) = fabric {
        remaining[2 * n] = f;
    }

    let mut unfrozen_count = vec![0usize; n_res];
    let resources_of = |f: &FlowSpec| -> [usize; 3] {
        let fab = if fabric.is_some() { 2 * n } else { usize::MAX };
        [f.src, n + f.dst, fab]
    };
    for f in flows {
        assert!(f.src != f.dst, "loopback flows must not enter the solver");
        assert!(f.src < n && f.dst < n, "flow references unknown node");
        for r in resources_of(f) {
            if r != usize::MAX {
                unfrozen_count[r] += 1;
            }
        }
    }

    let mut rates = vec![f64::NAN; nf];
    let mut frozen = vec![false; nf];
    let mut n_frozen = 0;

    // Strictly positive floor for frozen rates. Progressive filling
    // subtracts fair shares from `remaining`, and that subtraction can
    // drift a capacity a few ulps below zero; the `.max(0.0)` clamp then
    // freezes every remaining flow at exactly 0 B/s, which the network
    // layer turns into an infinite completion time (the flow is skipped
    // by `next_event_time` and never finishes). Relative to the largest
    // capacity, 1e-12 is far below any real share but keeps every
    // completion time finite.
    let max_cap = remaining.iter().cloned().fold(0.0f64, f64::max);
    let rate_floor = (max_cap * 1e-12).max(f64::MIN_POSITIVE);

    while n_frozen < nf {
        // Find the bottleneck: the resource with the smallest fair share.
        let mut best_share = f64::INFINITY;
        let mut best_res = usize::MAX;
        for (r, &cnt) in unfrozen_count.iter().enumerate() {
            if cnt > 0 {
                let share = (remaining[r] / cnt as f64).max(0.0);
                if share < best_share {
                    best_share = share;
                    best_res = r;
                }
            }
        }
        if best_res == usize::MAX {
            // No contended resources remain (shouldn't happen while flows
            // are unfrozen), freeze the rest at the floor defensively.
            for (i, fz) in frozen.iter_mut().enumerate() {
                if !*fz {
                    rates[i] = rate_floor;
                }
            }
            break;
        }

        // Freeze every unfrozen flow crossing the bottleneck.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let crosses = resources_of(f).contains(&best_res);
            if crosses {
                frozen[i] = true;
                n_frozen += 1;
                rates[i] = best_share.max(rate_floor);
                for r in resources_of(f) {
                    if r != usize::MAX {
                        remaining[r] = (remaining[r] - best_share).max(0.0);
                        unfrozen_count[r] -= 1;
                    }
                }
            }
        }
    }

    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_bottleneck() {
        let rates = max_min_rates(
            &[FlowSpec { src: 0, dst: 1 }],
            &[100.0, 100.0],
            &[80.0, 80.0],
            None,
        );
        assert!(close(rates[0], 80.0), "{rates:?}");
    }

    #[test]
    fn equal_flows_share_equally() {
        let flows = vec![FlowSpec { src: 0, dst: 2 }, FlowSpec { src: 1, dst: 2 }];
        let rates = max_min_rates(&flows, &[100.0; 3], &[100.0; 3], None);
        assert!(close(rates[0], 50.0) && close(rates[1], 50.0), "{rates:?}");
    }

    #[test]
    fn max_min_gives_leftover_to_uncontended() {
        // Flows: A: 0->2, B: 1->2, C: 1->3.
        // Ingress 2 is shared by A and B; egress 1 is shared by B and C.
        // Max-min: bottleneck ingress2 share 50 freezes A,B; then C gets
        // egress1's leftover 50... with all caps 100: first bottleneck is
        // ingress2 (2 flows -> 50) and egress1 (2 flows -> 50) tie; after
        // freezing, C gets min(remaining egress1=50, ingress3=100) = 50.
        let flows = vec![
            FlowSpec { src: 0, dst: 2 },
            FlowSpec { src: 1, dst: 2 },
            FlowSpec { src: 1, dst: 3 },
        ];
        let rates = max_min_rates(&flows, &[100.0; 4], &[100.0; 4], None);
        assert!(close(rates[0], 50.0), "{rates:?}");
        assert!(close(rates[1], 50.0), "{rates:?}");
        assert!(close(rates[2], 50.0), "{rates:?}");
    }

    #[test]
    fn asymmetric_capacities() {
        // Fast sender into slow receiver plus a second fast pair.
        let flows = vec![FlowSpec { src: 0, dst: 1 }, FlowSpec { src: 2, dst: 3 }];
        let egress = [1000.0, 1000.0, 1000.0, 1000.0];
        let ingress = [1000.0, 10.0, 1000.0, 1000.0];
        let rates = max_min_rates(&flows, &egress, &ingress, None);
        assert!(close(rates[0], 10.0), "{rates:?}");
        assert!(close(rates[1], 1000.0), "{rates:?}");
    }

    #[test]
    fn fabric_cap_limits_aggregate() {
        let flows = vec![FlowSpec { src: 0, dst: 2 }, FlowSpec { src: 1, dst: 3 }];
        let rates = max_min_rates(&flows, &[100.0; 4], &[100.0; 4], Some(120.0));
        let total: f64 = rates.iter().sum();
        assert!(total <= 120.0 + 1e-6, "{rates:?}");
        assert!(close(rates[0], 60.0) && close(rates[1], 60.0), "{rates:?}");
    }

    #[test]
    fn incast_shares_receiver() {
        // 7 senders to one receiver: classic shuffle incast.
        let flows: Vec<FlowSpec> = (1..8).map(|s| FlowSpec { src: s, dst: 0 }).collect();
        let rates = max_min_rates(&flows, &[950.0; 8], &[950.0; 8], None);
        for r in &rates {
            assert!(close(*r, 950.0 / 7.0), "{rates:?}");
        }
    }

    #[test]
    fn work_conservation_and_feasibility() {
        // Random-ish topology, checked for the two fairness invariants:
        // feasibility (no resource over capacity) and work conservation
        // (every flow is bottlenecked somewhere).
        let flows = vec![
            FlowSpec { src: 0, dst: 1 },
            FlowSpec { src: 0, dst: 2 },
            FlowSpec { src: 1, dst: 2 },
            FlowSpec { src: 3, dst: 0 },
            FlowSpec { src: 2, dst: 0 },
            FlowSpec { src: 3, dst: 1 },
        ];
        let egress = [120.0, 90.0, 200.0, 60.0];
        let ingress = [80.0, 150.0, 100.0, 70.0];
        let rates = max_min_rates(&flows, &egress, &ingress, None);

        let mut eg_used = [0.0; 4];
        let mut in_used = [0.0; 4];
        for (f, r) in flows.iter().zip(&rates) {
            eg_used[f.src] += r;
            in_used[f.dst] += r;
            assert!(*r > 0.0);
        }
        for i in 0..4 {
            assert!(eg_used[i] <= egress[i] + 1e-6);
            assert!(in_used[i] <= ingress[i] + 1e-6);
        }
        // Work conservation: each flow saturates at least one resource.
        for (f, r) in flows.iter().zip(&rates) {
            let eg_full = eg_used[f.src] >= egress[f.src] - 1e-6;
            let in_full = in_used[f.dst] >= ingress[f.dst] - 1e-6;
            assert!(eg_full || in_full, "flow {f:?} rate {r} not bottlenecked");
        }
    }

    #[test]
    fn drifted_negative_capacity_never_freezes_a_flow_at_zero() {
        // Capacities reaching the solver are themselves differences of
        // floats (link rate minus reserved bandwidth, remaining after a
        // partial recompute), so they can drift a few ulps below zero.
        // 0.3 - 0.1 - 0.1 - 0.1 is the classic example: ~-2.8e-17.
        let drifted = 0.3_f64 - 0.1 - 0.1 - 0.1;
        assert!(drifted < 0.0, "test premise: the subtraction must drift");
        let rates = max_min_rates(
            &[FlowSpec { src: 0, dst: 1 }, FlowSpec { src: 1, dst: 0 }],
            &[drifted, 100.0],
            &[100.0, 100.0],
            None,
        );
        // Before the floor, flow 0 froze at exactly 0 B/s — an infinite
        // completion time. Every rate must be strictly positive.
        for r in &rates {
            assert!(*r > 0.0, "{rates:?}");
        }
        // The unaffected flow still gets its real share.
        assert!(close(rates[1], 100.0), "{rates:?}");
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[1.0], &[1.0], None).is_empty());
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn rejects_loopback() {
        let _ = max_min_rates(
            &[FlowSpec { src: 1, dst: 1 }],
            &[1.0, 1.0],
            &[1.0, 1.0],
            None,
        );
    }
}
