//! Per-node network throughput monitoring.
//!
//! Reproduces the measurement the paper plots in Fig. 7(b): megabytes
//! received per second on one slave node, sampled once per second over the
//! course of the job.

use simcore::stats::TimeSeries;
use simcore::time::{SimDuration, SimTime};

use crate::network::Network;
use crate::topology::NodeId;

/// Samples per-node receive/transmit throughput at a fixed interval.
#[derive(Debug)]
pub struct NetworkMonitor {
    interval: SimDuration,
    next_sample: SimTime,
    rx: Vec<TimeSeries>,
    tx: Vec<TimeSeries>,
}

impl NetworkMonitor {
    /// Monitor `n_nodes` hosts, sampling every `interval`.
    pub fn new(n_nodes: usize, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        NetworkMonitor {
            interval,
            next_sample: SimTime::ZERO + interval,
            rx: (0..n_nodes).map(|_| TimeSeries::new()).collect(),
            tx: (0..n_nodes).map(|_| TimeSeries::new()).collect(),
        }
    }

    /// When the next sample is due.
    pub fn next_sample_time(&self) -> SimTime {
        self.next_sample
    }

    /// Take a sample if `now` has reached the sampling instant. The caller
    /// (the simulation driver) must have advanced `network` to `now`.
    pub fn maybe_sample(&mut self, now: SimTime, network: &mut Network) {
        while self.next_sample <= now {
            let at = self.next_sample;
            let dt = self.interval.as_secs_f64();
            for node in 0..self.rx.len() {
                let rx_bytes = network.drain_rx_bytes(NodeId(node), at);
                let tx_bytes = network.drain_tx_bytes(NodeId(node), at);
                self.rx[node].push(at, rx_bytes / dt / 1e6);
                self.tx[node].push(at, tx_bytes / dt / 1e6);
            }
            self.next_sample += self.interval;
        }
    }

    /// Emit the final, possibly partial, sampling window ending at `end`.
    ///
    /// `maybe_sample` only fires on whole-interval boundaries, so bytes
    /// moved between the last tick and job end would otherwise be
    /// silently dropped from the series. The tail sample reports the
    /// rate over the partial window (bytes / partial seconds), stamped
    /// at `end`. Idempotent: a second flush at the same instant, or a
    /// flush landing exactly on a tick, adds nothing.
    pub fn flush(&mut self, end: SimTime, network: &mut Network) {
        self.maybe_sample(end, network);
        let window_start = self.next_sample - self.interval;
        if end <= window_start {
            return;
        }
        let dt = end.since(window_start).as_secs_f64();
        for node in 0..self.rx.len() {
            let rx_bytes = network.drain_rx_bytes(NodeId(node), end);
            let tx_bytes = network.drain_tx_bytes(NodeId(node), end);
            self.rx[node].push(end, rx_bytes / dt / 1e6);
            self.tx[node].push(end, tx_bytes / dt / 1e6);
        }
        // The flushed window is consumed; the next whole interval starts
        // at `end`.
        self.next_sample = end + self.interval;
    }

    /// Receive throughput series (MB/s) for `node`.
    pub fn rx_series(&self, node: NodeId) -> &TimeSeries {
        &self.rx[node.0]
    }

    /// Transmit throughput series (MB/s) for `node`.
    pub fn tx_series(&self, node: NodeId) -> &TimeSeries {
        &self.tx[node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Interconnect;
    use crate::topology::Topology;
    use simcore::units::ByteSize;

    #[test]
    fn samples_capture_transfer_rate() {
        let mut net = Network::new(Topology::single_switch(2, Interconnect::GigE1));
        let mut mon = NetworkMonitor::new(2, SimDuration::from_secs(1));
        // 560 MiB at 112 MB/s is about 5.2 s of transfer.
        net.start_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            ByteSize::from_mib(560),
            0,
        );
        loop {
            let sample_at = mon.next_sample_time();
            match net.next_event_time() {
                Some(t) if t <= sample_at => {
                    let done = net.advance_to(t);
                    if !done.is_empty() {
                        break;
                    }
                }
                _ => {
                    net.advance_to(sample_at);
                    mon.maybe_sample(sample_at, &mut net);
                }
            }
        }
        let series = mon.rx_series(NodeId(1));
        assert!(series.len() >= 5);
        let peak = series.peak().unwrap();
        assert!((peak - 112.0).abs() < 2.0, "peak {peak}");
        // Sender saw the same bytes leave.
        let tx_peak = mon.tx_series(NodeId(0)).peak().unwrap();
        assert!((tx_peak - 112.0).abs() < 2.0);
        // Node 0 received nothing.
        assert!(mon.rx_series(NodeId(0)).peak().unwrap() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = NetworkMonitor::new(1, SimDuration::ZERO);
    }

    /// Bytes moved between samples: each sample's rate applies to the
    /// window since the previous sample (or t=0).
    fn integrated_bytes(series: &TimeSeries) -> f64 {
        let mut prev = SimTime::ZERO;
        let mut total = 0.0;
        for s in series.samples() {
            total += s.value * 1e6 * s.time.since(prev).as_secs_f64();
            prev = s.time;
        }
        total
    }

    #[test]
    fn flush_captures_final_partial_interval() {
        let mut net = Network::new(Topology::single_switch(2, Interconnect::GigE1));
        let mut mon = NetworkMonitor::new(2, SimDuration::from_secs(1));
        let total = ByteSize::from_mib(280);
        net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), total, 0);
        let end;
        loop {
            let sample_at = mon.next_sample_time();
            match net.next_event_time() {
                Some(t) if t <= sample_at => {
                    let done = net.advance_to(t);
                    if !done.is_empty() {
                        end = t;
                        break;
                    }
                }
                _ => {
                    net.advance_to(sample_at);
                    mon.maybe_sample(sample_at, &mut net);
                }
            }
        }
        // The flow must end mid-interval for this test to bite.
        assert!(end.as_nanos() % 1_000_000_000 != 0, "end {end:?}");
        let before = integrated_bytes(mon.rx_series(NodeId(1)));
        let len_before = mon.rx_series(NodeId(1)).len();
        mon.flush(end, &mut net);
        let after = integrated_bytes(mon.rx_series(NodeId(1)));
        let sent = total.as_bytes() as f64;
        // Without the flush the tail bytes were dropped; with it the
        // series integrates back to exactly the bytes transferred.
        assert!(after > before, "flush must add the tail window");
        assert!((after - sent).abs() / sent < 1e-9, "{after} vs {sent}");
        let last = *mon.rx_series(NodeId(1)).samples().last().unwrap();
        assert_eq!(last.time, end);
        // tx side accounts for the same bytes.
        let tx_total = integrated_bytes(mon.tx_series(NodeId(0)));
        assert!((tx_total - sent).abs() / sent < 1e-9);
        // Flushing again at the same instant adds nothing.
        mon.flush(end, &mut net);
        assert_eq!(mon.rx_series(NodeId(1)).len(), len_before + 1);
    }

    #[test]
    fn flush_on_tick_boundary_adds_no_sample() {
        let mut net = Network::new(Topology::single_switch(2, Interconnect::GigE1));
        let mut mon = NetworkMonitor::new(2, SimDuration::from_secs(1));
        for t in [1, 2] {
            let at = SimTime::from_secs(t);
            net.advance_to(at);
            mon.maybe_sample(at, &mut net);
        }
        mon.flush(SimTime::from_secs(2), &mut net);
        // Whole intervals at 1 s and 2 s only; no extra tail sample.
        assert_eq!(mon.rx_series(NodeId(0)).len(), 2);
    }
}
