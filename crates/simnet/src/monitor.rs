//! Per-node network throughput monitoring.
//!
//! Reproduces the measurement the paper plots in Fig. 7(b): megabytes
//! received per second on one slave node, sampled once per second over the
//! course of the job.

use simcore::stats::TimeSeries;
use simcore::time::{SimDuration, SimTime};

use crate::network::Network;
use crate::topology::NodeId;

/// Samples per-node receive/transmit throughput at a fixed interval.
pub struct NetworkMonitor {
    interval: SimDuration,
    next_sample: SimTime,
    rx: Vec<TimeSeries>,
    tx: Vec<TimeSeries>,
}

impl NetworkMonitor {
    /// Monitor `n_nodes` hosts, sampling every `interval`.
    pub fn new(n_nodes: usize, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        NetworkMonitor {
            interval,
            next_sample: SimTime::ZERO + interval,
            rx: (0..n_nodes).map(|_| TimeSeries::new()).collect(),
            tx: (0..n_nodes).map(|_| TimeSeries::new()).collect(),
        }
    }

    /// When the next sample is due.
    pub fn next_sample_time(&self) -> SimTime {
        self.next_sample
    }

    /// Take a sample if `now` has reached the sampling instant. The caller
    /// (the simulation driver) must have advanced `network` to `now`.
    pub fn maybe_sample(&mut self, now: SimTime, network: &mut Network) {
        while self.next_sample <= now {
            let at = self.next_sample;
            let dt = self.interval.as_secs_f64();
            for node in 0..self.rx.len() {
                let rx_bytes = network.drain_rx_bytes(NodeId(node), at);
                let tx_bytes = network.drain_tx_bytes(NodeId(node), at);
                self.rx[node].push(at, rx_bytes / dt / 1e6);
                self.tx[node].push(at, tx_bytes / dt / 1e6);
            }
            self.next_sample += self.interval;
        }
    }

    /// Receive throughput series (MB/s) for `node`.
    pub fn rx_series(&self, node: NodeId) -> &TimeSeries {
        &self.rx[node.0]
    }

    /// Transmit throughput series (MB/s) for `node`.
    pub fn tx_series(&self, node: NodeId) -> &TimeSeries {
        &self.tx[node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Interconnect;
    use crate::topology::Topology;
    use simcore::units::ByteSize;

    #[test]
    fn samples_capture_transfer_rate() {
        let mut net = Network::new(Topology::single_switch(2, Interconnect::GigE1));
        let mut mon = NetworkMonitor::new(2, SimDuration::from_secs(1));
        // 560 MiB at 112 MB/s is about 5.2 s of transfer.
        net.start_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            ByteSize::from_mib(560),
            0,
        );
        loop {
            let sample_at = mon.next_sample_time();
            match net.next_event_time() {
                Some(t) if t <= sample_at => {
                    let done = net.advance_to(t);
                    if !done.is_empty() {
                        break;
                    }
                }
                _ => {
                    net.advance_to(sample_at);
                    mon.maybe_sample(sample_at, &mut net);
                }
            }
        }
        let series = mon.rx_series(NodeId(1));
        assert!(series.len() >= 5);
        let peak = series.peak().unwrap();
        assert!((peak - 112.0).abs() < 2.0, "peak {peak}");
        // Sender saw the same bytes leave.
        let tx_peak = mon.tx_series(NodeId(0)).peak().unwrap();
        assert!((tx_peak - 112.0).abs() < 2.0);
        // Node 0 received nothing.
        assert!(mon.rx_series(NodeId(0)).peak().unwrap() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = NetworkMonitor::new(1, SimDuration::ZERO);
    }
}
