//! Runs a [`BenchConfig`] through the backend it selects.

use crate::backend::backend_for;
use crate::config::BenchConfig;
use crate::error::Error;
use crate::report::BenchReport;

/// Run one micro-benchmark to completion on the backend named by
/// [`BenchConfig::backend`] — the discrete-event simulator by default,
/// or the closed-form analytic model (see [`crate::backend`]).
pub fn run(config: &BenchConfig) -> Result<BenchReport, Error> {
    backend_for(config.backend).run(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::MicroBenchmark;
    use crate::config::ShuffleVolume;
    use simcore::units::ByteSize;
    use simnet::Interconnect;

    fn small(bench: MicroBenchmark, ic: Interconnect) -> BenchConfig {
        let mut c = BenchConfig::cluster_a_default(bench, ic, ByteSize::from_mib(256));
        c.slaves = 2;
        c.num_maps = 4;
        c.num_reduces = 4;
        c
    }

    #[test]
    fn all_three_benchmarks_run() {
        for bench in MicroBenchmark::ALL {
            let report = run(&small(bench, Interconnect::GigE1)).unwrap();
            assert_eq!(report.result.counters.maps_completed, 4);
            assert_eq!(report.result.counters.reduces_completed, 4);
            assert!(report.job_time_secs() > 0.0);
        }
    }

    #[test]
    fn skew_is_slower_than_avg() {
        let avg = run(&small(MicroBenchmark::Avg, Interconnect::GigE1)).unwrap();
        let skew = run(&small(MicroBenchmark::Skew, Interconnect::GigE1)).unwrap();
        // At this toy scale fixed overheads dominate; the paper's ~2x
        // factor emerges at multi-gigabyte sizes (checked by the fig2
        // bench and the integration tests).
        assert!(
            skew.job_time_secs() > avg.job_time_secs() * 1.1,
            "skew {} vs avg {}",
            skew.job_time_secs(),
            avg.job_time_secs()
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&small(MicroBenchmark::Rand, Interconnect::IpoibQdr)).unwrap();
        let b = run(&small(MicroBenchmark::Rand, Interconnect::IpoibQdr)).unwrap();
        assert_eq!(a.result.job_time, b.result.job_time);
        assert_eq!(a.result.counters, b.result.counters);
    }

    #[test]
    fn traced_config_yields_phases_that_reconcile() {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE1);
        c.trace = true;
        let r = run(&c).unwrap();
        let b = r.phases().expect("breakdown present when traced");
        assert!(b.reconciles(0.01), "{b:?}");
        assert!((b.total_s - r.job_time_secs()).abs() < 1e-9);
        assert!(r.result.trace.is_some());
        // The report prints the extra phase section.
        let text = r.to_string();
        assert!(text.contains("phase breakdown"), "{text}");
        assert!(text.contains("shuffle"), "{text}");
        // Tracing never perturbs the simulation itself.
        let mut plain = c.clone();
        plain.trace = false;
        let p = run(&plain).unwrap();
        assert_eq!(p.result.job_time, r.result.job_time);
        assert_eq!(p.result.counters, r.result.counters);
        assert!(p.phases().is_none());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE1);
        c.slaves = 0;
        assert!(run(&c).is_err());
    }

    #[test]
    fn injected_faults_recover_and_conserve_records() {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE10);
        c.volume = ShuffleVolume::PairsPerMap(10_000);
        c.faults.map_failure_prob = 0.2;
        c.faults.reduce_failure_prob = 0.2;
        let r = run(&c).unwrap();
        assert!(r.result.succeeded());
        assert!(r.result.counters.failed_task_attempts > 0);
        // Retried work never double-counts logical records.
        assert_eq!(r.result.counters.map_output_records, 40_000);
        assert_eq!(r.result.counters.reduce_input_records, 40_000);
    }

    #[test]
    fn event_budget_truncates_gracefully_with_diagnostics() {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE1);
        c.max_events = Some(50);
        let r = run(&c).unwrap();
        assert!(!r.result.succeeded());
        assert_eq!(
            r.result.outcome,
            mapreduce::faults::JobOutcome::BudgetExceeded
        );
        let diag = r
            .result
            .budget
            .as_ref()
            .expect("breach carries diagnostics");
        assert!(diag.breach.contains("event budget"), "{}", diag.breach);
        assert_eq!(diag.events, 50);
        assert_eq!(diag.maps_total, 4);
        assert_eq!(diag.reduces_total, 4);
        assert!(diag.maps_done <= 4 && diag.reduces_done <= 4);
        // The one-line summary is what binaries print before exit 6.
        let s = diag.summary();
        assert!(!s.contains('\n') && s.contains("maps"), "{s}");
        // Truncation is deterministic: same budget, same cut point.
        let again = run(&c).unwrap();
        assert_eq!(again.result.job_time, r.result.job_time);
        assert_eq!(again.result.budget.as_ref().unwrap().at, diag.at);
    }

    #[test]
    fn sim_time_budget_truncates_and_round_trips() {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE1);
        let clean = run(&c).unwrap();
        c.max_sim_secs = Some(clean.job_time_secs() / 2.0);
        let r = run(&c).unwrap();
        assert_eq!(
            r.result.outcome,
            mapreduce::faults::JobOutcome::BudgetExceeded
        );
        let diag = r.result.budget.as_ref().unwrap();
        assert!(
            diag.breach.contains("simulated-time budget"),
            "{}",
            diag.breach
        );
        // A truncated report is still a valid artifact: the budget
        // diagnostics and outcome survive the canonical JSON round trip.
        let text = r.to_json().to_pretty();
        let back =
            crate::report::BenchReport::from_json(&simcore::json::Json::parse(&text).unwrap())
                .unwrap();
        assert_eq!(back.to_json().to_pretty(), text);
        assert_eq!(
            back.result.outcome,
            mapreduce::faults::JobOutcome::BudgetExceeded
        );
        assert_eq!(back.result.budget.as_ref().unwrap().events, diag.events);
        // An unlimited run is untouched.
        assert!(clean.result.succeeded());
        assert!(clean.result.budget.is_none());
    }

    #[test]
    fn oversubscribed_racks_slow_the_shuffle() {
        // Satellite regression for the once-dead topology path: the same
        // job over a 2-rack, heavily oversubscribed fabric must be
        // strictly slower than the flat crossbar, because the all-to-all
        // shuffle is dominated by cross-rack traffic.
        let mut flat = small(MicroBenchmark::Avg, Interconnect::GigE1);
        flat.slaves = 4;
        flat.num_maps = 8;
        flat.num_reduces = 8;
        let mut racked = flat.clone();
        racked.racks = 2;
        racked.oversubscription = 8.0;
        let f = run(&flat).unwrap();
        let r = run(&racked).unwrap();
        assert!(
            r.job_time_secs() > f.job_time_secs(),
            "racked {} vs flat {}",
            r.job_time_secs(),
            f.job_time_secs()
        );
    }

    #[test]
    fn fabric_cap_slows_the_shuffle() {
        let mut flat = small(MicroBenchmark::Avg, Interconnect::GigE10);
        flat.slaves = 4;
        let mut capped = flat.clone();
        // Well under 4 x 10GigE of aggregate demand.
        capped.fabric_cap_mb_s = Some(200.0);
        let f = run(&flat).unwrap();
        let c = run(&capped).unwrap();
        assert!(
            c.job_time_secs() > f.job_time_secs(),
            "capped {} vs flat {}",
            c.job_time_secs(),
            f.job_time_secs()
        );
    }

    #[test]
    fn factor_one_racks_are_bit_identical_to_flat() {
        // Non-blocking racks add no solver resources, so grouping alone
        // must not perturb a single bit of the simulation — for every
        // benchmark and interconnect the figures use.
        for bench in MicroBenchmark::ALL {
            for ic in [Interconnect::GigE1, Interconnect::IpoibQdr] {
                let flat = small(bench, ic);
                let mut racked = flat.clone();
                racked.racks = 2;
                racked.oversubscription = 1.0;
                let f = run(&flat).unwrap();
                let r = run(&racked).unwrap();
                assert_eq!(f.result.job_time, r.result.job_time, "{bench} {ic:?}");
                assert_eq!(f.result.counters, r.result.counters, "{bench} {ic:?}");
            }
        }
    }

    #[test]
    fn monitor_interval_is_config_driven() {
        let base = small(MicroBenchmark::Avg, Interconnect::GigE1);
        let coarse = run(&base).unwrap();

        // A 10x finer interval yields strictly more samples of both
        // monitors without changing the simulation outcome.
        let mut fine = base.clone();
        fine.monitor_interval_s = 0.1;
        let f = run(&fine).unwrap();
        assert_eq!(f.result.job_time, coarse.result.job_time);
        assert!(
            f.result.cpu_series[0].len() > coarse.result.cpu_series[0].len(),
            "fine {} vs coarse {}",
            f.result.cpu_series[0].len(),
            coarse.result.cpu_series[0].len()
        );
        assert!(f.result.net_rx_series[0].len() > coarse.result.net_rx_series[0].len());

        // An interval longer than the whole job still records the final
        // partial window: the end-of-run flush is what makes short jobs
        // observable at all.
        let mut huge = base;
        huge.monitor_interval_s = 1e6;
        let h = run(&huge).unwrap();
        assert_eq!(h.result.job_time, coarse.result.job_time);
        assert!(!h.result.cpu_series[0].is_empty());
        assert!(!h.result.net_rx_series[0].is_empty());
        // The flush stamps the window at the point the engine drained,
        // which never exceeds the reported job time.
        let last = h.result.cpu_series[0].samples().last().unwrap();
        assert!(last.time > simcore::time::SimTime::ZERO);
        assert!(last.time <= simcore::time::SimTime::ZERO + h.result.job_time);
    }

    #[test]
    fn record_conservation_across_benchmarks() {
        for bench in MicroBenchmark::ALL {
            let mut c = small(bench, Interconnect::GigE10);
            c.volume = ShuffleVolume::PairsPerMap(10_000);
            let r = run(&c).unwrap();
            assert_eq!(r.result.counters.map_output_records, 40_000, "{bench}");
            assert_eq!(r.result.counters.reduce_input_records, 40_000, "{bench}");
        }
    }
}
