//! Runs a [`BenchConfig`] through the simulated engine.

use mapreduce::engine::Engine;

use crate::config::BenchConfig;
use crate::error::Error;
use crate::report::BenchReport;

/// Run one micro-benchmark to completion.
pub fn run(config: &BenchConfig) -> Result<BenchReport, Error> {
    config.validate().map_err(Error::Config)?;
    let spec = config.job_spec();
    let factory = config.factory();
    let mut engine = Engine::new(
        spec,
        factory.as_ref(),
        config.node_spec(),
        config.slaves,
        config.interconnect,
    );
    if config.trace {
        engine.enable_tracing();
    }
    let result = engine.run();
    Ok(BenchReport {
        config: config.clone(),
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::MicroBenchmark;
    use crate::config::ShuffleVolume;
    use simcore::units::ByteSize;
    use simnet::Interconnect;

    fn small(bench: MicroBenchmark, ic: Interconnect) -> BenchConfig {
        let mut c = BenchConfig::cluster_a_default(bench, ic, ByteSize::from_mib(256));
        c.slaves = 2;
        c.num_maps = 4;
        c.num_reduces = 4;
        c
    }

    #[test]
    fn all_three_benchmarks_run() {
        for bench in MicroBenchmark::ALL {
            let report = run(&small(bench, Interconnect::GigE1)).unwrap();
            assert_eq!(report.result.counters.maps_completed, 4);
            assert_eq!(report.result.counters.reduces_completed, 4);
            assert!(report.job_time_secs() > 0.0);
        }
    }

    #[test]
    fn skew_is_slower_than_avg() {
        let avg = run(&small(MicroBenchmark::Avg, Interconnect::GigE1)).unwrap();
        let skew = run(&small(MicroBenchmark::Skew, Interconnect::GigE1)).unwrap();
        // At this toy scale fixed overheads dominate; the paper's ~2x
        // factor emerges at multi-gigabyte sizes (checked by the fig2
        // bench and the integration tests).
        assert!(
            skew.job_time_secs() > avg.job_time_secs() * 1.1,
            "skew {} vs avg {}",
            skew.job_time_secs(),
            avg.job_time_secs()
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&small(MicroBenchmark::Rand, Interconnect::IpoibQdr)).unwrap();
        let b = run(&small(MicroBenchmark::Rand, Interconnect::IpoibQdr)).unwrap();
        assert_eq!(a.result.job_time, b.result.job_time);
        assert_eq!(a.result.counters, b.result.counters);
    }

    #[test]
    fn traced_config_yields_phases_that_reconcile() {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE1);
        c.trace = true;
        let r = run(&c).unwrap();
        let b = r.phases().expect("breakdown present when traced");
        assert!(b.reconciles(0.01), "{b:?}");
        assert!((b.total_s - r.job_time_secs()).abs() < 1e-9);
        assert!(r.result.trace.is_some());
        // The report prints the extra phase section.
        let text = r.to_string();
        assert!(text.contains("phase breakdown"), "{text}");
        assert!(text.contains("shuffle"), "{text}");
        // Tracing never perturbs the simulation itself.
        let mut plain = c.clone();
        plain.trace = false;
        let p = run(&plain).unwrap();
        assert_eq!(p.result.job_time, r.result.job_time);
        assert_eq!(p.result.counters, r.result.counters);
        assert!(p.phases().is_none());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE1);
        c.slaves = 0;
        assert!(run(&c).is_err());
    }

    #[test]
    fn injected_faults_recover_and_conserve_records() {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE10);
        c.volume = ShuffleVolume::PairsPerMap(10_000);
        c.faults.map_failure_prob = 0.2;
        c.faults.reduce_failure_prob = 0.2;
        let r = run(&c).unwrap();
        assert!(r.result.succeeded());
        assert!(r.result.counters.failed_task_attempts > 0);
        // Retried work never double-counts logical records.
        assert_eq!(r.result.counters.map_output_records, 40_000);
        assert_eq!(r.result.counters.reduce_input_records, 40_000);
    }

    #[test]
    fn event_budget_truncates_gracefully_with_diagnostics() {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE1);
        c.max_events = Some(50);
        let r = run(&c).unwrap();
        assert!(!r.result.succeeded());
        assert_eq!(
            r.result.outcome,
            mapreduce::faults::JobOutcome::BudgetExceeded
        );
        let diag = r
            .result
            .budget
            .as_ref()
            .expect("breach carries diagnostics");
        assert!(diag.breach.contains("event budget"), "{}", diag.breach);
        assert_eq!(diag.events, 50);
        assert_eq!(diag.maps_total, 4);
        assert_eq!(diag.reduces_total, 4);
        assert!(diag.maps_done <= 4 && diag.reduces_done <= 4);
        // The one-line summary is what binaries print before exit 6.
        let s = diag.summary();
        assert!(!s.contains('\n') && s.contains("maps"), "{s}");
        // Truncation is deterministic: same budget, same cut point.
        let again = run(&c).unwrap();
        assert_eq!(again.result.job_time, r.result.job_time);
        assert_eq!(again.result.budget.as_ref().unwrap().at, diag.at);
    }

    #[test]
    fn sim_time_budget_truncates_and_round_trips() {
        let mut c = small(MicroBenchmark::Avg, Interconnect::GigE1);
        let clean = run(&c).unwrap();
        c.max_sim_secs = Some(clean.job_time_secs() / 2.0);
        let r = run(&c).unwrap();
        assert_eq!(
            r.result.outcome,
            mapreduce::faults::JobOutcome::BudgetExceeded
        );
        let diag = r.result.budget.as_ref().unwrap();
        assert!(
            diag.breach.contains("simulated-time budget"),
            "{}",
            diag.breach
        );
        // A truncated report is still a valid artifact: the budget
        // diagnostics and outcome survive the canonical JSON round trip.
        let text = r.to_json().to_pretty();
        let back =
            crate::report::BenchReport::from_json(&simcore::json::Json::parse(&text).unwrap())
                .unwrap();
        assert_eq!(back.to_json().to_pretty(), text);
        assert_eq!(
            back.result.outcome,
            mapreduce::faults::JobOutcome::BudgetExceeded
        );
        assert_eq!(back.result.budget.as_ref().unwrap().events, diag.events);
        // An unlimited run is untouched.
        assert!(clean.result.succeeded());
        assert!(clean.result.budget.is_none());
    }

    #[test]
    fn record_conservation_across_benchmarks() {
        for bench in MicroBenchmark::ALL {
            let mut c = small(bench, Interconnect::GigE10);
            c.volume = ShuffleVolume::PairsPerMap(10_000);
            let r = run(&c).unwrap();
            assert_eq!(r.result.counters.map_output_records, 40_000, "{bench}");
            assert_eq!(r.result.counters.reduce_input_records, 40_000, "{bench}");
        }
    }
}
