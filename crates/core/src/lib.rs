//! # mrbench — a micro-benchmark suite for stand-alone Hadoop MapReduce
//!
//! A Rust reproduction of the micro-benchmark suite of Shankar, Lu,
//! Rahman, Islam & Panda, *"A Micro-benchmark Suite for Evaluating Hadoop
//! MapReduce on High-Performance Networks"* (BPOE 2014): three
//! micro-benchmarks (**MR-AVG**, **MR-RAND**, **MR-SKEW**) that measure
//! the job execution time of stand-alone MapReduce — no HDFS — under
//! different intermediate data distributions, key/value geometries, data
//! types, task counts, and network interconnects.
//!
//! Because no Hadoop cluster or InfiniBand fabric is available here, the
//! suite runs over a faithful discrete-event simulation of the paper's
//! two testbeds (see the `mapreduce`, `cluster`, and `simnet` crates);
//! the data plane (Writable serialization, IFile framing, partitioners,
//! `java.util.Random`) is real code, and only *time* is simulated.
//!
//! ## Quick start
//!
//! ```
//! use mrbench::{BenchConfig, MicroBenchmark, run};
//! use simcore::units::ByteSize;
//! use simnet::Interconnect;
//!
//! let mut config = BenchConfig::cluster_a_default(
//!     MicroBenchmark::Avg,
//!     Interconnect::IpoibQdr,
//!     ByteSize::from_mib(256),
//! );
//! config.slaves = 2;
//! config.num_maps = 4;
//! config.num_reduces = 4;
//! let report = run(&config).expect("valid config");
//! println!("{report}");
//! assert!(report.job_time_secs() > 0.0);
//! ```

pub mod artifact;
pub mod backend;
pub mod bench;
pub mod calib;
pub mod cli;
pub mod config;
pub mod error;
pub mod gen;
pub mod partitioners;
pub mod report;
pub mod runner;
pub mod store;
pub mod sweep;

pub use artifact::{ArtifactPaths, Artifacts, Panel};
pub use backend::{backend_for, Backend};
pub use bench::MicroBenchmark;
pub use config::{BackendKind, BenchConfig, ShuffleVolume};
pub use error::Error;
pub use gen::KvGenerator;
pub use report::BenchReport;
pub use runner::run;
pub use store::{atomic_write, config_digest, ResultStore};
pub use sweep::{Sweep, SweepOptions};

// Re-export the substrate names examples need.
pub use cluster::ClusterPreset;
pub use mapreduce::conf::{EngineKind, ShuffleEngineKind};
pub use mapreduce::io::DataType;
pub use simnet::Interconnect;
