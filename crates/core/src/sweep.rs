//! Parameter sweeps: run a family of configurations and tabulate job
//! execution times, as every figure in the paper does.
//!
//! [`Sweep::run_grid`] farms cells out across OS threads. Each cell is
//! an independent simulation — it builds its own engine, RNG streams,
//! and monitors from the config seed — so parallel execution produces
//! **bit-identical** per-cell results to the serial path
//! ([`Sweep::run_grid_serial`]), in the same row-major order. The
//! thread count comes from the `MRBENCH_THREADS` environment variable
//! when set, else from [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use simcore::units::ByteSize;
use simnet::Interconnect;

use crate::bench::MicroBenchmark;
use crate::config::BenchConfig;
use crate::error::Error;
use crate::report::BenchReport;
use crate::runner::run;
use crate::store::{config_digest, ResultStore};

/// Knobs for [`Sweep::run_grid_with`].
#[derive(Clone, Copy, Default)]
pub struct SweepOptions<'a> {
    /// Worker threads; `0` means auto ([`std::thread::available_parallelism`],
    /// overridden by `MRBENCH_THREADS`).
    pub threads: usize,
    /// Consult (and fill) this content-addressed store: cells whose
    /// config digest already has a fragment are loaded instead of run,
    /// and freshly run cells are persisted the moment they finish — the
    /// checkpointing that makes a killed sweep resumable.
    pub store: Option<&'a ResultStore>,
    /// Cooperative cancellation, polled between cells. When it returns
    /// true, no new cells start and the sweep fails with
    /// [`Error::Deadline`]; completed cells are already in the store.
    pub cancel: Option<&'a (dyn Fn() -> bool + Sync)>,
}

impl std::fmt::Debug for SweepOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepOptions")
            .field("threads", &self.threads)
            .field("store", &self.store.map(|s| s.dir().to_path_buf()))
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

/// Run one cell, going through the store when one is configured. Traced
/// configs bypass the cache: fragments do not persist span streams, so a
/// cache hit would silently drop the trace the caller asked for.
fn run_cell(config: &BenchConfig, store: Option<&ResultStore>) -> Result<BenchReport, Error> {
    let digest = match store {
        Some(_) if !config.trace => Some(config_digest(config)),
        _ => None,
    };
    if let (Some(store), Some(d)) = (store, &digest) {
        if let Some(report) = store.get(d) {
            return Ok(report);
        }
    }
    let report = run(config)?;
    if let (Some(store), Some(d)) = (store, &digest) {
        store.put(d, &report)?;
    }
    Ok(report)
}

/// One cell of a sweep: a configuration and its result.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Shuffle size of this cell.
    pub shuffle: ByteSize,
    /// Interconnect of this cell.
    pub interconnect: Interconnect,
    /// The full report.
    pub report: BenchReport,
}

/// A (shuffle size × interconnect) sweep of one micro-benchmark: exactly
/// the grid each panel of Figs. 2–6 plots.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Row labels.
    pub sizes: Vec<ByteSize>,
    /// Column labels.
    pub interconnects: Vec<Interconnect>,
    /// Cells in row-major order.
    pub cells: Vec<SweepCell>,
}

/// Worker-thread count for [`Sweep::run_grid`]: the `MRBENCH_THREADS`
/// environment variable when set to a positive integer, else the
/// machine's available parallelism.
fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("MRBENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Sweep {
    /// Run the grid, farming cells across threads. `make` builds the
    /// config for one (size, interconnect) pair, letting callers fix
    /// every other parameter.
    ///
    /// Cells land in row-major order and each is bit-identical to what
    /// [`Sweep::run_grid_serial`] produces: a cell simulation is a pure
    /// function of its config, sharing no mutable state with its
    /// neighbours.
    pub fn run_grid(
        sizes: &[ByteSize],
        interconnects: &[Interconnect],
        make: impl Fn(ByteSize, Interconnect) -> BenchConfig + Sync,
    ) -> Result<Sweep, Error> {
        Sweep::run_grid_with(sizes, interconnects, make, &SweepOptions::default())
    }

    /// [`Sweep::run_grid`] with an explicit worker count.
    pub fn run_grid_with_threads(
        sizes: &[ByteSize],
        interconnects: &[Interconnect],
        make: impl Fn(ByteSize, Interconnect) -> BenchConfig + Sync,
        threads: usize,
    ) -> Result<Sweep, Error> {
        let opts = SweepOptions {
            threads,
            ..SweepOptions::default()
        };
        Sweep::run_grid_with(sizes, interconnects, make, &opts)
    }

    /// The fully-optioned grid runner: worker threads, an optional
    /// content-addressed [`ResultStore`] for crash-safe resume, and an
    /// optional cancellation hook (the bench harness wires a wall-clock
    /// deadline through it).
    pub fn run_grid_with(
        sizes: &[ByteSize],
        interconnects: &[Interconnect],
        make: impl Fn(ByteSize, Interconnect) -> BenchConfig + Sync,
        opts: &SweepOptions<'_>,
    ) -> Result<Sweep, Error> {
        let pairs: Vec<(ByteSize, Interconnect)> = sizes
            .iter()
            .flat_map(|&s| interconnects.iter().map(move |&ic| (s, ic)))
            .collect();
        let threads = if opts.threads == 0 {
            worker_threads()
        } else {
            opts.threads
        };
        let workers = threads.clamp(1, pairs.len().max(1));
        let cancelled = || opts.cancel.is_some_and(|c| c());

        // Work-stealing over a shared cell index; finished cells are
        // written back into their row-major slot. `workers == 1` runs the
        // same claim loop on the calling thread, so the store and cancel
        // semantics are identical at every thread count.
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<BenchReport, Error>>>> = {
            let mut v = Vec::new();
            v.resize_with(pairs.len(), || None);
            Mutex::new(v)
        };
        let work = || loop {
            // Poll cancellation before claiming, so an expired deadline
            // stops the sweep at a cell boundary with everything finished
            // so far already persisted.
            if cancelled() {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&(shuffle, ic)) = pairs.get(i) else {
                break;
            };
            let outcome = run_cell(&make(shuffle, ic), opts.store);
            slots.lock().unwrap()[i] = Some(outcome);
        };
        if workers == 1 {
            work();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(work);
                }
            });
        }

        let slots = slots.into_inner().unwrap();
        let completed = slots.iter().filter(|s| s.is_some()).count();
        if completed < pairs.len() {
            // Only cancellation leaves unclaimed slots.
            return Err(Error::Deadline {
                completed,
                total: pairs.len(),
            });
        }
        let mut cells = Vec::with_capacity(pairs.len());
        for ((shuffle, interconnect), slot) in pairs.into_iter().zip(slots) {
            // Errors surface in row-major order, matching the serial path.
            let report = slot.expect("every cell is claimed by a worker")?;
            cells.push(SweepCell {
                shuffle,
                interconnect,
                report,
            });
        }
        Ok(Sweep {
            sizes: sizes.to_vec(),
            interconnects: interconnects.to_vec(),
            cells,
        })
    }

    /// Run the grid on the calling thread, one cell at a time. The
    /// reference semantics for [`Sweep::run_grid`].
    pub fn run_grid_serial(
        sizes: &[ByteSize],
        interconnects: &[Interconnect],
        make: impl Fn(ByteSize, Interconnect) -> BenchConfig,
    ) -> Result<Sweep, Error> {
        let mut cells = Vec::with_capacity(sizes.len() * interconnects.len());
        for &shuffle in sizes {
            for &ic in interconnects {
                let report = run(&make(shuffle, ic))?;
                cells.push(SweepCell {
                    shuffle,
                    interconnect: ic,
                    report,
                });
            }
        }
        Ok(Sweep {
            sizes: sizes.to_vec(),
            interconnects: interconnects.to_vec(),
            cells,
        })
    }

    /// Convenience: the paper's Cluster A grid for one benchmark.
    pub fn cluster_a(
        benchmark: MicroBenchmark,
        sizes: &[ByteSize],
        interconnects: &[Interconnect],
    ) -> Result<Sweep, Error> {
        Sweep::run_grid(sizes, interconnects, |shuffle, ic| {
            BenchConfig::cluster_a_default(benchmark, ic, shuffle)
        })
    }

    /// The cell at (`shuffle`, `ic`), located by row-major index — O(grid
    /// edge), not O(cells), so `table()` stays linear in the cell count.
    pub fn cell(&self, shuffle: ByteSize, ic: Interconnect) -> Option<&SweepCell> {
        let row = self.sizes.iter().position(|&s| s == shuffle)?;
        let col = self.interconnects.iter().position(|&i| i == ic)?;
        self.cells.get(row * self.interconnects.len() + col)
    }

    /// Job time (seconds) for a cell. `None` for unknown labels and for
    /// failed/aborted cells (whose job time measures the abort, not the
    /// benchmark).
    pub fn time(&self, shuffle: ByteSize, ic: Interconnect) -> Option<f64> {
        let cell = self.cell(shuffle, ic)?;
        if !cell.report.result.succeeded() {
            return None;
        }
        let t = cell.report.job_time_secs();
        (t > 0.0).then_some(t)
    }

    /// Relative improvement of `fast` over `slow` at `shuffle`, in
    /// percent (positive when `fast` wins). `None` when either cell
    /// failed or has no meaningful job time, so a failed slow cell can
    /// never divide by zero.
    pub fn improvement_pct(
        &self,
        shuffle: ByteSize,
        slow: Interconnect,
        fast: Interconnect,
    ) -> Option<f64> {
        let s = self.time(shuffle, slow)?;
        let f = self.time(shuffle, fast)?;
        Some((s - f) / s * 100.0)
    }

    /// Render the paper-style table: one row per shuffle size, one column
    /// per interconnect, job time in seconds.
    pub fn table(&self, title: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = write!(out, "{:>12}", "shuffle");
        for ic in &self.interconnects {
            let _ = write!(out, "{:>18}", ic.label());
        }
        let _ = writeln!(out);
        for &size in &self.sizes {
            let _ = write!(out, "{:>12}", size.to_string());
            for &ic in &self.interconnects {
                match self.time(size, ic) {
                    Some(t) => {
                        let _ = write!(out, "{:>16.1} s", t);
                    }
                    None => {
                        let _ = write!(out, "{:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(shuffle: ByteSize, ic: Interconnect) -> BenchConfig {
        let mut c = BenchConfig::cluster_a_default(MicroBenchmark::Avg, ic, shuffle);
        c.slaves = 2;
        c.num_maps = 4;
        c.num_reduces = 4;
        c
    }

    #[test]
    fn grid_runs_and_tabulates() {
        let sizes = [ByteSize::from_mib(128), ByteSize::from_mib(256)];
        let ics = [Interconnect::GigE1, Interconnect::IpoibQdr];
        let sweep = Sweep::run_grid(&sizes, &ics, tiny).unwrap();
        assert_eq!(sweep.cells.len(), 4);
        for &s in &sizes {
            for &ic in &ics {
                assert!(sweep.time(s, ic).unwrap() > 0.0);
            }
        }
        // Faster network never slower.
        let imp = sweep
            .improvement_pct(
                ByteSize::from_mib(256),
                Interconnect::GigE1,
                Interconnect::IpoibQdr,
            )
            .unwrap();
        assert!(imp >= 0.0, "improvement {imp}");
        let table = sweep.table("test table");
        assert!(table.contains("1GigE"));
        assert!(table.contains("128.00MiB"));
    }

    #[test]
    fn parallel_grid_is_bit_identical_to_serial() {
        let sizes = [ByteSize::from_mib(64), ByteSize::from_mib(128)];
        let ics = [Interconnect::GigE1, Interconnect::IpoibQdr];
        let serial = Sweep::run_grid_serial(&sizes, &ics, tiny).unwrap();
        let parallel = Sweep::run_grid_with_threads(&sizes, &ics, tiny, 4).unwrap();
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            // Same row-major cell order...
            assert_eq!(s.shuffle, p.shuffle);
            assert_eq!(s.interconnect, p.interconnect);
            // ...and bit-identical results: the JSON encoding is exact
            // (nanosecond times, shortest-round-trip floats), so equal
            // text means equal results down to the last sample.
            assert_eq!(
                s.report.result.to_json().to_compact(),
                p.report.result.to_json().to_compact()
            );
        }
    }

    #[test]
    fn failed_cells_yield_none_not_division_by_zero() {
        let sizes = [ByteSize::from_mib(64)];
        let ics = [Interconnect::GigE1, Interconnect::IpoibQdr];
        let sweep = Sweep::run_grid_serial(&sizes, &ics, |shuffle, ic| {
            let mut c = tiny(shuffle, ic);
            if ic == Interconnect::GigE1 {
                // Every attempt dies: the 1GigE cell aborts.
                c.faults.map_failure_prob = 1.0;
                c.max_attempts = 2;
            }
            c
        })
        .unwrap();
        assert!(!sweep.cells[0].report.result.succeeded());
        assert_eq!(sweep.time(sizes[0], Interconnect::GigE1), None);
        assert!(sweep.time(sizes[0], Interconnect::IpoibQdr).is_some());
        // The failed cell is the denominator: must be None, not inf/NaN.
        assert_eq!(
            sweep.improvement_pct(sizes[0], Interconnect::GigE1, Interconnect::IpoibQdr),
            None
        );
        // Failed cells render as "-" in the table.
        assert!(sweep.table("t").contains('-'));
        // Unknown labels are None, not a panic.
        assert_eq!(
            sweep.time(ByteSize::from_mib(999), Interconnect::GigE1),
            None
        );
    }

    #[test]
    fn store_backed_grid_hits_the_cache_and_stays_identical() {
        let dir = std::env::temp_dir().join(format!("mrbench-sweep-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let sizes = [ByteSize::from_mib(64)];
        let ics = [Interconnect::GigE1, Interconnect::IpoibQdr];
        let opts = SweepOptions {
            threads: 1,
            store: Some(&store),
            cancel: None,
        };
        let first = Sweep::run_grid_with(&sizes, &ics, tiny, &opts).unwrap();
        assert_eq!(store.stats().0, 0, "cold store has no hits");
        let second = Sweep::run_grid_with(&sizes, &ics, tiny, &opts).unwrap();
        assert_eq!(store.stats().0, 2, "warm store serves every cell");
        for (a, b) in first.cells.iter().zip(&second.cells) {
            assert_eq!(
                a.report.to_json().to_compact(),
                b.report.to_json().to_compact()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancellation_surfaces_as_a_deadline_error() {
        let sizes = [ByteSize::from_mib(64)];
        let ics = [Interconnect::GigE1, Interconnect::IpoibQdr];
        let cancel = || true; // already expired
        let opts = SweepOptions {
            threads: 1,
            store: None,
            cancel: Some(&cancel),
        };
        match Sweep::run_grid_with(&sizes, &ics, tiny, &opts) {
            Err(Error::Deadline { completed, total }) => {
                assert_eq!((completed, total), (0, 2));
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
    }

    #[test]
    fn report_types_are_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<BenchConfig>();
        check::<BenchReport>();
        check::<Sweep>();
    }
}
