//! Parameter sweeps: run a family of configurations and tabulate job
//! execution times, as every figure in the paper does.

use simcore::units::ByteSize;
use simnet::Interconnect;

use crate::bench::MicroBenchmark;
use crate::config::BenchConfig;
use crate::report::BenchReport;
use crate::runner::run;

/// One cell of a sweep: a configuration and its result.
pub struct SweepCell {
    /// Shuffle size of this cell.
    pub shuffle: ByteSize,
    /// Interconnect of this cell.
    pub interconnect: Interconnect,
    /// The full report.
    pub report: BenchReport,
}

/// A (shuffle size × interconnect) sweep of one micro-benchmark: exactly
/// the grid each panel of Figs. 2–6 plots.
pub struct Sweep {
    /// Row labels.
    pub sizes: Vec<ByteSize>,
    /// Column labels.
    pub interconnects: Vec<Interconnect>,
    /// Cells in row-major order.
    pub cells: Vec<SweepCell>,
}

impl Sweep {
    /// Run the grid. `make` builds the config for one (size, interconnect)
    /// pair, letting callers fix every other parameter.
    pub fn run_grid(
        sizes: &[ByteSize],
        interconnects: &[Interconnect],
        make: impl Fn(ByteSize, Interconnect) -> BenchConfig,
    ) -> Result<Sweep, String> {
        let mut cells = Vec::with_capacity(sizes.len() * interconnects.len());
        for &shuffle in sizes {
            for &ic in interconnects {
                let report = run(&make(shuffle, ic))?;
                cells.push(SweepCell {
                    shuffle,
                    interconnect: ic,
                    report,
                });
            }
        }
        Ok(Sweep {
            sizes: sizes.to_vec(),
            interconnects: interconnects.to_vec(),
            cells,
        })
    }

    /// Convenience: the paper's Cluster A grid for one benchmark.
    pub fn cluster_a(
        benchmark: MicroBenchmark,
        sizes: &[ByteSize],
        interconnects: &[Interconnect],
    ) -> Result<Sweep, String> {
        Sweep::run_grid(sizes, interconnects, |shuffle, ic| {
            BenchConfig::cluster_a_default(benchmark, ic, shuffle)
        })
    }

    /// Job time (seconds) for a cell.
    pub fn time(&self, shuffle: ByteSize, ic: Interconnect) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.shuffle == shuffle && c.interconnect == ic)
            .map(|c| c.report.job_time_secs())
    }

    /// Relative improvement of `fast` over `slow` at `shuffle`, in
    /// percent (positive when `fast` wins).
    pub fn improvement_pct(
        &self,
        shuffle: ByteSize,
        slow: Interconnect,
        fast: Interconnect,
    ) -> Option<f64> {
        let s = self.time(shuffle, slow)?;
        let f = self.time(shuffle, fast)?;
        Some((s - f) / s * 100.0)
    }

    /// Render the paper-style table: one row per shuffle size, one column
    /// per interconnect, job time in seconds.
    pub fn table(&self, title: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = write!(out, "{:>12}", "shuffle");
        for ic in &self.interconnects {
            let _ = write!(out, "{:>18}", ic.label());
        }
        let _ = writeln!(out);
        for &size in &self.sizes {
            let _ = write!(out, "{:>12}", size.to_string());
            for &ic in &self.interconnects {
                match self.time(size, ic) {
                    Some(t) => {
                        let _ = write!(out, "{:>16.1} s", t);
                    }
                    None => {
                        let _ = write!(out, "{:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(shuffle: ByteSize, ic: Interconnect) -> BenchConfig {
        let mut c = BenchConfig::cluster_a_default(MicroBenchmark::Avg, ic, shuffle);
        c.slaves = 2;
        c.num_maps = 4;
        c.num_reduces = 4;
        c
    }

    #[test]
    fn grid_runs_and_tabulates() {
        let sizes = [ByteSize::from_mib(128), ByteSize::from_mib(256)];
        let ics = [Interconnect::GigE1, Interconnect::IpoibQdr];
        let sweep = Sweep::run_grid(&sizes, &ics, tiny).unwrap();
        assert_eq!(sweep.cells.len(), 4);
        for &s in &sizes {
            for &ic in &ics {
                assert!(sweep.time(s, ic).unwrap() > 0.0);
            }
        }
        // Faster network never slower.
        let imp = sweep
            .improvement_pct(
                ByteSize::from_mib(256),
                Interconnect::GigE1,
                Interconnect::IpoibQdr,
            )
            .unwrap();
        assert!(imp >= 0.0, "improvement {imp}");
        let table = sweep.table("test table");
        assert!(table.contains("1GigE"));
        assert!(table.contains("128.00MiB"));
    }
}
