//! Command-line parsing for the `mrbench` binary.
//!
//! Hand-rolled (the workspace keeps its dependency set to the approved
//! list), but with real error messages and full coverage of the suite's
//! knobs.

use std::path::PathBuf;

use mapreduce::{NodeCrash, NodeSlowdown};
use simcore::units::ByteSize;
use simnet::Interconnect;

use crate::artifact::ArtifactPaths;
use crate::config::{BenchConfig, ShuffleVolume};
use crate::error::Error;
use crate::{ClusterPreset, EngineKind, MicroBenchmark, ShuffleEngineKind};

/// Parsed invocation.
#[derive(Debug)]
pub struct Cli {
    /// The run configuration.
    pub config: BenchConfig,
    /// Run every interconnect and tabulate instead of one report.
    pub compare: bool,
    /// Print the per-task timeline after the report.
    pub timeline: bool,
    /// Machine-readable output requested via `--json` / `--csv`.
    pub artifacts: ArtifactPaths,
    /// Chrome trace-event output requested via `--trace [PATH]`. Also
    /// enables phase tracing on the run config.
    pub trace: Option<PathBuf>,
    /// Result-store directory for `--resume [DIR]`: completed `--compare`
    /// cells are cached there and skipped on restart.
    pub resume: Option<PathBuf>,
}

/// Default result-store directory for `--resume` without a path.
pub const DEFAULT_STORE_DIR: &str = "BENCH_mrbench.store";

/// Usage text for `--help`.
pub const USAGE: &str = "\
mrbench — micro-benchmark suite for stand-alone (simulated) Hadoop MapReduce

USAGE:
    mrbench [OPTIONS]

OPTIONS:
    --bench <avg|rand|skew|zipf>   micro-benchmark            [default: avg]
    --network <net>                1gige | 10gige | ipoib-qdr | ipoib-fdr | rdma
                                                              [default: ipoib-qdr]
    --compare                      run every network and tabulate
    --shuffle-gb <N>               total shuffle volume in GiB [default: 4]
    --shuffle-mb <N>               total shuffle volume in MiB
    --pairs <N>                    key/value pairs per map (overrides volume)
    --key-size <BYTES>             key payload size           [default: 1024]
    --value-size <BYTES>           value payload size         [default: 1024]
    --data-type <bytes|text>       Writable type              [default: bytes]
    --maps <N>                     map tasks                  [default: 16]
    --reduces <N>                  reduce tasks               [default: 8]
    --slaves <N>                   slave nodes                [default: 4]
    --racks <N>                    group the slaves into N racks
                                                              [default: 1]
    --oversubscription <F>         rack uplink oversubscription factor
                                   (>= 1.0; 1.0 is non-blocking)
                                                              [default: 1.0]
    --fabric-cap <MB_S>            aggregate core-fabric capacity in MB/s
                                   (default: non-blocking core)
    --monitor-interval <SECS>      throughput/CPU monitor sampling interval
                                                              [default: 1.0]
    --cluster <a|b>                testbed preset             [default: a]
    --engine <mrv1|yarn>           runtime                    [default: mrv1]
    --backend <des|analytic>       evaluation backend: discrete-event
                                   simulation or the closed-form analytic
                                   cost model               [default: des]
    --rdma-shuffle                 use the RDMA (MRoIB) shuffle engine
    --zipf-exponent <S>            exponent for --bench zipf  [default: 1.0]
    --seed <N>                     master seed
    --max-events <N>               abort the run after N simulation events
                                   (watchdog; exit code 6 on breach)
    --max-sim-secs <S>             abort the run past S simulated seconds
                                   (watchdog; exit code 6 on breach)
    --resume [DIR]                 cache completed --compare cells in a
                                   result store and skip them on restart
                                   [default dir: BENCH_mrbench.store]
    --timeline                     print the per-task timeline
    --json [PATH]                  also write the run as a JSON artifact
                                   [default path: BENCH_mrbench.json]
    --csv [PATH]                   also write a CSV summary table
                                   [default path: BENCH_mrbench.csv]
    --trace [PATH]                 record per-task phase spans, print the
                                   phase breakdown, and write a Chrome
                                   trace-event file (chrome://tracing,
                                   Perfetto)
                                   [default path: BENCH_mrbench_trace.json]

FAULT INJECTION:
    --fail-prob <P>                per-attempt task failure probability (maps
                                   and reduces), 0.0-1.0
    --fetch-fail-prob <P>          per-try shuffle fetch failure probability
    --crash <NODE@SECS>            crash a node at a simulated time
                                   (repeatable, e.g. --crash 1@30)
    --slowdown <NODE:FACTOR>       slow a node's tasks by FACTOR (straggler;
                                   repeatable, e.g. --slowdown 0:2.5)
    --max-attempts <N>             attempts per task before the job aborts
                                                              [default: 4]
    --speculative                  enable speculative execution for stragglers
    -h, --help                     show this help
";

/// Parse `args` (without the program name). `--help` surfaces as
/// [`Error::Help`] (exit 0); everything else as [`Error::Usage`].
pub fn parse_args(args: &[String]) -> Result<Cli, Error> {
    let mut config = BenchConfig::cluster_a_default(
        MicroBenchmark::Avg,
        Interconnect::IpoibQdr,
        ByteSize::from_gib(4),
    );
    let mut compare = false;
    let mut timeline = false;
    let mut artifacts = ArtifactPaths::default();
    let mut trace: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        // Flags whose value is optional peek ahead, so they are handled
        // before the `value` closure borrows the iterator. Any following
        // token that starts with `-` is the next flag, not a path —
        // including single-dash ones like `-h`.
        if arg == "--json" || arg == "--csv" || arg == "--trace" {
            let kind = &arg[2..];
            let path = match it.peek() {
                Some(v) if !v.starts_with('-') => PathBuf::from(it.next().unwrap()),
                _ if kind == "trace" => PathBuf::from("BENCH_mrbench_trace.json"),
                _ => ArtifactPaths::default_for("mrbench", kind),
            };
            match kind {
                "json" => artifacts.json = Some(path),
                "csv" => artifacts.csv = Some(path),
                _ => trace = Some(path),
            }
            continue;
        }
        if arg == "--resume" {
            resume = Some(match it.peek() {
                Some(v) if !v.starts_with('-') => PathBuf::from(it.next().unwrap()),
                _ => PathBuf::from(DEFAULT_STORE_DIR),
            });
            continue;
        }
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--bench" => config.benchmark = value("--bench")?.parse()?,
            "--network" => {
                config.interconnect = parse_network(value("--network")?)?;
                if config.interconnect == Interconnect::RdmaFdr {
                    config.shuffle_engine = ShuffleEngineKind::Rdma;
                }
            }
            "--compare" => compare = true,
            "--shuffle-gb" => {
                let n: u64 = parse_num(value("--shuffle-gb")?)?;
                config.volume = ShuffleVolume::TotalBytes(ByteSize::from_gib(n));
            }
            "--shuffle-mb" => {
                let n: u64 = parse_num(value("--shuffle-mb")?)?;
                config.volume = ShuffleVolume::TotalBytes(ByteSize::from_mib(n));
            }
            "--pairs" => config.volume = ShuffleVolume::PairsPerMap(parse_num(value("--pairs")?)?),
            "--key-size" => config.key_size = parse_num(value("--key-size")?)? as usize,
            "--value-size" => config.value_size = parse_num(value("--value-size")?)? as usize,
            "--data-type" => config.data_type = value("--data-type")?.parse()?,
            "--maps" => config.num_maps = parse_num(value("--maps")?)? as u32,
            "--reduces" => config.num_reduces = parse_num(value("--reduces")?)? as u32,
            "--slaves" => config.slaves = parse_num(value("--slaves")?)? as usize,
            "--racks" => config.racks = parse_num(value("--racks")?)? as usize,
            "--oversubscription" => {
                config.oversubscription = value("--oversubscription")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --oversubscription value: {e}"))?
            }
            "--fabric-cap" => {
                config.fabric_cap_mb_s = Some(
                    value("--fabric-cap")?
                        .parse::<f64>()
                        .map_err(|e| format!("bad --fabric-cap value: {e}"))?,
                )
            }
            "--monitor-interval" => {
                config.monitor_interval_s = value("--monitor-interval")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --monitor-interval value: {e}"))?
            }
            "--cluster" => {
                config.cluster = match value("--cluster")?.to_ascii_lowercase().as_str() {
                    "a" => ClusterPreset::ClusterA,
                    "b" => ClusterPreset::ClusterB,
                    other => return Err(Error::usage(format!("unknown cluster: {other}"))),
                }
            }
            "--engine" => {
                config.engine = match value("--engine")?.to_ascii_lowercase().as_str() {
                    "mrv1" | "1" | "hadoop1" => EngineKind::MRv1,
                    "yarn" | "2" | "hadoop2" => EngineKind::Yarn,
                    other => return Err(Error::usage(format!("unknown engine: {other}"))),
                }
            }
            "--backend" => config.backend = value("--backend")?.parse()?,
            "--rdma-shuffle" => config.shuffle_engine = ShuffleEngineKind::Rdma,
            "--zipf-exponent" => {
                config.zipf_exponent = value("--zipf-exponent")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad exponent: {e}"))?
            }
            "--seed" => config.seed = parse_num(value("--seed")?)?,
            "--max-events" => config.max_events = Some(parse_num(value("--max-events")?)?),
            "--max-sim-secs" => {
                config.max_sim_secs = Some(
                    value("--max-sim-secs")?
                        .parse::<f64>()
                        .map_err(|e| format!("bad --max-sim-secs value: {e}"))?,
                )
            }
            "--fail-prob" => {
                let p = parse_prob(value("--fail-prob")?)?;
                config.faults.map_failure_prob = p;
                config.faults.reduce_failure_prob = p;
            }
            "--fetch-fail-prob" => {
                config.faults.fetch_failure_prob = parse_prob(value("--fetch-fail-prob")?)?
            }
            "--crash" => config
                .faults
                .node_crashes
                .push(parse_crash(value("--crash")?)?),
            "--slowdown" => config
                .faults
                .node_slowdowns
                .push(parse_slowdown(value("--slowdown")?)?),
            "--max-attempts" => config.max_attempts = parse_num(value("--max-attempts")?)? as u32,
            "--speculative" => config.speculative = true,
            "--timeline" => timeline = true,
            "-h" | "--help" => return Err(Error::Help(USAGE.to_string())),
            other => return Err(Error::usage(format!("unknown option: {other}"))),
        }
    }
    config.trace = trace.is_some() || timeline;
    Ok(Cli {
        config,
        compare,
        timeline,
        artifacts,
        trace,
        resume,
    })
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.replace('_', "")
        .parse::<u64>()
        .map_err(|e| format!("bad number '{s}': {e}"))
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let p: f64 = s
        .parse()
        .map_err(|e| format!("bad probability '{s}': {e}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability '{s}' must be in 0.0-1.0"));
    }
    Ok(p)
}

/// Parse `NODE@SECS`, e.g. `1@30.5`.
fn parse_crash(s: &str) -> Result<NodeCrash, String> {
    let (node, at) = s
        .split_once('@')
        .ok_or_else(|| format!("--crash wants NODE@SECS, got '{s}'"))?;
    Ok(NodeCrash {
        node: parse_num(node)? as usize,
        at_secs: at
            .parse::<f64>()
            .map_err(|e| format!("bad crash time '{at}': {e}"))?,
    })
}

/// Parse `NODE:FACTOR`, e.g. `0:2.5`.
fn parse_slowdown(s: &str) -> Result<NodeSlowdown, String> {
    let (node, factor) = s
        .split_once(':')
        .ok_or_else(|| format!("--slowdown wants NODE:FACTOR, got '{s}'"))?;
    Ok(NodeSlowdown {
        node: parse_num(node)? as usize,
        factor: factor
            .parse::<f64>()
            .map_err(|e| format!("bad slowdown factor '{factor}': {e}"))?,
    })
}

/// Parse an interconnect name as the CLI spells them.
pub fn parse_network(s: &str) -> Result<Interconnect, String> {
    match s.to_ascii_lowercase().replace('_', "-").as_str() {
        "1gige" | "gige" | "1g" => Ok(Interconnect::GigE1),
        "10gige" | "10g" => Ok(Interconnect::GigE10),
        "ipoib-qdr" | "ipoib" | "qdr" => Ok(Interconnect::IpoibQdr),
        "ipoib-fdr" | "fdr" => Ok(Interconnect::IpoibFdr),
        "rdma" | "rdma-fdr" | "ib" => Ok(Interconnect::RdmaFdr),
        other => Err(format!("unknown network: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::io::DataType;

    fn parse(args: &[&str]) -> Result<Cli, Error> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.config.benchmark, MicroBenchmark::Avg);
        assert_eq!(cli.config.interconnect, Interconnect::IpoibQdr);
        assert!(!cli.compare);
        assert!(!cli.timeline);
        cli.config.validate().unwrap();
    }

    #[test]
    fn full_invocation() {
        let cli = parse(&[
            "--bench",
            "zipf",
            "--network",
            "10gige",
            "--shuffle-mb",
            "512",
            "--key-size",
            "100",
            "--value-size",
            "900",
            "--data-type",
            "text",
            "--maps",
            "8",
            "--reduces",
            "4",
            "--slaves",
            "2",
            "--engine",
            "yarn",
            "--zipf-exponent",
            "1.3",
            "--seed",
            "7",
            "--timeline",
        ])
        .unwrap();
        let c = &cli.config;
        assert_eq!(c.benchmark, MicroBenchmark::Zipf);
        assert_eq!(c.interconnect, Interconnect::GigE10);
        assert_eq!(c.key_size, 100);
        assert_eq!(c.value_size, 900);
        assert_eq!(c.data_type, DataType::Text);
        assert_eq!(c.num_maps, 8);
        assert_eq!(c.num_reduces, 4);
        assert_eq!(c.slaves, 2);
        assert_eq!(c.engine, EngineKind::Yarn);
        assert_eq!(c.zipf_exponent, 1.3);
        assert_eq!(c.seed, 7);
        assert!(cli.timeline);
        c.validate().unwrap();
    }

    #[test]
    fn rdma_network_implies_rdma_shuffle() {
        let cli = parse(&["--network", "rdma"]).unwrap();
        assert_eq!(cli.config.interconnect, Interconnect::RdmaFdr);
        assert_eq!(cli.config.shuffle_engine, ShuffleEngineKind::Rdma);
    }

    #[test]
    fn errors() {
        for bad in [
            &["--bench", "sort"][..],
            &["--network", "carrier-pigeon"],
            &["--maps"],
            &["--maps", "four"],
            &["--frobnicate"],
            &["--max-events", "many"],
            &["--max-sim-secs", "soon"],
            &["--racks", "two"],
            &["--oversubscription", "lots"],
            &["--fabric-cap", "thin"],
            &["--monitor-interval", "often"],
            &["--backend", "quantum"],
            &["--backend"],
        ] {
            match parse(bad) {
                Err(Error::Usage(msg)) => assert!(!msg.is_empty(), "{bad:?}"),
                other => panic!("{bad:?}: expected a usage error, got {other:?}"),
            }
        }
        // Help is its own variant so binaries can exit 0 for it.
        let err = parse(&["--help"]).unwrap_err();
        assert!(matches!(err, Error::Help(_)), "{err:?}");
        assert_eq!(err.exit_code(), 0);
        assert_eq!(parse(&["--maps"]).unwrap_err().exit_code(), 2);
    }

    #[test]
    fn fault_flags() {
        let cli = parse(&[
            "--fail-prob",
            "0.1",
            "--fetch-fail-prob",
            "0.05",
            "--crash",
            "1@30.5",
            "--slowdown",
            "0:2.5",
            "--max-attempts",
            "6",
            "--speculative",
        ])
        .unwrap();
        let c = &cli.config;
        assert_eq!(c.faults.map_failure_prob, 0.1);
        assert_eq!(c.faults.reduce_failure_prob, 0.1);
        assert_eq!(c.faults.fetch_failure_prob, 0.05);
        assert_eq!(
            c.faults.node_crashes,
            vec![NodeCrash {
                node: 1,
                at_secs: 30.5
            }]
        );
        assert_eq!(
            c.faults.node_slowdowns,
            vec![NodeSlowdown {
                node: 0,
                factor: 2.5
            }]
        );
        assert_eq!(c.max_attempts, 6);
        assert!(c.speculative);
        c.validate().unwrap();
    }

    #[test]
    fn fault_flag_errors() {
        assert!(parse(&["--fail-prob", "1.5"]).is_err());
        assert!(parse(&["--fail-prob", "-0.1"]).is_err());
        assert!(parse(&["--crash", "30.5"]).is_err());
        assert!(parse(&["--crash", "x@1"]).is_err());
        assert!(parse(&["--slowdown", "0"]).is_err());
    }

    #[test]
    fn pairs_overrides_volume() {
        let cli = parse(&["--pairs", "1234"]).unwrap();
        assert_eq!(cli.config.volume, ShuffleVolume::PairsPerMap(1234));
    }

    #[test]
    fn artifact_flags() {
        // No flags: no artifacts.
        assert!(parse(&[]).unwrap().artifacts.is_empty());
        // Bare flags fall back to the conventional paths.
        let cli = parse(&["--json", "--csv"]).unwrap();
        assert_eq!(
            cli.artifacts.json.as_deref(),
            Some(std::path::Path::new("BENCH_mrbench.json"))
        );
        assert_eq!(
            cli.artifacts.csv.as_deref(),
            Some(std::path::Path::new("BENCH_mrbench.csv"))
        );
        // Explicit paths are taken, and parsing continues after them.
        let cli = parse(&["--json", "out/run.json", "--maps", "8"]).unwrap();
        assert_eq!(
            cli.artifacts.json.as_deref(),
            Some(std::path::Path::new("out/run.json"))
        );
        assert!(cli.artifacts.csv.is_none());
        assert_eq!(cli.config.num_maps, 8);
        // A following option is not swallowed as a path.
        let cli = parse(&["--json", "--timeline"]).unwrap();
        assert_eq!(
            cli.artifacts.json.as_deref(),
            Some(std::path::Path::new("BENCH_mrbench.json"))
        );
        assert!(cli.timeline);
    }

    #[test]
    fn optional_value_flags_do_not_swallow_following_flags() {
        // Regression: the lookahead only rejected `--`-prefixed tokens, so
        // a single-dash flag like `-h` was swallowed as an output path.
        assert!(
            matches!(parse(&["--json", "-h"]), Err(Error::Help(_))),
            "-h after --json must still reach help"
        );
        // As the final token, an optional-value flag takes its default.
        let cli = parse(&["--maps", "8", "--csv"]).unwrap();
        assert_eq!(
            cli.artifacts.csv.as_deref(),
            Some(std::path::Path::new("BENCH_mrbench.csv"))
        );
        assert_eq!(cli.config.num_maps, 8);
    }

    #[test]
    fn trace_flag() {
        let cli = parse(&[]).unwrap();
        assert!(cli.trace.is_none());
        assert!(!cli.config.trace);
        // Bare flag falls back to the conventional path and enables the
        // recorder on the config.
        let cli = parse(&["--trace"]).unwrap();
        assert_eq!(
            cli.trace.as_deref(),
            Some(std::path::Path::new("BENCH_mrbench_trace.json"))
        );
        assert!(cli.config.trace);
        // Explicit path, with parsing continuing after it.
        let cli = parse(&["--trace", "out/t.json", "--maps", "8"]).unwrap();
        assert_eq!(
            cli.trace.as_deref(),
            Some(std::path::Path::new("out/t.json"))
        );
        assert_eq!(cli.config.num_maps, 8);
        // All three optional-value flags combined, each as default.
        let cli = parse(&["--json", "--csv", "--trace"]).unwrap();
        assert_eq!(
            cli.artifacts.json.as_deref(),
            Some(std::path::Path::new("BENCH_mrbench.json"))
        );
        assert_eq!(
            cli.artifacts.csv.as_deref(),
            Some(std::path::Path::new("BENCH_mrbench.csv"))
        );
        assert_eq!(
            cli.trace.as_deref(),
            Some(std::path::Path::new("BENCH_mrbench_trace.json"))
        );
        // The timeline is rebuilt from the span stream, so it implies
        // tracing even without --trace.
        let cli = parse(&["--timeline"]).unwrap();
        assert!(cli.config.trace);
        assert!(cli.trace.is_none());
    }

    #[test]
    fn budget_and_resume_flags() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.config.max_events, None);
        assert_eq!(cli.config.max_sim_secs, None);
        assert!(cli.resume.is_none());

        let cli = parse(&["--max-events", "50_000", "--max-sim-secs", "120.5"]).unwrap();
        assert_eq!(cli.config.max_events, Some(50_000));
        assert_eq!(cli.config.max_sim_secs, Some(120.5));
        cli.config.validate().unwrap();

        // Bare --resume falls back to the conventional store directory,
        // without swallowing a following flag.
        let cli = parse(&["--resume", "--compare"]).unwrap();
        assert_eq!(
            cli.resume.as_deref(),
            Some(std::path::Path::new(DEFAULT_STORE_DIR))
        );
        assert!(cli.compare);
        // An explicit directory is taken, and parsing continues after it.
        let cli = parse(&["--resume", "out/store", "--maps", "8"]).unwrap();
        assert_eq!(
            cli.resume.as_deref(),
            Some(std::path::Path::new("out/store"))
        );
        assert_eq!(cli.config.num_maps, 8);
    }

    #[test]
    fn topology_flags() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.config.racks, 1);
        assert_eq!(cli.config.oversubscription, 1.0);
        assert_eq!(cli.config.fabric_cap_mb_s, None);
        assert_eq!(cli.config.monitor_interval_s, 1.0);

        let cli = parse(&[
            "--slaves",
            "8",
            "--racks",
            "4",
            "--oversubscription",
            "4.0",
            "--fabric-cap",
            "2000",
            "--monitor-interval",
            "0.25",
        ])
        .unwrap();
        assert_eq!(cli.config.racks, 4);
        assert_eq!(cli.config.oversubscription, 4.0);
        assert_eq!(cli.config.fabric_cap_mb_s, Some(2000.0));
        assert_eq!(cli.config.monitor_interval_s, 0.25);
        cli.config.validate().unwrap();

        // Validation catches out-of-range values the parser accepts.
        let cli = parse(&["--slaves", "2", "--racks", "3"]).unwrap();
        assert!(cli.config.validate().is_err());
        let cli = parse(&["--oversubscription", "0.5"]).unwrap();
        assert!(cli.config.validate().is_err());
        let cli = parse(&["--monitor-interval", "0"]).unwrap();
        assert!(cli.config.validate().is_err());
    }

    #[test]
    fn backend_flag() {
        use crate::config::BackendKind;
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.config.backend, BackendKind::Des);
        let cli = parse(&["--backend", "analytic"]).unwrap();
        assert_eq!(cli.config.backend, BackendKind::Analytic);
        let cli = parse(&["--backend", "des"]).unwrap();
        assert_eq!(cli.config.backend, BackendKind::Des);
    }

    #[test]
    fn invalid_monitor_interval_is_a_config_error_exit_3() {
        // The parser accepts any float; validation rejects non-positive /
        // non-finite intervals and the runner surfaces that as
        // `Error::Config`, whose documented exit code is 3 — the contract
        // the mrbench binary relies on.
        for bad in ["0", "-1.5", "NaN", "inf"] {
            let cli = parse(&["--monitor-interval", bad]).unwrap();
            let msg = cli.config.validate().unwrap_err();
            assert!(msg.contains("monitor interval"), "{bad}: {msg}");
            let err = crate::run(&cli.config).unwrap_err();
            assert!(matches!(err, Error::Config(_)), "{bad}: {err:?}");
            assert_eq!(err.exit_code(), 3, "{bad}");
        }
        // A positive finite interval still passes end to end.
        let cli = parse(&["--monitor-interval", "0.25"]).unwrap();
        cli.config.validate().unwrap();
    }

    #[test]
    fn network_aliases() {
        assert_eq!(parse_network("1g").unwrap(), Interconnect::GigE1);
        assert_eq!(parse_network("QDR").unwrap(), Interconnect::IpoibQdr);
        assert_eq!(parse_network("ib").unwrap(), Interconnect::RdmaFdr);
    }
}
