//! Typed errors and the process exit-code taxonomy.
//!
//! Every fallible path in the benchmark suite — CLI parsing, config
//! validation, artifact I/O, artifact parsing, watchdog budgets, sweep
//! deadlines — funnels into [`Error`], and every binary maps the variant
//! to a distinct documented exit code via [`Error::exit_code`]. Scripts
//! (and the CI exit-code checks) can therefore tell "you typo'd a flag"
//! apart from "the disk is full" apart from "the simulation ran away"
//! without scraping stderr.
//!
//! | code | meaning                                             |
//! |------|-----------------------------------------------------|
//! | 0    | success (also `--help`)                             |
//! | 1    | benchmark job failed (simulated job aborted)        |
//! | 2    | usage error (bad flag or argument)                  |
//! | 3    | invalid configuration                               |
//! | 4    | I/O error (artifact, store, or trace file)          |
//! | 5    | parse/validation error on an artifact or store file |
//! | 6    | watchdog budget exceeded                            |
//! | 7    | wall-clock deadline hit (partial artifact flushed)  |
//!
//! Lower crates (`simcore`, `mapreduce`) keep plain `String` errors —
//! they never talk to the OS — and are wrapped with context at this
//! boundary.

use std::path::{Path, PathBuf};

/// Any error a benchmark entry point can exit with.
#[derive(Debug)]
pub enum Error {
    /// `--help` was requested: not a failure, but it unwinds argument
    /// parsing the same way errors do. Binaries print usage and exit 0.
    Help(String),
    /// Bad command line (unknown flag, malformed value).
    Usage(String),
    /// A configuration that cannot be run.
    Config(String),
    /// An operating-system I/O failure, with the operation and path that
    /// failed. The underlying [`std::io::Error`] is the source.
    Io {
        /// What was being attempted ("create", "write", "rename", ...).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A file that exists but does not parse or validate, with the
    /// context (file, then JSON field path) where it went wrong.
    Parse {
        /// Where the bad data lives (path and/or field path).
        context: String,
        /// What is wrong with it.
        detail: String,
    },
    /// A run crossed its event or simulated-time budget; the payload is
    /// the watchdog's one-line diagnostic summary.
    Budget(String),
    /// A sweep's wall-clock deadline expired. Completed cells were
    /// persisted (and a partial artifact flushed) before this was raised.
    Deadline {
        /// Sweep cells finished before the deadline.
        completed: usize,
        /// Cells the sweep wanted in total.
        total: usize,
    },
}

impl Error {
    /// Construct a [`Error::Config`] (handy with `map_err`).
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }

    /// Construct a [`Error::Usage`].
    pub fn usage(msg: impl Into<String>) -> Self {
        Error::Usage(msg.into())
    }

    /// Construct a [`Error::Io`] for an operation on `path`.
    pub fn io(op: &'static str, path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        Error::Io {
            op,
            path: path.into(),
            source,
        }
    }

    /// Construct a [`Error::Parse`] with a context prefix.
    pub fn parse(context: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Parse {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// The documented process exit code for this error (see the module
    /// table).
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::Help(_) => 0,
            Error::Usage(_) => 2,
            Error::Config(_) => 3,
            Error::Io { .. } => 4,
            Error::Parse { .. } => 5,
            Error::Budget(_) => 6,
            Error::Deadline { .. } => 7,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Help(usage) => write!(f, "{usage}"),
            Error::Usage(msg) => write!(f, "{msg}"),
            Error::Config(msg) => write!(f, "invalid config: {msg}"),
            Error::Io { op, path, source } => {
                write!(f, "cannot {op} {}: {source}", path.display())
            }
            Error::Parse { context, detail } => write!(f, "{context}: {detail}"),
            Error::Budget(diag) => write!(f, "budget exceeded: {diag}"),
            Error::Deadline { completed, total } => write!(
                f,
                "deadline hit after {completed}/{total} cells; completed work \
                 is persisted — rerun with --resume to continue"
            ),
        }
    }
}

/// Stringly errors bubbling out of argument parsing default to
/// [`Error::Usage`]; anything more specific constructs its variant
/// explicitly.
impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Usage(msg)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Read a file to a string with typed I/O context.
pub fn read_to_string(path: &Path) -> Result<String, Error> {
    std::fs::read_to_string(path).map_err(|e| Error::io("read", path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        let errs = [
            Error::Usage("x".into()),
            Error::Config("x".into()),
            Error::io("read", "/nope", std::io::Error::other("x")),
            Error::parse("f.json", "bad"),
            Error::Budget("x".into()),
            Error::Deadline {
                completed: 1,
                total: 2,
            },
        ];
        let codes: Vec<u8> = errs.iter().map(Error::exit_code).collect();
        assert_eq!(codes, [2, 3, 4, 5, 6, 7]);
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes must be distinct");
        assert_eq!(Error::Help("usage".into()).exit_code(), 0);
    }

    #[test]
    fn io_errors_chain_their_source() {
        let e = Error::io("write", "/tmp/x", std::io::Error::other("disk on fire"));
        assert!(e.source().is_some());
        let msg = e.to_string();
        assert!(msg.contains("write") && msg.contains("/tmp/x"), "{msg}");
    }

    #[test]
    fn messages_are_one_line_and_actionable() {
        for e in [
            Error::usage("unknown flag '--frob'"),
            Error::config("num_maps must be at least 1"),
            Error::parse("BENCH_fig2.json: panels[0]", "missing JSON field 'title'"),
            Error::Deadline {
                completed: 3,
                total: 12,
            },
        ] {
            let msg = e.to_string();
            assert!(!msg.contains('\n'), "{msg}");
            assert!(!msg.is_empty());
        }
    }
}
