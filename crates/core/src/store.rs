//! Content-addressed result store and crash-safe file writes.
//!
//! Determinism (seeded RNG streams, integer timestamps, canonical JSON)
//! makes every benchmark result a pure function of its [`BenchConfig`],
//! so results are infinitely cacheable: the store keys each completed
//! sweep cell by a digest of the config's canonical JSON and persists it
//! as a small `mrbench-cell-v1` fragment. A killed sweep restarted with
//! `--resume` reloads finished cells from the store and re-runs only the
//! rest, producing a byte-identical final artifact.
//!
//! Layout: one file per cell, `<dir>/<32-hex-digest>.json`. Fragments
//! are written via [`atomic_write`] (temp file in the destination
//! directory + fsync + rename), so a crash at any instant leaves either
//! the old bytes, the new bytes, or a stray `.tmp` file — never a torn
//! fragment. Reads treat anything unreadable, unparsable, or
//! mis-digested as a cache miss: corruption costs a re-run, not a wrong
//! answer.
//!
//! ## The digest contract
//!
//! [`config_digest`] hashes the config's **canonical JSON**
//! ([`BenchConfig::to_json`] rendered compact), and that encoding — not
//! the in-memory struct — is the contract:
//!
//! * **Fields added after v1 are emitted only when non-default** (racks,
//!   oversubscription, fabric cap, monitor interval, backend, …), so a
//!   config that never touches them digests exactly as it did before the
//!   field existed. Old fragments stay valid across suite upgrades; a new
//!   knob can never invalidate a cache that never used it.
//! * The flip side: **an explicit value equal to the built-in behaviour
//!   still digests differently from leaving the field unset** whenever
//!   the encoder cannot see the equivalence. `fabric_cap_mb_s:
//!   Some(aggregate-NIC-rate)` simulates identically to `None` (the cap
//!   never binds) but emits a key and therefore gets its own digest;
//!   likewise `racks: 1` set explicitly vs. defaulted. Equal digests
//!   imply equal results; *unequal digests do not imply different
//!   results* — the store trades a few duplicate cells for never serving
//!   a stale one.
//! * **Every semantic knob must reach the JSON.** Anything that can
//!   change a result — including which [`crate::backend::Backend`]
//!   produced it — must appear in the encoding the moment it departs
//!   from the default, so DES and analytic results for the same workload
//!   live under distinct keys and can never shadow each other
//!   (`digest_distinguishes_every_semantic_knob` below pins this).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use simcore::jobj;
use simcore::json::Json;

use crate::config::BenchConfig;
use crate::error::Error;
use crate::report::BenchReport;

/// Schema tag of one persisted cell fragment.
pub const FRAGMENT_SCHEMA: &str = "mrbench-cell-v1";

/// Write `contents` to `path` crash-safely: the bytes land in a temp
/// file in the destination directory, are fsynced, and are renamed over
/// `path` in one atomic step. Readers never observe a half-written file.
pub fn atomic_write(path: &Path, contents: &str) -> Result<(), Error> {
    use std::io::Write;

    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        Error::io(
            "write",
            path,
            std::io::Error::other("path has no file name"),
        )
    })?;
    // Unique per process so concurrent writers (or a crashed predecessor's
    // leftovers) cannot collide; the final rename is what publishes.
    let tmp_name = format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let mut f = std::fs::File::create(&tmp).map_err(|e| Error::io("create", &tmp, e))?;
    f.write_all(contents.as_bytes())
        .map_err(|e| Error::io("write", &tmp, e))?;
    // Flush to the platters before publishing the name, so a crash after
    // the rename cannot expose an empty or partial file.
    f.sync_all().map_err(|e| Error::io("sync", &tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| Error::io("rename", &tmp, e))?;
    Ok(())
}

/// Digest of a config's canonical JSON: the cache key under which its
/// result is stored. 128-bit FNV-1a, rendered as 32 hex digits — not
/// cryptographic, but collision-safe for the suite's config space and
/// dependency-free.
pub fn config_digest(config: &BenchConfig) -> String {
    fnv1a_128(config.to_json().to_compact().as_bytes())
}

/// 128-bit FNV-1a over `bytes`, as lowercase hex.
pub fn fnv1a_128(bytes: &[u8]) -> String {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:032x}")
}

/// A directory of digest-keyed result fragments. Shared across sweep
/// worker threads (`&self` everywhere, atomic counters), and across
/// *processes* too: the atomic-rename publish step makes concurrent
/// writers of the same digest last-writer-wins with no torn state.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

impl ResultStore {
    /// Open (creating if needed) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, Error> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| Error::io("create", &dir, e))?;
        Ok(ResultStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the fragment for `digest`.
    pub fn fragment_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Look up a cached report. Missing, torn, corrupt, or mis-keyed
    /// fragments all read as a miss (`None`) — the cell simply re-runs.
    pub fn get(&self, digest: &str) -> Option<BenchReport> {
        let path = self.fragment_path(digest);
        let Ok(text) = std::fs::read_to_string(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match Self::parse_fragment(&text, digest) {
            Ok(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            Err(_) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn parse_fragment(text: &str, digest: &str) -> Result<BenchReport, String> {
        let json = Json::parse(text)?;
        let schema = json.field_str("schema")?;
        if schema != FRAGMENT_SCHEMA {
            return Err(format!("unknown fragment schema '{schema}'"));
        }
        let stored = json.field_str("digest")?;
        if stored != digest {
            return Err(format!("fragment digest '{stored}' does not match key"));
        }
        BenchReport::from_json(json.req("report")?)
    }

    /// Persist `report` under `digest`, atomically.
    pub fn put(&self, digest: &str, report: &BenchReport) -> Result<(), Error> {
        let fragment = jobj! {
            "schema": FRAGMENT_SCHEMA,
            "digest": digest,
            "report": report.to_json(),
        };
        atomic_write(&self.fragment_path(digest), &fragment.to_pretty())
    }

    /// `(hits, misses, rejected)` counters for this store handle.
    /// "Rejected" counts fragments that existed but failed validation.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::MicroBenchmark;
    use simcore::units::ByteSize;
    use simnet::Interconnect;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mrbench-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_config() -> BenchConfig {
        let mut c = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_mib(64),
        );
        c.num_maps = 4;
        c.num_reduces = 2;
        c.slaves = 2;
        c
    }

    #[test]
    fn digest_is_stable_and_config_sensitive() {
        let a = config_digest(&small_config());
        assert_eq!(a, config_digest(&small_config()), "deterministic");
        assert_eq!(a.len(), 32);
        let mut other = small_config();
        other.seed += 1;
        assert_ne!(a, config_digest(&other), "seed must change the key");
        let mut other = small_config();
        other.interconnect = Interconnect::RdmaFdr;
        assert_ne!(a, config_digest(&other));
    }

    #[test]
    fn digest_distinguishes_every_semantic_knob() {
        // The digest-contract pin (see module docs): each post-v1 knob
        // must move the cache key the moment it departs from its
        // default, or a backend/topology change could serve a stale
        // result recorded under different semantics.
        type Mutation = Box<dyn Fn(&mut BenchConfig)>;
        let base = config_digest(&small_config());
        let mutations: Vec<(&str, Mutation)> = vec![
            ("racks", Box::new(|c| c.racks = 2)),
            ("oversubscription", Box::new(|c| c.oversubscription = 4.0)),
            (
                "fabric_cap_mb_s",
                Box::new(|c| c.fabric_cap_mb_s = Some(200.0)),
            ),
            (
                "monitor_interval_s",
                Box::new(|c| c.monitor_interval_s = 0.5),
            ),
            (
                "backend",
                Box::new(|c| c.backend = crate::config::BackendKind::Analytic),
            ),
        ];
        let mut seen = vec![base.clone()];
        for (name, mutate) in &mutations {
            let mut c = small_config();
            mutate(&mut c);
            let d = config_digest(&c);
            assert!(!seen.contains(&d), "{name} must move the digest");
            seen.push(d);
        }

        // The documented asymmetry: an explicit fabric cap equal to the
        // aggregate NIC rate simulates identically to no cap, yet emits
        // a key and so digests apart. Duplicate cells, never stale ones.
        let mut explicit = small_config();
        let nic_mb_s =
            explicit.topology().nic_rate().as_bytes_per_sec() * explicit.slaves as f64 / 1e6;
        explicit.fabric_cap_mb_s = Some(nic_mb_s);
        assert_ne!(base, config_digest(&explicit));
        let a = crate::runner::run(&small_config()).unwrap();
        let b = crate::runner::run(&explicit).unwrap();
        assert_eq!(a.result.job_time, b.result.job_time, "cap never binds");
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 128 test vectors.
        assert_eq!(fnv1a_128(b""), "6c62272e07bb014262b821756295c58d");
        assert_eq!(fnv1a_128(b"a"), "d228cb696f1a8caf78912b704e4a8964");
    }

    #[test]
    fn put_get_round_trip_and_miss_cases() {
        let dir = tmp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let config = small_config();
        let digest = config_digest(&config);
        assert!(store.get(&digest).is_none(), "empty store misses");

        let report = crate::runner::run(&config).unwrap();
        store.put(&digest, &report).unwrap();
        let back = store.get(&digest).expect("hit after put");
        assert_eq!(
            back.to_json().to_compact(),
            report.to_json().to_compact(),
            "cached report is byte-identical"
        );
        assert_eq!(store.stats(), (1, 1, 0));

        // Corrupt fragments read as misses, not errors.
        std::fs::write(store.fragment_path(&digest), "{ torn").unwrap();
        assert!(store.get(&digest).is_none());
        // A fragment stored under the wrong key is rejected too.
        store.put(&digest, &report).unwrap();
        std::fs::rename(
            store.fragment_path(&digest),
            store.fragment_path("0000000000000000000000000000beef"),
        )
        .unwrap();
        assert!(store.get("0000000000000000000000000000beef").is_none());
        let (_, _, rejected) = store.stats();
        assert_eq!(rejected, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = tmp_dir("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        atomic_write(&path, "first").unwrap();
        atomic_write(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["out.json"], "no temp files linger");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
