//! Machine-readable benchmark artifacts (`BENCH_<name>.json` / CSV).
//!
//! A binary run produces a sequence of *panels* — sweeps (the paper's
//! figure grids) and single reports (e.g. the fault scenarios) — that
//! were previously only pretty-printed. [`Artifacts`] collects them as
//! they are produced and writes one JSON document and/or one CSV table
//! at exit, so perf trajectories can be tracked across commits.
//!
//! JSON schema (`mrbench-artifact-v1`):
//!
//! ```json
//! {
//!   "schema": "mrbench-artifact-v1",
//!   "name": "fig2",
//!   "panels": [
//!     {"title": "...", "kind": "sweep",  "sweep":  { ...Sweep::to_json... }},
//!     {"title": "...", "kind": "report", "report": { ...BenchReport::to_json... }}
//!   ]
//! }
//! ```
//!
//! Everything round-trips: [`Artifacts::from_json`] rebuilds the full
//! report types, down to nanosecond job times and utilization samples.

use std::path::{Path, PathBuf};

use simcore::jobj;
use simcore::json::Json;

use crate::error::Error;
use crate::report::{BenchReport, CSV_HEADER};
use crate::store::atomic_write;
use crate::sweep::Sweep;

/// Schema tag written into every artifact document.
pub const SCHEMA: &str = "mrbench-artifact-v1";

/// One recorded panel: a sweep grid or a single report.
#[derive(Debug)]
pub enum Panel {
    /// A (shuffle size × interconnect) grid.
    Sweep {
        /// Panel title as printed above the table.
        title: String,
        /// The grid.
        sweep: Sweep,
    },
    /// One stand-alone run. Boxed so the enum stays small next to the
    /// slim `Sweep` variant.
    Report {
        /// Scenario label.
        title: String,
        /// The run's report.
        report: Box<BenchReport>,
    },
}

impl Panel {
    /// The panel's title.
    pub fn title(&self) -> &str {
        match self {
            Panel::Sweep { title, .. } | Panel::Report { title, .. } => title,
        }
    }
}

/// Collects panels during a run and writes them to the paths requested
/// on the command line.
#[derive(Debug)]
pub struct Artifacts {
    /// Artifact name (by convention the binary name, e.g. `fig2`).
    pub name: String,
    /// Panels in production order.
    pub panels: Vec<Panel>,
}

impl Artifacts {
    /// Empty collector for the binary `name`.
    pub fn new(name: &str) -> Self {
        Artifacts {
            name: name.to_string(),
            panels: Vec::new(),
        }
    }

    /// Record a sweep panel.
    pub fn record_sweep(&mut self, title: &str, sweep: Sweep) {
        self.panels.push(Panel::Sweep {
            title: title.to_string(),
            sweep,
        });
    }

    /// Record a single-report panel.
    pub fn record_report(&mut self, title: &str, report: BenchReport) {
        self.panels.push(Panel::Report {
            title: title.to_string(),
            report: Box::new(report),
        });
    }

    /// Serialize every panel under the `mrbench-artifact-v1` schema.
    pub fn to_json(&self) -> Json {
        jobj! {
            "schema": SCHEMA,
            "name": self.name.as_str(),
            "panels": Json::Arr(
                self.panels
                    .iter()
                    .map(|p| match p {
                        Panel::Sweep { title, sweep } => jobj! {
                            "title": title.as_str(),
                            "kind": "sweep",
                            "sweep": sweep.to_json(),
                        },
                        Panel::Report { title, report } => jobj! {
                            "title": title.as_str(),
                            "kind": "report",
                            "report": report.to_json(),
                        },
                    })
                    .collect(),
            ),
        }
    }

    /// Rebuild from the [`Artifacts::to_json`] encoding, validating the
    /// `mrbench-artifact-v1` schema. Errors carry the field path where
    /// validation failed (e.g. `panels[2] ("MR-RAND"): sweep: cells[1]:
    /// report: missing JSON field 'config'`).
    pub fn from_json(json: &Json) -> Result<Self, Error> {
        let root = |e: String| Error::parse("artifact", e);
        let schema = json.field_str("schema").map_err(root)?;
        if schema != SCHEMA {
            return Err(root(format!(
                "unsupported artifact schema '{schema}' (expected '{SCHEMA}')"
            )));
        }
        let name = json.field_str("name").map_err(root)?.to_string();
        let mut panels = Vec::new();
        for (i, p) in json.field_arr("panels").map_err(root)?.iter().enumerate() {
            let at = |e: String| Error::parse(format!("panels[{i}]"), e);
            let title = p.field_str("title").map_err(at)?.to_string();
            let titled = |field: &str, e: String| {
                Error::parse(
                    format!("panels[{i}] (\"{title}\")"),
                    format!("{field}: {e}"),
                )
            };
            match p.field_str("kind").map_err(at)? {
                "sweep" => panels.push(Panel::Sweep {
                    sweep: p
                        .req("sweep")
                        .and_then(Sweep::from_json)
                        .map_err(|e| titled("sweep", e))?,
                    title,
                }),
                "report" => panels.push(Panel::Report {
                    report: p
                        .req("report")
                        .and_then(BenchReport::from_json)
                        .map(Box::new)
                        .map_err(|e| titled("report", e))?,
                    title,
                }),
                other => return Err(at(format!("unknown panel kind '{other}'"))),
            }
        }
        Ok(Artifacts { name, panels })
    }

    /// Read and validate an artifact file, prefixing every error with
    /// the file path.
    pub fn load(path: &Path) -> Result<Self, Error> {
        let text = crate::error::read_to_string(path)?;
        let json = Json::parse(&text)
            .map_err(|e| Error::parse(path.display().to_string(), format!("invalid JSON: {e}")))?;
        Artifacts::from_json(&json).map_err(|e| match e {
            Error::Parse { context, detail } => Error::Parse {
                context: format!("{}: {context}", path.display()),
                detail,
            },
            other => other,
        })
    }

    /// True when at least one recorded run carries a span stream (i.e.
    /// it ran with tracing enabled).
    pub fn has_traces(&self) -> bool {
        self.panels.iter().any(|p| match p {
            Panel::Sweep { sweep, .. } => {
                sweep.cells.iter().any(|c| c.report.result.trace.is_some())
            }
            Panel::Report { report, .. } => report.result.trace.is_some(),
        })
    }

    /// Combine every traced run into one Chrome trace-event document:
    /// run *i* becomes trace-event process *i*, named after its panel
    /// (plus grid coordinates for sweep cells), with one thread per
    /// `node/slot` lane. The top-level `"runs"` array records the labels
    /// in pid order — tooling can validate against it; viewers ignore it.
    pub fn to_chrome_trace(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        let mut runs: Vec<Json> = Vec::new();
        for panel in &self.panels {
            match panel {
                Panel::Sweep { title, sweep } => {
                    for c in &sweep.cells {
                        if let Some(trace) = &c.report.result.trace {
                            let label = format!("{title} [{} over {}]", c.shuffle, c.interconnect);
                            trace.chrome_events(runs.len() as u64, &label, &mut events);
                            runs.push(Json::from(label));
                        }
                    }
                }
                Panel::Report { title, report } => {
                    if let Some(trace) = &report.result.trace {
                        trace.chrome_events(runs.len() as u64, title, &mut events);
                        runs.push(Json::from(title.as_str()));
                    }
                }
            }
        }
        jobj! {
            "displayTimeUnit": "ms",
            "runs": Json::Arr(runs),
            "traceEvents": Json::Arr(events),
        }
    }

    /// Write the combined Chrome trace of every traced run, reporting
    /// the path on stdout.
    pub fn write_chrome_trace(&self, path: &Path) -> Result<(), Error> {
        atomic_write(path, &self.to_chrome_trace().to_pretty())?;
        println!("wrote {}", path.display());
        Ok(())
    }

    /// The artifact as a CSV table: header plus one row per run.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for panel in &self.panels {
            match panel {
                Panel::Sweep { title, sweep } => {
                    for row in sweep.csv_rows(title) {
                        out.push_str(&row);
                        out.push('\n');
                    }
                }
                Panel::Report { title, report } => {
                    out.push_str(&report.csv_row(title));
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Write the JSON and/or CSV files, reporting each path written on
    /// stdout. Empty collectors still write (an artifact with zero
    /// panels is a valid, parseable document). Both writes are atomic
    /// (temp + fsync + rename), so a crash mid-write can never leave a
    /// torn artifact where a previous good one stood.
    pub fn write(&self, json_path: Option<&Path>, csv_path: Option<&Path>) -> Result<(), Error> {
        if let Some(path) = json_path {
            atomic_write(path, &self.to_json().to_pretty())?;
            println!("wrote {}", path.display());
        }
        if let Some(path) = csv_path {
            atomic_write(path, &self.to_csv())?;
            println!("wrote {}", path.display());
        }
        Ok(())
    }
}

/// Output paths requested via `--json [PATH]` / `--csv [PATH]`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ArtifactPaths {
    /// JSON artifact destination.
    pub json: Option<PathBuf>,
    /// CSV artifact destination.
    pub csv: Option<PathBuf>,
}

impl ArtifactPaths {
    /// True when neither output was requested.
    pub fn is_empty(&self) -> bool {
        self.json.is_none() && self.csv.is_none()
    }

    /// Default path (`BENCH_<name>.json` / `BENCH_<name>.csv`) for
    /// flags given without a value.
    pub fn default_for(name: &str, kind: &str) -> PathBuf {
        PathBuf::from(format!("BENCH_{name}.{kind}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::MicroBenchmark;
    use crate::config::BenchConfig;
    use crate::runner::run;
    use simcore::units::ByteSize;
    use simnet::Interconnect;

    fn tiny(shuffle: ByteSize, ic: Interconnect) -> BenchConfig {
        let mut c = BenchConfig::cluster_a_default(MicroBenchmark::Avg, ic, shuffle);
        c.slaves = 2;
        c.num_maps = 4;
        c.num_reduces = 4;
        c
    }

    #[test]
    fn artifact_round_trips_and_tabulates() {
        let sizes = [ByteSize::from_mib(64)];
        let ics = [Interconnect::GigE1, Interconnect::RdmaFdr];
        let sweep = Sweep::run_grid_serial(&sizes, &ics, tiny).unwrap();
        let single = run(&tiny(ByteSize::from_mib(64), Interconnect::GigE1)).unwrap();

        let mut art = Artifacts::new("unit");
        art.record_sweep("panel one", sweep);
        art.record_report("scenario", single);

        let text = art.to_json().to_pretty();
        let back = Artifacts::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.name, "unit");
        assert_eq!(back.panels.len(), 2);
        assert_eq!(back.to_json().to_pretty(), text, "canonical round-trip");

        // Job times in the decoded artifact match the originals.
        let (Panel::Sweep { sweep: s0, .. }, Panel::Sweep { sweep: s1, .. }) =
            (&art.panels[0], &back.panels[0])
        else {
            panic!("expected sweep panels");
        };
        for (a, b) in s0.cells.iter().zip(&s1.cells) {
            assert_eq!(a.report.result.job_time, b.report.result.job_time);
        }

        let csv = art.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        assert_eq!(
            csv.lines().count(),
            1 + 2 + 1,
            "header + 2 cells + 1 report"
        );
        assert!(csv.contains("panel one,MR-AVG"));
        assert!(csv.contains("scenario,MR-AVG"));
    }

    #[test]
    fn traced_and_failed_runs_round_trip_and_combine() {
        let mut ok = tiny(ByteSize::from_mib(64), Interconnect::GigE1);
        ok.trace = true;
        let mut bad = tiny(ByteSize::from_mib(64), Interconnect::GigE1);
        bad.trace = true;
        bad.faults.map_failure_prob = 1.0; // every attempt dies
        bad.max_attempts = 2;
        let mut art = Artifacts::new("unit");
        art.record_report("ok run", run(&ok).unwrap());
        art.record_report("failed run", run(&bad).unwrap());
        assert!(art.has_traces());

        // The artifact round-trips with phases intact; the raw span
        // stream is deliberately transient (it has its own file format).
        let text = art.to_json().to_pretty();
        let back = Artifacts::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().to_pretty(), text, "canonical round-trip");
        for panel in &back.panels {
            let Panel::Report { report, .. } = panel else {
                panic!("expected report panels");
            };
            assert!(report.result.phases.is_some());
            assert!(report.result.trace.is_none());
        }

        // Combined Chrome document: one process per run, with complete
        // ("X") span events and process_name metadata for both.
        let chrome = art.to_chrome_trace();
        assert_eq!(chrome.field_arr("runs").unwrap().len(), 2);
        let events = chrome.field_arr("traceEvents").unwrap();
        let pids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.field_str("ph") == Ok("X"))
            .map(|e| e.field_u64("pid").unwrap())
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(
            events
                .iter()
                .filter(|e| e.field_str("name") == Ok("process_name"))
                .count(),
            2
        );
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let doc = Json::parse(r#"{"schema": "other", "name": "x", "panels": []}"#).unwrap();
        let err = Artifacts::from_json(&doc).unwrap_err().to_string();
        assert!(err.contains("schema") && err.contains(SCHEMA), "{err}");
    }

    #[test]
    fn reader_errors_carry_the_field_path() {
        // A panel with a bad kind names its index.
        let doc = Json::parse(
            r#"{"schema": "mrbench-artifact-v1", "name": "x", "panels": [
                {"title": "ok?", "kind": "frob"}
            ]}"#,
        )
        .unwrap();
        let err = Artifacts::from_json(&doc).unwrap_err().to_string();
        assert!(err.contains("panels[0]") && err.contains("frob"), "{err}");

        // A structurally broken report names panel, title, and field.
        let doc = Json::parse(
            r#"{"schema": "mrbench-artifact-v1", "name": "x", "panels": [
                {"title": "scenario A", "kind": "report", "report": {"config": {}}}
            ]}"#,
        )
        .unwrap();
        let err = Artifacts::from_json(&doc).unwrap_err().to_string();
        assert!(
            err.contains("panels[0]") && err.contains("scenario A") && err.contains("report"),
            "{err}"
        );

        // load() prefixes the file path; missing files are Io errors.
        let missing = Path::new("/nonexistent/BENCH_nope.json");
        match Artifacts::load(missing) {
            Err(Error::Io { op, .. }) => assert_eq!(op, "read"),
            other => panic!("expected Io error, got {other:?}"),
        }
        let dir = std::env::temp_dir().join(format!("mrbench-art-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{ not json").unwrap();
        let err = Artifacts::load(&bad).unwrap_err().to_string();
        assert!(
            err.contains("bad.json") && err.contains("invalid JSON"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_then_load_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("mrbench-art-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_unit.json");
        let mut art = Artifacts::new("unit");
        art.record_report(
            "one run",
            run(&tiny(ByteSize::from_mib(64), Interconnect::GigE1)).unwrap(),
        );
        art.write(Some(&path), None).unwrap();
        let back = Artifacts::load(&path).unwrap();
        assert_eq!(back.to_json().to_pretty(), art.to_json().to_pretty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_paths_follow_convention() {
        assert_eq!(
            ArtifactPaths::default_for("fig2", "json"),
            PathBuf::from("BENCH_fig2.json")
        );
        assert!(ArtifactPaths::default().is_empty());
    }
}
