//! Pluggable evaluation backends.
//!
//! A [`Backend`] turns a validated [`BenchConfig`] into a
//! [`BenchReport`]. Two implementations ship:
//!
//! * [`DesBackend`] — the discrete-event simulator
//!   ([`mapreduce::engine`]). Per-event fidelity: fault injection,
//!   speculation, fetch backpressure, page-cache dynamics. The default,
//!   and the ground truth the other backend is validated against.
//! * [`AnalyticBackend`] — the closed-form cost model
//!   ([`mapreduce::analytic`]). O(maps + reduces) arithmetic per job;
//!   use it to scout large sweeps, then confirm the interesting cells
//!   with the DES. It refuses configs whose features it cannot model
//!   (fault plans, speculative execution) rather than silently ignoring
//!   them.
//!
//! Both run behind the same entry point — [`crate::runner::run`]
//! dispatches on [`BenchConfig::backend`] — so reports, stores, and
//! sweeps are backend-agnostic. A config's digest covers the `backend`
//! field, which keeps analytic and DES results under distinct cache keys
//! (see the digest contract in [`crate::store`]).

use crate::bench::MicroBenchmark;
use crate::config::{BackendKind, BenchConfig};
use crate::error::Error;
use crate::report::BenchReport;
use mapreduce::analytic::{evaluate, AnalyticJob};
use mapreduce::engine::Engine;

/// One way of evaluating a benchmark configuration.
pub trait Backend: Send + Sync {
    /// The selector this backend answers to.
    fn kind(&self) -> BackendKind;
    /// Human-readable name for logs and reports.
    fn name(&self) -> &'static str;
    /// Evaluate `config` to a report. Implementations must validate the
    /// config first so every backend rejects bad input with
    /// [`Error::Config`] (CLI exit code 3).
    fn run(&self, config: &BenchConfig) -> Result<BenchReport, Error>;
}

/// The discrete-event simulator backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct DesBackend;

impl Backend for DesBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Des
    }

    fn name(&self) -> &'static str {
        "discrete-event simulator"
    }

    fn run(&self, config: &BenchConfig) -> Result<BenchReport, Error> {
        config.validate().map_err(Error::Config)?;
        let spec = config.job_spec();
        let factory = config.factory();
        let mut engine = Engine::with_topology(
            spec,
            factory.as_ref(),
            config.node_spec(),
            config.topology(),
        );
        if config.trace {
            engine.enable_tracing();
        }
        let result = engine.run();
        Ok(BenchReport {
            config: config.clone(),
            result,
        })
    }
}

/// The closed-form cost-model backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyticBackend;

impl Backend for AnalyticBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Analytic
    }

    fn name(&self) -> &'static str {
        "analytic cost model"
    }

    fn run(&self, config: &BenchConfig) -> Result<BenchReport, Error> {
        config.validate().map_err(Error::Config)?;
        // The model has no notion of failures or speculative attempts;
        // silently returning fault-free numbers for a fault-injection
        // config would be a lie, so refuse instead.
        if !config.faults.is_empty() {
            return Err(Error::Config(
                "the analytic backend cannot model fault injection; use --backend des".into(),
            ));
        }
        if config.speculative {
            return Err(Error::Config(
                "the analytic backend cannot model speculative execution; use --backend des".into(),
            ));
        }
        let spec = config.job_spec();
        let node = config.node_spec();
        let topology = config.topology();
        let result = evaluate(&AnalyticJob {
            spec: &spec,
            node: &node,
            topology: &topology,
            reduce_fractions: expected_reduce_fractions(config),
            monitor_interval_s: config.monitor_interval_s,
            trace: config.trace,
        })
        .map_err(Error::Config)?;
        Ok(BenchReport {
            config: config.clone(),
            result,
        })
    }
}

/// The backend implementing `kind`.
pub fn backend_for(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Des => &DesBackend,
        BackendKind::Analytic => &AnalyticBackend,
    }
}

/// Expected fraction of intermediate records each reducer receives under
/// `config`'s benchmark — the closed-form counterpart of actually running
/// the partitioner over every record:
///
/// * **MR-AVG** partitions round-robin per map, so reducer `r` gets
///   exactly `floor(P/R) + (r < P mod R)` of each map's `P` records.
/// * **MR-RAND** draws `nextInt(R)` per record: uniform in expectation.
/// * **MR-SKEW** routes 50 % to reducer 0, 25 % to 1, 12.5 % to 2
///   (clamped to the last reducer when `R < 3`), and spreads the
///   remaining 12.5 % uniformly (paper Sect. 4.2).
/// * **MR-ZIPF** weights reducer `r` by `1 / (r + 1)^s`, normalized.
pub fn expected_reduce_fractions(config: &BenchConfig) -> Vec<f64> {
    let r = (config.num_reduces as usize).max(1);
    match config.benchmark {
        MicroBenchmark::Avg => {
            let pairs = config.job_spec().pairs_per_map.max(1);
            let base = pairs / r as u64;
            let rem = (pairs % r as u64) as usize;
            (0..r)
                .map(|i| (base + u64::from(i < rem)) as f64 / pairs as f64)
                .collect()
        }
        MicroBenchmark::Rand => vec![1.0 / r as f64; r],
        MicroBenchmark::Skew => {
            let mut frac = vec![0.0f64; r];
            let last = r - 1;
            frac[0] += 0.50;
            frac[1.min(last)] += 0.25;
            frac[2.min(last)] += 0.125;
            let tail = 0.125 / r as f64;
            for f in &mut frac {
                *f += tail;
            }
            frac
        }
        MicroBenchmark::Zipf => {
            let s = config.zipf_exponent;
            let weights: Vec<f64> = (0..r).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
            let sum: f64 = weights.iter().sum();
            weights.into_iter().map(|w| w / sum).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::ByteSize;
    use simnet::Interconnect;

    fn config(bench: MicroBenchmark, reduces: u32) -> BenchConfig {
        let mut c =
            BenchConfig::cluster_a_default(bench, Interconnect::GigE1, ByteSize::from_mib(256));
        c.slaves = 2;
        c.num_maps = 4;
        c.num_reduces = reduces;
        c
    }

    fn assert_normalized(frac: &[f64]) {
        let sum: f64 = frac.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum} of {frac:?}");
        assert!(frac.iter().all(|f| *f >= 0.0 && f.is_finite()));
    }

    #[test]
    fn fractions_match_each_distribution() {
        for bench in MicroBenchmark::EXTENDED {
            for reduces in [1, 2, 3, 8] {
                assert_normalized(&expected_reduce_fractions(&config(bench, reduces)));
            }
        }
        let avg = expected_reduce_fractions(&config(MicroBenchmark::Avg, 8));
        let spread = avg.iter().fold(0.0f64, |m, f| m.max((f - 1.0 / 8.0).abs()));
        assert!(spread < 0.01, "{avg:?}");

        let skew = expected_reduce_fractions(&config(MicroBenchmark::Skew, 8));
        let t = 0.125 / 8.0;
        assert!((skew[0] - (0.50 + t)).abs() < 1e-12);
        assert!((skew[1] - (0.25 + t)).abs() < 1e-12);
        assert!((skew[2] - (0.125 + t)).abs() < 1e-12);
        assert!((skew[7] - t).abs() < 1e-12);

        // R=2 clamps the 12.5% bucket onto reducer 1 (paper Sect. 4.2).
        let skew2 = expected_reduce_fractions(&config(MicroBenchmark::Skew, 2));
        assert!((skew2[0] - 0.5625).abs() < 1e-12, "{skew2:?}");
        assert!((skew2[1] - 0.4375).abs() < 1e-12, "{skew2:?}");

        let zipf = expected_reduce_fractions(&config(MicroBenchmark::Zipf, 4));
        assert!(zipf[0] > zipf[1] && zipf[1] > zipf[2] && zipf[2] > zipf[3]);
    }

    #[test]
    fn both_backends_answer_to_their_kind() {
        for kind in [BackendKind::Des, BackendKind::Analytic] {
            assert_eq!(backend_for(kind).kind(), kind);
        }
    }

    #[test]
    fn analytic_refuses_what_it_cannot_model() {
        let mut c = config(MicroBenchmark::Avg, 4);
        c.backend = BackendKind::Analytic;
        assert!(backend_for(BackendKind::Analytic).run(&c).is_ok());
        let mut faulty = c.clone();
        faulty.faults.map_failure_prob = 0.1;
        let err = backend_for(BackendKind::Analytic).run(&faulty);
        assert!(matches!(err, Err(Error::Config(_))), "{err:?}");
        let mut spec = c;
        spec.speculative = true;
        assert!(matches!(
            backend_for(BackendKind::Analytic).run(&spec),
            Err(Error::Config(_))
        ));
    }
}
