//! Benchmark output: configuration, job execution time, and resource
//! utilization (paper Sect. 1: "We display the configuration parameters
//! and resource utilization statistics for each test, along with the
//! final job execution time, as the micro-benchmark output").

use std::fmt;

use mapreduce::job::JobResult;
use simcore::jobj;
use simcore::json::Json;
use simcore::stats::TimeSeries;
use simcore::trace::PhaseBreakdown;
use simcore::units::ByteSize;

use crate::config::{interconnect_token, BenchConfig};
use crate::sweep::{Sweep, SweepCell};

/// Everything one benchmark run produced.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// The configuration that was run.
    pub config: BenchConfig,
    /// The engine's full result.
    pub result: JobResult,
}

impl BenchReport {
    /// Job execution time in seconds — the headline metric.
    pub fn job_time_secs(&self) -> f64 {
        self.result.job_time_secs()
    }

    /// Peak CPU utilization (%) observed on any slave.
    pub fn peak_cpu_pct(&self) -> f64 {
        series_peak(&self.result.cpu_series)
    }

    /// Peak network receive throughput (MB/s) observed on any slave —
    /// the quantity Fig. 7(b) plots.
    pub fn peak_rx_mbps(&self) -> f64 {
        series_peak(&self.result.net_rx_series)
    }

    /// CPU utilization series of one slave (Fig. 7(a) plots slave 0).
    /// `None` when `node` is not a slave of this run.
    pub fn cpu_series(&self, node: usize) -> Option<&TimeSeries> {
        self.result.cpu_series.get(node)
    }

    /// Network receive series of one slave (Fig. 7(b)). `None` when
    /// `node` is not a slave of this run.
    pub fn rx_series(&self, node: usize) -> Option<&TimeSeries> {
        self.result.net_rx_series.get(node)
    }

    /// Duration of the map phase in seconds.
    pub fn map_phase_secs(&self) -> f64 {
        self.result.map_phase_end.as_secs_f64()
    }

    /// Per-phase time decomposition; `Some` only when the run was traced
    /// (`config.trace` / `--trace`).
    pub fn phases(&self) -> Option<&PhaseBreakdown> {
        self.result.phases.as_ref()
    }

    /// Serialize to JSON: the full config plus the full result, enough
    /// to rebuild this report exactly.
    pub fn to_json(&self) -> Json {
        jobj! {
            "config": self.config.to_json(),
            "result": self.result.to_json(),
        }
    }

    /// Rebuild from the [`BenchReport::to_json`] encoding. Errors are
    /// prefixed with the sub-document (`config` / `result`) they came
    /// from.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        Ok(BenchReport {
            config: json
                .req("config")
                .and_then(BenchConfig::from_json)
                .map_err(|e| format!("config: {e}"))?,
            result: json
                .req("result")
                .and_then(JobResult::from_json)
                .map_err(|e| format!("result: {e}"))?,
        })
    }

    /// One CSV row for this report. Column order matches
    /// [`CSV_HEADER`]; `panel` tags which table/figure the row belongs
    /// to and is quoted when it contains CSV metacharacters.
    pub fn csv_row(&self, panel: &str) -> String {
        format!(
            "{},{},{},{},{},{},{:.3},{:.3},{:.3},{:.1},{:.1},{}",
            csv_field(panel),
            self.config.benchmark.label(),
            self.config.shuffle_bytes().as_bytes(),
            interconnect_token(self.config.interconnect),
            match self.config.engine {
                mapreduce::conf::EngineKind::MRv1 => "mrv1",
                mapreduce::conf::EngineKind::Yarn => "yarn",
            },
            self.result.outcome.as_str(),
            self.job_time_secs(),
            self.map_phase_secs(),
            self.result.shuffle_end.as_secs_f64(),
            self.peak_cpu_pct(),
            self.peak_rx_mbps(),
            self.result.counters.failed_task_attempts,
        )
    }
}

/// Header line for benchmark CSV exports; see [`BenchReport::csv_row`].
pub const CSV_HEADER: &str = "panel,benchmark,shuffle_bytes,interconnect,engine,outcome,\
job_time_s,map_phase_s,shuffle_end_s,peak_cpu_pct,peak_rx_mbps,failed_attempts";

/// RFC 4180 quoting: wrap the field in double quotes when it contains a
/// comma, quote, or newline, doubling any embedded quotes.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl Sweep {
    /// Serialize the whole grid: row/column labels plus every cell's
    /// full [`BenchReport`], in row-major order.
    pub fn to_json(&self) -> Json {
        jobj! {
            "sizes": Json::Arr(self.sizes.iter().map(|s| Json::from(s.as_bytes())).collect()),
            "interconnects": Json::Arr(
                self.interconnects
                    .iter()
                    .map(|&ic| Json::from(interconnect_token(ic)))
                    .collect(),
            ),
            "cells": Json::Arr(
                self.cells
                    .iter()
                    .map(|c| {
                        jobj! {
                            "shuffle_bytes": c.shuffle.as_bytes(),
                            "interconnect": interconnect_token(c.interconnect),
                            "report": c.report.to_json(),
                        }
                    })
                    .collect(),
            ),
        }
    }

    /// Rebuild from the [`Sweep::to_json`] encoding.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let sizes = json
            .field_arr("sizes")?
            .iter()
            .map(|s| s.as_u64().map(ByteSize::from_bytes).ok_or("bad size"))
            .collect::<Result<Vec<_>, _>>()?;
        let interconnects = json
            .field_arr("interconnects")?
            .iter()
            .map(|ic| crate::cli::parse_network(ic.as_str().ok_or("bad interconnect")?))
            .collect::<Result<Vec<_>, _>>()?;
        let cells = json
            .field_arr("cells")?
            .iter()
            .enumerate()
            .map(|(i, c)| {
                // Prefix the cell index so artifact-level errors pinpoint
                // the offending grid cell.
                (|| -> Result<SweepCell, String> {
                    Ok(SweepCell {
                        shuffle: ByteSize::from_bytes(c.field_u64("shuffle_bytes")?),
                        interconnect: crate::cli::parse_network(c.field_str("interconnect")?)?,
                        report: BenchReport::from_json(c.req("report")?)?,
                    })
                })()
                .map_err(|e| format!("cells[{i}]: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        if cells.len() != sizes.len() * interconnects.len() {
            return Err(format!(
                "sweep has {} cells but a {}x{} grid",
                cells.len(),
                sizes.len(),
                interconnects.len()
            ));
        }
        Ok(Sweep {
            sizes,
            interconnects,
            cells,
        })
    }

    /// CSV rows for every cell, in row-major order (no header; see
    /// [`CSV_HEADER`]).
    pub fn csv_rows(&self, panel: &str) -> Vec<String> {
        self.cells.iter().map(|c| c.report.csv_row(panel)).collect()
    }
}

fn series_peak(all: &[TimeSeries]) -> f64 {
    all.iter().filter_map(|s| s.peak()).fold(0.0f64, f64::max)
}

impl fmt::Display for BenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.config;
        writeln!(
            f,
            "================ micro-benchmark report ================"
        )?;
        writeln!(f, "benchmark            {}", c.benchmark)?;
        writeln!(f, "engine               {}", c.engine.label())?;
        writeln!(
            f,
            "shuffle engine       {}",
            match c.shuffle_engine {
                mapreduce::conf::ShuffleEngineKind::Tcp => "sockets (HTTP fetch)",
                mapreduce::conf::ShuffleEngineKind::Rdma => "RDMA (MRoIB)",
            }
        )?;
        writeln!(f, "network              {}", c.interconnect)?;
        writeln!(
            f,
            "cluster              {:?} x{} ({})",
            c.cluster,
            c.slaves,
            c.node_spec().name
        )?;
        writeln!(f, "maps / reduces       {} / {}", c.num_maps, c.num_reduces)?;
        writeln!(
            f,
            "key / value          {} B / {} B ({})",
            c.key_size, c.value_size, c.data_type
        )?;
        writeln!(f, "shuffle data         {}", c.shuffle_bytes())?;
        if !c.faults.is_empty() {
            writeln!(f, "fault plan           {:?}", c.faults)?;
        }
        writeln!(
            f,
            "---------------------------------------------------------"
        )?;
        match (&self.result.failure, &self.result.budget) {
            (Some(d), _) => writeln!(
                f,
                "outcome              FAILED at {:.1} s — {}",
                d.at.as_secs_f64(),
                d.reason
            )?,
            (None, Some(b)) => {
                writeln!(f, "outcome              BUDGET EXCEEDED — {}", b.summary())?
            }
            (None, None) => writeln!(f, "outcome              SUCCEEDED")?,
        }
        writeln!(f, "JOB EXECUTION TIME   {:.1} s", self.job_time_secs())?;
        writeln!(
            f,
            "map phase            {:.1} s   shuffle end {:.1} s",
            self.map_phase_secs(),
            self.result.shuffle_end.as_secs_f64()
        )?;
        writeln!(
            f,
            "peak CPU             {:.0} %    peak network rx {:.0} MB/s",
            self.peak_cpu_pct(),
            self.peak_rx_mbps()
        )?;
        if let Some(b) = self.phases() {
            writeln!(
                f,
                "---------------------------------------------------------"
            )?;
            writeln!(f, "phase breakdown (exclusive wall time / busy task time)")?;
            for p in &b.phases {
                writeln!(
                    f,
                    "  {:<12} {:>9.1} s / {:>9.1} s   {:>5} spans",
                    p.phase, p.exclusive_s, p.busy_s, p.spans
                )?;
            }
            writeln!(
                f,
                "  {:<12} {:>9.1} s   (>=2 phases concurrently)",
                "overlap", b.overlap_s
            )?;
            writeln!(f, "  {:<12} {:>9.1} s", "idle", b.idle_s)?;
        }
        writeln!(
            f,
            "---------------------------------------------------------"
        )?;
        write!(f, "{}", self.result.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::MicroBenchmark;
    use crate::runner::run;
    use simcore::units::ByteSize;
    use simnet::Interconnect;

    #[test]
    fn report_renders_all_sections() {
        let mut config = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_mib(512),
        );
        config.slaves = 2;
        config.num_maps = 4;
        config.num_reduces = 4;
        let report = run(&config).unwrap();
        let text = report.to_string();
        assert!(text.contains("MR-AVG"));
        assert!(text.contains("JOB EXECUTION TIME"));
        assert!(text.contains("1GigE"));
        assert!(text.contains("peak CPU"));
        assert!(text.contains("Counters"));
        assert!(text.contains("outcome              SUCCEEDED"));
        assert!(report.job_time_secs() > 0.0);
        assert!(report.peak_cpu_pct() > 0.0);
        // Series accessors: in-range nodes are Some, out-of-range None
        // (not a panic).
        assert!(report.cpu_series(0).is_some());
        assert!(report.rx_series(1).is_some());
        assert!(report.cpu_series(2).is_none());
        assert!(report.rx_series(99).is_none());
    }

    #[test]
    fn report_json_round_trips_exactly() {
        let mut config = BenchConfig::cluster_a_default(
            MicroBenchmark::Skew,
            Interconnect::IpoibQdr,
            ByteSize::from_mib(256),
        );
        config.slaves = 2;
        config.num_maps = 4;
        config.num_reduces = 4;
        let report = run(&config).unwrap();
        let text = report.to_json().to_pretty();
        let back = BenchReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().to_pretty(), text);
        assert_eq!(back.result.job_time, report.result.job_time);
        assert_eq!(back.result.counters, report.result.counters);
        assert_eq!(back.result.tasks.len(), report.result.tasks.len());
        assert_eq!(
            back.cpu_series(0).unwrap().samples(),
            report.cpu_series(0).unwrap().samples()
        );
        // CSV row carries the headline numbers.
        let row = report.csv_row("test");
        assert!(row.starts_with("test,MR-SKEW,"));
        assert!(row.contains(",ipoib-qdr,"));
        assert!(row.contains(",succeeded,"));
        assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
        // Panel titles with CSV metacharacters are quoted so the column
        // count stays fixed for any reader honouring RFC 4180.
        let quoted = report.csv_row("4 slaves, 1 KiB \"k/v\"");
        assert!(quoted.starts_with("\"4 slaves, 1 KiB \"\"k/v\"\"\",MR-SKEW,"));
    }

    #[test]
    fn failed_jobs_are_reported_not_panicked() {
        let mut config = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_mib(128),
        );
        config.slaves = 2;
        config.num_maps = 4;
        config.num_reduces = 4;
        config.faults.map_failure_prob = 1.0; // every attempt dies
        config.max_attempts = 2;
        let report = run(&config).unwrap();
        assert!(!report.result.succeeded());
        let text = report.to_string();
        assert!(
            text.contains("FAILED"),
            "report must show the abort:\n{text}"
        );
        assert!(text.contains("allowed attempts"), "{text}");
    }
}
