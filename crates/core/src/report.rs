//! Benchmark output: configuration, job execution time, and resource
//! utilization (paper Sect. 1: "We display the configuration parameters
//! and resource utilization statistics for each test, along with the
//! final job execution time, as the micro-benchmark output").

use std::fmt;

use mapreduce::job::JobResult;
use simcore::stats::TimeSeries;

use crate::config::BenchConfig;

/// Everything one benchmark run produced.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// The configuration that was run.
    pub config: BenchConfig,
    /// The engine's full result.
    pub result: JobResult,
}

impl BenchReport {
    /// Job execution time in seconds — the headline metric.
    pub fn job_time_secs(&self) -> f64 {
        self.result.job_time_secs()
    }

    /// Peak CPU utilization (%) observed on any slave.
    pub fn peak_cpu_pct(&self) -> f64 {
        series_peak(&self.result.cpu_series)
    }

    /// Peak network receive throughput (MB/s) observed on any slave —
    /// the quantity Fig. 7(b) plots.
    pub fn peak_rx_mbps(&self) -> f64 {
        series_peak(&self.result.net_rx_series)
    }

    /// CPU utilization series of one slave (Fig. 7(a) plots slave 0).
    pub fn cpu_series(&self, node: usize) -> &TimeSeries {
        &self.result.cpu_series[node]
    }

    /// Network receive series of one slave (Fig. 7(b)).
    pub fn rx_series(&self, node: usize) -> &TimeSeries {
        &self.result.net_rx_series[node]
    }

    /// Duration of the map phase in seconds.
    pub fn map_phase_secs(&self) -> f64 {
        self.result.map_phase_end.as_secs_f64()
    }
}

fn series_peak(all: &[TimeSeries]) -> f64 {
    all.iter().filter_map(|s| s.peak()).fold(0.0f64, f64::max)
}

impl fmt::Display for BenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.config;
        writeln!(
            f,
            "================ micro-benchmark report ================"
        )?;
        writeln!(f, "benchmark            {}", c.benchmark)?;
        writeln!(f, "engine               {}", c.engine.label())?;
        writeln!(
            f,
            "shuffle engine       {}",
            match c.shuffle_engine {
                mapreduce::conf::ShuffleEngineKind::Tcp => "sockets (HTTP fetch)",
                mapreduce::conf::ShuffleEngineKind::Rdma => "RDMA (MRoIB)",
            }
        )?;
        writeln!(f, "network              {}", c.interconnect)?;
        writeln!(
            f,
            "cluster              {:?} x{} ({})",
            c.cluster,
            c.slaves,
            c.node_spec().name
        )?;
        writeln!(f, "maps / reduces       {} / {}", c.num_maps, c.num_reduces)?;
        writeln!(
            f,
            "key / value          {} B / {} B ({})",
            c.key_size, c.value_size, c.data_type
        )?;
        writeln!(f, "shuffle data         {}", c.shuffle_bytes())?;
        if !c.faults.is_empty() {
            writeln!(f, "fault plan           {:?}", c.faults)?;
        }
        writeln!(
            f,
            "---------------------------------------------------------"
        )?;
        match &self.result.failure {
            None => writeln!(f, "outcome              SUCCEEDED")?,
            Some(d) => writeln!(
                f,
                "outcome              FAILED at {:.1} s — {}",
                d.at.as_secs_f64(),
                d.reason
            )?,
        }
        writeln!(f, "JOB EXECUTION TIME   {:.1} s", self.job_time_secs())?;
        writeln!(
            f,
            "map phase            {:.1} s   shuffle end {:.1} s",
            self.map_phase_secs(),
            self.result.shuffle_end.as_secs_f64()
        )?;
        writeln!(
            f,
            "peak CPU             {:.0} %    peak network rx {:.0} MB/s",
            self.peak_cpu_pct(),
            self.peak_rx_mbps()
        )?;
        writeln!(
            f,
            "---------------------------------------------------------"
        )?;
        write!(f, "{}", self.result.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::MicroBenchmark;
    use crate::runner::run;
    use simcore::units::ByteSize;
    use simnet::Interconnect;

    #[test]
    fn report_renders_all_sections() {
        let mut config = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_mib(512),
        );
        config.slaves = 2;
        config.num_maps = 4;
        config.num_reduces = 4;
        let report = run(&config).unwrap();
        let text = report.to_string();
        assert!(text.contains("MR-AVG"));
        assert!(text.contains("JOB EXECUTION TIME"));
        assert!(text.contains("1GigE"));
        assert!(text.contains("peak CPU"));
        assert!(text.contains("Counters"));
        assert!(text.contains("outcome              SUCCEEDED"));
        assert!(report.job_time_secs() > 0.0);
        assert!(report.peak_cpu_pct() > 0.0);
    }

    #[test]
    fn failed_jobs_are_reported_not_panicked() {
        let mut config = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_mib(128),
        );
        config.slaves = 2;
        config.num_maps = 4;
        config.num_reduces = 4;
        config.faults.map_failure_prob = 1.0; // every attempt dies
        config.max_attempts = 2;
        let report = run(&config).unwrap();
        assert!(!report.result.succeeded());
        let text = report.to_string();
        assert!(
            text.contains("FAILED"),
            "report must show the abort:\n{text}"
        );
        assert!(text.contains("allowed attempts"), "{text}");
    }
}
