//! `mrbench` — the micro-benchmark suite's command-line front end.
//!
//! Run `mrbench --help` for the options; parsing lives in
//! [`mrbench::cli`] so it is unit-tested with the library.
//!
//! Exit codes follow the taxonomy in [`mrbench::error`]: 0 success, 1
//! job failed, 2 usage, 3 config, 4 I/O, 5 parse, 6 budget exceeded,
//! 7 deadline.

use std::process::ExitCode;

use mrbench::cli::{parse_args, Cli, USAGE};
use mrbench::{
    atomic_write, run, Artifacts, Error, Interconnect, ResultStore, ShuffleEngineKind,
    ShuffleVolume, Sweep, SweepOptions,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match real_main(&args) {
        Ok(code) => code,
        Err(Error::Help(usage)) => {
            print!("{usage}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, Error::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

fn real_main(args: &[String]) -> Result<ExitCode, Error> {
    let cli = parse_args(args)?;
    if cli.compare {
        return compare(&cli);
    }

    let report = run(&cli.config)?;
    println!("{report}");
    if cli.timeline {
        // The timeline is reconstructed from the phase-span stream (the
        // --timeline flag forces tracing on), so retries, speculative
        // attempts, and phase boundaries all show.
        println!();
        println!("task timeline (per-attempt phase spans):");
        println!(
            "{:>10} {:>6} {:>4} {:>6} {:>12} {:>10} {:>10} {:>10}",
            "task", "index", "att", "node", "phase", "start (s)", "end (s)", "elapsed"
        );
        let trace = report
            .result
            .trace
            .as_ref()
            .expect("--timeline runs traced");
        let mut spans = trace.spans().to_vec();
        spans.sort_by_key(|s| (s.start, s.node, s.lane, s.end));
        for s in spans {
            println!(
                "{:>10} {:>6} {:>4} {:>6} {:>12} {:>10.2} {:>10.2} {:>9.2}s{}",
                s.kind,
                s.index,
                s.attempt,
                s.node,
                s.phase,
                s.start.as_secs_f64(),
                s.end.as_secs_f64(),
                s.end.since(s.start).as_secs_f64(),
                if s.aborted { "  (aborted)" } else { "" },
            );
        }
    }
    if let Some(path) = &cli.trace {
        let trace = report.result.trace.as_ref().expect("--trace runs traced");
        atomic_write(path, &trace.to_chrome_json().to_pretty())?;
        println!("wrote {}", path.display());
    }
    if !cli.artifacts.is_empty() {
        let mut artifacts = Artifacts::new("mrbench");
        artifacts.record_report(&format!("{}", cli.config.benchmark), report.clone());
        artifacts.write(cli.artifacts.json.as_deref(), cli.artifacts.csv.as_deref())?;
    }
    if let Some(diag) = &report.result.budget {
        // The report (and any artifacts) are already out; the exit code
        // tells scripts the run was truncated by the watchdog.
        return Err(Error::Budget(diag.summary()));
    }
    Ok(if report.result.succeeded() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `--compare`: run every interconnect at the configured shuffle volume
/// and tabulate. With `--resume`, completed cells are persisted in a
/// content-addressed store and skipped when the comparison restarts.
fn compare(cli: &Cli) -> Result<ExitCode, Error> {
    let spec = cli.config.job_spec();
    let shuffle = spec.total_shuffle_bytes();
    let store = match &cli.resume {
        Some(dir) => Some(ResultStore::open(dir)?),
        None => None,
    };
    let opts = SweepOptions {
        threads: 0,
        store: store.as_ref(),
        cancel: None,
    };
    let sweep = Sweep::run_grid_with(
        &[shuffle],
        &Interconnect::ALL,
        |_, ic| {
            let mut c = cli.config.clone();
            c.interconnect = ic;
            c.shuffle_engine = if ic == Interconnect::RdmaFdr {
                ShuffleEngineKind::Rdma
            } else {
                ShuffleEngineKind::Tcp
            };
            c.volume = ShuffleVolume::PairsPerMap(spec.pairs_per_map);
            c
        },
        &opts,
    )?;
    if let Some(store) = &store {
        let (hits, misses, rejected) = store.stats();
        eprintln!(
            "resume: {hits} cached, {misses} run, {rejected} rejected fragment(s) in {}",
            store.dir().display()
        );
    }
    let title = format!(
        "{} — {} maps / {} reduces on {} slaves",
        cli.config.benchmark, cli.config.num_maps, cli.config.num_reduces, cli.config.slaves
    );
    print!("{}", sweep.table(&title));
    if !cli.artifacts.is_empty() || cli.trace.is_some() {
        let mut artifacts = Artifacts::new("mrbench");
        artifacts.record_sweep(&title, sweep);
        artifacts.write(cli.artifacts.json.as_deref(), cli.artifacts.csv.as_deref())?;
        if let Some(path) = &cli.trace {
            artifacts.write_chrome_trace(path)?;
        }
    }
    Ok(ExitCode::SUCCESS)
}
