//! `mrbench` — the micro-benchmark suite's command-line front end.
//!
//! Run `mrbench --help` for the options; parsing lives in
//! [`mrbench::cli`] so it is unit-tested with the library.

use std::process::ExitCode;

use mrbench::cli::{parse_args, USAGE};
use mrbench::{run, Artifacts, Interconnect, ShuffleEngineKind, ShuffleVolume, Sweep};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    if cli.compare {
        let spec = cli.config.job_spec();
        let shuffle = spec.total_shuffle_bytes();
        let sweep = match Sweep::run_grid(&[shuffle], &Interconnect::ALL, |_, ic| {
            let mut c = cli.config.clone();
            c.interconnect = ic;
            c.shuffle_engine = if ic == Interconnect::RdmaFdr {
                ShuffleEngineKind::Rdma
            } else {
                ShuffleEngineKind::Tcp
            };
            c.volume = ShuffleVolume::PairsPerMap(spec.pairs_per_map);
            c
        }) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let title = format!(
            "{} — {} maps / {} reduces on {} slaves",
            cli.config.benchmark, cli.config.num_maps, cli.config.num_reduces, cli.config.slaves
        );
        print!("{}", sweep.table(&title));
        if !cli.artifacts.is_empty() || cli.trace.is_some() {
            let mut artifacts = Artifacts::new("mrbench");
            artifacts.record_sweep(&title, sweep);
            if let Err(e) =
                artifacts.write(cli.artifacts.json.as_deref(), cli.artifacts.csv.as_deref())
            {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(path) = &cli.trace {
                if let Err(e) = artifacts.write_chrome_trace(path) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let report = match run(&cli.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    if cli.timeline {
        // The timeline is reconstructed from the phase-span stream (the
        // --timeline flag forces tracing on), so retries, speculative
        // attempts, and phase boundaries all show.
        println!();
        println!("task timeline (per-attempt phase spans):");
        println!(
            "{:>10} {:>6} {:>4} {:>6} {:>12} {:>10} {:>10} {:>10}",
            "task", "index", "att", "node", "phase", "start (s)", "end (s)", "elapsed"
        );
        let trace = report
            .result
            .trace
            .as_ref()
            .expect("--timeline runs traced");
        let mut spans = trace.spans().to_vec();
        spans.sort_by_key(|s| (s.start, s.node, s.lane, s.end));
        for s in spans {
            println!(
                "{:>10} {:>6} {:>4} {:>6} {:>12} {:>10.2} {:>10.2} {:>9.2}s{}",
                s.kind,
                s.index,
                s.attempt,
                s.node,
                s.phase,
                s.start.as_secs_f64(),
                s.end.as_secs_f64(),
                s.end.since(s.start).as_secs_f64(),
                if s.aborted { "  (aborted)" } else { "" },
            );
        }
    }
    if let Some(path) = &cli.trace {
        let trace = report.result.trace.as_ref().expect("--trace runs traced");
        if let Err(e) = std::fs::write(path, trace.to_chrome_json().to_pretty())
            .map_err(|e| format!("writing {}: {e}", path.display()))
        {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    if !cli.artifacts.is_empty() {
        let mut artifacts = Artifacts::new("mrbench");
        artifacts.record_report(&format!("{}", cli.config.benchmark), report.clone());
        if let Err(e) = artifacts.write(cli.artifacts.json.as_deref(), cli.artifacts.csv.as_deref())
        {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !report.result.succeeded() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
