//! `mrbench` — the micro-benchmark suite's command-line front end.
//!
//! Run `mrbench --help` for the options; parsing lives in
//! [`mrbench::cli`] so it is unit-tested with the library.

use std::process::ExitCode;

use mrbench::cli::{parse_args, USAGE};
use mrbench::{run, Artifacts, Interconnect, ShuffleEngineKind, ShuffleVolume, Sweep};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    if cli.compare {
        let spec = cli.config.job_spec();
        let shuffle = spec.total_shuffle_bytes();
        let sweep = match Sweep::run_grid(&[shuffle], &Interconnect::ALL, |_, ic| {
            let mut c = cli.config.clone();
            c.interconnect = ic;
            c.shuffle_engine = if ic == Interconnect::RdmaFdr {
                ShuffleEngineKind::Rdma
            } else {
                ShuffleEngineKind::Tcp
            };
            c.volume = ShuffleVolume::PairsPerMap(spec.pairs_per_map);
            c
        }) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let title = format!(
            "{} — {} maps / {} reduces on {} slaves",
            cli.config.benchmark, cli.config.num_maps, cli.config.num_reduces, cli.config.slaves
        );
        print!("{}", sweep.table(&title));
        if !cli.artifacts.is_empty() {
            let mut artifacts = Artifacts::new("mrbench");
            artifacts.record_sweep(&title, sweep);
            if let Err(e) =
                artifacts.write(cli.artifacts.json.as_deref(), cli.artifacts.csv.as_deref())
            {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let report = match run(&cli.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    if cli.timeline {
        println!();
        println!("task timeline:");
        println!(
            "{:>10} {:>6} {:>6} {:>10} {:>10} {:>10}",
            "task", "index", "node", "start (s)", "finish (s)", "elapsed"
        );
        let mut tasks = report.result.tasks.clone();
        tasks.sort_by_key(|t| (t.start, !t.is_map, t.index));
        for t in tasks {
            println!(
                "{:>10} {:>6} {:>6} {:>10.2} {:>10.2} {:>9.2}s",
                if t.is_map { "map" } else { "reduce" },
                t.index,
                t.node,
                t.start.as_secs_f64(),
                t.finish.as_secs_f64(),
                t.elapsed().as_secs_f64(),
            );
        }
    }
    if !cli.artifacts.is_empty() {
        let mut artifacts = Artifacts::new("mrbench");
        artifacts.record_report(&format!("{}", cli.config.benchmark), report.clone());
        if let Err(e) = artifacts.write(cli.artifacts.json.as_deref(), cli.artifacts.csv.as_deref())
        {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !report.result.succeeded() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
