//! Calibration anchors and the paper's published claims.
//!
//! The simulator is calibrated once, against a single anchor from the
//! paper's prose (Sect. 5.2): *"the job execution time for 16 GB shuffle
//! data size reduces from 128 to 107 s for IPoIB (32 Gbps) when key/value
//! sizes are increased from 100 bytes to 1 KB"*. Every other number in
//! this module is a **target**, not an input: the benches in
//! `crates/bench` measure how closely the model reproduces them, and
//! `EXPERIMENTS.md` records the outcome.

/// The calibration anchor: MR-AVG, Cluster A, 4 slaves, 16 maps /
/// 8 reduces, 1 KiB key/value `BytesWritable`, 16 GB shuffle, IPoIB QDR.
pub const ANCHOR_IPOIB_16GB_1KB_SECS: f64 = 107.0;

/// Same configuration with 100-byte key/values (Fig. 4(a) at 16 GB).
pub const ANCHOR_IPOIB_16GB_100B_SECS: f64 = 128.0;

/// Paper claims for the Cluster A MRv1 experiments (Sect. 5.2 prose).
pub mod claims {
    /// MR-AVG: job time decreases ~17 % switching 1 GigE → 10 GigE.
    pub const AVG_10GIGE_IMPROVEMENT_PCT: f64 = 17.0;
    /// MR-AVG: up to ~24 % switching 1 GigE → IPoIB QDR.
    pub const AVG_IPOIB_IMPROVEMENT_PCT: f64 = 24.0;
    /// MR-RAND: ~16 % for 10 GigE.
    pub const RAND_10GIGE_IMPROVEMENT_PCT: f64 = 16.0;
    /// MR-RAND: up to ~22 % for IPoIB QDR.
    pub const RAND_IPOIB_IMPROVEMENT_PCT: f64 = 22.0;
    /// MR-SKEW: ~11 % for 10 GigE, ~12 % for IPoIB.
    pub const SKEW_IMPROVEMENT_PCT: f64 = 12.0;
    /// Skewed distribution roughly doubles job time vs MR-AVG (MRv1).
    pub const SKEW_VS_AVG_FACTOR_MRV1: f64 = 2.0;
    /// On YARN (8 slaves / 32 maps / 16 reduces) skew costs > 3x.
    pub const SKEW_VS_AVG_FACTOR_YARN: f64 = 3.0;
    /// YARN runs: ~11 % (10 GigE) and ~18 % (IPoIB) for MR-AVG.
    pub const YARN_AVG_10GIGE_PCT: f64 = 11.0;
    /// See [`YARN_AVG_10GIGE_PCT`].
    pub const YARN_AVG_IPOIB_PCT: f64 = 18.0;
    /// Fig. 7(b) peak receive throughputs in MB/s.
    pub const PEAK_RX_MBPS_GIGE1: f64 = 110.0;
    /// See [`PEAK_RX_MBPS_GIGE1`].
    pub const PEAK_RX_MBPS_GIGE10: f64 = 520.0;
    /// See [`PEAK_RX_MBPS_GIGE1`].
    pub const PEAK_RX_MBPS_IPOIB: f64 = 950.0;
    /// Sect. 6: MRoIB beats IPoIB FDR by 28-30 % on 8 slaves.
    pub const RDMA_IMPROVEMENT_8SLAVES_PCT: f64 = 29.0;
    /// Sect. 6: and by ~20-30 % on 16 slaves.
    pub const RDMA_IMPROVEMENT_16SLAVES_PCT: f64 = 25.0;
}

/// Acceptable relative deviation when self-checking shape claims: the
/// substrate is a simulator, not the authors' testbed, so reproduction
/// targets the *shape* (ordering and rough magnitude), not the digit.
pub const SHAPE_TOLERANCE: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_paper_values() {
        assert_eq!(ANCHOR_IPOIB_16GB_1KB_SECS, 107.0);
        assert_eq!(ANCHOR_IPOIB_16GB_100B_SECS, 128.0);
        let faster_network_claims_more =
            claims::AVG_IPOIB_IMPROVEMENT_PCT > claims::AVG_10GIGE_IMPROVEMENT_PCT;
        let peaks_ordered = claims::PEAK_RX_MBPS_IPOIB > claims::PEAK_RX_MBPS_GIGE10;
        assert!(faster_network_claims_more && peaks_ordered);
    }
}
