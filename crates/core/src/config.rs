//! User-facing benchmark configuration (paper Sect. 4.1 "configurable
//! parameters").
//!
//! A [`BenchConfig`] bundles every knob the suite exposes: the
//! micro-benchmark (intermediate data distribution), key/value geometry,
//! data type, task counts, cluster shape, interconnect, and engine. It
//! converts to the engine's [`JobSpec`] via [`BenchConfig::job_spec`].

use cluster::{ClusterPreset, NodeSpec};
use mapreduce::conf::{EngineKind, JobConf, ShuffleEngineKind};
use mapreduce::io::DataType;
use mapreduce::job::JobSpec;
use mapreduce::FaultPlan;
use simcore::jobj;
use simcore::json::Json;
use simcore::units::ByteSize;
use simnet::Interconnect;

use crate::bench::MicroBenchmark;

/// Stable artifact token for an interconnect; the inverse of
/// [`crate::cli::parse_network`].
pub(crate) fn interconnect_token(ic: Interconnect) -> &'static str {
    match ic {
        Interconnect::GigE1 => "1gige",
        Interconnect::GigE10 => "10gige",
        Interconnect::IpoibQdr => "ipoib-qdr",
        Interconnect::IpoibFdr => "ipoib-fdr",
        Interconnect::RdmaFdr => "rdma-fdr",
    }
}

/// Which execution backend evaluates a [`BenchConfig`].
///
/// The default discrete-event simulation replays the full MapReduce
/// pipeline event by event; the analytic backend evaluates Herodotou-style
/// closed-form per-phase cost equations instead (see
/// `mapreduce::analytic`), trading per-task fidelity for microsecond
/// evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BackendKind {
    /// The discrete-event simulator (`mrbench::run_des`).
    #[default]
    Des,
    /// The closed-form analytic cost model (`mapreduce::analytic`).
    Analytic,
}

impl BackendKind {
    /// Stable CLI/artifact token.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Des => "des",
            BackendKind::Analytic => "analytic",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "des" | "sim" | "simulator" => Ok(BackendKind::Des),
            "analytic" | "analytical" | "model" => Ok(BackendKind::Analytic),
            other => Err(format!("unknown backend: {other} (want des|analytic)")),
        }
    }
}

/// How much intermediate data the job generates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShuffleVolume {
    /// Explicit pairs per map task.
    PairsPerMap(u64),
    /// Target total shuffle size; pairs per map are derived.
    TotalBytes(ByteSize),
}

/// Full description of one micro-benchmark run.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Which of the three micro-benchmarks to run.
    pub benchmark: MicroBenchmark,
    /// Key payload size in bytes.
    pub key_size: usize,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Intermediate data volume.
    pub volume: ShuffleVolume,
    /// Writable data type for keys and values.
    pub data_type: DataType,
    /// Number of map tasks.
    pub num_maps: u32,
    /// Number of reduce tasks.
    pub num_reduces: u32,
    /// Number of slave nodes.
    pub slaves: usize,
    /// Which testbed the slaves model.
    pub cluster: ClusterPreset,
    /// Network interconnect/protocol.
    pub interconnect: Interconnect,
    /// MRv1 or YARN.
    pub engine: EngineKind,
    /// Socket or RDMA (MRoIB) shuffle.
    pub shuffle_engine: ShuffleEngineKind,
    /// Master seed.
    pub seed: u64,
    /// Zipf exponent for the MR-ZIPF extension benchmark (ignored by the
    /// paper's three benchmarks). 0 = uniform, 1 = classic Zipf.
    pub zipf_exponent: f64,
    /// Fault-injection plan (empty = fault-free run).
    pub faults: FaultPlan,
    /// Attempts allowed per task before the job aborts.
    pub max_attempts: u32,
    /// Hadoop-style speculative execution for stragglers.
    pub speculative: bool,
    /// Record per-task phase spans during the run (`--trace`). Excluded
    /// from the JSON encoding: it selects an output, not a workload, so
    /// two configs differing only here are the same experiment.
    pub trace: bool,
    /// Watchdog ceiling on engine events before the run aborts with
    /// `budget-exceeded` (`--max-events`). `None` is unlimited.
    pub max_events: Option<u64>,
    /// Watchdog ceiling on simulated seconds (`--max-sim-secs`). `None`
    /// is unlimited.
    pub max_sim_secs: Option<f64>,
    /// Number of racks the slaves are grouped into (`--racks`). 1 models
    /// the paper's single-switch crossbar.
    pub racks: usize,
    /// Rack uplink oversubscription factor (`--oversubscription`): the
    /// sum of member NIC rates over the uplink rate. 1.0 is non-blocking
    /// and adds no network constraint.
    pub oversubscription: f64,
    /// Aggregate core-fabric capacity in MB/s (`--fabric-cap`). `None`
    /// models a non-blocking core.
    pub fabric_cap_mb_s: Option<f64>,
    /// Sampling interval of the per-node throughput/CPU monitors in
    /// seconds (`--monitor-interval`). The paper's Fig. 7(b) uses 1 Hz;
    /// sub-second `--quick` jobs need a finer interval for a usable
    /// series.
    pub monitor_interval_s: f64,
    /// Which execution backend evaluates this config (`--backend`):
    /// the discrete-event simulator (default) or the closed-form
    /// analytic cost model.
    pub backend: BackendKind,
}

impl BenchConfig {
    /// The configuration the paper uses for most Cluster A experiments:
    /// 16 maps / 8 reduces on 4 slaves, 1 KiB key/value pairs of
    /// `BytesWritable`, over the given interconnect.
    pub fn cluster_a_default(
        benchmark: MicroBenchmark,
        interconnect: Interconnect,
        shuffle: ByteSize,
    ) -> Self {
        BenchConfig {
            benchmark,
            key_size: 1024,
            value_size: 1024,
            volume: ShuffleVolume::TotalBytes(shuffle),
            data_type: DataType::BytesWritable,
            num_maps: 16,
            num_reduces: 8,
            slaves: 4,
            cluster: ClusterPreset::ClusterA,
            interconnect,
            engine: EngineKind::MRv1,
            shuffle_engine: ShuffleEngineKind::Tcp,
            seed: 0x5EED_2014,
            zipf_exponent: 1.0,
            faults: FaultPlan::none(),
            max_attempts: 4,
            speculative: false,
            trace: false,
            max_events: None,
            max_sim_secs: None,
            racks: 1,
            oversubscription: 1.0,
            fabric_cap_mb_s: None,
            monitor_interval_s: 1.0,
            backend: BackendKind::Des,
        }
    }

    /// The paper's YARN configuration (Fig. 3): 32 maps / 16 reduces on 8
    /// slaves of Cluster A.
    pub fn yarn_default(
        benchmark: MicroBenchmark,
        interconnect: Interconnect,
        shuffle: ByteSize,
    ) -> Self {
        BenchConfig {
            num_maps: 32,
            num_reduces: 16,
            slaves: 8,
            engine: EngineKind::Yarn,
            ..BenchConfig::cluster_a_default(benchmark, interconnect, shuffle)
        }
    }

    /// The Sect. 6 case-study configuration on Cluster B (Stampede):
    /// 32 maps / 16 reduces, IPoIB FDR or RDMA FDR.
    pub fn cluster_b_case_study(
        interconnect: Interconnect,
        shuffle: ByteSize,
        slaves: usize,
    ) -> Self {
        let shuffle_engine = if interconnect == Interconnect::RdmaFdr {
            ShuffleEngineKind::Rdma
        } else {
            ShuffleEngineKind::Tcp
        };
        BenchConfig {
            num_maps: 32,
            num_reduces: 16,
            slaves,
            cluster: ClusterPreset::ClusterB,
            engine: EngineKind::Yarn,
            shuffle_engine,
            ..BenchConfig::cluster_a_default(MicroBenchmark::Avg, interconnect, shuffle)
        }
    }

    /// The node hardware for this config.
    pub fn node_spec(&self) -> NodeSpec {
        self.cluster.node_spec()
    }

    /// The partitioner factory for this config's benchmark.
    pub fn factory(&self) -> Box<dyn mapreduce::job::PartitionerFactory> {
        self.benchmark.factory_with(self.zipf_exponent)
    }

    /// Convert to the engine's job description.
    ///
    /// The suite ships the `mapred-site.xml` tuning the OSU testbeds used
    /// for gigabyte-scale map outputs: `io.sort.mb = 256` (fewer spill
    /// rounds) and 4 map / 2 reduce slots per TaskTracker so the paper's
    /// 16-map runs complete in a single wave per node pair.
    pub fn job_spec(&self) -> JobSpec {
        let conf = JobConf {
            num_maps: self.num_maps,
            num_reduces: self.num_reduces,
            io_sort_mb: ByteSize::from_mib(256),
            map_slots_per_node: 4,
            reduce_slots_per_node: 2,
            engine: self.engine,
            shuffle_engine: self.shuffle_engine,
            seed: self.seed,
            faults: self.faults.clone(),
            max_attempts: self.max_attempts,
            speculative: self.speculative,
            max_events: self.max_events,
            max_sim_time_s: self.max_sim_secs,
            monitor_interval_s: self.monitor_interval_s,
            ..JobConf::default()
        };
        let mut spec = JobSpec {
            conf,
            key_size: self.key_size,
            value_size: self.value_size,
            pairs_per_map: 1,
            data_type: self.data_type,
            output_write_amplification: 0.0,
        };
        match self.volume {
            ShuffleVolume::PairsPerMap(n) => spec.pairs_per_map = n,
            ShuffleVolume::TotalBytes(total) => spec.set_shuffle_size(total),
        }
        spec
    }

    /// Total shuffle bytes this config will generate.
    pub fn shuffle_bytes(&self) -> ByteSize {
        self.job_spec().total_shuffle_bytes()
    }

    /// The network topology this config describes: a flat crossbar by
    /// default, rack-structured and/or fabric-capped when the topology
    /// knobs are set.
    pub fn topology(&self) -> simnet::Topology {
        let mut t = simnet::Topology::single_switch(self.slaves, self.interconnect);
        if self.racks > 1 || self.oversubscription > 1.0 {
            t = t.with_racks(self.racks, self.oversubscription);
        }
        if let Some(mb_s) = self.fabric_cap_mb_s {
            t = t.with_fabric_cap(simcore::units::Rate::from_mb_per_sec(mb_s));
        }
        t
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.slaves == 0 {
            return Err("need at least one slave".into());
        }
        if self.num_reduces < 3 && self.benchmark == MicroBenchmark::Skew {
            // MR-SKEW's fixed pattern names three reducers.
            return Err("MR-SKEW needs at least 3 reducers".into());
        }
        if self.benchmark == MicroBenchmark::Zipf
            && !(self.zipf_exponent.is_finite() && self.zipf_exponent >= 0.0)
        {
            return Err("MR-ZIPF exponent must be finite and >= 0".into());
        }
        if self.racks == 0 {
            return Err("need at least one rack".into());
        }
        if self.racks > self.slaves {
            return Err(format!(
                "more racks ({}) than slaves ({})",
                self.racks, self.slaves
            ));
        }
        if !(self.oversubscription.is_finite() && self.oversubscription >= 1.0) {
            return Err(format!(
                "oversubscription factor must be finite and >= 1.0, got {}",
                self.oversubscription
            ));
        }
        if let Some(cap) = self.fabric_cap_mb_s {
            if !(cap.is_finite() && cap > 0.0) {
                return Err(format!("fabric cap must be positive MB/s, got {cap}"));
            }
        }
        if !(self.monitor_interval_s.is_finite() && self.monitor_interval_s > 0.0) {
            return Err(format!(
                "monitor interval must be positive seconds, got {}",
                self.monitor_interval_s
            ));
        }
        // Fault-plan node indices must name real slaves (the engine asserts
        // this; surface it as a config error instead).
        for c in &self.faults.node_crashes {
            if c.node >= self.slaves {
                return Err(format!(
                    "crash plan names node {} but the cluster has {} slaves",
                    c.node, self.slaves
                ));
            }
        }
        for s in &self.faults.node_slowdowns {
            if s.node >= self.slaves {
                return Err(format!(
                    "slowdown plan names node {} but the cluster has {} slaves",
                    s.node, self.slaves
                ));
            }
        }
        self.job_spec().validate()
    }

    /// Serialize to JSON. Enum fields use their stable CLI/report
    /// tokens; the volume is tagged by kind.
    ///
    /// Topology and monitor knobs added after the first artifacts shipped
    /// (`racks`, `oversubscription`, `fabric_cap_mb_s`,
    /// `monitor_interval_s`) are emitted only when they differ from their
    /// defaults, so pre-existing artifacts — and the content-addressed
    /// store digests derived from this encoding — stay byte-identical.
    pub fn to_json(&self) -> Json {
        let mut doc = jobj! {
            "benchmark": self.benchmark.label(),
            "key_size": self.key_size,
            "value_size": self.value_size,
            "volume": match self.volume {
                ShuffleVolume::PairsPerMap(n) => jobj! { "pairs_per_map": n },
                ShuffleVolume::TotalBytes(b) => jobj! { "total_bytes": b.as_bytes() },
            },
            "data_type": self.data_type.label(),
            "num_maps": self.num_maps,
            "num_reduces": self.num_reduces,
            "slaves": self.slaves,
            "cluster": match self.cluster {
                ClusterPreset::ClusterA => "a",
                ClusterPreset::ClusterB => "b",
            },
            "interconnect": interconnect_token(self.interconnect),
            "engine": match self.engine {
                EngineKind::MRv1 => "mrv1",
                EngineKind::Yarn => "yarn",
            },
            "shuffle_engine": match self.shuffle_engine {
                ShuffleEngineKind::Tcp => "tcp",
                ShuffleEngineKind::Rdma => "rdma",
            },
            "seed": self.seed,
            "zipf_exponent": self.zipf_exponent,
            "faults": self.faults.to_json(),
            "max_attempts": self.max_attempts,
            "speculative": self.speculative,
            "max_events": match self.max_events {
                Some(n) => Json::from(n),
                None => Json::Null,
            },
            "max_sim_secs": match self.max_sim_secs {
                Some(s) => Json::from(s),
                None => Json::Null,
            },
        };
        if let Json::Obj(fields) = &mut doc {
            if self.racks != 1 {
                fields.push(("racks".into(), Json::from(self.racks as u64)));
            }
            if self.oversubscription != 1.0 {
                fields.push(("oversubscription".into(), Json::from(self.oversubscription)));
            }
            if let Some(cap) = self.fabric_cap_mb_s {
                fields.push(("fabric_cap_mb_s".into(), Json::from(cap)));
            }
            if self.monitor_interval_s != 1.0 {
                fields.push((
                    "monitor_interval_s".into(),
                    Json::from(self.monitor_interval_s),
                ));
            }
            if self.backend != BackendKind::Des {
                fields.push(("backend".into(), Json::from(self.backend.label())));
            }
        }
        doc
    }

    /// Rebuild from the [`BenchConfig::to_json`] encoding.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let volume = json.req("volume")?;
        let volume = if let Some(n) = volume.get("pairs_per_map") {
            ShuffleVolume::PairsPerMap(n.as_u64().ok_or("bad pairs_per_map")?)
        } else {
            ShuffleVolume::TotalBytes(ByteSize::from_bytes(volume.field_u64("total_bytes")?))
        };
        Ok(BenchConfig {
            benchmark: json.field_str("benchmark")?.parse()?,
            key_size: json.field_usize("key_size")?,
            value_size: json.field_usize("value_size")?,
            volume,
            data_type: json.field_str("data_type")?.parse()?,
            num_maps: json.field_u32("num_maps")?,
            num_reduces: json.field_u32("num_reduces")?,
            slaves: json.field_usize("slaves")?,
            cluster: match json.field_str("cluster")? {
                "a" => ClusterPreset::ClusterA,
                "b" => ClusterPreset::ClusterB,
                other => return Err(format!("unknown cluster '{other}'")),
            },
            interconnect: crate::cli::parse_network(json.field_str("interconnect")?)?,
            engine: match json.field_str("engine")? {
                "mrv1" => EngineKind::MRv1,
                "yarn" => EngineKind::Yarn,
                other => return Err(format!("unknown engine '{other}'")),
            },
            shuffle_engine: match json.field_str("shuffle_engine")? {
                "tcp" => ShuffleEngineKind::Tcp,
                "rdma" => ShuffleEngineKind::Rdma,
                other => return Err(format!("unknown shuffle engine '{other}'")),
            },
            seed: json.field_u64("seed")?,
            zipf_exponent: json.field_f64("zipf_exponent")?,
            faults: FaultPlan::from_json(json.req("faults")?)?,
            max_attempts: json.field_u32("max_attempts")?,
            speculative: json.field_bool("speculative")?,
            trace: false,
            // Absent in artifacts written before the watchdog existed.
            max_events: match json.get("max_events") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or("bad max_events")?),
            },
            max_sim_secs: match json.get("max_sim_secs") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_f64().ok_or("bad max_sim_secs")?),
            },
            // Topology/monitor knobs are absent in artifacts written
            // before racks existed (and whenever left at their defaults).
            racks: match json.get("racks") {
                None | Some(Json::Null) => 1,
                Some(v) => v.as_u64().ok_or("bad racks")? as usize,
            },
            oversubscription: match json.get("oversubscription") {
                None | Some(Json::Null) => 1.0,
                Some(v) => v.as_f64().ok_or("bad oversubscription")?,
            },
            fabric_cap_mb_s: match json.get("fabric_cap_mb_s") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_f64().ok_or("bad fabric_cap_mb_s")?),
            },
            monitor_interval_s: match json.get("monitor_interval_s") {
                None | Some(Json::Null) => 1.0,
                Some(v) => v.as_f64().ok_or("bad monitor_interval_s")?,
            },
            // Absent in artifacts written before the analytic backend
            // existed; the DES was the only engine then.
            backend: match json.get("backend") {
                None | Some(Json::Null) => BackendKind::Des,
                Some(v) => v.as_str().ok_or("bad backend")?.parse()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_a_default_matches_paper() {
        let c = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::IpoibQdr,
            ByteSize::from_gib(16),
        );
        assert_eq!(c.num_maps, 16);
        assert_eq!(c.num_reduces, 8);
        assert_eq!(c.slaves, 4);
        assert_eq!(c.key_size, 1024);
        assert_eq!(c.data_type, DataType::BytesWritable);
        c.validate().unwrap();
        // Derived pairs hit the target volume within one record per map.
        let total = c.shuffle_bytes().as_bytes() as f64;
        let target = ByteSize::from_gib(16).as_bytes() as f64;
        assert!((total - target).abs() / target < 0.001);
    }

    #[test]
    fn yarn_default_matches_paper() {
        let c = BenchConfig::yarn_default(
            MicroBenchmark::Rand,
            Interconnect::GigE10,
            ByteSize::from_gib(16),
        );
        assert_eq!(c.num_maps, 32);
        assert_eq!(c.num_reduces, 16);
        assert_eq!(c.slaves, 8);
        assert_eq!(c.engine, EngineKind::Yarn);
    }

    #[test]
    fn case_study_uses_rdma_engine_only_for_rdma() {
        let r = BenchConfig::cluster_b_case_study(Interconnect::RdmaFdr, ByteSize::from_gib(16), 8);
        assert_eq!(r.shuffle_engine, ShuffleEngineKind::Rdma);
        let i =
            BenchConfig::cluster_b_case_study(Interconnect::IpoibFdr, ByteSize::from_gib(16), 8);
        assert_eq!(i.shuffle_engine, ShuffleEngineKind::Tcp);
        assert_eq!(i.cluster, ClusterPreset::ClusterB);
    }

    #[test]
    fn skew_needs_three_reducers() {
        let mut c = BenchConfig::cluster_a_default(
            MicroBenchmark::Skew,
            Interconnect::GigE1,
            ByteSize::from_gib(1),
        );
        c.num_reduces = 2;
        assert!(c.validate().is_err());
        c.num_reduces = 3;
        c.validate().unwrap();
    }

    #[test]
    fn fault_plan_is_validated_and_forwarded() {
        let mut c = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_gib(1),
        );
        c.faults.map_failure_prob = 1.5;
        assert!(c.validate().is_err());
        c.faults.map_failure_prob = 0.1;
        // Fault-plan node indices beyond the cluster are config errors,
        // not engine panics.
        c.faults.node_crashes.push(mapreduce::NodeCrash {
            node: 9,
            at_secs: 1.0,
        });
        assert!(c.validate().unwrap_err().contains("9"));
        c.faults.node_crashes.clear();
        c.faults.node_slowdowns.push(mapreduce::NodeSlowdown {
            node: 7,
            factor: 2.0,
        });
        assert!(c.validate().unwrap_err().contains("7"));
        c.faults.node_slowdowns.clear();
        c.speculative = true;
        c.max_attempts = 2;
        c.validate().unwrap();
        let conf = c.job_spec().conf;
        assert_eq!(conf.faults, c.faults);
        assert_eq!(conf.max_attempts, 2);
        assert!(conf.speculative);
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut c =
            BenchConfig::cluster_b_case_study(Interconnect::RdmaFdr, ByteSize::from_gib(16), 8);
        c.benchmark = MicroBenchmark::Zipf;
        c.zipf_exponent = 0.75;
        c.speculative = true;
        c.faults.fetch_failure_prob = 0.05;
        c.faults.node_slowdowns.push(mapreduce::NodeSlowdown {
            node: 3,
            factor: 2.5,
        });
        c.faults.fail_first_attempt_maps = vec![0, 7];
        let text = c.to_json().to_pretty();
        let back = BenchConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        // The encoding is canonical: re-serializing the decoded config
        // reproduces the same document, so every field round-tripped.
        assert_eq!(back.to_json().to_pretty(), text);
        assert_eq!(back.benchmark, MicroBenchmark::Zipf);
        assert_eq!(back.interconnect, Interconnect::RdmaFdr);
        assert_eq!(back.shuffle_engine, ShuffleEngineKind::Rdma);
        assert_eq!(back.faults, c.faults);
        assert_eq!(back.volume, c.volume);

        // PairsPerMap volumes round-trip through their own tag.
        c.volume = ShuffleVolume::PairsPerMap(4096);
        let back = BenchConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(back.volume, ShuffleVolume::PairsPerMap(4096));
    }

    #[test]
    fn topology_fields_round_trip_and_stay_out_of_default_docs() {
        // Defaults are omitted from the document, so artifacts written
        // before the topology fields existed keep their exact bytes (and
        // FNV store digests).
        let c = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_gib(1),
        );
        let text = c.to_json().to_pretty();
        for absent in [
            "racks",
            "oversubscription",
            "fabric_cap_mb_s",
            "monitor_interval_s",
            "backend",
        ] {
            assert!(!text.contains(absent), "{absent} leaked into {text}");
        }
        let back = BenchConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.racks, 1);
        assert_eq!(back.oversubscription, 1.0);
        assert_eq!(back.fabric_cap_mb_s, None);
        assert_eq!(back.monitor_interval_s, 1.0);
        assert_eq!(back.backend, BackendKind::Des);

        // Non-default values survive the canonical round trip.
        let mut c = c;
        c.slaves = 8;
        c.racks = 4;
        c.oversubscription = 4.0;
        c.fabric_cap_mb_s = Some(1500.0);
        c.monitor_interval_s = 0.5;
        c.validate().unwrap();
        let text = c.to_json().to_pretty();
        let back = BenchConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().to_pretty(), text);
        assert_eq!(back.racks, 4);
        assert_eq!(back.oversubscription, 4.0);
        assert_eq!(back.fabric_cap_mb_s, Some(1500.0));
        assert_eq!(back.monitor_interval_s, 0.5);
    }

    #[test]
    fn backend_field_round_trips_and_tags_the_document() {
        let mut c = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_gib(1),
        );
        c.backend = BackendKind::Analytic;
        let text = c.to_json().to_pretty();
        assert!(text.contains("\"backend\""), "{text}");
        let back = BenchConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.backend, BackendKind::Analytic);
        assert_eq!(back.to_json().to_pretty(), text);
        // Token parsing covers the CLI aliases.
        assert_eq!("des".parse::<BackendKind>().unwrap(), BackendKind::Des);
        assert_eq!(
            "ANALYTIC".parse::<BackendKind>().unwrap(),
            BackendKind::Analytic
        );
        assert!("quantum".parse::<BackendKind>().is_err());
    }

    #[test]
    fn topology_builder_reflects_config() {
        let mut c = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_gib(1),
        );
        c.slaves = 8;
        let flat = c.topology();
        assert_eq!(flat.n_racks(), 1);
        assert!(flat.fabric_cap().is_none());
        assert!(!flat.rack_constrained());

        c.racks = 4;
        c.oversubscription = 4.0;
        c.fabric_cap_mb_s = Some(2000.0);
        c.validate().unwrap();
        let t = c.topology();
        assert_eq!(t.n_nodes(), 8);
        assert_eq!(t.n_racks(), 4);
        assert_eq!(t.oversubscription(), 4.0);
        assert!(t.rack_constrained());
        assert_eq!(
            t.fabric_cap().map(|r| r.as_bytes_per_sec()),
            Some(2000.0 * 1e6)
        );
    }

    #[test]
    fn topology_validation_rejects_bad_values() {
        let mut c = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_gib(1),
        );
        c.racks = 0;
        assert!(c.validate().is_err());
        c.racks = c.slaves + 1;
        assert!(c.validate().is_err());
        c.racks = 1;
        c.oversubscription = 0.9;
        assert!(c.validate().is_err());
        c.oversubscription = f64::NAN;
        assert!(c.validate().is_err());
        c.oversubscription = 1.0;
        c.fabric_cap_mb_s = Some(0.0);
        assert!(c.validate().is_err());
        c.fabric_cap_mb_s = None;
        c.monitor_interval_s = 0.0;
        assert!(c.validate().is_err());
        c.monitor_interval_s = 1.0;
        c.validate().unwrap();
    }

    #[test]
    fn explicit_pairs_respected() {
        let mut c = BenchConfig::cluster_a_default(
            MicroBenchmark::Avg,
            Interconnect::GigE1,
            ByteSize::from_gib(1),
        );
        c.volume = ShuffleVolume::PairsPerMap(777);
        assert_eq!(c.job_spec().pairs_per_map, 777);
    }
}
