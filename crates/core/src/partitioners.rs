//! The suite's three custom partitioners (paper Sect. 4.2).
//!
//! Each micro-benchmark is defined by how its partitioner spreads the
//! intermediate key/value pairs over the reducers:
//!
//! * **MR-AVG** — round-robin: every reducer receives the same number of
//!   records (±1).
//! * **MR-RAND** — `new Random().nextInt(numReducers)` per record. The
//!   paper notes that Java's LCG with this limited range makes runs
//!   reproducible; the bit-exact [`JavaRandom`] port preserves that.
//! * **MR-SKEW** — a fixed skew: 50 % of the pairs to reducer 0, 25 % to
//!   reducer 1, 12.5 % to reducer 2, and the remaining 12.5 % spread
//!   randomly. The pattern is the same on every run, so comparisons
//!   across networks stay fair.

use mapreduce::job::PartitionerFactory;
use mapreduce::partition::Partitioner;
use simcore::rng::JavaRandom;

/// MR-AVG: uniform round-robin distribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct AvgPartitioner;

impl Partitioner for AvgPartitioner {
    fn partition(&mut self, _key: &[u8], ordinal: u64, n_reducers: u32) -> u32 {
        (ordinal % u64::from(n_reducers)) as u32
    }

    fn assign_counts(
        &mut self,
        n_records: u64,
        n_reducers: u32,
        _key_of: &mut dyn FnMut(u64, &mut Vec<u8>),
    ) -> Vec<u64> {
        // Exact closed form of the round-robin loop.
        let n = u64::from(n_reducers);
        let base = n_records / n;
        let rem = n_records % n;
        (0..n).map(|r| base + u64::from(r < rem)).collect()
    }
}

/// MR-RAND: pseudo-random reducer choice via `java.util.Random`.
#[derive(Clone, Debug)]
pub struct RandPartitioner {
    rng: JavaRandom,
}

impl RandPartitioner {
    /// One instance per map task, seeded deterministically.
    pub fn new(seed: i64) -> Self {
        RandPartitioner {
            rng: JavaRandom::new(seed),
        }
    }
}

impl Partitioner for RandPartitioner {
    fn partition(&mut self, _key: &[u8], _ordinal: u64, n_reducers: u32) -> u32 {
        self.rng.next_int_bound(n_reducers as i32) as u32
    }
}

/// MR-SKEW: 50 % / 25 % / 12.5 % to the first three reducers, rest random.
#[derive(Clone, Debug)]
pub struct SkewPartitioner {
    rng: JavaRandom,
}

impl SkewPartitioner {
    /// One instance per map task, seeded deterministically.
    pub fn new(seed: i64) -> Self {
        SkewPartitioner {
            rng: JavaRandom::new(seed),
        }
    }
}

impl Partitioner for SkewPartitioner {
    fn partition(&mut self, _key: &[u8], _ordinal: u64, n_reducers: u32) -> u32 {
        let last = n_reducers - 1;
        let u = self.rng.next_double();
        if u < 0.50 {
            0
        } else if u < 0.75 {
            1u32.min(last)
        } else if u < 0.875 {
            2u32.min(last)
        } else {
            self.rng.next_int_bound(n_reducers as i32) as u32
        }
    }
}

/// Factory for [`AvgPartitioner`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AvgFactory;

impl PartitionerFactory for AvgFactory {
    fn create(&self, _map_index: u32, _seed: u64) -> Box<dyn Partitioner> {
        Box::new(AvgPartitioner)
    }
    fn name(&self) -> &str {
        "MR-AVG"
    }
}

/// Factory for [`RandPartitioner`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RandFactory;

impl PartitionerFactory for RandFactory {
    fn create(&self, _map_index: u32, seed: u64) -> Box<dyn Partitioner> {
        Box::new(RandPartitioner::new(seed as i64))
    }
    fn name(&self) -> &str {
        "MR-RAND"
    }
}

/// Factory for [`SkewPartitioner`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SkewFactory;

impl PartitionerFactory for SkewFactory {
    fn create(&self, _map_index: u32, seed: u64) -> Box<dyn Partitioner> {
        Box::new(SkewPartitioner::new(seed as i64))
    }
    fn name(&self) -> &str {
        "MR-SKEW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_keys(_: u64, _: &mut Vec<u8>) {}

    #[test]
    fn avg_is_perfectly_balanced() {
        let mut p = AvgPartitioner;
        let counts = p.assign_counts(1003, 8, &mut no_keys);
        assert_eq!(counts.iter().sum::<u64>(), 1003);
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "{counts:?}");
        // Matches the per-record loop exactly.
        let mut q = AvgPartitioner;
        let mut loop_counts = vec![0u64; 8];
        for i in 0..1003 {
            loop_counts[q.partition(&[], i, 8) as usize] += 1;
        }
        assert_eq!(counts, loop_counts);
    }

    #[test]
    fn rand_is_statistically_balanced_and_reproducible() {
        let mut p = RandPartitioner::new(42);
        let counts = p.assign_counts(80_000, 8, &mut no_keys);
        assert_eq!(counts.iter().sum::<u64>(), 80_000);
        for c in &counts {
            let dev = (*c as f64 - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05, "{counts:?}");
        }
        // Same seed, same mapping — the paper's reproducibility property.
        let mut p2 = RandPartitioner::new(42);
        assert_eq!(p2.assign_counts(80_000, 8, &mut no_keys), counts);
        // Different seed, different mapping.
        let mut p3 = RandPartitioner::new(43);
        assert_ne!(p3.assign_counts(80_000, 8, &mut no_keys), counts);
    }

    #[test]
    fn skew_matches_paper_fractions() {
        let n = 400_000u64;
        let mut p = SkewPartitioner::new(7);
        let counts = p.assign_counts(n, 8, &mut no_keys);
        assert_eq!(counts.iter().sum::<u64>(), n);
        let frac = |i: usize| counts[i] as f64 / n as f64;
        // r0: 50% + 12.5%/8 ≈ 51.6%; r1: 25% + 1.6%; r2: 12.5% + 1.6%.
        assert!((frac(0) - 0.5156).abs() < 0.01, "{counts:?}");
        assert!((frac(1) - 0.2656).abs() < 0.01, "{counts:?}");
        assert!((frac(2) - 0.1406).abs() < 0.01, "{counts:?}");
        for r in 3..8 {
            assert!((frac(r) - 0.0156).abs() < 0.005, "{counts:?}");
        }
    }

    #[test]
    fn skew_with_few_reducers_stays_in_range() {
        for n_red in [1u32, 2, 3] {
            let mut p = SkewPartitioner::new(1);
            let counts = p.assign_counts(10_000, n_red, &mut no_keys);
            assert_eq!(counts.len(), n_red as usize);
            assert_eq!(counts.iter().sum::<u64>(), 10_000);
        }
    }

    #[test]
    fn skew_partition_loop_equals_assign_counts() {
        // SkewPartitioner relies on the default bulk path, so the
        // per-record loop and assign_counts must consume the RNG
        // identically — for every reducer count, including the clamped
        // n < 3 cases.
        for n_red in [1u32, 2, 3, 8] {
            let mut a = SkewPartitioner::new(11);
            let mut loop_counts = vec![0u64; n_red as usize];
            for i in 0..50_000u64 {
                loop_counts[a.partition(&[], i, n_red) as usize] += 1;
            }
            let mut b = SkewPartitioner::new(11);
            assert_eq!(
                b.assign_counts(50_000, n_red, &mut no_keys),
                loop_counts,
                "n_reducers = {n_red}"
            );
        }
    }

    #[test]
    fn skew_random_tail_is_uniform_across_all_reducers() {
        // The last 12.5 % bucket draws nextInt(n) over ALL reducers, so a
        // reducer past rank 2 sees exactly the tail share: 12.5 % / n.
        let n = 400_000u64;
        let mut p = SkewPartitioner::new(9);
        let counts = p.assign_counts(n, 4, &mut no_keys);
        let frac3 = counts[3] as f64 / n as f64;
        assert!((frac3 - 0.031_25).abs() < 0.005, "{counts:?}");
    }

    #[test]
    fn skew_two_reducers_fold_onto_paper_fractions() {
        // With two reducers the 25 % and 12.5 % buckets both clamp onto
        // reducer 1 and the random tail splits evenly:
        // r0 = 50 % + 6.25 % = 56.25 %, r1 = 25 % + 12.5 % + 6.25 %.
        let n = 200_000u64;
        let mut p = SkewPartitioner::new(5);
        let counts = p.assign_counts(n, 2, &mut no_keys);
        assert_eq!(counts.iter().sum::<u64>(), n);
        let frac = |i: usize| counts[i] as f64 / n as f64;
        assert!((frac(0) - 0.5625).abs() < 0.01, "{counts:?}");
        assert!((frac(1) - 0.4375).abs() < 0.01, "{counts:?}");
    }

    #[test]
    fn skew_three_reducers_match_paper_fractions() {
        // The smallest grid the paper's MR-SKEW definition fully fits:
        // r0 = 50 % + 12.5 %/3, r1 = 25 % + 12.5 %/3, r2 = 12.5 % + 12.5 %/3.
        let n = 300_000u64;
        let mut p = SkewPartitioner::new(13);
        let counts = p.assign_counts(n, 3, &mut no_keys);
        let frac = |i: usize| counts[i] as f64 / n as f64;
        assert!((frac(0) - (0.50 + 0.125 / 3.0)).abs() < 0.01, "{counts:?}");
        assert!((frac(1) - (0.25 + 0.125 / 3.0)).abs() < 0.01, "{counts:?}");
        assert!((frac(2) - (0.125 + 0.125 / 3.0)).abs() < 0.01, "{counts:?}");
    }

    #[test]
    fn skew_single_reducer_takes_everything() {
        let mut p = SkewPartitioner::new(5);
        assert_eq!(p.assign_counts(10_000, 1, &mut no_keys), vec![10_000]);
    }

    #[test]
    fn factories_have_paper_names() {
        assert_eq!(AvgFactory.name(), "MR-AVG");
        assert_eq!(RandFactory.name(), "MR-RAND");
        assert_eq!(SkewFactory.name(), "MR-SKEW");
    }

    #[test]
    fn skew_heavier_than_avg_for_reducer_zero() {
        let mut avg = AvgPartitioner;
        let mut skew = SkewPartitioner::new(3);
        let a = avg.assign_counts(100_000, 8, &mut no_keys);
        let s = skew.assign_counts(100_000, 8, &mut no_keys);
        assert!(s[0] > a[0] * 3, "skew r0 {} vs avg r0 {}", s[0], a[0]);
    }
}

/// MR-ZIPF (extension): keys follow a Zipf distribution over the unique
/// keys, producing the graded, realistic skew the paper's future-work
/// section calls for ("so that users can gain a more concrete
/// understanding of real-world workloads", Sect. 7). Exponent `s = 0`
/// degenerates to uniform; `s = 1` is classic Zipf; larger `s` is
/// heavier-headed.
#[derive(Clone, Debug)]
pub struct ZipfPartitioner {
    rng: JavaRandom,
    exponent: f64,
    /// Cached CDF for the reducer count seen so far.
    cdf: Vec<f64>,
}

impl ZipfPartitioner {
    /// One instance per map task.
    pub fn new(seed: i64, exponent: f64) -> Self {
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be >= 0"
        );
        ZipfPartitioner {
            rng: JavaRandom::new(seed),
            exponent,
            cdf: Vec::new(),
        }
    }

    fn ensure_cdf(&mut self, n: u32) {
        if self.cdf.len() == n as usize {
            return;
        }
        let mut weights: Vec<f64> = (1..=n)
            .map(|rank| 1.0 / (f64::from(rank)).powf(self.exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        self.cdf = weights;
    }
}

impl Partitioner for ZipfPartitioner {
    fn partition(&mut self, _key: &[u8], _ordinal: u64, n_reducers: u32) -> u32 {
        self.ensure_cdf(n_reducers);
        let u = self.rng.next_double();
        // First CDF entry >= u; the CDF ends at 1.0 so this always hits.
        self.cdf
            .partition_point(|&c| c < u)
            .min(n_reducers as usize - 1) as u32
    }
}

/// Factory for [`ZipfPartitioner`].
#[derive(Clone, Copy, Debug)]
pub struct ZipfFactory {
    /// Zipf exponent `s`.
    pub exponent: f64,
}

impl ZipfFactory {
    /// A factory drawing keys with exponent `s`.
    pub fn new(exponent: f64) -> Self {
        ZipfFactory { exponent }
    }
}

impl PartitionerFactory for ZipfFactory {
    fn create(&self, _map_index: u32, seed: u64) -> Box<dyn Partitioner> {
        Box::new(ZipfPartitioner::new(seed as i64, self.exponent))
    }
    fn name(&self) -> &str {
        "MR-ZIPF"
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;

    fn no_keys(_: u64, _: &mut Vec<u8>) {}

    #[test]
    fn zero_exponent_is_uniform() {
        let mut p = ZipfPartitioner::new(1, 0.0);
        let counts = p.assign_counts(80_000, 8, &mut no_keys);
        for c in &counts {
            let dev = (*c as f64 - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05, "{counts:?}");
        }
    }

    #[test]
    fn classic_zipf_head_dominates() {
        let mut p = ZipfPartitioner::new(1, 1.0);
        let n = 200_000u64;
        let counts = p.assign_counts(n, 8, &mut no_keys);
        assert_eq!(counts.iter().sum::<u64>(), n);
        // H(8) ~ 2.718; rank-1 share ~ 1/2.718 ~ 36.8%.
        let frac0 = counts[0] as f64 / n as f64;
        assert!((0.34..0.40).contains(&frac0), "frac0 {frac0}");
        // Monotone decreasing by rank.
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "{counts:?}");
        }
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let head_share = |s: f64| {
            let mut p = ZipfPartitioner::new(3, s);
            let counts = p.assign_counts(100_000, 8, &mut no_keys);
            counts[0] as f64 / 100_000.0
        };
        assert!(head_share(1.5) > head_share(1.0));
        assert!(head_share(1.0) > head_share(0.5));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ZipfPartitioner::new(9, 1.0).assign_counts(10_000, 4, &mut no_keys);
        let b = ZipfPartitioner::new(9, 1.0).assign_counts(10_000, 4, &mut no_keys);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_negative_exponent() {
        let _ = ZipfPartitioner::new(0, -1.0);
    }
}
