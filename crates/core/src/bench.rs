//! The three micro-benchmarks (paper Sect. 4.2).

use mapreduce::job::PartitionerFactory;

use crate::partitioners::{AvgFactory, RandFactory, SkewFactory, ZipfFactory};

/// The intermediate-data-distribution micro-benchmarks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MicroBenchmark {
    /// MR-AVG: uniform (round-robin) distribution.
    Avg,
    /// MR-RAND: pseudo-random distribution via `java.util.Random`.
    Rand,
    /// MR-SKEW: fixed 50 % / 25 % / 12.5 % / random skew.
    Skew,
    /// MR-ZIPF (extension): Zipf-distributed keys — the "real-world
    /// workloads" direction of the paper's future-work section. The
    /// exponent comes from [`crate::BenchConfig::zipf_exponent`].
    Zipf,
}

impl MicroBenchmark {
    /// The paper's three benchmarks, in presentation order.
    pub const ALL: [MicroBenchmark; 3] = [
        MicroBenchmark::Avg,
        MicroBenchmark::Rand,
        MicroBenchmark::Skew,
    ];

    /// The paper's three plus this suite's extensions.
    pub const EXTENDED: [MicroBenchmark; 4] = [
        MicroBenchmark::Avg,
        MicroBenchmark::Rand,
        MicroBenchmark::Skew,
        MicroBenchmark::Zipf,
    ];

    /// The paper's name for this benchmark.
    pub fn label(self) -> &'static str {
        match self {
            MicroBenchmark::Avg => "MR-AVG",
            MicroBenchmark::Rand => "MR-RAND",
            MicroBenchmark::Skew => "MR-SKEW",
            MicroBenchmark::Zipf => "MR-ZIPF",
        }
    }

    /// The partitioner factory implementing this distribution. MR-ZIPF
    /// takes its exponent here (configs pass
    /// [`crate::BenchConfig::zipf_exponent`]).
    pub fn factory_with(self, zipf_exponent: f64) -> Box<dyn PartitionerFactory> {
        match self {
            MicroBenchmark::Avg => Box::new(AvgFactory),
            MicroBenchmark::Rand => Box::new(RandFactory),
            MicroBenchmark::Skew => Box::new(SkewFactory),
            MicroBenchmark::Zipf => Box::new(ZipfFactory::new(zipf_exponent)),
        }
    }

    /// The partitioner factory with the default Zipf exponent (1.0).
    pub fn factory(self) -> Box<dyn PartitionerFactory> {
        self.factory_with(1.0)
    }
}

impl std::fmt::Display for MicroBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for MicroBenchmark {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().replace('_', "-").as_str() {
            "MR-AVG" | "AVG" => Ok(MicroBenchmark::Avg),
            "MR-RAND" | "RAND" | "MR-RANDOM" | "RANDOM" => Ok(MicroBenchmark::Rand),
            "MR-SKEW" | "SKEW" => Ok(MicroBenchmark::Skew),
            "MR-ZIPF" | "ZIPF" => Ok(MicroBenchmark::Zipf),
            other => Err(format!("unknown micro-benchmark: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_parsing() {
        assert_eq!(MicroBenchmark::Avg.label(), "MR-AVG");
        assert_eq!(
            "mr-rand".parse::<MicroBenchmark>().unwrap(),
            MicroBenchmark::Rand
        );
        assert_eq!(
            "SKEW".parse::<MicroBenchmark>().unwrap(),
            MicroBenchmark::Skew
        );
        assert_eq!(
            "MR_AVG".parse::<MicroBenchmark>().unwrap(),
            MicroBenchmark::Avg
        );
        assert!("sort".parse::<MicroBenchmark>().is_err());
    }

    #[test]
    fn factories_match_benchmarks() {
        for b in MicroBenchmark::EXTENDED {
            assert_eq!(b.factory().name(), b.label());
        }
        assert_eq!(
            "zipf".parse::<MicroBenchmark>().unwrap(),
            MicroBenchmark::Zipf
        );
    }
}
