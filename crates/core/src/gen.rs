//! Synthetic key/value generation.
//!
//! The suite's map tasks fabricate their intermediate data in memory
//! (paper Sect. 4.1): a user-specified number of key/value pairs of
//! user-specified sizes and type. To avoid any additional overhead the
//! number of *unique* pairs is restricted to the number of reducers
//! (Sect. 4.2) — key content is a pure function of `ordinal % reducers`.
//!
//! The generator produces *real* serialized records through the engine's
//! `Writable` implementations; [`KvGenerator::record_wire_len`] is the
//! exact byte count the simulator charges per record, and tests verify
//! the two agree.

use mapreduce::io::writable::{BytesWritable, Text, Writable};
use mapreduce::io::DataType;
use mapreduce::{ifile, job::JobSpec};

/// Generates the synthetic records of one map task.
#[derive(Clone, Debug)]
pub struct KvGenerator {
    key_size: usize,
    value_size: usize,
    n_reducers: u32,
    data_type: DataType,
}

impl KvGenerator {
    /// Generator for keys/values of the given payload sizes and type.
    pub fn new(key_size: usize, value_size: usize, n_reducers: u32, data_type: DataType) -> Self {
        assert!(n_reducers > 0, "need at least one reducer");
        KvGenerator {
            key_size,
            value_size,
            n_reducers,
            data_type,
        }
    }

    /// Generator matching a job spec.
    pub fn for_spec(spec: &JobSpec) -> Self {
        KvGenerator::new(
            spec.key_size,
            spec.value_size,
            spec.conf.num_reduces,
            spec.data_type,
        )
    }

    /// Fill `buf` with the key payload of record `ordinal` (the unique-id
    /// pattern the suite uses: content repeats every `n_reducers`
    /// records).
    pub fn key_payload(&self, ordinal: u64, buf: &mut Vec<u8>) {
        buf.clear();
        let uid = ordinal % u64::from(self.n_reducers);
        fill_payload(uid, self.key_size, self.data_type, buf);
    }

    /// Fill `buf` with the value payload of record `ordinal`.
    pub fn value_payload(&self, ordinal: u64, buf: &mut Vec<u8>) {
        buf.clear();
        let uid = ordinal % u64::from(self.n_reducers);
        // Values reuse the key pattern shifted, as the suite only cares
        // about sizes, not content.
        fill_payload(
            uid.wrapping_add(0x9E37),
            self.value_size,
            self.data_type,
            buf,
        );
    }

    /// Serialize record `ordinal` exactly as the map output collector
    /// would (Writable framing, no IFile framing).
    pub fn serialize_record(&self, ordinal: u64, out: &mut Vec<u8>) {
        let mut k = Vec::new();
        let mut v = Vec::new();
        self.key_payload(ordinal, &mut k);
        self.value_payload(ordinal, &mut v);
        match self.data_type {
            DataType::BytesWritable => {
                BytesWritable::new(k).write(out);
                BytesWritable::new(v).write(out);
            }
            DataType::Text => {
                Text::new(String::from_utf8(k).expect("ascii payload")).write(out);
                Text::new(String::from_utf8(v).expect("ascii payload")).write(out);
            }
        }
    }

    /// Exact wire length of one serialized key (Writable framing
    /// included).
    pub fn key_wire_len(&self) -> usize {
        self.data_type.wire_len(self.key_size)
    }

    /// Exact wire length of one serialized value.
    pub fn value_wire_len(&self) -> usize {
        self.data_type.wire_len(self.value_size)
    }

    /// Exact IFile bytes of one record — the unit the simulator charges.
    pub fn record_wire_len(&self) -> u64 {
        ifile::record_len(self.key_wire_len(), self.value_wire_len())
    }

    /// Build a real IFile stream of `n` records (for tests and examples;
    /// not used on the simulation hot path).
    pub fn build_ifile(&self, n: u64) -> Vec<u8> {
        let mut w = ifile::IFileWriter::new();
        let mut k = Vec::new();
        let mut v = Vec::new();
        let mut kw = Vec::new();
        let mut vw = Vec::new();
        for ordinal in 0..n {
            self.key_payload(ordinal, &mut k);
            self.value_payload(ordinal, &mut v);
            kw.clear();
            vw.clear();
            match self.data_type {
                DataType::BytesWritable => {
                    BytesWritable::new(k.clone()).write(&mut kw);
                    BytesWritable::new(v.clone()).write(&mut vw);
                }
                DataType::Text => {
                    Text::new(String::from_utf8(k.clone()).expect("ascii")).write(&mut kw);
                    Text::new(String::from_utf8(v.clone()).expect("ascii")).write(&mut vw);
                }
            }
            w.append(&kw, &vw);
        }
        w.close()
    }
}

/// Deterministic payload fill. `Text` payloads stay ASCII so they are
/// valid UTF-8; `BytesWritable` uses the full byte range.
fn fill_payload(uid: u64, size: usize, data_type: DataType, buf: &mut Vec<u8>) {
    buf.reserve(size);
    let seed = uid.to_be_bytes();
    match data_type {
        DataType::BytesWritable => {
            for i in 0..size {
                let b = seed[i % 8] ^ (i as u8).wrapping_mul(31);
                buf.push(b);
            }
        }
        DataType::Text => {
            for i in 0..size {
                let b = seed[i % 8] ^ (i as u8).wrapping_mul(31);
                buf.push(b'a' + (b % 26));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_keys_repeat_every_n_reducers() {
        let g = KvGenerator::new(64, 64, 8, DataType::BytesWritable);
        let mut a = Vec::new();
        let mut b = Vec::new();
        g.key_payload(3, &mut a);
        g.key_payload(11, &mut b);
        assert_eq!(a, b);
        g.key_payload(4, &mut b);
        assert_ne!(a, b);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn serialized_record_matches_simulator_charge() {
        for dt in DataType::ALL {
            for (ks, vs) in [(10, 100), (1024, 1024), (100, 100), (10240, 10240)] {
                let g = KvGenerator::new(ks, vs, 8, dt);
                let mut out = Vec::new();
                g.serialize_record(0, &mut out);
                // Writable framing only; add IFile vints for the full
                // record length.
                let expect = g.key_wire_len() + g.value_wire_len();
                assert_eq!(out.len(), expect, "{dt} {ks}/{vs}");
            }
        }
    }

    #[test]
    fn ifile_stream_len_matches_formula() {
        let g = KvGenerator::new(100, 1000, 4, DataType::BytesWritable);
        let stream = g.build_ifile(25);
        assert_eq!(
            stream.len() as u64,
            ifile::stream_len(25, g.key_wire_len(), g.value_wire_len())
        );
        // And it reads back.
        let mut r = ifile::IFileReader::new(&stream).unwrap();
        let mut n = 0;
        while r.next().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 25);
    }

    #[test]
    fn text_payloads_are_utf8() {
        let g = KvGenerator::new(333, 777, 5, DataType::Text);
        let mut k = Vec::new();
        g.key_payload(2, &mut k);
        assert!(std::str::from_utf8(&k).is_ok());
        assert_eq!(k.len(), 333);
        let mut out = Vec::new();
        g.serialize_record(2, &mut out); // would panic on invalid UTF-8
    }

    #[test]
    fn spec_roundtrip_consistency() {
        let spec = JobSpec::default();
        let g = KvGenerator::for_spec(&spec);
        assert_eq!(g.record_wire_len(), spec.record_ifile_len());
    }
}
