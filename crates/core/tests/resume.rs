//! Crash/resume determinism for store-backed sweeps.
//!
//! A sweep killed partway through leaves behind a result store with
//! some fragments complete, possibly a half-written temp file, and
//! possibly a corrupt fragment. Restarting against that store must
//! produce an artifact byte-identical to a one-shot run — at one
//! worker and at several — with the surviving fragments reused rather
//! than recomputed.

use std::fs;
use std::path::PathBuf;

use mrbench::{
    Artifacts, BenchConfig, Interconnect, MicroBenchmark, ResultStore, Sweep, SweepOptions,
};
use simcore::units::ByteSize;

const SIZES: [ByteSize; 3] = [
    ByteSize::from_mib(128),
    ByteSize::from_mib(256),
    ByteSize::from_mib(512),
];
const NETS: [Interconnect; 2] = [Interconnect::GigE1, Interconnect::IpoibQdr];

fn make(size: ByteSize, ic: Interconnect) -> BenchConfig {
    let mut c = BenchConfig::cluster_a_default(MicroBenchmark::Avg, ic, size);
    c.slaves = 2;
    c.num_maps = 4;
    c.num_reduces = 4;
    c
}

/// A scratch directory unique to this test invocation; tests share a
/// process, so the test name goes into the path too.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrbench-resume-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Render the sweep exactly the way the binaries persist it, so
/// "byte-identical artifact" means the actual bytes on disk.
fn artifact_bytes(sweep: Sweep) -> String {
    let mut artifacts = Artifacts::new("resume-test");
    artifacts.record_sweep("panel", sweep);
    artifacts.to_json().to_pretty()
}

fn run_with(store: Option<&ResultStore>, threads: usize) -> Sweep {
    let opts = SweepOptions {
        threads,
        store,
        cancel: None,
    };
    Sweep::run_grid_with(&SIZES, &NETS, make, &opts).expect("sweep completes")
}

/// Simulate the crash: keep the first `keep` fragments (sorted order),
/// truncate the next one mid-document, delete the rest, and plant a
/// torn temp file from an interrupted atomic write.
fn wreck_store(dir: &PathBuf, keep: usize) {
    let mut fragments: Vec<PathBuf> = fs::read_dir(dir)
        .expect("store dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    fragments.sort();
    assert!(
        fragments.len() > keep + 1,
        "need more than {} fragments, found {}",
        keep + 1,
        fragments.len()
    );
    let mut doomed = fragments.split_off(keep);
    // A fragment torn *after* rename (e.g. disk truncation) keeps its
    // valid digest name but fails validation — it must be rejected and
    // recomputed, not trusted and not fatal.
    let torn = doomed.remove(0);
    let text = fs::read_to_string(&torn).expect("read fragment");
    fs::write(&torn, &text[..text.len() / 2]).expect("truncate fragment");
    for victim in doomed {
        fs::remove_file(victim).expect("delete fragment");
    }
    // A crash mid-atomic-write leaves a temp file behind; it must be
    // invisible to the resumed run (atomic writes only count renamed
    // files as committed).
    fs::write(dir.join("deadbeef.json.tmp"), "{\"schema\": \"mrbe").expect("plant temp file");
}

fn crash_then_resume(threads: usize) {
    let tag = format!("t{threads}");
    let dir = scratch(&tag);

    // One-shot reference run, no store involved at all.
    let reference = artifact_bytes(run_with(None, threads));

    // First attempt fills the store, then "crashes": one fragment is
    // torn mid-document, the rest beyond the second are lost, and an
    // interrupted atomic write leaves a temp file behind.
    let store = ResultStore::open(&dir).expect("open store");
    run_with(Some(&store), threads);
    drop(store);
    wreck_store(&dir, 2);

    // Resume: surviving cells come from the cache, the rest recompute.
    let store = ResultStore::open(&dir).expect("reopen store");
    let resumed = artifact_bytes(run_with(Some(&store), threads));
    let (hits, misses, rejected) = store.stats();
    assert_eq!(hits, 2, "exactly the surviving fragments are reused");
    assert_eq!(rejected, 1, "the torn fragment must be rejected");
    assert_eq!(misses, (SIZES.len() * NETS.len()) as u64 - 3);

    assert_eq!(
        resumed, reference,
        "resumed artifact must be byte-identical to a one-shot run (threads={threads})"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_and_resume_is_byte_identical_serial() {
    crash_then_resume(1);
}

#[test]
fn crash_and_resume_is_byte_identical_parallel() {
    crash_then_resume(4);
}

/// A second run against an intact store is a pure cache replay: every
/// cell hits, nothing is recomputed, and the artifact doesn't move.
#[test]
fn warm_store_replays_identically() {
    let dir = scratch("warm");
    let store = ResultStore::open(&dir).expect("open store");
    let first = artifact_bytes(run_with(Some(&store), 1));
    drop(store);

    let store = ResultStore::open(&dir).expect("reopen store");
    let second = artifact_bytes(run_with(Some(&store), 1));
    let (hits, misses, rejected) = store.stats();
    assert_eq!(hits, (SIZES.len() * NETS.len()) as u64);
    assert_eq!(misses, 0);
    assert_eq!(rejected, 0);
    assert_eq!(first, second);

    let _ = fs::remove_dir_all(&dir);
}
