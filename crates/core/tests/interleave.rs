//! Interleaving coverage for the parallel sweep's slot-claim path.
//!
//! `Sweep::run_grid_with` farms cells to workers through a shared
//! `AtomicUsize` claim counter plus a mutex-guarded row-major slot
//! vector. Two complementary checks live here:
//!
//! * a **loom-style exhaustive model**: the claim protocol (poll
//!   cancel → `fetch_add` claim → write slot) is re-stated as a small
//!   state machine and *every* thread interleaving is enumerated by
//!   DFS, asserting each slot is written exactly once by its claimer —
//!   including runs where cancellation lands between any two steps;
//! * a **real-thread stress**: the actual `run_grid_with` at several
//!   worker counts, with the `make` callback counting invocations per
//!   cell, asserting each cell is built exactly once and the artifact
//!   bytes do not depend on the worker count.
//!
//! The model is exhaustive where real threads are probabilistic; the
//! stress run ties the model back to the shipping code. CI additionally
//! runs this file (and the multijob suite) under ThreadSanitizer.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mrbench::{Artifacts, BenchConfig, Interconnect, MicroBenchmark, Sweep, SweepOptions};
use simcore::units::ByteSize;

// ---------------------------------------------------------------------
// Exhaustive schedule enumeration over a model of the claim protocol
// ---------------------------------------------------------------------

/// Where one model worker is in the claim loop. Each variant boundary
/// is an atomic step in the real code: the cancel poll, the
/// `next.fetch_add`, and the slot write under the mutex.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Worker {
    /// About to poll the cancellation hook.
    Poll,
    /// About to claim an index from the shared counter.
    Claim,
    /// Claimed this index; about to write its slot.
    Write(usize),
    /// Exited the loop.
    Done,
}

/// One global state of the model: claim counter, cancel flag, slot
/// writers, and every worker's position. `Ord` so visited-state
/// memoization can use a `BTreeSet` (deterministic iteration, per the
/// workspace lint rules).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct State {
    next: usize,
    cancelled: bool,
    /// `slots[i]` = Some(worker that wrote it).
    slots: Vec<Option<usize>>,
    workers: Vec<Worker>,
}

impl State {
    fn initial(n_workers: usize, cells: usize) -> State {
        State {
            next: 0,
            cancelled: false,
            slots: vec![None; cells],
            workers: vec![Worker::Poll; n_workers],
        }
    }

    fn terminal(&self) -> bool {
        self.workers.iter().all(|w| *w == Worker::Done)
    }

    /// Apply worker `w`'s next atomic step. Panics on any write-once
    /// violation, which is exactly the race the protocol must exclude.
    fn step(&self, w: usize) -> State {
        let mut s = self.clone();
        match s.workers[w] {
            Worker::Poll => {
                s.workers[w] = if s.cancelled {
                    Worker::Done
                } else {
                    Worker::Claim
                };
            }
            Worker::Claim => {
                let i = s.next;
                s.next += 1;
                s.workers[w] = if i < s.slots.len() {
                    Worker::Write(i)
                } else {
                    Worker::Done
                };
            }
            Worker::Write(i) => {
                assert!(
                    s.slots[i].is_none(),
                    "slot {i} written twice (second writer: worker {w}, first: {:?})",
                    s.slots[i]
                );
                s.slots[i] = Some(w);
                s.workers[w] = Worker::Poll;
            }
            Worker::Done => unreachable!("done workers are never scheduled"),
        }
        s
    }
}

/// Enumerate every interleaving from `start` by DFS, checking the
/// terminal invariant on each maximal run. `allow_cancel` adds a
/// one-shot cancellation event that can fire between any two steps.
/// Returns (states visited, terminals reached).
fn explore(start: State, allow_cancel: bool) -> (usize, usize) {
    let mut visited: BTreeSet<State> = BTreeSet::new();
    let mut stack = vec![start];
    let mut terminals = 0usize;
    while let Some(s) = stack.pop() {
        if !visited.insert(s.clone()) {
            continue;
        }
        if s.terminal() {
            terminals += 1;
            check_terminal(&s);
            continue;
        }
        for w in 0..s.workers.len() {
            if s.workers[w] != Worker::Done {
                stack.push(s.step(w));
            }
        }
        if allow_cancel && !s.cancelled {
            let mut c = s.clone();
            c.cancelled = true;
            stack.push(c);
        }
    }
    (visited.len(), terminals)
}

/// Terminal invariant: without cancellation every slot is written
/// exactly once (write-once itself is asserted inside [`State::step`]);
/// with cancellation, unwritten slots are permitted only if the cancel
/// flag actually fired — exactly the `Error::Deadline` arm in
/// `run_grid_with`.
fn check_terminal(s: &State) {
    let unwritten = s.slots.iter().filter(|x| x.is_none()).count();
    if !s.cancelled {
        assert_eq!(unwritten, 0, "lost cell without cancellation: {s:?}");
        // The counter can overshoot (each worker's final empty claim)
        // but never undershoots the cell count.
        assert!(s.next >= s.slots.len());
    }
}

#[test]
fn claim_protocol_is_race_free_under_every_interleaving() {
    // 2 workers × 3 cells and 3 workers × 2 cells: small enough to
    // enumerate fully, large enough that claims outnumber workers in
    // one direction and workers outnumber claims in the other.
    for (workers, cells) in [(2, 3), (3, 2)] {
        let (states, terminals) = explore(State::initial(workers, cells), false);
        assert!(
            states > 100 && terminals > 0,
            "expected a nontrivial exhaustive walk, got {states} states / {terminals} terminals"
        );
    }
}

#[test]
fn claim_protocol_tolerates_cancellation_at_every_step() {
    for (workers, cells) in [(2, 3), (3, 2)] {
        let (states, terminals) = explore(State::initial(workers, cells), true);
        assert!(
            states > 200 && terminals > 0,
            "expected a nontrivial exhaustive walk, got {states} states / {terminals} terminals"
        );
    }
}

// ---------------------------------------------------------------------
// Real-thread stress over the shipping claim loop
// ---------------------------------------------------------------------

const SIZES: [ByteSize; 2] = [ByteSize::from_mib(128), ByteSize::from_mib(256)];
const NETS: [Interconnect; 2] = [Interconnect::GigE1, Interconnect::IpoibQdr];

fn small(size: ByteSize, ic: Interconnect) -> BenchConfig {
    let mut c = BenchConfig::cluster_a_default(MicroBenchmark::Avg, ic, size);
    c.slaves = 2;
    c.num_maps = 4;
    c.num_reduces = 4;
    c
}

fn artifact_bytes(sweep: Sweep) -> String {
    let mut artifacts = Artifacts::new("interleave-test");
    artifacts.record_sweep("panel", sweep);
    artifacts.to_json().to_pretty()
}

#[test]
fn every_cell_is_claimed_exactly_once_at_any_worker_count() {
    let mut reference: Option<String> = None;
    for threads in [1, 2, 4] {
        // Count `make` invocations per cell: work stealing may hand any
        // cell to any worker, but each cell must be built exactly once.
        let counts: Mutex<Vec<usize>> = Mutex::new(vec![0; SIZES.len() * NETS.len()]);
        let make = |size: ByteSize, ic: Interconnect| {
            let row = SIZES.iter().position(|&s| s == size).expect("known size");
            let col = NETS.iter().position(|&n| n == ic).expect("known net");
            counts.lock().unwrap()[row * NETS.len() + col] += 1;
            small(size, ic)
        };
        let opts = SweepOptions {
            threads,
            store: None,
            cancel: None,
        };
        let sweep = Sweep::run_grid_with(&SIZES, &NETS, make, &opts).expect("sweep completes");

        let counts = counts.into_inner().unwrap();
        assert!(
            counts.iter().all(|&c| c == 1),
            "threads={threads}: every cell exactly once, got {counts:?}"
        );

        // And the artifact must not depend on the worker count.
        let bytes = artifact_bytes(sweep);
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(r, &bytes, "threads={threads} changed the artifact"),
        }
    }
}

#[test]
fn cancellation_before_any_claim_reports_deadline() {
    // A cancel hook that fires immediately: the poll-before-claim order
    // in the protocol means zero cells complete and the sweep reports
    // how far it got instead of hanging or panicking.
    let fired = AtomicUsize::new(0);
    let cancel = || {
        fired.fetch_add(1, Ordering::Relaxed);
        true
    };
    let opts = SweepOptions {
        threads: 4,
        store: None,
        cancel: Some(&cancel),
    };
    let err = Sweep::run_grid_with(&SIZES, &NETS, small, &opts).expect_err("must cancel");
    let text = format!("{err}");
    assert!(text.contains("0"), "zero completed cells in: {text}");
    assert!(fired.load(Ordering::Relaxed) >= 1);
}
