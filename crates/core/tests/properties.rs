//! Property-style tests for the micro-benchmark suite, run over seeded
//! case grids (the workspace carries no external test dependencies).

use mapreduce::partition::Partitioner;
use mrbench::partitioners::{AvgPartitioner, RandPartitioner, SkewPartitioner};
use mrbench::{DataType, KvGenerator};
use simcore::rng::SplitMix64;

fn no_keys(_: u64, _: &mut Vec<u8>) {}

/// Every partitioner conserves the record mass for any workload shape.
#[test]
fn partitioners_conserve_mass() {
    let mut rng = SplitMix64::new(0x3A55);
    for _ in 0..64 {
        let n_records = 1 + rng.next_below(49_999);
        let n_reducers = 1 + rng.next_below(63) as u32;
        let seed = rng.next_u64() as i64;
        let mut no_keys = no_keys;
        for counts in [
            AvgPartitioner.assign_counts(n_records, n_reducers, &mut no_keys),
            RandPartitioner::new(seed).assign_counts(n_records, n_reducers, &mut no_keys),
            SkewPartitioner::new(seed).assign_counts(n_records, n_reducers, &mut no_keys),
        ] {
            assert_eq!(counts.len(), n_reducers as usize);
            assert_eq!(counts.iter().sum::<u64>(), n_records);
        }
    }
}

/// MR-AVG's closed form equals the per-record loop exactly.
#[test]
fn avg_closed_form_equals_loop() {
    let mut rng = SplitMix64::new(0xA7612);
    for _ in 0..32 {
        let n_records = 1 + rng.next_below(9_999);
        let n_reducers = 1 + rng.next_below(31) as u32;
        let mut p = AvgPartitioner;
        let closed = p.assign_counts(n_records, n_reducers, &mut no_keys);
        let mut looped = vec![0u64; n_reducers as usize];
        let mut q = AvgPartitioner;
        for i in 0..n_records {
            looped[q.partition(&[], i, n_reducers) as usize] += 1;
        }
        assert_eq!(closed, looped);
    }
}

/// MR-SKEW's head reducers dominate in the documented order for any
/// seed, once the sample is large enough for the law of large numbers.
#[test]
fn skew_orders_head_reducers() {
    let mut rng = SplitMix64::new(0x5EE1);
    for _ in 0..24 {
        let seed = rng.next_u64() as i64;
        let n_reducers = 4 + rng.next_below(28) as u32;
        let n = 200_000u64;
        let counts = SkewPartitioner::new(seed).assign_counts(n, n_reducers, &mut no_keys);
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        for r in 3..n_reducers as usize {
            assert!(
                counts[2] > counts[r],
                "r2 {} vs tail {}",
                counts[2],
                counts[r]
            );
        }
        // Reducer 0 carries roughly half the load.
        let frac0 = counts[0] as f64 / n as f64;
        assert!((0.47..0.57).contains(&frac0), "frac0 = {frac0}");
    }
}

/// MR-RAND is reproducible per seed and near-uniform.
#[test]
fn rand_reproducible_per_seed() {
    let mut rng = SplitMix64::new(0x2A4D);
    for _ in 0..24 {
        let seed = rng.next_u64() as i64;
        let a = RandPartitioner::new(seed).assign_counts(50_000, 8, &mut no_keys);
        let b = RandPartitioner::new(seed).assign_counts(50_000, 8, &mut no_keys);
        assert_eq!(&a, &b);
        for c in &a {
            let dev = (*c as f64 - 6_250.0).abs() / 6_250.0;
            assert!(dev < 0.10, "counts {a:?}");
        }
    }
}

/// The generator's serialized records always match the wire-length
/// formula the simulator charges, for any geometry and both types.
#[test]
fn generator_wire_length_exact() {
    let mut rng = SplitMix64::new(0x3174);
    for _ in 0..128 {
        let key = 1 + rng.next_below(4095) as usize;
        let value = 1 + rng.next_below(4095) as usize;
        let reducers = 1 + rng.next_below(31) as u32;
        let ordinal = rng.next_below(1_000_000);
        let dt = if rng.next_below(2) == 0 {
            DataType::BytesWritable
        } else {
            DataType::Text
        };
        let gen = KvGenerator::new(key, value, reducers, dt);
        let mut out = Vec::new();
        gen.serialize_record(ordinal, &mut out);
        assert_eq!(out.len(), gen.key_wire_len() + gen.value_wire_len());
    }
}

/// Generated IFile streams always validate and parse back.
#[test]
fn generator_streams_round_trip() {
    let mut rng = SplitMix64::new(0x121D);
    for _ in 0..64 {
        let key = 1 + rng.next_below(255) as usize;
        let value = 1 + rng.next_below(255) as usize;
        let n = rng.next_below(200);
        let dt = if rng.next_below(2) == 0 {
            DataType::BytesWritable
        } else {
            DataType::Text
        };
        let gen = KvGenerator::new(key, value, 4, dt);
        let stream = gen.build_ifile(n);
        let mut reader = mapreduce::ifile::IFileReader::new(&stream).expect("valid crc");
        let mut count = 0u64;
        while reader.next().expect("well-formed").is_some() {
            count += 1;
        }
        assert_eq!(count, n);
    }
}
