//! Simulated time.
//!
//! The whole simulator runs on a single logical clock with nanosecond
//! resolution. [`SimTime`] is an instant on that clock and [`SimDuration`]
//! is a span between two instants. Both are thin `u64` wrappers so they are
//! `Copy`, totally ordered, and cheap to store in event-queue keys.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinity" sentinel for schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, saturating at the clock limits.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_nanos(s))
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds since the epoch, as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Time elapsed since `earlier`. Panics in debug builds if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "SimTime::since: earlier is in the future");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (saturating, never negative).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_nanos(s))
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

fn secs_f64_to_nanos(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        if s > 0.0 {
            u64::MAX
        } else {
            0
        }
    } else {
        let ns = s * NANOS_PER_SEC as f64;
        if ns >= u64::MAX as f64 {
            u64::MAX
        } else {
            ns.round() as u64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.2}s")
        } else if s >= 1e-3 {
            write!(f, "{:.2}ms", s * 1e3)
        } else {
            write!(f, "{:.2}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert!((SimTime::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_secs_f64(), 14.0);
        assert_eq!((t - d).as_secs_f64(), 6.0);
        assert_eq!(((t + d) - t).as_secs_f64(), 4.0);
        assert_eq!((d * 3).as_secs_f64(), 12.0);
        assert_eq!((d / 2).as_secs_f64(), 2.0);
        assert_eq!((d * 0.5).as_secs_f64(), 2.0);
    }

    #[test]
    fn since_and_saturation() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(b.since(a).as_secs_f64(), 4.0);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.00s");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.00ms");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.2345)), "1.234s");
    }
}
