//! Online statistics, histograms, and time-series sampling.
//!
//! The micro-benchmark suite reports more than a single job time: it prints
//! resource-utilization series (paper Fig. 7) and distribution summaries of
//! per-task timings. These containers are deliberately allocation-light so
//! they can be updated from hot simulator paths.

use std::fmt;

use crate::json::Json;
use crate::time::SimTime;

/// Welford online mean/variance plus min/max.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min,
            self.max
        )
    }
}

/// A fixed-width-bucket histogram over `[lo, hi)`, with overflow/underflow
/// buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// A histogram with `n` equal buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of in-range buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Underflow (below `lo`) count.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Overflow (at or above `hi`) count.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile `q` in `[0,1]` from bucket midpoints.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

/// One `(time, value)` sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// When the sample was taken.
    pub time: SimTime,
    /// The observed value.
    pub value: f64,
}

/// An append-only time series, e.g. per-second CPU % on a node.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries {
            samples: Vec::new(),
        }
    }

    /// Append a sample; time must be non-decreasing.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(last) = self.samples.last() {
            debug_assert!(time >= last.time, "time series must be monotonic");
        }
        self.samples.push(Sample { time, value });
    }

    /// All samples in order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Largest sampled value.
    pub fn peak(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Mean of sampled values.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|s| s.value).sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Serialize as an array of `[time_ns, value]` pairs.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.samples
                .iter()
                .map(|s| Json::Arr(vec![Json::from(s.time.as_nanos()), Json::from(s.value)]))
                .collect(),
        )
    }

    /// Rebuild from the [`TimeSeries::to_json`] encoding.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let items = json.as_arr().ok_or("time series must be an array")?;
        let mut ts = TimeSeries::new();
        for item in items {
            let pair = item.as_arr().ok_or("time series sample must be a pair")?;
            if pair.len() != 2 {
                return Err("time series sample must be a [time_ns, value] pair".into());
            }
            let time = pair[0].as_u64().ok_or("sample time must be a u64")?;
            let value = pair[1].as_f64().ok_or("sample value must be a number")?;
            ts.push(SimTime::from_nanos(time), value);
        }
        Ok(ts)
    }
}

/// Integrates a piecewise-constant rate over simulated time; used to turn
/// "bytes per second right now" into "bytes moved this sampling interval".
#[derive(Clone, Debug)]
pub struct RateIntegrator {
    last_time: SimTime,
    // simlint: allow(unit-suffix, unit-generic integrator; callers integrate bytes/s or cores)
    rate: f64,
    accumulated: f64,
}

impl RateIntegrator {
    /// Start integrating at `start` with rate 0.
    pub fn new(start: SimTime) -> Self {
        RateIntegrator {
            last_time: start,
            rate: 0.0,
            accumulated: 0.0,
        }
    }

    /// Change the instantaneous rate at time `now` (integrating the old
    /// rate up to `now` first).
    // simlint: allow(unit-suffix, unit-generic integrator; callers integrate bytes/s or cores)
    pub fn set_rate(&mut self, now: SimTime, rate: f64) {
        self.advance(now);
        self.rate = rate;
    }

    /// Integrate up to `now` without changing the rate.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_time);
        let dt = now.since(self.last_time).as_secs_f64();
        self.accumulated += self.rate * dt;
        self.last_time = now;
    }

    /// Current instantaneous rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Take (and reset) everything integrated so far.
    pub fn drain(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        std::mem::take(&mut self.accumulated)
    }

    /// Peek at the integral without resetting.
    pub fn total(&self) -> f64 {
        self.accumulated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(format!("{s}"), "n=0");
    }

    #[test]
    fn histogram_counts_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(42.0);
        assert_eq!(h.count(), 12);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        for i in 0..10 {
            assert_eq!(h.bucket(i), 1);
        }
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.5).abs() <= 1.0, "median={median}");
        assert_eq!(Histogram::new(0.0, 1.0, 2).quantile(0.5), None);
    }

    #[test]
    fn time_series() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 30.0);
        ts.push(SimTime::from_secs(3), 20.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.peak(), Some(30.0));
        assert_eq!(ts.mean(), Some(20.0));
        assert_eq!(ts.samples()[1].value, 30.0);
    }

    #[test]
    fn time_series_json_round_trip() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_nanos(1_500_000_000), 111.8251);
        ts.push(SimTime::from_secs(2), 0.0);
        ts.push(SimTime::from_nanos(u64::MAX), 1.0 / 3.0);
        let text = ts.to_json().to_compact();
        let back = TimeSeries::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.samples(), ts.samples());
        assert!(TimeSeries::from_json(&Json::parse("[[1]]").unwrap()).is_err());
        assert!(TimeSeries::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn rate_integrator() {
        let mut ri = RateIntegrator::new(SimTime::ZERO);
        ri.set_rate(SimTime::ZERO, 100.0);
        ri.set_rate(SimTime::from_secs(2), 50.0);
        let total = ri.drain(SimTime::from_secs(4));
        assert!((total - 300.0).abs() < 1e-9);
        // Drained: restarts from zero.
        assert_eq!(ri.total(), 0.0);
        ri.advance(SimTime::from_secs(6));
        assert!((ri.total() - 100.0).abs() < 1e-9);
        assert_eq!(ri.rate(), 50.0);
    }
}
