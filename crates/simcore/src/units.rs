//! Data-size and data-rate units.
//!
//! Hadoop documentation and the paper use binary sizes (1 KB = 1024 bytes,
//! 1 GB = 2^30 bytes) for buffer and shuffle-data sizes, and decimal
//! megabytes per second for network throughput (a 1 GigE link is 125 MB/s).
//! Both conventions coexist here explicitly: [`ByteSize`] constructors are
//! binary, [`Rate`] constructors are decimal.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::time::SimDuration;

/// Bytes in a binary kilobyte.
pub const KIB: u64 = 1024;
/// Bytes in a binary megabyte.
pub const MIB: u64 = 1024 * KIB;
/// Bytes in a binary gigabyte.
pub const GIB: u64 = 1024 * MIB;

/// A count of bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a raw byte count.
    #[inline]
    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Construct from binary kilobytes (KiB).
    #[inline]
    pub const fn from_kib(k: u64) -> Self {
        ByteSize(k * KIB)
    }

    /// Construct from binary megabytes (MiB).
    #[inline]
    pub const fn from_mib(m: u64) -> Self {
        ByteSize(m * MIB)
    }

    /// Construct from binary gigabytes (GiB).
    #[inline]
    pub const fn from_gib(g: u64) -> Self {
        ByteSize(g * GIB)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in binary megabytes, as a float.
    #[inline]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Size in binary gigabytes, as a float.
    #[inline]
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / GIB as f64
    }

    /// True if zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// The time needed to move this many bytes at `rate`.
    #[inline]
    pub fn time_at(self, rate: Rate) -> SimDuration {
        rate.time_for(self)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB {
            write!(f, "{:.2}GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2}MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2}KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A data rate in bytes per second.
///
/// Stored as `f64` because rates are the output of fair-share solves and are
/// divided continuously; the byte counters they act on stay integral.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// Zero rate.
    pub const ZERO: Rate = Rate(0.0);

    /// Construct from bytes per second.
    #[inline]
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(
            bps >= 0.0 && bps.is_finite(),
            "rate must be finite and non-negative"
        );
        Rate(bps)
    }

    /// Construct from decimal megabytes per second (1 MB = 10^6 bytes).
    #[inline]
    pub fn from_mb_per_sec(mbps: f64) -> Self {
        Rate::from_bytes_per_sec(mbps * 1e6)
    }

    /// Construct from gigabits per second, the customary unit of
    /// interconnect line rates (1 Gbps = 125 decimal MB/s).
    #[inline]
    pub fn from_gbit_per_sec(gbps: f64) -> Self {
        Rate::from_bytes_per_sec(gbps * 1e9 / 8.0)
    }

    /// Bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Decimal megabytes per second.
    #[inline]
    pub fn as_mb_per_sec(self) -> f64 {
        self.0 / 1e6
    }

    /// True if effectively zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }

    /// The smaller of two rates.
    #[inline]
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }

    /// The time to transfer `bytes` at this rate. Returns
    /// [`SimDuration::MAX`] for a zero rate and a nonzero payload.
    pub fn time_for(self, bytes: ByteSize) -> SimDuration {
        if bytes.is_zero() {
            SimDuration::ZERO
        } else if self.is_zero() {
            SimDuration::MAX
        } else {
            SimDuration::from_secs_f64(bytes.as_bytes() as f64 / self.0)
        }
    }

    /// The bytes moved over `d` at this rate (floored to whole bytes).
    pub fn bytes_over(self, d: SimDuration) -> ByteSize {
        ByteSize::from_bytes((self.0 * d.as_secs_f64()).floor() as u64)
    }
}

impl Add for Rate {
    type Output = Rate;
    #[inline]
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn mul(self, rhs: f64) -> Rate {
        Rate(self.0 * rhs)
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn div(self, rhs: f64) -> Rate {
        Rate(self.0 / rhs)
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        Rate(iter.map(|r| r.0).sum())
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}MB/s", self.as_mb_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::from_mib(2).as_bytes(), 2 * 1024 * 1024);
        assert_eq!(ByteSize::from_gib(1).as_bytes(), 1 << 30);
        assert_eq!(ByteSize::from_gib(4).as_gib_f64(), 4.0);
    }

    #[test]
    fn byte_size_arith() {
        let a = ByteSize::from_mib(3);
        let b = ByteSize::from_mib(1);
        assert_eq!((a + b).as_mib_f64(), 4.0);
        assert_eq!((a - b).as_mib_f64(), 2.0);
        assert_eq!((a * 2).as_mib_f64(), 6.0);
        assert_eq!((a / 3).as_mib_f64(), 1.0);
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
        let total: ByteSize = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_mib_f64(), 5.0);
    }

    #[test]
    fn rate_conversions() {
        // 1 GigE = 1 Gbps = 125 decimal MB/s.
        let gige = Rate::from_gbit_per_sec(1.0);
        assert!((gige.as_mb_per_sec() - 125.0).abs() < 1e-9);
        let r = Rate::from_mb_per_sec(100.0);
        assert!((r.as_bytes_per_sec() - 1e8).abs() < 1e-3);
    }

    #[test]
    fn rate_time_for() {
        let r = Rate::from_mb_per_sec(100.0);
        let t = r.time_for(ByteSize::from_bytes(200_000_000));
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(r.time_for(ByteSize::ZERO), SimDuration::ZERO);
        assert_eq!(
            Rate::ZERO.time_for(ByteSize::from_bytes(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn rate_bytes_over() {
        let r = Rate::from_mb_per_sec(10.0);
        let moved = r.bytes_over(SimDuration::from_millis(500));
        assert_eq!(moved.as_bytes(), 5_000_000);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rate_rejects_negative() {
        let _ = Rate::from_bytes_per_sec(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", ByteSize::from_bytes(17)), "17B");
        assert_eq!(format!("{}", ByteSize::from_kib(3)), "3.00KiB");
        assert_eq!(format!("{}", ByteSize::from_gib(2)), "2.00GiB");
        assert_eq!(format!("{}", Rate::from_mb_per_sec(950.0)), "950.0MB/s");
    }
}
