//! Total ordering for floats.
//!
//! The simulator's `total-float-order` lint forbids `partial_cmp` on
//! floats: NaN makes it a partial order, which either panics
//! (`.unwrap()`) or — worse — silently yields inconsistent comparisons
//! that corrupt a sort or wedge a heap. This module is the vetted
//! alternative: [`TotalF64`] wraps an `f64` with `Ord` via
//! [`f64::total_cmp`], and [`total_sort`] sorts a slice in place the
//! same way.
//!
//! `total_cmp` follows the IEEE 754 `totalOrder` predicate:
//! `-NaN < -inf < … < -0.0 < +0.0 < … < +inf < +NaN`. Every float has a
//! place, so a poisoned value can never break comparator consistency —
//! it sorts last (or first, if negative) instead.

use std::cmp::Ordering;

/// An `f64` with the IEEE 754 total order, usable as a sort or heap key.
#[derive(Clone, Copy, Debug, Default)]
pub struct TotalF64(pub f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for TotalF64 {}
impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for TotalF64 {
    fn from(v: f64) -> Self {
        TotalF64(v)
    }
}

/// Sort a float slice by the total order (NaN-safe, deterministic).
pub fn total_sort(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_places_every_value() {
        let mut xs = vec![
            1.0,
            f64::NAN,
            -0.0,
            f64::NEG_INFINITY,
            0.0,
            f64::INFINITY,
            -3.5,
        ];
        total_sort(&mut xs);
        assert_eq!(xs[0], f64::NEG_INFINITY);
        assert_eq!(xs[1], -3.5);
        assert!(xs[2] == 0.0 && xs[2].is_sign_negative(), "-0.0 before +0.0");
        assert!(xs[3] == 0.0 && xs[3].is_sign_positive());
        assert_eq!(xs[4], 1.0);
        assert_eq!(xs[5], f64::INFINITY);
        assert!(xs[6].is_nan(), "NaN sorts last, never panics");
    }

    #[test]
    fn wrapper_is_a_lawful_ord_key() {
        let mut keys: Vec<TotalF64> = [2.0, f64::NAN, -1.0, 2.0]
            .into_iter()
            .map(TotalF64)
            .collect();
        keys.sort(); // requires full Ord — would not compile on raw f64
        assert_eq!(keys[0].0, -1.0);
        assert_eq!(keys[1].0, 2.0);
        assert_eq!(keys[2].0, 2.0);
        assert!(keys[3].0.is_nan());
        // Consistent equality under the total order.
        assert_eq!(TotalF64(f64::NAN), TotalF64(f64::NAN));
        assert_ne!(TotalF64(-0.0), TotalF64(0.0));
    }

    #[test]
    fn binary_heap_with_nan_key_does_not_wedge() {
        use std::collections::BinaryHeap;
        let mut h: BinaryHeap<TotalF64> = BinaryHeap::new();
        for v in [0.5, f64::NAN, 3.0, -0.0] {
            h.push(TotalF64(v));
        }
        // NaN is the max under totalOrder; all four values come back out.
        assert!(h.pop().unwrap().0.is_nan());
        assert_eq!(h.pop().unwrap().0, 3.0);
        assert_eq!(h.pop().unwrap().0, 0.5);
        assert_eq!(h.pop().unwrap().0, -0.0);
        assert!(h.pop().is_none());
    }
}
