//! Phase-span tracing for simulated executions.
//!
//! A [`Trace`] records what every task attempt was doing, and when, in
//! *simulated* time: one [`Span`] per contiguous phase of an attempt
//! (JVM start-up, map, spill/merge, shuffle, reduce, output write, ...)
//! plus point-in-time [`Mark`]s for scheduler decisions (launches,
//! speculation, requeues, node crashes).
//!
//! The recorder is deliberately dumb: the engine pushes spans as phases
//! end, and all analysis happens after the fact. Two consumers exist:
//!
//! * [`Trace::to_chrome_json`] — the Chrome trace-event format, loadable
//!   in `chrome://tracing` or <https://ui.perfetto.dev>. Each execution
//!   slot becomes one track (`tid`), grouped per run (`pid`).
//! * [`Trace::breakdown`] — a [`PhaseBreakdown`]: per-phase busy and
//!   *exclusive* wall-clock time plus overlap/idle accounting, computed by
//!   a boundary sweep so that
//!   `sum(exclusive) + overlap + idle == total` holds exactly in integer
//!   nanoseconds.
//!
//! A disabled trace (the default) drops everything on the floor: no
//! allocation, no formatting, just a branch per would-be span.

use crate::jobj;
use crate::json::Json;
use crate::time::{SimDuration, SimTime};

/// One contiguous phase of a task attempt, in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Phase name (`"map"`, `"shuffle"`, ...). `&'static` so recording a
    /// span never allocates.
    pub phase: &'static str,
    /// Task kind (`"map"` or `"reduce"`), used to label tracks.
    pub kind: &'static str,
    /// Logical task index within its kind.
    pub index: u32,
    /// Attempt number (0 = original, >0 = retry or speculative backup).
    pub attempt: u32,
    /// Node the attempt ran on.
    pub node: u32,
    /// Execution slot (one track per slot in the Chrome view).
    pub lane: u32,
    /// Phase start.
    pub start: SimTime,
    /// Phase end.
    pub end: SimTime,
    /// Bytes processed during the phase (0 where it makes no sense).
    pub bytes: u64,
    /// True when the phase was cut short (attempt killed or failed).
    pub aborted: bool,
}

/// A point-in-time scheduler event (launch, speculate, crash, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mark {
    /// Human-readable label.
    pub label: String,
    /// Node the event concerns.
    pub node: u32,
    /// Slot the event concerns, or [`Mark::NO_LANE`] for node/job-level
    /// events.
    pub lane: u32,
    /// When the event happened.
    pub at: SimTime,
}

impl Mark {
    /// Sentinel lane for marks that are not tied to an execution slot.
    pub const NO_LANE: u32 = u32::MAX;
}

/// A span/mark recorder. Disabled by default; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    spans: Vec<Span>,
    marks: Vec<Mark>,
    /// End of the last span per lane, for the nesting invariant: a
    /// lane's spans are sequential, so each new span must start at or
    /// after the previous one's end, and must not end before it starts.
    #[cfg(any(test, feature = "invariants"))]
    lane_frontier: std::collections::BTreeMap<u32, SimTime>,
}

impl Trace {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// A recorder that keeps spans and marks.
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            ..Trace::default()
        }
    }

    /// Whether spans are being kept. Callers should guard any formatting
    /// or byte-count work behind this so a disabled trace stays free.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a completed span. No-op when disabled.
    ///
    /// With the `invariants` feature (always on under `cfg(test)`),
    /// spans are checked for per-lane nesting: a span must not end
    /// before it starts, and must not start before the lane's previous
    /// span ended — overlapping spans on one execution slot mean two
    /// phases of the same attempt ran at once, which the engine's
    /// sequential phase machine cannot produce.
    #[inline]
    pub fn span(&mut self, span: Span) {
        if self.enabled {
            #[cfg(any(test, feature = "invariants"))]
            {
                assert!(
                    span.end >= span.start,
                    "invariant violated: {} {} attempt {} records a {:?} span ending at \
                     {:?}, before its start {:?}",
                    span.kind,
                    span.index,
                    span.attempt,
                    span.phase,
                    span.end,
                    span.start,
                );
                if let Some(&frontier) = self.lane_frontier.get(&span.lane) {
                    assert!(
                        span.start >= frontier,
                        "invariant violated: {} {} attempt {} starts a {:?} span at {:?} \
                         on lane {}, overlapping the previous span that ended at \
                         {frontier:?}",
                        span.kind,
                        span.index,
                        span.attempt,
                        span.phase,
                        span.start,
                        span.lane,
                    );
                }
                self.lane_frontier.insert(span.lane, span.end);
            }
            self.spans.push(span);
        }
    }

    /// Record a point event. No-op when disabled.
    #[inline]
    pub fn mark(&mut self, label: String, node: u32, lane: u32, at: SimTime) {
        if self.enabled {
            self.marks.push(Mark {
                label,
                node,
                lane,
                at,
            });
        }
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All recorded marks, in recording order.
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    /// Chrome trace-event document for a single run (`pid` 0).
    pub fn to_chrome_json(&self) -> Json {
        let mut events = Vec::new();
        self.chrome_events(0, "job", &mut events);
        jobj! {
            "displayTimeUnit": "ms",
            "traceEvents": Json::Arr(events),
        }
    }

    /// Append this trace's Chrome events under process id `pid` with
    /// process name `label`. Used to combine several runs in one file.
    pub fn chrome_events(&self, pid: u64, label: &str, events: &mut Vec<Json>) {
        events.push(jobj! {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0u64,
            "args": jobj! { "name": label },
        });
        // One named track per execution slot.
        let mut lanes: Vec<(u32, u32, &'static str)> = self
            .spans
            .iter()
            .map(|s| (s.lane, s.node, s.kind))
            .collect();
        lanes.sort_unstable();
        lanes.dedup_by_key(|l| l.0);
        for (lane, node, kind) in lanes {
            events.push(jobj! {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": u64::from(lane),
                "args": jobj! {
                    "name": format!("n{node} {kind} slot {lane}"),
                },
            });
        }
        for s in &self.spans {
            let dur_ns = s.end.since(s.start).as_nanos();
            events.push(jobj! {
                "name": s.phase,
                "cat": s.kind,
                "ph": "X",
                "ts": s.start.as_nanos() as f64 / 1e3,
                "dur": dur_ns as f64 / 1e3,
                "pid": pid,
                "tid": u64::from(s.lane),
                "args": jobj! {
                    "task": format!("{} {} attempt {}", s.kind, s.index, s.attempt),
                    "node": u64::from(s.node),
                    "bytes": s.bytes,
                    "aborted": s.aborted,
                },
            });
        }
        for m in &self.marks {
            let mut ev = jobj! {
                "name": m.label.clone(),
                "cat": "scheduler",
                "ph": "i",
                "ts": m.at.as_nanos() as f64 / 1e3,
                "pid": pid,
                "s": if m.lane == Mark::NO_LANE { "p" } else { "t" },
            };
            if m.lane != Mark::NO_LANE {
                if let Json::Obj(fields) = &mut ev {
                    fields.push(("tid".to_string(), Json::from(u64::from(m.lane))));
                }
            }
            events.push(ev);
        }
    }

    /// Aggregate the span stream into a [`PhaseBreakdown`] over a job that
    /// ran for `total`. Spans are clipped to `[0, total]`.
    pub fn breakdown(&self, total: SimDuration) -> PhaseBreakdown {
        let total_ns = total.as_nanos();

        // Phase identities in order of first appearance (deterministic).
        let mut names: Vec<&'static str> = Vec::new();
        for s in &self.spans {
            if !names.contains(&s.phase) {
                names.push(s.phase);
            }
        }
        let phase_of = |p: &'static str| names.iter().position(|n| *n == p).unwrap();

        let mut busy = vec![0u128; names.len()];
        let mut bytes = vec![0u64; names.len()];
        let mut count = vec![0u64; names.len()];

        // Boundary sweep: (+1 at clipped start, -1 at clipped end) per
        // span, then walk the merged timeline keeping per-phase active
        // counts. A segment is *exclusive* to a phase when that phase is
        // the only one active; segments with >= 2 distinct phases are
        // overlap, segments with none are idle.
        let mut edges: Vec<(u64, usize, i64)> = Vec::with_capacity(2 * self.spans.len());
        for s in &self.spans {
            let p = phase_of(s.phase);
            let a = s.start.as_nanos().min(total_ns);
            let b = s.end.as_nanos().min(total_ns);
            busy[p] += u128::from(b - a);
            bytes[p] = bytes[p].saturating_add(s.bytes);
            count[p] += 1;
            if b > a {
                edges.push((a, p, 1));
                edges.push((b, p, -1));
            }
        }
        edges.sort_unstable();

        let mut active = vec![0i64; names.len()];
        let mut distinct = 0usize;
        let mut exclusive = vec![0u128; names.len()];
        let mut overlap: u128 = 0;
        let mut idle: u128 = 0;
        let mut cursor = 0u64;
        let mut i = 0;
        while i < edges.len() {
            let t = edges[i].0;
            if t > cursor {
                let dt = u128::from(t - cursor);
                match distinct {
                    0 => idle += dt,
                    1 => {
                        let p = active.iter().position(|&c| c > 0).unwrap();
                        exclusive[p] += dt;
                    }
                    _ => overlap += dt,
                }
                cursor = t;
            }
            while i < edges.len() && edges[i].0 == t {
                let (_, p, d) = edges[i];
                let was = active[p];
                active[p] += d;
                if was == 0 && active[p] > 0 {
                    distinct += 1;
                } else if was > 0 && active[p] == 0 {
                    distinct -= 1;
                }
                i += 1;
            }
        }
        if total_ns > cursor {
            idle += u128::from(total_ns - cursor);
        }

        let secs = |ns: u128| ns as f64 / 1e9;
        PhaseBreakdown {
            phases: names
                .iter()
                .enumerate()
                .map(|(p, name)| PhaseAgg {
                    phase: name.to_string(),
                    busy_s: secs(busy[p]),
                    exclusive_s: secs(exclusive[p]),
                    spans: count[p],
                    bytes: bytes[p],
                })
                .collect(),
            overlap_s: secs(overlap),
            idle_s: secs(idle),
            total_s: secs(u128::from(total_ns)),
        }
    }
}

/// Aggregate statistics for one phase across all attempts.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseAgg {
    /// Phase name.
    pub phase: String,
    /// Total span time, summed across attempts (can exceed wall clock).
    pub busy_s: f64,
    /// Wall-clock time during which *only* this phase was active anywhere.
    pub exclusive_s: f64,
    /// Number of spans recorded for the phase.
    pub spans: u64,
    /// Bytes processed in the phase, summed across attempts.
    pub bytes: u64,
}

/// Per-phase decomposition of a job's wall-clock time.
///
/// The invariant `sum(exclusive_s) + overlap_s + idle_s == total_s` holds
/// exactly (the sweep runs in integer nanoseconds; only the final
/// conversion to seconds is floating-point).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseBreakdown {
    /// Phases in order of first appearance in the span stream.
    pub phases: Vec<PhaseAgg>,
    /// Wall-clock time with two or more distinct phases active.
    pub overlap_s: f64,
    /// Wall-clock time with no phase active (start-up, teardown, gaps).
    pub idle_s: f64,
    /// The job's total wall-clock time.
    pub total_s: f64,
}

impl PhaseBreakdown {
    /// True when the exclusive/overlap/idle partition reconciles with the
    /// total to within `tol` (a fraction, e.g. `0.01` for 1%).
    pub fn reconciles(&self, tol: f64) -> bool {
        let sum: f64 =
            self.phases.iter().map(|p| p.exclusive_s).sum::<f64>() + self.overlap_s + self.idle_s;
        (sum - self.total_s).abs() <= tol * self.total_s.max(f64::MIN_POSITIVE)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Json {
        jobj! {
            "total_s": self.total_s,
            "overlap_s": self.overlap_s,
            "idle_s": self.idle_s,
            "phases": Json::Arr(
                self.phases
                    .iter()
                    .map(|p| jobj! {
                        "phase": p.phase.clone(),
                        "busy_s": p.busy_s,
                        "exclusive_s": p.exclusive_s,
                        "spans": p.spans,
                        "bytes": p.bytes,
                    })
                    .collect(),
            ),
        }
    }

    /// Parse from JSON produced by [`PhaseBreakdown::to_json`].
    pub fn from_json(json: &Json) -> Result<PhaseBreakdown, String> {
        let arr = json.field_arr("phases")?;
        let mut phases = Vec::with_capacity(arr.len());
        for item in arr {
            phases.push(PhaseAgg {
                phase: item.field_str("phase")?.to_string(),
                busy_s: item.field_f64("busy_s")?,
                exclusive_s: item.field_f64("exclusive_s")?,
                spans: item.field_u64("spans")?,
                bytes: item.field_u64("bytes")?,
            });
        }
        Ok(PhaseBreakdown {
            phases,
            overlap_s: json.field_f64("overlap_s")?,
            idle_s: json.field_f64("idle_s")?,
            total_s: json.field_f64("total_s")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(phase: &'static str, lane: u32, start: u64, end: u64) -> Span {
        Span {
            phase,
            kind: "map",
            index: 0,
            attempt: 0,
            node: 0,
            lane,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            bytes: 10,
            aborted: false,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.span(span("map", 0, 0, 5));
        t.mark("launch".into(), 0, 0, SimTime::ZERO);
        assert!(!t.is_enabled());
        assert!(t.spans().is_empty() && t.marks().is_empty());
    }

    #[test]
    #[should_panic(expected = "invariant violated")]
    fn overlapping_spans_on_one_lane_panic() {
        let mut t = Trace::enabled();
        t.span(span("map", 0, 0, 10));
        // Same lane, starts before the previous span ended.
        t.span(span("spill", 0, 5, 15));
    }

    #[test]
    #[should_panic(expected = "invariant violated")]
    fn span_ending_before_it_starts_panics() {
        let mut t = Trace::enabled();
        t.span(span("map", 0, 10, 5));
    }

    #[test]
    fn sequential_and_parallel_lane_spans_are_fine() {
        let mut t = Trace::enabled();
        t.span(span("map", 0, 0, 10));
        t.span(span("spill", 0, 10, 12)); // back-to-back on one lane
        t.span(span("map", 1, 3, 9)); // overlap across lanes is expected
        assert_eq!(t.spans().len(), 3);
    }

    #[test]
    fn breakdown_partitions_wall_clock_exactly() {
        let mut t = Trace::enabled();
        // Lane 0: map [0,10). Lane 1: shuffle [5,15). Idle [15,20).
        t.span(span("map", 0, 0, 10));
        t.span(span("shuffle", 1, 5, 15));
        let b = t.breakdown(SimDuration::from_nanos(20));
        assert_eq!(b.phases.len(), 2);
        let map = &b.phases[0];
        let shuffle = &b.phases[1];
        assert_eq!(map.phase, "map");
        assert_eq!(map.busy_s, 10e-9);
        assert_eq!(map.exclusive_s, 5e-9);
        assert_eq!(shuffle.exclusive_s, 5e-9);
        assert_eq!(b.overlap_s, 5e-9);
        assert_eq!(b.idle_s, 5e-9);
        assert!(b.reconciles(1e-12));
    }

    #[test]
    fn breakdown_same_phase_overlap_is_exclusive() {
        // Two lanes both in "map": exclusive to the phase, not overlap.
        let mut t = Trace::enabled();
        t.span(span("map", 0, 0, 10));
        t.span(span("map", 1, 0, 10));
        let b = t.breakdown(SimDuration::from_nanos(10));
        assert_eq!(b.phases[0].exclusive_s, 10e-9);
        assert_eq!(b.phases[0].busy_s, 20e-9);
        assert_eq!(b.overlap_s, 0.0);
        assert_eq!(b.idle_s, 0.0);
    }

    #[test]
    fn breakdown_clips_spans_to_total() {
        let mut t = Trace::enabled();
        t.span(span("map", 0, 5, 50));
        let b = t.breakdown(SimDuration::from_nanos(10));
        assert_eq!(b.phases[0].busy_s, 5e-9);
        assert_eq!(b.phases[0].exclusive_s, 5e-9);
        assert_eq!(b.idle_s, 5e-9);
        assert!(b.reconciles(1e-12));
    }

    #[test]
    fn breakdown_json_round_trips() {
        let mut t = Trace::enabled();
        t.span(span("map", 0, 0, 7));
        t.span(span("shuffle", 1, 3, 9));
        let b = t.breakdown(SimDuration::from_nanos(12));
        let back = PhaseBreakdown::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
        // Canonical: serializing the parsed value reproduces the text.
        assert_eq!(back.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn chrome_export_shape() {
        let mut t = Trace::enabled();
        t.span(span("map", 3, 1_000, 4_000));
        t.mark("launch map 0".into(), 0, 3, SimTime::from_nanos(500));
        t.mark(
            "node crash".into(),
            1,
            Mark::NO_LANE,
            SimTime::from_nanos(2_000),
        );
        let doc = t.to_chrome_json();
        let events = doc.field_arr("traceEvents").unwrap();
        // process_name + thread_name + 1 span + 2 marks.
        assert_eq!(events.len(), 5);
        let span_ev = events
            .iter()
            .find(|e| e.field_str("ph").unwrap() == "X")
            .unwrap();
        assert_eq!(span_ev.field_str("name").unwrap(), "map");
        assert_eq!(span_ev.field_f64("ts").unwrap(), 1.0);
        assert_eq!(span_ev.field_f64("dur").unwrap(), 3.0);
        assert_eq!(span_ev.field_u64("tid").unwrap(), 3);
        // The node-level mark is process-scoped and carries no tid.
        let crash = events
            .iter()
            .find(|e| e.field_str("name").unwrap() == "node crash")
            .unwrap();
        assert_eq!(crash.field_str("s").unwrap(), "p");
        assert!(crash.get("tid").is_none());
        // Whole document survives a parse round-trip.
        let back = Json::parse(&doc.to_compact()).unwrap();
        assert_eq!(back.to_compact(), doc.to_compact());
    }
}
