//! Minimal JSON value model, writer, and parser.
//!
//! The workspace keeps its dependency set to the approved list, so the
//! structured-results layer (`BENCH_*.json` artifacts, round-trippable
//! sweep exports) is built on this hand-rolled module instead of serde.
//! It supports exactly what the benchmark artifacts need:
//!
//! * a [`Json`] tree with order-preserving objects,
//! * a compact and a pretty writer,
//! * a strict recursive-descent parser ([`Json::parse`]),
//! * typed accessors that make `from_json` implementations short.
//!
//! Integers are kept distinct from floats ([`Json::Int`] vs
//! [`Json::Num`]) so `u64` quantities (nanosecond timestamps, byte
//! counts, seeds) round-trip exactly.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer written without a decimal point. `i128` covers the
    /// full `u64` and `i64` ranges losslessly.
    Int(i128),
    /// A non-integer number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member by key, with a descriptive error for `from_json`
    /// implementations.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing JSON field '{key}'"))
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value as `f64` (accepts both `Int` and `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an in-range `u64` (must be an `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an in-range `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|v| u32::try_from(v).ok())
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Typed field accessors that fail with the field name, for
    /// `from_json` implementations.
    pub fn field_u64(&self, key: &str) -> Result<u64, String> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| format!("field '{key}' is not a u64"))
    }

    /// `u32` field.
    pub fn field_u32(&self, key: &str) -> Result<u32, String> {
        self.req(key)?
            .as_u32()
            .ok_or_else(|| format!("field '{key}' is not a u32"))
    }

    /// `usize` field.
    pub fn field_usize(&self, key: &str) -> Result<usize, String> {
        self.req(key)?
            .as_usize()
            .ok_or_else(|| format!("field '{key}' is not a usize"))
    }

    /// `f64` field (integers accepted).
    pub fn field_f64(&self, key: &str) -> Result<f64, String> {
        self.req(key)?
            .as_f64()
            .ok_or_else(|| format!("field '{key}' is not a number"))
    }

    /// `f64` field where `null` means "not a number".
    ///
    /// JSON has no NaN/Infinity literals, so the writer serializes any
    /// non-finite [`Json::Num`] as `null`. Fields that can legitimately
    /// hold a non-finite value (e.g. a failed sweep cell's time) must be
    /// read back through this accessor, which maps `null` to `f64::NAN`,
    /// making the write/parse cycle lossy only in the *kind* of
    /// non-finiteness (every non-finite value comes back as NaN).
    pub fn field_f64_or_nan(&self, key: &str) -> Result<f64, String> {
        match self.req(key)? {
            Json::Null => Ok(f64::NAN),
            v => v
                .as_f64()
                .ok_or_else(|| format!("field '{key}' is not a number or null")),
        }
    }

    /// `bool` field.
    pub fn field_bool(&self, key: &str) -> Result<bool, String> {
        self.req(key)?
            .as_bool()
            .ok_or_else(|| format!("field '{key}' is not a bool"))
    }

    /// `&str` field.
    pub fn field_str<'a>(&'a self, key: &str) -> Result<&'a str, String> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| format!("field '{key}' is not a string"))
    }

    /// Array field.
    pub fn field_arr<'a>(&'a self, key: &str) -> Result<&'a [Json], String> {
        self.req(key)?
            .as_arr()
            .ok_or_else(|| format!("field '{key}' is not an array"))
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing
    /// newline, for files humans read.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // parses back to the same bits, so floats round-trip.
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }

    /// Parse a JSON document. The whole input must be one value plus
    /// optional surrounding whitespace. Nesting deeper than
    /// [`MAX_PARSE_DEPTH`] is rejected with an error rather than risking
    /// a stack overflow on hostile or corrupt input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}", pos = *pos))
    }
}

/// Maximum container nesting depth [`Json::parse`] accepts. Real
/// artifacts nest a handful of levels; anything deeper is corrupt or
/// adversarial, and the recursive-descent parser must refuse it before
/// the call stack does.
pub const MAX_PARSE_DEPTH: usize = 512;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_PARSE_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_PARSE_DEPTH} at byte {pos}",
            pos = *pos
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by our writers;
                        // reject them rather than mis-decode.
                        let c = char::from_u32(code).ok_or("invalid \\u escape")?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a char boundary).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad integer '{text}': {e}"))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i128::from(v))
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(i128::from(v))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(i128::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Build a [`Json::Obj`] with literal keys:
/// `jobj! { "a": 1u64, "b": "x" }`. Values go through `Json::from`.
#[macro_export]
macro_rules! jobj {
    ($($k:literal : $v:expr),* $(,)?) => {
        $crate::json::Json::Obj(vec![
            $(($k.to_string(), $crate::json::Json::from($v))),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "123456789012345678901"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_compact(), text);
        }
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("-2e3").unwrap(), Json::Num(-2000.0));
    }

    #[test]
    fn u64_extremes_round_trip_exactly() {
        let j = Json::from(u64::MAX);
        let back = Json::parse(&j.to_compact()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, -1e-300, 111.8251] {
            let text = Json::Num(x).to_compact();
            match Json::parse(&text).unwrap() {
                Json::Num(y) => assert_eq!(x.to_bits(), y.to_bits(), "{text}"),
                Json::Int(i) => assert_eq!(x, i as f64),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn non_finite_floats_round_trip_as_nan_via_null() {
        // Policy: non-finite floats serialize as `null`; readers of
        // fields that may be non-finite use `field_f64_or_nan`, which
        // maps `null` back to NaN (the distinction between NaN and the
        // infinities is not preserved — all come back as NaN).
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = jobj! { "t": x };
            assert_eq!(doc.to_compact(), r#"{"t":null}"#);
            let back = Json::parse(&doc.to_compact()).unwrap();
            assert!(back.field_f64_or_nan("t").unwrap().is_nan());
            // The strict accessor still rejects null.
            assert!(back.field_f64("t").is_err());
        }
        // Finite values pass through the lenient accessor unchanged.
        let doc = Json::parse(r#"{"t": 1.25, "n": 3}"#).unwrap();
        assert_eq!(doc.field_f64_or_nan("t"), Ok(1.25));
        assert_eq!(doc.field_f64_or_nan("n"), Ok(3.0));
        assert!(doc.field_f64_or_nan("missing").is_err());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"quoted\" \\ line\nwith\ttabs and unicode: åß∂";
        let j = Json::Str(s.to_owned());
        assert_eq!(Json::parse(&j.to_compact()).unwrap().as_str(), Some(s));
        assert_eq!(
            Json::parse("\"\\u0041\\u00e5\"").unwrap().as_str(),
            Some("Aå")
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = jobj! {
            "name": "fig2",
            "ok": true,
            "cells": Json::Arr(vec![
                jobj! { "t": 1u64, "x": 1.25 },
                jobj! { "t": 2u64, "x": Json::Null },
            ]),
        };
        let compact = Json::parse(&v.to_compact()).unwrap();
        let pretty = Json::parse(&v.to_pretty()).unwrap();
        assert_eq!(compact, v);
        assert_eq!(pretty, v);
        assert_eq!(v.get("name").unwrap().as_str(), Some("fig2"));
        assert_eq!(v.field_bool("ok"), Ok(true));
        let cells = v.field_arr("cells").unwrap();
        assert_eq!(cells[0].field_u64("t"), Ok(1));
        assert!(v.field_u64("missing").is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z": 1, "a": 2, "m": 3}"#;
        let v = Json::parse(text).unwrap();
        match &v {
            Json::Obj(members) => {
                let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "m"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{1: 2}").is_err());
        assert!(Json::parse("nulL").is_err());
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        // One level under the limit parses; past it is a clean Err.
        let ok = format!(
            "{}0{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&ok).is_ok());
        let deep = "[".repeat(MAX_PARSE_DEPTH + 10);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        let deep_obj = "{\"k\":".repeat(MAX_PARSE_DEPTH + 10);
        assert!(Json::parse(&deep_obj).is_err());
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = Json::parse(r#"{"n": -1, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None, "negative is not u64");
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("nope"), None);
    }
}
